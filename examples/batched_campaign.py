#!/usr/bin/env python3
"""Compile-once / run-many campaigns with the batched engine.

The scalar estimator answers one vector at a time; campaign workloads
(Fig. 12 statistics, minimum-leakage-vector search) ask hundreds.  The
batched engine compiles the circuit + characterized library into flat LUT
arrays once, then answers whole vector sets as array passes:

* ``run_vector_campaign`` routes library-backed estimators through the
  engine automatically (``engine="scalar"`` forces the old path);
* the compile cache makes repeated campaigns on the same circuit reuse the
  flattened arrays, so only the first campaign pays the compile;
* the same LUT totals feed ``minimum_leakage_vector``, so exhaustive
  searches over small circuits are a single batched evaluation.

Run with ``python examples/batched_campaign.py``.  The layer *below* this —
characterizing the library and the Monte-Carlo variation study through the
batched DC solver — is walked end-to-end by
``examples/batched_characterization.py``.
"""

import time

from repro import make_technology
from repro.circuit.generators import iscas_like
from repro.circuit.logic import random_vectors
from repro.core import LoadingAwareEstimator, minimum_leakage_vector, run_vector_campaign
from repro.gates.characterize import GateLibrary
from repro.service import EstimationSession
from repro.utils.tables import format_table


def main() -> None:
    technology = make_technology("d25-s")
    library = GateLibrary(technology)
    estimator = LoadingAwareEstimator(library)
    circuit = iscas_like("s838", scale=0.25)
    vectors = list(random_vectors(circuit, 100, rng=2005))

    # Compile once: the estimation session characterizes every (gate type,
    # vector) the circuit can hit and flattens the response curves into
    # NumPy arrays.  Subsequent campaigns routed through the same session
    # reuse the cached compile (watch session.stats() count the hits).
    session = EstimationSession()
    start = time.perf_counter()
    session.compiled(circuit, library)
    compile_s = time.perf_counter() - start

    start = time.perf_counter()
    batched = run_vector_campaign(
        estimator, circuit, vectors=vectors, session=session
    )
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    scalar = run_vector_campaign(estimator, circuit, vectors=vectors, engine="scalar")
    scalar_s = time.perf_counter() - start

    rows = [
        ["compile (one-time)", compile_s, "-"],
        ["batched campaign", batched_s, batched.mean_total() * 1e9],
        ["scalar campaign", scalar_s, scalar.mean_total() * 1e9],
    ]
    print(
        format_table(
            ["path", "wall [s]", "mean leakage [nA]"],
            rows,
            title=f"100-vector campaign on '{circuit.name}' ({circuit.gate_count} gates)",
        )
    )
    print(f"\nbatched vs scalar speed-up: {scalar_s / batched_s:.1f}x")

    # Run-many: the minimum-leakage-vector search reuses the cached compile.
    start = time.perf_counter()
    best_vector, best_total = minimum_leakage_vector(
        estimator, circuit, count=256, rng=7, session=session
    )
    search_s = time.perf_counter() - start
    ones = sum(best_vector.values())
    print(
        f"minimum-leakage vector over 256 candidates: {best_total * 1e9:.3f} nA "
        f"({ones}/{len(best_vector)} inputs high) in {search_s:.3f}s"
    )

    info = session.stats()["compile_cache"]
    print(
        f"session compile cache: {info['hits']} hits / {info['misses']} miss "
        f"({info['entries']} compiled circuit(s) resident)"
    )


if __name__ == "__main__":
    main()
