#!/usr/bin/env python3
"""Device-level loading study of an inverter (paper Figs. 5 and 6).

Sweeps the input and output loading currents of an inverter on the 25 nm
device and prints LD_IN / LD_OUT per leakage component for both input values,
followed by the LD_ALL surface over the (input, output) loading plane.

Run with ``python examples/inverter_loading_study.py``.
"""

import numpy as np

from repro import make_technology
from repro.experiments.fig05 import run_fig5_inverter_loading
from repro.experiments.fig06 import run_fig6_ldall_surface


def main() -> None:
    technology = make_technology("bulk-25nm")

    fig5 = run_fig5_inverter_loading(
        technology, loading_currents=tuple(np.linspace(0.0, 3.0e-6, 7))
    )
    print(fig5.to_table())
    print()

    fig6 = run_fig6_ldall_surface(
        technology, grid=tuple(np.linspace(0.0, 3.0e-6, 4))
    )
    print(fig6.to_table())
    print()
    print(
        "Observations: input loading raises the subthreshold component the most, "
        "output loading reduces all components with the junction BTBT reacting "
        "most strongly, and the combined effect is larger with input '0'."
    )


if __name__ == "__main__":
    main()
