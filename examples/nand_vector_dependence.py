#!/usr/bin/env python3
"""Input-vector dependence of the loading effect (paper Fig. 7 + Sec. 6).

Part 1 sweeps the loading on each pin of a NAND2 gate for all four input
vectors (Fig. 7).  Part 2 demonstrates the paper's input-vector-control
observation: the minimum-leakage input vector of a small circuit can change
once the loading effect is taken into account.

Run with ``python examples/nand_vector_dependence.py``.
"""

from repro import make_technology
from repro.circuit.generators import nand_tree
from repro.core import LoadingAwareEstimator, NoLoadingEstimator, minimum_leakage_vector
from repro.experiments.fig07 import run_fig7_nand_vectors
from repro.gates import GateLibrary


def main() -> None:
    technology = make_technology("bulk-25nm")

    fig7 = run_fig7_nand_vectors(technology, loading_currents=(0.0, 1.5e-6, 3.0e-6))
    print(fig7.to_table())
    print()

    # Minimum-leakage vector search with and without loading on a NAND tree.
    library = GateLibrary(technology)
    circuit = nand_tree(3)
    loaded_vector, loaded_total = minimum_leakage_vector(
        LoadingAwareEstimator(library), circuit, exhaustive=True
    )
    unloaded_vector, unloaded_total = minimum_leakage_vector(
        NoLoadingEstimator(library), circuit, exhaustive=True
    )
    print(f"circuit: {circuit.name} ({circuit.gate_count} NAND2 gates)")
    print(f"min-leakage vector without loading: {unloaded_vector}  "
          f"({unloaded_total * 1e9:.1f} nA)")
    print(f"min-leakage vector with loading   : {loaded_vector}  "
          f"({loaded_total * 1e9:.1f} nA)")
    if loaded_vector != unloaded_vector:
        print("-> the loading effect changes the minimum-leakage vector, which "
              "matters for input-vector-control leakage reduction.")
    else:
        print("-> for this circuit both analyses agree on the vector; the totals "
              "still differ by the loading contribution.")


if __name__ == "__main__":
    main()
