#!/usr/bin/env python3
"""Process-variation study of the loading effect (paper Figs. 10 and 11).

Runs the loaded-inverter Monte-Carlo (inverter with 6 input-loading and 6
output-loading inverters under L / Tox / Vth / VDD variation), prints the
with/without-loading distribution summaries and a text histogram of the total
leakage, then sweeps the inter-die threshold sigma to show how the loading
effect inflates the leakage mean and spread.

Run with ``python examples/process_variation_study.py``.
"""

import numpy as np

from repro import make_technology
from repro.experiments.fig10 import run_fig10_variation_histograms
from repro.experiments.fig11 import run_fig11_variation_statistics

SAMPLES_FIG10 = 100
SAMPLES_FIG11 = 50


def _text_histogram(counts: np.ndarray, edges: np.ndarray, label: str) -> str:
    peak = max(int(counts.max()), 1)
    lines = [label]
    for count, low, high in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(30 * count / peak))
        lines.append(f"  {low * 1e9:7.1f}-{high * 1e9:7.1f} nA | {bar} {count}")
    return "\n".join(lines)


def main() -> None:
    technology = make_technology("d25-s")

    fig10 = run_fig10_variation_histograms(technology, samples=SAMPLES_FIG10, rng=0)
    print(fig10.to_table())
    print()
    loaded, unloaded, edges = fig10.histograms("total", bins=12)
    print(_text_histogram(unloaded, edges, "total leakage, no loading:"))
    print()
    print(_text_histogram(loaded, edges, "total leakage, with loading:"))
    print()

    fig11 = run_fig11_variation_statistics(
        technology, sigma_values_v=(0.030, 0.040, 0.050), samples=SAMPLES_FIG11, rng=0
    )
    print(fig11.to_table())


if __name__ == "__main__":
    main()
