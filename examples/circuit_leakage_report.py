#!/usr/bin/env python3
"""Circuit-level leakage report for the paper's benchmark suite (Fig. 12).

Estimates the leakage of the benchmark circuits (synthetic ISCAS-like
stand-ins plus the exact 8x8 multiplier and 8-bit ALU) over a set of random
vectors, reports the loading-induced change per component, and validates the
estimator against the transistor-level reference on the smaller circuits.

The synthetic circuits are generated at a reduced scale by default so the
script finishes in about a minute; raise ``SCALE``/``VECTORS`` to approach
the paper's full configuration.

Run with ``python examples/circuit_leakage_report.py``.
"""

from repro import make_technology
from repro.circuit.generators import paper_benchmark_suite
from repro.experiments.fig12 import run_fig12_circuit_estimation
from repro.gates import GateLibrary

SCALE = 0.10
VECTORS = 10
REFERENCE_VECTORS = 1
REFERENCE_MAX_GATES = 200


def main() -> None:
    technology = make_technology("d25-s")
    library = GateLibrary(technology)
    suite = paper_benchmark_suite(scale=SCALE)

    print(f"technology: {technology.name}, VDD={technology.vdd} V, "
          f"T={technology.temperature_k} K")
    print(f"suite scale: {SCALE}, vectors per circuit: {VECTORS}")
    print()

    result = run_fig12_circuit_estimation(
        suite,
        technology=technology,
        library=library,
        vectors=VECTORS,
        reference_vectors=REFERENCE_VECTORS,
        reference_max_gates=REFERENCE_MAX_GATES,
        rng=0,
    )
    print(result.to_table())


if __name__ == "__main__":
    main()
