#!/usr/bin/env python3
"""End-to-end batched flow: characterize -> cache -> campaign -> Monte Carlo.

The batched DC subsystem vectorizes the layer *below* the campaign engine:
every characterization cell of a gate type — and every Monte-Carlo sample of
the Fig. 10 study — solves as one :class:`~repro.spice.batched.BatchedDcSolver`
call instead of one scalar Gauss–Seidel solve per cell.  This example walks
the whole pipeline:

1. characterize the full gate library with the batched engine (the scalar
   engine remains available as ``CharacterizationOptions(engine="scalar")``);
2. persist it with the fingerprinted cache (a reload under different
   settings is refused instead of silently reusing stale records);
3. run a batched vector campaign on an ISCAS-like circuit on top of the
   batched-characterized library;
4. run the Fig. 10 Monte-Carlo study with all samples solved as one batch.

Run with ``python examples/batched_characterization.py``.
"""

import tempfile
import time
from pathlib import Path

from repro import make_technology
from repro.circuit.generators import iscas_like
from repro.circuit.logic import random_vectors
from repro.core import LoadingAwareEstimator, run_vector_campaign
from repro.gates.cache import load_library, save_library
from repro.gates.characterize import CharacterizationOptions, GateLibrary
from repro.gates.library import GateType
from repro.utils.tables import format_table
from repro.variation.montecarlo import run_loaded_inverter_monte_carlo


def main() -> None:
    technology = make_technology("d25-s")

    # 1. Full-library characterization through the batched solver: every
    #    gate type's (vector x pin x injection) sweep is two batched solves.
    library = GateLibrary(technology, options=CharacterizationOptions())
    start = time.perf_counter()
    records = library.precharacterize(list(GateType))
    characterize_s = time.perf_counter() - start

    # 2. Persist and reload; the cache carries a fingerprint of the full
    #    technology + characterization settings, so a mismatched library
    #    refuses the records instead of silently accepting them.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "library.json"
        save_library(library, path)
        fresh = GateLibrary(technology, options=CharacterizationOptions())
        reloaded = load_library(fresh, path)
        mismatched = GateLibrary(
            technology,
            options=CharacterizationOptions(injection_grid=(-1e-6, 0.0, 1e-6)),
        )
        try:
            load_library(mismatched, path)
            refusal = "NOT refused (bug!)"
        except ValueError as error:
            refusal = f"refused ({error})"

    # 3. A batched campaign on top of the batched-characterized library.
    circuit = iscas_like("s838", scale=0.25)
    estimator = LoadingAwareEstimator(fresh)
    vectors = list(random_vectors(circuit, 100, rng=2005))
    start = time.perf_counter()
    campaign = run_vector_campaign(estimator, circuit, vectors=vectors)
    campaign_s = time.perf_counter() - start

    # 4. The Fig. 10 Monte-Carlo study, all samples as one batch.
    start = time.perf_counter()
    monte_carlo = run_loaded_inverter_monte_carlo(
        technology, samples=200, rng=7, engine="batched"
    )
    monte_carlo_s = time.perf_counter() - start

    rows = [
        ["characterize library (batched)", characterize_s, f"{records} records"],
        ["100-vector campaign", campaign_s, f"{circuit.gate_count} gates"],
        ["200-sample Monte Carlo (batched)", monte_carlo_s, "Fig. 10 study"],
    ]
    print(
        format_table(
            ["stage", "wall [s]", "size"],
            rows,
            title="End-to-end batched pipeline",
        )
    )
    print(f"\ncache round-trip: {reloaded} records; mismatched settings {refusal}")
    print(
        f"campaign mean leakage: {campaign.mean_total() * 1e9:.3f} nA; "
        f"MC loaded-mean total: "
        f"{monte_carlo.values('total', loaded=True).mean() * 1e9:.3f} nA"
    )


if __name__ == "__main__":
    main()
