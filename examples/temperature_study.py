#!/usr/bin/env python3
"""Temperature dependence of leakage and of the loading effect (Figs. 4c, 9).

Part 1 sweeps temperature for a single off transistor and shows the crossover
where the (exponentially growing) subthreshold current overtakes the nearly
temperature-independent gate tunneling.  Part 2 evaluates the overall loading
effect (LD_ALL) of a loaded inverter across temperature: the subthreshold
loading response grows steeply while the total is moderated by the opposite
movement of the gate and junction components.

Run with ``python examples/temperature_study.py``.
"""

import numpy as np

from repro import make_technology
from repro.experiments.fig04 import run_fig4_device_trends
from repro.experiments.fig09 import run_fig9_temperature


def main() -> None:
    technology = make_technology("bulk-25nm")

    fig4 = run_fig4_device_trends(
        technology,
        halo_values_cm3=[technology.nmos.btbt.halo_cm3],
        tox_values_nm=[technology.nmos.tox_nm],
        temperatures_k=list(np.linspace(300.0, 400.0, 11)),
    )
    print(fig4.temperature.to_table())
    crossover = None
    for temperature, sub, gate in zip(
        fig4.temperature.values,
        fig4.temperature.subthreshold,
        fig4.temperature.gate,
    ):
        if sub > gate:
            crossover = temperature
            break
    if crossover is not None:
        print(f"\nsubthreshold overtakes gate tunneling near T = {crossover:.0f} K\n")

    fig9 = run_fig9_temperature(
        technology, temperatures_c=(0.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0)
    )
    print(fig9.to_table())


if __name__ == "__main__":
    main()
