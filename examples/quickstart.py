#!/usr/bin/env python3
"""Quickstart: estimate the leakage of a small circuit with and without loading.

The script builds a small fanout-heavy circuit, characterizes the gate
library for the default 25 nm technology, and compares three estimates of the
total leakage:

* the traditional accumulation of unloaded per-gate leakage,
* the paper's loading-aware estimate (Fig. 13 algorithm), and
* the transistor-level reference solve (the "SPICE" substitute).

Run with ``python examples/quickstart.py``.
"""

from repro import make_technology
from repro.circuit.generators import loaded_inverter_cluster
from repro.core import LoadingAwareEstimator, NoLoadingEstimator, ReferenceSimulator
from repro.gates import GateLibrary
from repro.utils.tables import format_table


def main() -> None:
    technology = make_technology("d25-s")
    library = GateLibrary(technology)

    # An inverter loaded by 6 gates on its input net and 6 on its output net
    # (the structure of the paper's Fig. 10).
    circuit = loaded_inverter_cluster(input_loads=6, output_loads=6)
    vector = {"in": 1}

    baseline = NoLoadingEstimator(library).estimate(circuit, vector)
    loaded = LoadingAwareEstimator(library).estimate(circuit, vector)
    reference = ReferenceSimulator(technology).estimate(circuit, vector)

    rows = []
    for report in (baseline, loaded, reference):
        components = report.components
        rows.append(
            [
                report.method,
                components.subthreshold * 1e9,
                components.gate * 1e9,
                components.btbt * 1e9,
                components.total * 1e9,
            ]
        )
    print(
        format_table(
            ["method", "Isub [nA]", "Igate [nA]", "Ibtbt [nA]", "total [nA]"],
            rows,
            title=f"Total leakage of '{circuit.name}' ({circuit.gate_count} gates)",
        )
    )
    print()
    print("loading-aware vs reference [%]:", loaded.percent_difference(reference))
    print("no-loading    vs reference [%]:", baseline.percent_difference(reference))


if __name__ == "__main__":
    main()
