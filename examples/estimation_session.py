#!/usr/bin/env python3
"""Serving leakage queries from a long-lived EstimationSession.

The batched engine made single campaigns fast; the service layer makes
*repeated* queries cheap.  An :class:`repro.service.EstimationSession`
holds everything that should be paid once — the characterized gate
library (registered by fingerprint, optionally published to an on-disk
store) and the compiled circuit (bounded LRU cache) — and coalesces
concurrent small queries into shared engine passes.  The walk below:

1. warm up: characterize + compile once, publish the library records;
2. serve point queries from several threads — the coalescer merges
   concurrent submissions into single ``run_totals`` passes, bitwise
   identical to evaluating each query alone;
3. read ``session.stats()``: every request, batch, cache hit and store
   load is accounted for.

Run with ``python examples/estimation_session.py``.  The single-campaign
view of the same machinery is ``examples/batched_campaign.py``.
"""

import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro import make_technology
from repro.circuit.generators import iscas_like
from repro.engine.campaign import run_totals
from repro.gates.characterize import CharacterizationOptions, GateLibrary
from repro.service import EstimationSession
from repro.utils.tables import format_table

THREADS = 4
QUERIES_PER_THREAD = 8

#: s838's highest-fanout nets see ~7.6 uA of summed receiver injection;
#: the characterization grid must cover that range or the LUT lookup
#: clamps (and warns).  Grid width is part of the library fingerprint,
#: so the store keys these records separately from default-grid ones.
OPTIONS = CharacterizationOptions(injection_grid=tuple(np.linspace(-8e-6, 8e-6, 9)))


def main() -> None:
    technology = make_technology("d25-s")
    circuit = iscas_like("s838", scale=0.25)
    rng = np.random.default_rng(2005)
    n_pi = len(circuit.primary_inputs)
    n_queries = THREADS * QUERIES_PER_THREAD
    queries = [
        rng.integers(0, 2, size=(n_pi, 1), dtype=np.uint8) for _ in range(n_queries)
    ]

    with tempfile.TemporaryDirectory() as store_dir:
        # Warm-up: characterize the library, compile the circuit, publish
        # the characterization records to the store.  Everything after
        # this is query time.
        session = EstimationSession(store=Path(store_dir))
        library = session.register_library(GateLibrary(technology, options=OPTIONS))
        start = time.perf_counter()
        session.warm_up([circuit], library)
        warmup_s = time.perf_counter() - start

        # Serve: each worker issues sequential point queries; concurrent
        # submissions from different workers coalesce into shared passes.
        results: list[np.ndarray | None] = [None] * n_queries

        def worker(index: int) -> None:
            for q in range(index, n_queries, THREADS):
                results[q] = session.totals(circuit, library, queries[q])

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        serve_s = time.perf_counter() - start

        # Coalescing is transparent: every answer is bitwise identical to
        # evaluating that query alone.
        compiled = session.compiled(circuit, library)
        assert all(
            np.array_equal(got, run_totals(compiled, bits))
            for got, bits in zip(results, queries)
        )

        stats = session.stats()
        coalescer = stats["coalescer"]
        cache = stats["compile_cache"]
        rows = [
            ["warm-up (characterize + compile + publish)", f"{warmup_s:.3f} s"],
            [
                f"{n_queries} queries from {THREADS} threads",
                f"{serve_s:.3f} s ({n_queries / serve_s:.0f} q/s)",
            ],
            ["engine passes (coalesced batches)", coalescer["batches"]],
            ["requests sharing a batch", coalescer["coalesced_requests"]],
            ["compile-cache hits / misses", f"{cache['hits']} / {cache['misses']}"],
            ["library store loads / publishes", (
                f"{stats['store']['loads']} / {stats['store']['publishes']}"
            )],
        ]
        print(
            format_table(
                ["stage", "result"],
                rows,
                title=f"serving '{circuit.name}' ({circuit.gate_count} gates)",
            )
        )

        mean_na = float(np.mean([r.sum() for r in results])) * 1e9
        print(f"\nmean total leakage over {n_queries} queries: {mean_na:.3f} nA")

        # A second session pointed at the same store starts warm: the
        # characterization records load from disk instead of re-solving.
        start = time.perf_counter()
        other = EstimationSession(store=Path(store_dir))
        other.library(technology, options=OPTIONS)
        print(
            f"fresh session loads the published library in "
            f"{time.perf_counter() - start:.3f} s "
            f"(store stats: {other.stats()['store']})"
        )


if __name__ == "__main__":
    main()
