#!/usr/bin/env python3
"""Validate the LUT estimator against the batched transistor-level reference.

Fig. 12(a) compares the loading-aware estimate with a full "SPICE" solve of
the circuit.  The scalar reference relaxes one vector at a time; the batched
reference path flattens the circuit *once* and solves a whole vector set as
same-topology batches, which is what makes many-vector validation campaigns
interactive:

* ``run_reference_campaign`` is the reference twin of
  ``run_vector_campaign`` (``engine="scalar"`` keeps the per-vector oracle);
* chunking only bounds memory — results are bitwise independent of how the
  vector set is split into batches;
* ``ParallelReferenceCampaign`` fans chunks across worker processes and
  returns identical reports.

Run with ``python examples/reference_validation.py``.
"""

import time

from repro import make_technology
from repro.circuit.generators import iscas_like
from repro.circuit.logic import random_vectors
from repro.core import (
    LoadingAwareEstimator,
    run_reference_campaign,
    run_vector_campaign,
)
from repro.gates.characterize import GateLibrary
from repro.utils.tables import format_table


def main() -> None:
    technology = make_technology("d25-s")
    library = GateLibrary(technology)
    estimator = LoadingAwareEstimator(library)
    circuit = iscas_like("s838", scale=0.12)
    vectors = list(random_vectors(circuit, 16, rng=2005))

    print(f"{circuit.name}: {circuit.gate_count} gates, {len(vectors)} vectors")

    start = time.perf_counter()
    reference = run_reference_campaign(circuit, technology, vectors=vectors)
    reference_seconds = time.perf_counter() - start
    print(f"batched reference campaign: {reference_seconds:.2f}s")

    estimate = run_vector_campaign(estimator, circuit, vectors=vectors)

    rows = []
    for component in ("subthreshold", "gate", "btbt", "total"):
        ref_mean = reference.mean_total(component)
        est_mean = estimate.mean_total(component)
        rows.append(
            [
                component,
                ref_mean * 1e9,
                est_mean * 1e9,
                100.0 * (est_mean - ref_mean) / ref_mean,
            ]
        )
    print()
    print(
        format_table(
            ["component", "reference [nA]", "estimated [nA]", "error [%]"],
            rows,
            title="Fig. 12(a): estimator vs transistor-level reference",
        )
    )

    # The scalar oracle produces the same numbers, one relaxation at a time;
    # two vectors are enough to see the per-vector cost difference.
    start = time.perf_counter()
    run_reference_campaign(
        circuit, technology, vectors=vectors[:2], engine="scalar"
    )
    scalar_seconds = (time.perf_counter() - start) / 2 * len(vectors)
    print(
        f"\nscalar-oracle estimate for {len(vectors)} vectors: "
        f"~{scalar_seconds:.1f}s (batched ran {scalar_seconds / reference_seconds:.1f}x faster)"
    )


if __name__ == "__main__":
    main()
