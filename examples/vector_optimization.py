#!/usr/bin/env python3
"""Minimum-leakage input-vector search with the `repro.optimize` subsystem.

Input-vector control (IVC) puts a circuit into its lowest-leakage state
during standby; the paper (Sec. 6) notes the winning vector can change once
loading is considered.  Exhaustive search dies at ~20 inputs, so this
example walks the searchable path end to end:

1. on a small tree the greedy and genetic strategies are checked against
   the exhaustive oracle (they must find the true minimum);
2. on an ISCAS-sized circuit (far beyond exhaustive reach) both strategies
   are compared against a best-of-random-N baseline at an equal evaluation
   budget — every candidate any path scores is one row of a batched engine
   pass, so thousands of vectors cost fractions of a second;
3. the same search is repeated with ``islands=4``: the result is bitwise
   identical to the serial run (SeedSequence-spawned streams + the
   engine's column-independent totals), parallelism is purely throughput.

Run with ``python examples/vector_optimization.py``.
"""

import time

import numpy as np

from repro import make_technology
from repro.circuit.generators import iscas_like, nand_tree
from repro.core import LoadingAwareEstimator, minimum_leakage_vector
from repro.engine import compile_circuit
from repro.gates.characterize import GateLibrary
from repro.optimize import (
    GeneticOptions,
    GreedyOptions,
    LeakageObjective,
    genetic_minimize,
    greedy_minimize,
    minimize_leakage,
)


def main() -> None:
    technology = make_technology("d25-s")
    library = GateLibrary(technology)
    estimator = LoadingAwareEstimator(library)

    # 1. oracle parity on a small circuit ---------------------------------- #
    small = nand_tree(3)
    oracle = minimize_leakage(estimator, small, strategy="exhaustive")
    for strategy in ("greedy", "genetic"):
        result = minimize_leakage(estimator, small, strategy=strategy, rng=2005)
        status = "MATCHES" if result.best_total == oracle.best_total else "MISSES"
        print(
            f"{small.name}: {strategy} {status} the exhaustive minimum "
            f"({result.best_total * 1e9:.4f} nA in {result.evaluations} "
            f"evaluations vs {oracle.evaluations} exhaustive)"
        )

    # 2. search at scale vs. best-of-random at equal budget ---------------- #
    circuit = iscas_like("s838", scale=0.5)
    compiled = compile_circuit(circuit, library)
    start = time.perf_counter()
    greedy = greedy_minimize(
        compiled, options=GreedyOptions(restarts=6), rng=2005
    )
    genetic = genetic_minimize(
        compiled,
        options=GeneticOptions(population=32, generations=30),
        rng=2005,
    )
    search_s = time.perf_counter() - start

    budget = max(greedy.evaluations, genetic.evaluations)
    objective = LeakageObjective(compiled)
    rng = np.random.default_rng(2005)
    random_best = float(
        objective.totals(
            rng.integers(0, 2, size=(budget, objective.n_inputs), dtype=np.uint8)
        ).min()
    )
    print()
    print(greedy.to_table())
    print()
    print(genetic.to_table())
    print()
    print(
        f"best of {budget} random vectors: {random_best * 1e9:.4f} nA — "
        f"greedy is {100 * (random_best - greedy.best_total) / random_best:.2f}% "
        f"lower, genetic "
        f"{100 * (random_best - genetic.best_total) / random_best:.2f}% lower "
        f"(both searches took {search_s:.2f}s)"
    )

    # 3. island parallelism is bitwise-free -------------------------------- #
    split = greedy_minimize(
        compiled, options=GreedyOptions(restarts=6), rng=2005, islands=4
    )
    identical = split.best_total == greedy.best_total and np.array_equal(
        split.best_bits, greedy.best_bits
    )
    print(f"islands=4 reproduces the serial search bitwise: {identical}")

    # The one-liner most callers want: the dispatch on minimum_leakage_vector.
    vector, total = minimum_leakage_vector(
        estimator, circuit, strategy="greedy", rng=2005
    )
    ones = sum(vector.values())
    print(
        f"minimum_leakage_vector(strategy='greedy'): {total * 1e9:.4f} nA "
        f"({ones}/{len(vector)} inputs high)"
    )


if __name__ == "__main__":
    main()
