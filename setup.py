"""Legacy setuptools entry point.

The offline environments this repository targets may lack the ``wheel``
package that PEP 517 editable installs require; keeping a ``setup.py`` lets
``pip install -e . --no-use-pep517`` (or ``python setup.py develop``) work
there.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # Ship the PEP 561 marker so downstream type checkers see our annotations.
    package_data={"repro": ["py.typed"]},
    include_package_data=True,
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
