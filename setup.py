"""Legacy setuptools entry point.

The offline environments this repository targets may lack the ``wheel``
package that PEP 517 editable installs require; keeping a ``setup.py`` lets
``pip install -e . --no-use-pep517`` (or ``python setup.py develop``) work
there.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
