"""Tests for the resilience layer: supervised pools, checkpoints, faults.

The central claim under test is **bitwise recovery**: a run that loses a
worker, retries a failing chunk, times out a stalled chunk, or resumes
from a checkpoint must finish with exactly the bytes of a run that never
saw a fault — because retried/resumed chunks re-run from their original
``SeedSequence.spawn`` streams and the engines are batch-composition
invariant.  Every fault here is injected deterministically
(:mod:`repro.resilience.faults`), so a failing test replays exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.generators import nand_tree
from repro.circuit.logic import random_vectors
from repro.core.reference import run_reference_campaign
from repro.engine.parallel import ParallelMonteCarlo, ParallelReferenceCampaign
from repro.optimize.search import GeneticOptions, genetic_minimize
from repro.resilience import (
    Checkpoint,
    CheckpointCorruptWarning,
    ChunkRetryError,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    ResilienceOptions,
    ResilientExecutor,
    RetryPolicy,
    StaleCheckpointError,
    checkpoint_fingerprint,
    corrupt_file,
)
from repro.variation.montecarlo import run_loaded_inverter_monte_carlo

#: Fast retry policy for tests: real backoff shape, negligible wall clock.
FAST_RETRY = RetryPolicy(backoff_base_s=0.01, backoff_max_s=0.05)


def _mc_samples_bitwise_equal(result_a, result_b) -> bool:
    if result_a.sample_count != result_b.sample_count:
        return False
    for a, b in zip(result_a.samples, result_b.samples):
        if a.with_loading.as_dict() != b.with_loading.as_dict():
            return False
        if a.without_loading.as_dict() != b.without_loading.as_dict():
            return False
    return True


def _reports_bitwise_equal(report_a, report_b) -> bool:
    if report_a.input_assignment != report_b.input_assignment:
        return False
    for name, entry_a in report_a.per_gate.items():
        entry_b = report_b.per_gate[name]
        if entry_a.breakdown.as_dict() != entry_b.breakdown.as_dict():
            return False
    return True


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.5,
            backoff_jitter=0.0,
        )
        assert policy.backoff_s(1, 0.0) == pytest.approx(0.1)
        assert policy.backoff_s(2, 0.0) == pytest.approx(0.2)
        assert policy.backoff_s(3, 0.0) == pytest.approx(0.4)
        assert policy.backoff_s(4, 0.0) == pytest.approx(0.5)  # capped
        assert policy.backoff_s(9, 0.0) == pytest.approx(0.5)

    def test_jitter_scales_the_backoff(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_jitter=0.5)
        assert policy.backoff_s(1, 1.0) == pytest.approx(0.15)
        assert policy.backoff_s(1, 0.0) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="backoff_jitter"):
            RetryPolicy(backoff_jitter=1.5)
        with pytest.raises(ValueError, match="chunk_deadline_s"):
            RetryPolicy(chunk_deadline_s=0.0)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(backoff_base_s=-1.0)


class TestFaultInjector:
    def test_explicit_chunks_fire_only_there(self):
        injector = FaultInjector(
            seed=3, specs=(FaultSpec(kind="raise", chunks=frozenset({1, 4})),)
        )
        fired = [i for i in range(6) if injector.decide("raise", i, 0)]
        assert fired == [1, 4]
        assert not injector.decide("kill-worker", 1, 0)

    def test_rate_decisions_are_deterministic_and_seed_keyed(self):
        injector = FaultInjector(
            seed=11, specs=(FaultSpec(kind="raise", rate=0.5),)
        )
        decisions = [injector.decide("raise", i, 0) for i in range(32)]
        # Pure oracle: replaying yields exactly the same decisions.
        assert decisions == [injector.decide("raise", i, 0) for i in range(32)]
        assert any(decisions) and not all(decisions)
        other_seed = FaultInjector(seed=12, specs=(FaultSpec(kind="raise", rate=0.5),))
        assert decisions != [other_seed.decide("raise", i, 0) for i in range(32)]

    def test_max_attempt_gates_injection(self):
        injector = FaultInjector(
            seed=0, specs=(FaultSpec(kind="raise", chunks=frozenset({0})),)
        )
        assert injector.decide("raise", 0, 0)
        assert not injector.decide("raise", 0, 1)  # retries run clean

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="explode")
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(kind="raise", rate=1.5)
        with pytest.raises(ValueError, match="max_attempt"):
            FaultSpec(kind="raise", max_attempt=0)
        with pytest.raises(ValueError, match="kind"):
            FaultInjector().decide("explode", 0, 0)

    def test_corrupt_file_modes(self, tmp_path):
        target = tmp_path / "payload.bin"
        payload = bytes(range(64))
        target.write_bytes(payload)
        corrupt_file(target, "truncate")
        assert target.read_bytes() == payload[:32]
        target.write_bytes(payload)
        corrupt_file(target, "garble")
        garbled = target.read_bytes()
        assert len(garbled) == len(payload) and garbled != payload
        with pytest.raises(ValueError, match="corruption mode"):
            corrupt_file(target, "shred")


class TestResilientExecutor:
    def test_clean_map_preserves_order(self):
        results, ledger = ResilientExecutor(2).map(abs, [-1, -2, -3, -4, -5])
        assert results == [1, 2, 3, 4, 5]
        assert ledger.as_dict() == {
            "chunks": 5,
            "attempts": 5,
            "retries": 0,
            "retried_chunks": [],
            "deadline_expirations": 0,
            "pool_restarts": 0,
            "gave_up": 0,
            "resumed_chunks": 0,
        }

    def test_injected_raise_is_retried_and_ledgered(self):
        injector = FaultInjector(
            seed=7, specs=(FaultSpec(kind="raise", chunks=frozenset({1, 3})),)
        )
        executor = ResilientExecutor(2, policy=FAST_RETRY, injector=injector)
        results, ledger = executor.map(abs, [-1, -2, -3, -4, -5])
        assert results == [1, 2, 3, 4, 5]
        assert sorted(ledger.retried_chunks) == [1, 3]
        assert ledger.retries == 2
        assert ledger.attempts == ledger.chunks + ledger.retries
        assert ledger.gave_up == 0

    def test_worker_death_restarts_pool_and_recovers(self):
        injector = FaultInjector(
            seed=7, specs=(FaultSpec(kind="kill-worker", chunks=frozenset({2})),)
        )
        executor = ResilientExecutor(2, policy=FAST_RETRY, injector=injector)
        results, ledger = executor.map(abs, [-1, -2, -3, -4, -5])
        assert results == [1, 2, 3, 4, 5]
        assert ledger.pool_restarts >= 1
        assert 2 in ledger.retried_chunks
        assert ledger.gave_up == 0

    def test_stalled_chunk_trips_the_deadline_watchdog(self):
        injector = FaultInjector(
            seed=7,
            specs=(FaultSpec(kind="stall", chunks=frozenset({1}), stall_s=5.0),),
        )
        policy = RetryPolicy(backoff_base_s=0.01, chunk_deadline_s=0.25)
        executor = ResilientExecutor(2, policy=policy, injector=injector)
        results, ledger = executor.map(abs, [-1, -2, -3, -4])
        assert results == [1, 2, 3, 4]
        assert ledger.deadline_expirations >= 1
        assert 1 in ledger.retried_chunks
        assert ledger.gave_up == 0

    def test_permanent_failure_gives_up_loudly(self):
        injector = FaultInjector(
            seed=7,
            specs=(
                FaultSpec(kind="raise", chunks=frozenset({0}), max_attempt=99),
            ),
        )
        executor = ResilientExecutor(
            2, policy=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
            injector=injector,
        )
        with pytest.raises(ChunkRetryError) as excinfo:
            executor.map(abs, [-1, -2])
        assert excinfo.value.chunk_index == 0
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.__cause__, InjectedFault)

    def test_completed_chunks_are_skipped(self):
        results, ledger = ResilientExecutor(2).map(
            abs, [-1, -2, -3], completed={0: 1, 2: 3}
        )
        assert results == [1, 2, 3]
        assert ledger.resumed_chunks == 2
        assert ledger.attempts == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="max_workers"):
            ResilientExecutor(0)


class TestCheckpoint:
    def test_roundtrip_is_bitwise(self, tmp_path):
        path = tmp_path / "run.ckpt"
        fingerprint = checkpoint_fingerprint({"task": "demo"})
        checkpoint = Checkpoint(path, fingerprint)
        payload = np.array([1.234567890123456e-9, 5.5e-12])
        checkpoint.record(0, payload)
        loaded = Checkpoint(path, fingerprint).load()
        assert loaded.keys() == {0}
        assert loaded[0].tobytes() == payload.tobytes()

    def test_interval_batches_publishes(self, tmp_path):
        checkpoint = Checkpoint(tmp_path / "run.ckpt", "fp", interval=3)
        checkpoint.record(0, "a")
        checkpoint.record(1, "b")
        assert checkpoint.publishes == 0
        checkpoint.record(2, "c")
        assert checkpoint.publishes == 1
        checkpoint.flush()  # nothing new → no extra write
        assert checkpoint.publishes == 1
        checkpoint.record(3, "d")
        checkpoint.flush()
        assert checkpoint.publishes == 2

    def test_stale_fingerprint_is_refused(self, tmp_path):
        path = tmp_path / "run.ckpt"
        Checkpoint(path, checkpoint_fingerprint({"samples": 8})).record(0, "a")
        stale = Checkpoint(path, checkpoint_fingerprint({"samples": 16}))
        with pytest.raises(StaleCheckpointError, match="different work"):
            stale.load()

    @pytest.mark.parametrize("mode", ["truncate", "garble"])
    def test_corrupt_file_degrades_to_fresh_start(self, tmp_path, mode):
        path = tmp_path / "run.ckpt"
        checkpoint = Checkpoint(path, "fp")
        checkpoint.record(0, "a")
        corrupt_file(path, mode)
        fresh = Checkpoint(path, "fp")
        with pytest.warns(CheckpointCorruptWarning, match="unreadable"):
            assert fresh.load() == {}
        assert fresh.corrupt_loads == 1

    def test_missing_file_is_a_fresh_start(self, tmp_path):
        assert Checkpoint(tmp_path / "nope.ckpt", "fp").load() == {}

    def test_complete_removes_the_file(self, tmp_path):
        path = tmp_path / "run.ckpt"
        checkpoint = Checkpoint(path, "fp")
        checkpoint.record(0, "a")
        assert path.exists()
        checkpoint.complete()
        assert not path.exists()

    def test_fingerprint_is_order_invariant_and_content_sensitive(self):
        a = checkpoint_fingerprint({"x": 1, "y": 2})
        b = checkpoint_fingerprint({"y": 2, "x": 1})
        c = checkpoint_fingerprint({"x": 1, "y": 3})
        assert a == b
        assert a != c

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="interval"):
            Checkpoint(tmp_path / "x", "fp", interval=0)


class TestResilienceOptions:
    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            ResilienceOptions(resume=True)
        with pytest.raises(ValueError, match="checkpoint_interval"):
            ResilienceOptions(checkpoint_interval=0)

    def test_factories(self, tmp_path):
        options = ResilienceOptions(
            policy=FAST_RETRY, checkpoint_path=tmp_path / "c.ckpt"
        )
        executor = options.executor(2)
        assert executor.policy is FAST_RETRY
        checkpoint = options.checkpoint("fp")
        assert checkpoint is not None and checkpoint.fingerprint == "fp"
        assert ResilienceOptions().checkpoint("fp") is None


class TestMonteCarloBitwiseRecovery:
    SAMPLES = 6
    SEED = 42

    @pytest.fixture(scope="class")
    def serial_mc(self, bulk25):
        return run_loaded_inverter_monte_carlo(
            bulk25, samples=self.SAMPLES, rng=self.SEED
        )

    def _faulted_run(self, bulk25, specs, policy=FAST_RETRY):
        driver = ParallelMonteCarlo(
            bulk25,
            max_workers=2,
            resilience=ResilienceOptions(
                policy=policy, injector=FaultInjector(seed=5, specs=specs)
            ),
        )
        return driver.run(self.SAMPLES, rng=self.SEED)

    def test_kill_worker_mid_monte_carlo_recovers_bitwise(self, bulk25, serial_mc):
        result = self._faulted_run(
            bulk25, (FaultSpec(kind="kill-worker", chunks=frozenset({0})),)
        )
        assert _mc_samples_bitwise_equal(result, serial_mc)
        ledger = result.metadata["resilience"]
        assert 0 in ledger["retried_chunks"]
        assert ledger["pool_restarts"] >= 1
        assert ledger["gave_up"] == 0

    def test_injected_error_recovers_bitwise(self, bulk25, serial_mc):
        result = self._faulted_run(
            bulk25, (FaultSpec(kind="raise", chunks=frozenset({1})),)
        )
        assert _mc_samples_bitwise_equal(result, serial_mc)
        assert result.metadata["resilience"]["retried_chunks"] == [1]

    def test_stall_past_deadline_recovers_bitwise(self, bulk25, serial_mc):
        result = self._faulted_run(
            bulk25,
            (FaultSpec(kind="stall", chunks=frozenset({0}), stall_s=10.0),),
            policy=RetryPolicy(backoff_base_s=0.01, chunk_deadline_s=0.5),
        )
        assert _mc_samples_bitwise_equal(result, serial_mc)
        ledger = result.metadata["resilience"]
        assert ledger["deadline_expirations"] >= 1
        assert ledger["gave_up"] == 0

    def test_checkpoint_resume_is_bitwise_and_skips_completed(
        self, bulk25, serial_mc, tmp_path
    ):
        path = tmp_path / "mc.ckpt"
        options = ResilienceOptions(
            policy=FAST_RETRY, checkpoint_path=path, keep_checkpoint=True
        )
        first = ParallelMonteCarlo(bulk25, max_workers=2, resilience=options).run(
            self.SAMPLES, rng=self.SEED
        )
        assert _mc_samples_bitwise_equal(first, serial_mc)
        assert path.exists()
        assert first.metadata["resilience"]["checkpoint_publishes"] >= 1

        resumed_options = ResilienceOptions(
            policy=FAST_RETRY, checkpoint_path=path, resume=True
        )
        resumed = ParallelMonteCarlo(
            bulk25, max_workers=2, resilience=resumed_options
        ).run(self.SAMPLES, rng=self.SEED)
        assert _mc_samples_bitwise_equal(resumed, serial_mc)
        ledger = resumed.metadata["resilience"]
        assert ledger["resumed_chunks"] == ledger["chunks"]
        assert ledger["attempts"] == 0  # nothing re-ran
        assert not path.exists()  # completed runs clean their checkpoint up

    def test_stale_checkpoint_is_refused_not_resumed(self, bulk25, tmp_path):
        path = tmp_path / "mc.ckpt"
        options = ResilienceOptions(checkpoint_path=path, keep_checkpoint=True)
        ParallelMonteCarlo(bulk25, max_workers=2, resilience=options).run(
            self.SAMPLES, rng=self.SEED
        )
        resumed_options = ResilienceOptions(checkpoint_path=path, resume=True)
        with pytest.raises(StaleCheckpointError):
            # Different sample count → different work definition.
            ParallelMonteCarlo(
                bulk25, max_workers=2, resilience=resumed_options
            ).run(self.SAMPLES + 2, rng=self.SEED)

    def test_checkpoint_requires_reproducible_rng(self, bulk25, tmp_path):
        options = ResilienceOptions(checkpoint_path=tmp_path / "mc.ckpt")
        driver = ParallelMonteCarlo(bulk25, max_workers=2, resilience=options)
        with pytest.raises(ValueError, match="reproducible rng"):
            driver.run(self.SAMPLES, rng=None)


class TestReferenceCampaignBitwiseRecovery:
    @pytest.fixture(scope="class")
    def campaign_inputs(self, d25s):
        circuit = nand_tree(2)
        vectors = list(random_vectors(circuit, 6, rng=3))
        serial = run_reference_campaign(circuit, d25s, vectors=vectors)
        return circuit, vectors, serial

    def test_kill_worker_mid_campaign_recovers_bitwise(self, d25s, campaign_inputs):
        circuit, vectors, serial = campaign_inputs
        driver = ParallelReferenceCampaign(
            d25s,
            max_workers=2,
            chunk_size=2,
            resilience=ResilienceOptions(
                policy=FAST_RETRY,
                injector=FaultInjector(
                    seed=9,
                    specs=(FaultSpec(kind="kill-worker", chunks=frozenset({1})),),
                ),
            ),
        )
        result = driver.run(circuit, vectors)
        for a, b in zip(result.reports, serial.reports):
            assert _reports_bitwise_equal(a, b)
        ledger = result.metadata["resilience"]
        assert 1 in ledger["retried_chunks"]
        assert ledger["gave_up"] == 0

    def test_corrupt_checkpoint_degrades_and_still_matches(
        self, d25s, campaign_inputs, tmp_path
    ):
        circuit, vectors, serial = campaign_inputs
        path = tmp_path / "campaign.ckpt"

        def run(options):
            return ParallelReferenceCampaign(
                d25s, max_workers=2, chunk_size=2, resilience=options
            ).run(circuit, vectors)

        run(ResilienceOptions(checkpoint_path=path, keep_checkpoint=True))
        corrupt_file(path, "garble")
        with pytest.warns(CheckpointCorruptWarning):
            result = run(ResilienceOptions(checkpoint_path=path, resume=True))
        # Progress was lost, correctness was not: full fresh run, bitwise.
        assert result.metadata["resilience"]["resumed_chunks"] == 0
        for a, b in zip(result.reports, serial.reports):
            assert _reports_bitwise_equal(a, b)


class TestSearchBitwiseRecovery:
    def test_genetic_islands_recover_bitwise_under_faults(
        self, d25s, library_d25s
    ):
        from repro.service import default_session

        circuit = nand_tree(2)
        compiled = default_session().compiled(circuit, library_d25s)
        options = GeneticOptions(population=8, generations=4, elite=1)
        serial = genetic_minimize(
            compiled, options=options, rng=17, islands=2, max_workers=1
        )
        faulted = genetic_minimize(
            compiled,
            options=options,
            rng=17,
            islands=2,
            max_workers=2,
            resilience=ResilienceOptions(
                policy=FAST_RETRY,
                injector=FaultInjector(
                    seed=4, specs=(FaultSpec(kind="raise", chunks=frozenset({0})),)
                ),
            ),
        )
        assert faulted.best_total == serial.best_total
        assert np.array_equal(faulted.best_bits, serial.best_bits)
        assert faulted.evaluations == serial.evaluations
        ledger = faulted.metadata["resilience"]
        assert ledger["retried_chunks"] == [0]
        assert ledger["gave_up"] == 0
