"""Tests for the LD_IN / LD_OUT / LD_ALL loading-effect metrics.

These tests pin down the *qualitative claims* of the paper's Sections 4-5:
the directions, the component orderings, and the dependence on the dominant
leakage mechanism.  They run against the exact characterization-cell solves
(no LUT approximations).
"""

import pytest

from repro.core.loading import LoadingAnalyzer, LoadingEffect
from repro.device.presets import make_technology
from repro.gates.library import GateType

LOAD = 2.5e-6  # a representative loading-current magnitude (A)


@pytest.fixture(scope="module")
def analyzer():
    return LoadingAnalyzer(make_technology("bulk-25nm"))


class TestLoadingEffectContainer:
    def test_component_accessor(self):
        effect = LoadingEffect(1.0, -2.0, 3.0, 0.5)
        assert effect.component("gate") == -2.0
        assert effect.as_dict()["total"] == 0.5
        with pytest.raises(KeyError):
            effect.component("bogus")


class TestPercentSemantics:
    """Defined semantics of the percent computation over zero nominals."""

    @staticmethod
    def _breakdown(**overrides):
        from repro.spice.analysis import ComponentBreakdown

        values = {"subthreshold": 2e-9, "gate": 1e-9, "btbt": 5e-10}
        values.update(overrides)
        return ComponentBreakdown(**values)

    def test_zero_over_zero_reports_zero_percent(self):
        """A component disabled in the technology (0 A nominal, 0 A loaded)
        has no loading effect: exactly 0 %, not inf/NaN."""
        from repro.core.loading import _percent

        effect = _percent(
            self._breakdown(btbt=0.0), self._breakdown(btbt=0.0)
        )
        assert effect.btbt == 0.0
        assert effect.subthreshold == pytest.approx(0.0)

    def test_finite_over_zero_raises_with_component_name(self):
        """A nonzero loaded value over a zero nominal is undefined and must
        fail loudly, naming the component, instead of silently propagating
        a fake 0 % into the Fig. 5-7 tables."""
        from repro.core.loading import _percent

        with pytest.raises(ValueError, match="'btbt'"):
            _percent(self._breakdown(btbt=1e-12), self._breakdown(btbt=0.0))


class TestSignedInjection:
    def test_sign_follows_pin_level(self, analyzer):
        # Input pin at '0' -> loading injects current (+); at '1' -> draws (-).
        assert analyzer.signed_injection(GateType.INV, (0,), "a", 1e-6) > 0
        assert analyzer.signed_injection(GateType.INV, (1,), "a", 1e-6) < 0
        # Output of INV with input '0' is '1' -> loading draws current.
        assert analyzer.signed_injection(GateType.INV, (0,), "y", 1e-6) < 0
        assert analyzer.signed_injection(GateType.INV, (1,), "y", 1e-6) > 0

    def test_negative_magnitude_rejected(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.signed_injection(GateType.INV, (0,), "a", -1e-6)

    def test_unknown_pin_rejected(self, analyzer):
        with pytest.raises(KeyError):
            analyzer.signed_injection(GateType.INV, (0,), "z", 1e-6)


class TestInverterLoadingDirections:
    """Paper Sec. 4 / Fig. 5 qualitative behaviour."""

    def test_input_loading_raises_subthreshold_lowers_gate(self, analyzer):
        effect = analyzer.input_loading_effect(GateType.INV, (0,), LOAD)
        assert effect.subthreshold > 0
        assert effect.gate < 0
        assert abs(effect.btbt) < 0.5  # junction barely reacts to input loading
        assert effect.total > 0

    def test_output_loading_reduces_every_component(self, analyzer):
        effect = analyzer.output_loading_effect(GateType.INV, (0,), LOAD)
        assert effect.subthreshold < 0
        assert effect.gate < 0
        assert effect.btbt < 0
        assert effect.total < 0

    def test_subthreshold_most_sensitive_to_input_loading(self, analyzer):
        effect = analyzer.input_loading_effect(GateType.INV, (0,), LOAD)
        assert effect.subthreshold > abs(effect.gate)
        assert effect.subthreshold > abs(effect.btbt)

    def test_btbt_most_sensitive_to_output_loading(self, analyzer):
        effect = analyzer.output_loading_effect(GateType.INV, (0,), LOAD)
        assert abs(effect.btbt) >= abs(effect.gate)
        assert abs(effect.btbt) >= abs(effect.subthreshold)

    def test_loading_effect_grows_with_current(self, analyzer):
        small = analyzer.input_loading_effect(GateType.INV, (0,), 0.5e-6)
        large = analyzer.input_loading_effect(GateType.INV, (0,), 3.0e-6)
        assert large.subthreshold > small.subthreshold > 0

    def test_zero_loading_is_zero_effect(self, analyzer):
        effect = analyzer.overall_loading_effect(GateType.INV, (0,), 0.0, 0.0)
        assert effect.total == pytest.approx(0.0, abs=1e-6)

    def test_ld_all_combines_both(self, analyzer):
        combined = analyzer.overall_loading_effect(GateType.INV, (0,), LOAD, LOAD)
        input_only = analyzer.input_loading_effect(GateType.INV, (0,), LOAD)
        output_only = analyzer.output_loading_effect(GateType.INV, (0,), LOAD)
        # The combined effect lies between the two single-sided ones.
        assert output_only.total < combined.total < input_only.total

    def test_nominal_cache_reused(self, analyzer):
        first = analyzer.nominal(GateType.INV, (0,))
        second = analyzer.nominal(GateType.INV, (0,))
        assert first is second


@pytest.mark.slow
class TestNandVectorDependence:
    """Paper Fig. 7: the loading effect depends on the NAND input vector."""

    def test_input_loading_strongest_with_an_off_nmos(self, analyzer):
        effect_01 = analyzer.input_loading_effect(GateType.NAND2, (0, 1), LOAD, "a")
        effect_11 = analyzer.input_loading_effect(GateType.NAND2, (1, 1), LOAD, "a")
        assert effect_01.total > effect_11.total

    def test_stacking_mutes_00_relative_to_01(self, analyzer):
        effect_00 = analyzer.input_loading_effect(GateType.NAND2, (0, 0), LOAD, "a")
        effect_01 = analyzer.input_loading_effect(GateType.NAND2, (0, 1), LOAD, "a")
        assert effect_01.subthreshold > effect_00.subthreshold

    def test_output_loading_strongest_with_output_low(self, analyzer):
        # Output '0' happens only for vector '11'.
        effect_11 = analyzer.output_loading_effect(GateType.NAND2, (1, 1), LOAD)
        effect_01 = analyzer.output_loading_effect(GateType.NAND2, (0, 1), LOAD)
        assert abs(effect_11.total) > abs(effect_01.total)


@pytest.mark.slow
class TestDeviceVariantDependence:
    """Paper Fig. 8: which component dominates decides the loading response."""

    def test_input_loading_largest_for_subthreshold_dominated_device(self):
        sub = LoadingAnalyzer(make_technology("d25-s"))
        gate = LoadingAnalyzer(make_technology("d25-g"))
        effect_sub = sub.input_loading_effect(GateType.INV, (0,), LOAD)
        effect_gate = gate.input_loading_effect(GateType.INV, (0,), LOAD)
        assert effect_sub.total > effect_gate.total

    def test_output_loading_largest_for_junction_dominated_device(self):
        junction = LoadingAnalyzer(make_technology("d25-jn"))
        gate = LoadingAnalyzer(make_technology("d25-g"))
        effect_jn = junction.output_loading_effect(GateType.INV, (0,), LOAD)
        effect_gate = gate.output_loading_effect(GateType.INV, (0,), LOAD)
        assert abs(effect_jn.total) > abs(effect_gate.total)

    def test_temperature_amplifies_subthreshold_loading(self):
        cold = LoadingAnalyzer(make_technology("bulk-25nm"), temperature_k=300.0)
        hot = LoadingAnalyzer(make_technology("bulk-25nm"), temperature_k=360.0)
        effect_cold = cold.overall_loading_effect(GateType.INV, (0,), LOAD, LOAD)
        effect_hot = hot.overall_loading_effect(GateType.INV, (0,), LOAD, LOAD)
        assert effect_hot.subthreshold > effect_cold.subthreshold
