"""Tests for the gate-level circuit container."""

import pytest

from repro.circuit.netlist import Circuit
from repro.gates.library import GateType


@pytest.fixture
def small_circuit():
    circuit = Circuit(name="small")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add_gate("g1", GateType.NAND2, ["a", "b"], "n1")
    circuit.add_gate("g2", GateType.INV, ["n1"], "n2")
    circuit.add_output("n2")
    return circuit


class TestConstruction:
    def test_basic_structure(self, small_circuit):
        assert small_circuit.gate_count == 2
        assert small_circuit.primary_inputs == ["a", "b"]
        assert small_circuit.primary_outputs == ["n2"]
        assert set(small_circuit.nets()) == {"a", "b", "n1", "n2"}

    def test_duplicate_gate_name_rejected(self, small_circuit):
        with pytest.raises(ValueError, match="duplicate"):
            small_circuit.add_gate("g1", GateType.INV, ["a"], "x")

    def test_multiple_drivers_rejected(self, small_circuit):
        with pytest.raises(ValueError, match="already driven"):
            small_circuit.add_gate("g3", GateType.INV, ["a"], "n1")

    def test_driving_primary_input_rejected(self, small_circuit):
        with pytest.raises(ValueError, match="primary input"):
            small_circuit.add_gate("g3", GateType.INV, ["n1"], "a")

    def test_arity_mismatch_rejected(self, small_circuit):
        with pytest.raises(ValueError, match="expects 2 inputs"):
            small_circuit.add_gate("g3", GateType.NAND2, ["a"], "x")

    def test_input_on_driven_net_rejected(self, small_circuit):
        with pytest.raises(ValueError, match="already driven"):
            small_circuit.add_input("n1")

    def test_adding_existing_input_is_idempotent(self, small_circuit):
        small_circuit.add_input("a")
        assert small_circuit.primary_inputs.count("a") == 1

    def test_adding_existing_output_is_idempotent(self, small_circuit):
        small_circuit.add_output("n2")
        assert small_circuit.primary_outputs.count("n2") == 1


class TestQueries:
    def test_driver_and_fanout(self, small_circuit):
        assert small_circuit.driver_of("n1") == "g1"
        assert small_circuit.driver_of("a") is None
        assert small_circuit.fanout_of("n1") == [("g2", "a")]
        assert small_circuit.fanout_of("n2") == []
        assert small_circuit.is_primary_input("a")
        assert not small_circuit.is_primary_input("n1")

    def test_gate_accessors(self, small_circuit):
        gate = small_circuit.gates["g1"]
        assert gate.input_net("b") == "b"
        assert gate.pin_of_net("a") == ["a"]
        with pytest.raises(KeyError):
            gate.input_net("z")

    def test_histogram_and_stats(self, small_circuit):
        histogram = small_circuit.gate_type_histogram()
        assert histogram == {"inv": 1, "nand2": 1}
        stats = small_circuit.stats()
        assert stats["gates"] == 2
        assert stats["nets"] == 4

    def test_indices_update_after_mutation(self, small_circuit):
        small_circuit.add_gate("g3", GateType.INV, ["n2"], "n3")
        assert small_circuit.driver_of("n3") == "g3"
        assert ("g3", "a") in small_circuit.fanout_of("n2")

    def test_copy_is_independent(self, small_circuit):
        clone = small_circuit.copy(name="clone")
        clone.add_gate("extra", GateType.INV, ["n2"], "n9")
        assert "extra" not in small_circuit.gates
        assert clone.name == "clone"


class TestValidation:
    def test_valid_circuit_passes(self, small_circuit):
        small_circuit.validate()

    def test_undriven_input_detected(self):
        circuit = Circuit(name="broken")
        circuit.add_input("a")
        circuit.add_gate("g", GateType.NAND2, ["a", "ghost"], "y")
        with pytest.raises(ValueError, match="no driver"):
            circuit.validate()

    def test_undriven_output_detected(self):
        circuit = Circuit(name="broken")
        circuit.add_input("a")
        circuit.add_gate("g", GateType.INV, ["a"], "y")
        circuit.add_output("nowhere")
        with pytest.raises(ValueError, match="no driver"):
            circuit.validate()
