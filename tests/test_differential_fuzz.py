"""Differential fuzzing: independent implementations must agree on random inputs.

The repo keeps two implementations of everything fast: a scalar oracle and a
batched path (PRs 1-4).  The regression suites pin them against each other
on fixed circuits; this module fuzzes the *structure* too — random small
circuits from :mod:`repro.circuit.generators` under random vectors — and
asserts the recorded agreement bars hold for every sampled topology:

* batched campaign engine vs. scalar ``LoadingAwareEstimator``: per-component
  circuit totals within 1e-12 relative (the bar
  ``benchmarks/engine_batched.json`` records);
* batched Newton DC solver vs. batched Gauss–Seidel oracle on the flattened
  transistor netlists: per-vector, per-component reference totals within
  1e-9 relative (the bar ``benchmarks/newton_solver.json`` records).

Seeds are fixed (deterministic wall-clock, reproducible failures); every
seed generates a different gate mix, depth profile and fanout pattern, which
is exactly the surface hand-picked regression circuits cannot cover.
"""

import numpy as np
import pytest

from repro.circuit.generators import random_logic
from repro.circuit.logic import random_vectors
from repro.core.estimator import LoadingAwareEstimator
from repro.core.reference import ReferenceSimulator
from repro.core.report import REPORT_COMPONENTS
from repro.core.vectors import run_vector_campaign
from repro.spice.solver import SolverOptions
from repro.utils.rng import spawn_streams

#: Engine-vs-scalar agreement bar (matches benchmarks/engine_batched.json).
ENGINE_BAR = 1e-12

#: Newton-vs-Gauss-Seidel agreement bar (matches benchmarks/newton_solver.json).
NEWTON_BAR = 1e-9

#: Tight tolerances put both solver methods at the root, far below the bar.
TIGHT = dict(voltage_tol=1e-11, xtol=1e-14, max_sweeps=250)


def _relative_gap(observed: np.ndarray, expected: np.ndarray) -> float:
    """Max relative difference with a floor for exactly-zero components."""
    scale = np.maximum(np.abs(expected), 1e-18)
    return float(np.max(np.abs(observed - expected) / scale))


@pytest.mark.parametrize("seed", [101, 202, 303, 404])
def test_engine_matches_scalar_estimator_on_random_circuits(seed, library25):
    """Fuzzed topologies: batched totals track the scalar oracle to 1e-12."""
    topology_rng, vector_rng = spawn_streams(seed, 2)
    circuit = random_logic(
        f"fuzz_engine_{seed}",
        n_inputs=int(topology_rng.integers(4, 8)),
        n_gates=int(topology_rng.integers(10, 26)),
        rng=topology_rng,
    )
    estimator = LoadingAwareEstimator(library25)
    vectors = list(random_vectors(circuit, 6, rng=vector_rng))
    batched = run_vector_campaign(
        estimator, circuit, vectors=vectors, engine="batched"
    )
    scalar = run_vector_campaign(
        estimator, circuit, vectors=vectors, engine="scalar"
    )
    for component in REPORT_COMPONENTS:
        gap = _relative_gap(batched.totals(component), scalar.totals(component))
        assert gap <= ENGINE_BAR, (
            f"{circuit.name}: engine drifted {gap:.3e} from the scalar "
            f"oracle on component {component!r}"
        )


@pytest.mark.slow
@pytest.mark.parametrize("seed", [111, 222])
def test_newton_matches_gauss_seidel_on_random_circuits(seed, bulk25):
    """Fuzzed transistor netlists: Newton tracks the relaxation oracle."""
    topology_rng, vector_rng = spawn_streams(seed, 2)
    circuit = random_logic(
        f"fuzz_newton_{seed}",
        n_inputs=int(topology_rng.integers(4, 7)),
        n_gates=int(topology_rng.integers(8, 16)),
        rng=topology_rng,
    )
    vectors = list(random_vectors(circuit, 4, rng=vector_rng))
    reports = {}
    for method in ("newton", "gauss-seidel"):
        simulator = ReferenceSimulator(
            bulk25, solver_options=SolverOptions(method=method, **TIGHT)
        )
        reports[method] = simulator.estimate_batch(circuit, vectors)
    for newton, oracle in zip(reports["newton"], reports["gauss-seidel"]):
        for component in REPORT_COMPONENTS:
            observed = np.array([newton.component(component)])
            expected = np.array([oracle.component(component)])
            gap = _relative_gap(observed, expected)
            assert gap <= NEWTON_BAR, (
                f"{circuit.name}: Newton drifted {gap:.3e} from Gauss-Seidel "
                f"on component {component!r} for vector "
                f"{oracle.input_assignment}"
            )
