"""Tests for the logic-level gate library (specs and boolean functions)."""

import itertools

import pytest

from repro.gates.library import (
    GateType,
    all_gate_types,
    gate_spec,
    inverting_gate_types,
)


def _reference_function(gate_type, bits):
    """Independent re-implementation of every gate's boolean function."""
    a = bits
    if gate_type is GateType.INV:
        return 1 - a[0]
    if gate_type is GateType.BUF:
        return a[0]
    if gate_type in (GateType.NAND2, GateType.NAND3, GateType.NAND4):
        return 1 - int(all(a))
    if gate_type in (GateType.NOR2, GateType.NOR3):
        return 1 - int(any(a))
    if gate_type in (GateType.AND2, GateType.AND3):
        return int(all(a))
    if gate_type in (GateType.OR2, GateType.OR3):
        return int(any(a))
    if gate_type is GateType.XOR2:
        return a[0] ^ a[1]
    if gate_type is GateType.XNOR2:
        return 1 - (a[0] ^ a[1])
    if gate_type is GateType.AOI21:
        return 1 - ((a[0] & a[1]) | a[2])
    if gate_type is GateType.OAI21:
        return 1 - ((a[0] | a[1]) & a[2])
    raise AssertionError(f"unhandled {gate_type}")


class TestGateSpecs:
    @pytest.mark.parametrize("gate_type", all_gate_types())
    def test_truth_table_matches_reference(self, gate_type):
        spec = gate_spec(gate_type)
        for bits in itertools.product((0, 1), repeat=spec.num_inputs):
            assert spec.evaluate(bits) == _reference_function(gate_type, bits)

    @pytest.mark.parametrize("gate_type", all_gate_types())
    def test_all_vectors_enumeration(self, gate_type):
        spec = gate_spec(gate_type)
        vectors = spec.all_vectors()
        assert len(vectors) == 2**spec.num_inputs
        assert len(set(vectors)) == len(vectors)

    def test_vector_label(self):
        spec = gate_spec(GateType.NAND2)
        assert spec.vector_label((0, 1)) == "01"

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            gate_spec(GateType.NAND2).evaluate((1,))

    def test_lookup_by_name(self):
        assert gate_spec("nand2").gate_type is GateType.NAND2
        assert GateType.from_name("XOR2") is GateType.XOR2
        with pytest.raises(KeyError):
            gate_spec("nand17")

    def test_inverting_subset(self):
        inverting = set(inverting_gate_types())
        assert GateType.NAND2 in inverting
        assert GateType.AND2 not in inverting
        assert GateType.XOR2 not in inverting

    def test_output_pin_name(self):
        assert gate_spec(GateType.INV).output == "y"
        assert gate_spec(GateType.AOI21).inputs == ("a", "b", "c")
