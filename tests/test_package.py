"""Tests for the top-level package surface."""

import pytest

import repro


class TestPackageSurface:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_direct_exports(self):
        technology = repro.make_technology("bulk-25nm")
        assert isinstance(technology, repro.TechnologyParams)
        assert repro.DeviceVariant.BULK25.value == "bulk-25nm"

    def test_lazy_exports(self):
        assert repro.GateLibrary.__name__ == "GateLibrary"
        assert repro.LoadingAwareEstimator.__name__ == "LoadingAwareEstimator"

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist  # noqa: B018
