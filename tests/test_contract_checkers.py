"""Tests for the AST contract checkers in ``tools/lint``.

Each RC1xx checker must fire on a minimal violating snippet (proving it can
catch the contract breach it encodes) and the real source tree must be
clean (proving the contracts actually hold).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from lint.contracts import (  # noqa: E402
    CHECKERS,
    Violation,
    check_source,
    check_tree,
)

NUMERICS_PATH = "src/repro/device/snippet.py"
GENERIC_PATH = "src/repro/core/snippet.py"


def codes(source: str, path: str = GENERIC_PATH) -> list[str]:
    return [violation.code for violation in check_source(source, path)]


class TestRC101RngConstruction:
    def test_fires_on_default_rng_outside_rng_module(self):
        snippet = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert codes(snippet) == ["RC101"]

    def test_fires_through_import_aliases(self):
        snippet = (
            "from numpy.random import default_rng as make\nrng = make(0)\n"
        )
        assert codes(snippet) == ["RC101"]

    def test_fires_on_legacy_randomstate(self):
        snippet = "import numpy as np\nrng = np.random.RandomState(0)\n"
        assert codes(snippet) == ["RC101"]

    def test_allowed_inside_rng_module(self):
        snippet = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert codes(snippet, "src/repro/utils/rng.py") == []

    def test_generator_type_annotation_is_not_a_construction(self):
        snippet = (
            "import numpy as np\n"
            "def f(rng: np.random.Generator) -> np.random.Generator:\n"
            "    return rng\n"
        )
        assert codes(snippet) == []


class TestRC102GlobalOrTimeSeededRng:
    def test_fires_on_global_numpy_seed(self):
        assert codes("import numpy as np\nnp.random.seed(3)\n") == ["RC102"]

    def test_fires_on_global_distribution_call(self):
        snippet = "import numpy as np\nx = np.random.normal(0.0, 1.0)\n"
        assert codes(snippet) == ["RC102"]

    def test_fires_on_stdlib_random(self):
        assert codes("import random\nrandom.shuffle(items)\n") == ["RC102"]

    def test_fires_on_time_seeded_generator(self):
        snippet = (
            "import time\nimport numpy as np\n"
            "rng = np.random.default_rng(int(time.time()))\n"
        )
        found = codes(snippet)
        assert "RC102" in found  # the construction itself also trips RC101
        assert "RC101" in found

    def test_explicitly_seeded_generator_in_rng_module_is_clean(self):
        snippet = "import numpy as np\nrng = np.random.default_rng(1234)\n"
        assert codes(snippet, "src/repro/utils/rng.py") == []


class TestRC103MissingValueTwin:
    def test_fires_on_orphan_gradient_function(self):
        snippet = "def leak_grad_v(v):\n    return v\n"
        assert codes(snippet) == ["RC103"]

    def test_clean_when_value_twin_present(self):
        snippet = (
            "def leak(v):\n    return v\n"
            "def leak_grad_v(v):\n    return 1.0\n"
        )
        assert codes(snippet) == []

    def test_twin_must_be_in_the_same_module(self):
        snippet = (
            "from other import leak\n"
            "def leak_grad_v(v):\n    return 1.0\n"
        )
        assert codes(snippet) == ["RC103"]


class TestRC104UnorderedSetIteration:
    def test_fires_on_for_loop_over_set_call(self):
        assert codes("for x in set(items):\n    go(x)\n") == ["RC104"]

    def test_fires_on_sum_of_set_literal(self):
        assert codes("total = sum({1.0, 2.0})\n") == ["RC104"]

    def test_fires_on_comprehension_over_set_literal(self):
        assert codes("out = [f(x) for x in {1, 2}]\n") == ["RC104"]

    def test_fires_on_join_of_set(self):
        assert codes("s = ', '.join({'a', 'b'})\n") == ["RC104"]

    def test_sorted_wrapping_is_clean(self):
        assert codes("total = sum(sorted({1.0, 2.0}))\n") == []
        assert codes("for x in sorted(set(items)):\n    go(x)\n") == []

    def test_membership_test_is_clean(self):
        assert codes("ok = x in {1, 2, 3}\n") == []

    def test_suppression_comment(self):
        snippet = "total = sum({1.0, 2.0})  # contract: allow(RC104)\n"
        assert codes(snippet) == []


class TestRC105FloatDowncast:
    def test_fires_on_np_float32_in_device(self):
        snippet = "import numpy as np\nx = np.float32(1.0)\n"
        assert codes(snippet, NUMERICS_PATH) == ["RC105"]

    def test_fires_on_astype_string(self):
        assert codes("y = x.astype('float32')\n", NUMERICS_PATH) == ["RC105"]

    def test_fires_on_dtype_keyword(self):
        snippet = "import numpy as np\ny = np.zeros(4, dtype='float16')\n"
        assert codes(snippet, NUMERICS_PATH) == ["RC105"]

    def test_float64_is_clean(self):
        snippet = (
            "import numpy as np\n"
            "y = np.zeros(4, dtype=np.float64)\nz = x.astype('float64')\n"
        )
        assert codes(snippet, NUMERICS_PATH) == []

    def test_scoped_to_numerics_modules_only(self):
        snippet = "import numpy as np\nx = np.float32(1.0)\n"
        assert codes(snippet, GENERIC_PATH) == []


RESILIENT_PATH = "src/repro/engine/snippet.py"


class TestRC106SwallowedFailure:
    def test_fires_on_bare_except_pass(self):
        snippet = "try:\n    go()\nexcept:\n    pass\n"
        assert codes(snippet, RESILIENT_PATH) == ["RC106"]

    def test_fires_on_except_exception_pass(self):
        snippet = "try:\n    go()\nexcept Exception:\n    pass\n"
        assert codes(snippet, RESILIENT_PATH) == ["RC106"]

    def test_fires_on_swallowed_broken_process_pool(self):
        snippet = (
            "from concurrent.futures.process import BrokenProcessPool\n"
            "try:\n    go()\nexcept BrokenProcessPool:\n    continue\n"
        )
        assert codes(snippet, RESILIENT_PATH) == ["RC106"]

    def test_fires_on_broad_member_of_tuple(self):
        snippet = "try:\n    go()\nexcept (ValueError, Exception):\n    pass\n"
        assert codes(snippet, RESILIENT_PATH) == ["RC106"]

    def test_docstring_only_body_is_still_swallowed(self):
        snippet = (
            "try:\n    go()\nexcept Exception:\n"
            "    'a comment does not handle a failure'\n"
        )
        assert codes(snippet, RESILIENT_PATH) == ["RC106"]

    def test_handled_broad_exception_is_clean(self):
        snippet = (
            "try:\n    go()\nexcept Exception as exc:\n"
            "    release(exc)\n    raise\n"
        )
        assert codes(snippet, RESILIENT_PATH) == []

    def test_narrow_swallow_is_clean(self):
        snippet = "try:\n    go()\nexcept KeyError:\n    pass\n"
        assert codes(snippet, RESILIENT_PATH) == []

    def test_scoped_to_execution_critical_paths_only(self):
        snippet = "try:\n    go()\nexcept Exception:\n    pass\n"
        assert codes(snippet, GENERIC_PATH) == []
        assert codes(snippet, "src/repro/service/snippet.py") == ["RC106"]
        assert codes(snippet, "src/repro/resilience/snippet.py") == ["RC106"]


class TestHarness:
    def test_syntax_error_reported_not_raised(self):
        found = check_source("def broken(:\n", GENERIC_PATH)
        assert [v.code for v in found] == ["RC000"]

    def test_violation_rendering(self):
        violation = Violation(
            code="RC101", message="msg", path="a.py", line=3
        )
        assert str(violation) == "a.py:3: RC101 msg"
        assert violation.to_dict()["line"] == 3

    def test_checker_registry_codes_are_unique_and_stable(self):
        registry = [spec.code for spec in CHECKERS]
        assert registry == sorted(registry)
        assert len(set(registry)) == len(registry)
        assert registry == [
            "RC101", "RC102", "RC103", "RC104", "RC105", "RC106",
        ]

    def test_source_tree_is_contract_clean(self):
        violations = check_tree([REPO_ROOT / "src", REPO_ROOT / "tools"])
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_cli_exit_codes(self, tmp_path):
        script = REPO_ROOT / "tools" / "lint" / "check_contracts.py"
        clean = subprocess.run(
            [sys.executable, str(script), str(REPO_ROOT / "src" / "repro" / "utils")],
            capture_output=True,
            text=True,
        )
        assert clean.returncode == 0, clean.stdout + clean.stderr

        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(1)\n")
        report = tmp_path / "report.json"
        dirty = subprocess.run(
            [sys.executable, str(script), str(bad), "--json", str(report)],
            capture_output=True,
            text=True,
        )
        assert dirty.returncode == 1
        assert "RC102" in dirty.stdout
        import json

        payload = json.loads(report.read_text())
        assert payload["ok"] is False
        assert payload["violations"][0]["code"] == "RC102"
