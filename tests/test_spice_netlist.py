"""Tests for the transistor-level netlist container."""

import pytest

from repro.device.mosfet import Mosfet
from repro.spice.netlist import GROUND, SUPPLY, NodeKind, TransistorNetlist


@pytest.fixture
def netlist(bulk25):
    return TransistorNetlist(vdd=bulk25.vdd)


def _add_inverter(netlist, technology, name, input_node, output_node):
    netlist.add_transistor(
        f"{name}.mn",
        Mosfet(technology.nmos),
        gate=input_node,
        drain=output_node,
        source=GROUND,
        bulk=GROUND,
        owner=name,
    )
    netlist.add_transistor(
        f"{name}.mp",
        Mosfet(technology.pmos),
        gate=input_node,
        drain=output_node,
        source=SUPPLY,
        bulk=SUPPLY,
        owner=name,
    )


class TestNodes:
    def test_rails_exist(self, netlist, bulk25):
        assert netlist.nodes[GROUND].voltage == 0.0
        assert netlist.nodes[SUPPLY].voltage == pytest.approx(bulk25.vdd)
        assert netlist.nodes[SUPPLY].kind is NodeKind.FIXED

    def test_invalid_vdd_rejected(self):
        with pytest.raises(ValueError):
            TransistorNetlist(vdd=0.0)

    def test_add_free_then_fix(self, netlist):
        netlist.add_node("n1")
        assert netlist.nodes["n1"].kind is NodeKind.FREE
        netlist.fix_node("n1", 0.5)
        assert netlist.nodes["n1"].kind is NodeKind.FIXED
        netlist.free_node("n1", initial_voltage=0.2)
        assert netlist.nodes["n1"].kind is NodeKind.FREE
        assert netlist.nodes["n1"].voltage == 0.2

    def test_conflicting_fixed_voltage_rejected(self, netlist):
        netlist.add_node("a", fixed_voltage=0.9)
        with pytest.raises(ValueError):
            netlist.add_node("a", fixed_voltage=0.1)

    def test_fixing_existing_free_node_via_add_rejected(self, netlist):
        netlist.add_node("f")
        with pytest.raises(ValueError):
            netlist.add_node("f", fixed_voltage=0.9)


class TestTransistorsAndSources:
    def test_attachment_index(self, netlist, bulk25):
        netlist.add_node("in", fixed_voltage=0.0)
        _add_inverter(netlist, bulk25, "inv", "in", "out")
        attachments = netlist.attachments()
        assert len(attachments["out"]) == 2
        assert len(attachments["in"]) == 2
        assert {terminal for _, terminal in attachments["out"]} == {"drain"}

    def test_injections_accumulate(self, netlist):
        netlist.add_current_source("x", 1e-6)
        netlist.add_current_source("x", -2.5e-7)
        assert netlist.injections()["x"] == pytest.approx(7.5e-7)

    def test_owner_listing(self, netlist, bulk25):
        netlist.add_node("in", fixed_voltage=0.0)
        _add_inverter(netlist, bulk25, "g1", "in", "n1")
        _add_inverter(netlist, bulk25, "g2", "n1", "n2")
        assert netlist.owners() == ["g1", "g2"]

    def test_free_nodes_and_fixed_voltages(self, netlist, bulk25):
        netlist.add_node("in", fixed_voltage=bulk25.vdd)
        _add_inverter(netlist, bulk25, "g1", "in", "n1")
        assert "n1" in netlist.free_nodes()
        assert "in" in netlist.fixed_voltages()


class TestValidation:
    def test_duplicate_transistor_names_rejected(self, netlist, bulk25):
        netlist.add_node("in", fixed_voltage=0.0)
        _add_inverter(netlist, bulk25, "g", "in", "out")
        netlist.add_transistor(
            "g.mn", Mosfet(bulk25.nmos), gate="in", drain="out", source=GROUND, bulk=GROUND
        )
        with pytest.raises(ValueError, match="duplicate"):
            netlist.validate()

    def test_floating_free_node_rejected(self, netlist):
        netlist.add_node("floating")
        with pytest.raises(ValueError, match="no attached devices"):
            netlist.validate()

    def test_valid_netlist_passes(self, netlist, bulk25):
        netlist.add_node("in", fixed_voltage=0.0)
        _add_inverter(netlist, bulk25, "g", "in", "out")
        netlist.validate()
