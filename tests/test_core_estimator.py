"""Tests for the loading-aware estimator, the baseline and the reference path."""

import pytest

from repro.circuit.generators import (
    fanout_star,
    inverter_chain,
    loaded_inverter_cluster,
    random_logic,
)
from repro.core.baseline import NoLoadingEstimator
from repro.core.estimator import LoadingAwareEstimator
from repro.core.reference import ReferenceSimulator
from repro.core.report import CircuitLeakageReport


class TestEstimatorBasics:
    def test_report_structure(self, library_d25s):
        circuit = inverter_chain(4)
        report = LoadingAwareEstimator(library_d25s).estimate(circuit, {"in": 0})
        assert isinstance(report, CircuitLeakageReport)
        assert report.method == "loading-aware"
        assert report.gate_count() == 4
        assert set(report.per_gate) == set(circuit.gates)
        assert report.total > 0
        assert report.power_w == pytest.approx(report.total * library_d25s.vdd)

    def test_vector_changes_result(self, library_d25s):
        circuit = inverter_chain(4)
        estimator = LoadingAwareEstimator(library_d25s)
        low = estimator.estimate(circuit, {"in": 0})
        high = estimator.estimate(circuit, {"in": 1})
        assert low.total != pytest.approx(high.total, rel=1e-6)

    def test_primary_input_nets_carry_no_loading(self, library_d25s):
        """A gate fed only by primary inputs sees zero input loading."""
        circuit = fanout_star(4)
        report = LoadingAwareEstimator(library_d25s).estimate(circuit, {"in": 0})
        driver_entry = report.per_gate["driver"]
        assert driver_entry.input_loading == 0.0
        assert driver_entry.output_loading != 0.0

    def test_loads_see_sibling_injection(self, library_d25s):
        circuit = fanout_star(4)
        report = LoadingAwareEstimator(library_d25s).estimate(circuit, {"in": 0})
        load_entry = report.per_gate["load0"]
        # Each load shares its input net with three siblings.
        assert load_entry.input_loading != 0.0
        assert load_entry.output_loading == 0.0

    def test_baseline_reports_no_loading(self, library_d25s):
        circuit = fanout_star(4)
        report = NoLoadingEstimator(library_d25s).estimate(circuit, {"in": 0})
        assert report.method == "no-loading"
        for entry in report.per_gate.values():
            assert entry.input_loading == 0.0
            assert entry.output_loading == 0.0

    def test_loading_increases_subthreshold_total(self, library_d25s):
        """Circuit-level claim of Sec. 6: loading raises the subthreshold sum."""
        circuit = loaded_inverter_cluster(6, 6)
        loaded = LoadingAwareEstimator(library_d25s).estimate(circuit, {"in": 1})
        baseline = NoLoadingEstimator(library_d25s).estimate(circuit, {"in": 1})
        assert loaded.components.subthreshold > baseline.components.subthreshold
        assert loaded.components.gate < baseline.components.gate


class TestTiedInputSelfLoading:
    """A gate with two pins tied to one net must not load itself (bugfix)."""

    @staticmethod
    def _tied_nand_circuit():
        from repro.circuit.netlist import Circuit
        from repro.gates.library import GateType

        circuit = Circuit(name="tied_nand")
        circuit.add_input("in")
        circuit.add_gate("drv", GateType.INV, ["in"], "x")
        circuit.add_gate("g", GateType.NAND2, ["x", "x"], "y")
        circuit.add_gate("load", GateType.INV, ["x"], "z")
        circuit.add_output("y")
        circuit.add_output("z")
        return circuit

    def test_tied_pins_see_only_other_receivers(self, library_d25s):
        circuit = self._tied_nand_circuit()
        report = LoadingAwareEstimator(library_d25s).estimate(circuit, {"in": 1})
        # x is 0, so the tied NAND sees vector (0, 0) and the load sees (0,).
        load_injection = library_d25s.pin_injection("inv", (0,), "a")
        entry = report.per_gate["g"]
        # Each of the two tied pins sees exactly the load inverter's
        # injection — not the gate's own other pin fed back as loading.
        assert entry.input_loading == pytest.approx(2.0 * load_injection, rel=1e-12)

    def test_driver_output_loading_still_sums_all_receivers(self, library_d25s):
        circuit = self._tied_nand_circuit()
        report = LoadingAwareEstimator(library_d25s).estimate(circuit, {"in": 1})
        expected = (
            library_d25s.pin_injection("nand2", (0, 0), "a")
            + library_d25s.pin_injection("nand2", (0, 0), "b")
            + library_d25s.pin_injection("inv", (0,), "a")
        )
        assert report.per_gate["drv"].output_loading == pytest.approx(
            expected, rel=1e-12
        )


class TestAgainstReference:
    """The estimator must track the full transistor-level solve (Fig. 12a)."""

    @pytest.mark.parametrize("input_value", [0, 1])
    def test_loaded_cluster_total_within_one_percent(self, d25s, library_d25s, input_value):
        circuit = loaded_inverter_cluster(6, 6)
        estimate = LoadingAwareEstimator(library_d25s).estimate(
            circuit, {"in": input_value}
        )
        reference = ReferenceSimulator(d25s).estimate(circuit, {"in": input_value})
        assert reference.metadata["solver_converged"]
        difference = estimate.percent_difference(reference)
        assert abs(difference["total"]) < 1.0
        assert abs(difference["subthreshold"]) < 2.0

    @pytest.mark.slow
    def test_random_circuit_total_within_one_percent(self, d25s, library_d25s):
        circuit = random_logic("val", 6, 30, rng=9)
        vector = {f"pi{i}": i % 2 for i in range(6)}
        estimate = LoadingAwareEstimator(library_d25s).estimate(circuit, vector)
        reference = ReferenceSimulator(d25s).estimate(circuit, vector)
        difference = estimate.percent_difference(reference)
        assert abs(difference["total"]) < 1.0

    @pytest.mark.slow
    def test_estimator_closer_to_reference_than_baseline(self, d25s, library_d25s):
        """Accounting for loading must reduce the error against the reference."""
        circuit = loaded_inverter_cluster(8, 8)
        vector = {"in": 1}
        reference = ReferenceSimulator(d25s).estimate(circuit, vector)
        loaded = LoadingAwareEstimator(library_d25s).estimate(circuit, vector)
        baseline = NoLoadingEstimator(library_d25s).estimate(circuit, vector)
        loaded_error = abs(loaded.percent_difference(reference)["subthreshold"])
        baseline_error = abs(baseline.percent_difference(reference)["subthreshold"])
        assert loaded_error < baseline_error

    def test_reference_metadata(self, d25s):
        circuit = inverter_chain(3)
        report = ReferenceSimulator(d25s).estimate(circuit, {"in": 0})
        assert report.method == "reference"
        assert report.metadata["transistors"] == 6
        assert report.metadata["solver_converged"]


class TestReport:
    def test_percent_difference_and_top_gates(self, library_d25s):
        circuit = inverter_chain(4)
        estimator = LoadingAwareEstimator(library_d25s)
        report = estimator.estimate(circuit, {"in": 0})
        same = report.percent_difference(report)
        assert all(value == pytest.approx(0.0) for value in same.values())
        top = report.top_gates(2)
        assert len(top) == 2
        assert (
            top[0].breakdown.total >= top[1].breakdown.total
        )

    def test_summary_table_renders(self, library_d25s):
        circuit = inverter_chain(2)
        report = LoadingAwareEstimator(library_d25s).estimate(circuit, {"in": 0})
        text = report.summary_table()
        assert "subthreshold" in text
        assert "inv_chain" in text

    def test_component_accessor(self, library_d25s):
        circuit = inverter_chain(2)
        report = LoadingAwareEstimator(library_d25s).estimate(circuit, {"in": 0})
        assert report.component("gate") > 0
        with pytest.raises(KeyError):
            report.component("bogus")
