"""Equivalence tests: batched DC solver vs the scalar oracle.

The batched subsystem (vectorized device models, ``BatchedDcSolver``, the
batched characterization and Monte-Carlo paths) must reproduce the scalar
reference path: node voltages to solver tolerance, leakage breakdowns to a
tight relative tolerance, and — for the batch plumbing itself — results that
are bitwise independent of how instances are grouped into batches.
"""

import numpy as np
import pytest

from repro.device.batched import PackedMosfets
from repro.device.mosfet import Mosfet
from repro.gates.characterize import CharacterizationOptions, GateCharacterizer
from repro.gates.library import GateType, gate_spec
from repro.gates.templates import build_gate_transistors
from repro.spice.analysis import leakage_by_owner
from repro.spice.batched import BatchedDcSolver
from repro.spice.netlist import TransistorNetlist
from repro.spice.solver import DcSolver, SolverOptions
from repro.utils.rng import spawn_streams
from repro.utils.rootfind import chandrupatla
from repro.variation.montecarlo import (
    build_sample_task,
    simulate_batch,
    simulate_sample,
)

#: Tolerances tight enough that solver-termination noise sits far below the
#: leakage agreement bar used by the equivalence assertions.
TIGHT = SolverOptions(voltage_tol=1e-10, xtol=1e-13, max_sweeps=200)

#: Reduced grid keeps the characterization comparisons quick.
SMALL_GRID = (-2.0e-6, -0.5e-6, 0.5e-6, 2.0e-6)


class TestVectorizedDeviceModels:
    def test_packed_matches_scalar_mosfet(self, bulk25):
        rng = np.random.default_rng(42)
        grid = []
        for slot in range(4):
            row = []
            for b in range(6):
                device = bulk25.nmos if slot % 2 == 0 else bulk25.pmos
                device = device.replace(
                    tox_nm=device.tox_nm + 0.01 * b,
                    length_nm=device.length_nm + 0.2 * b,
                )
                device = device.replace_subthreshold(
                    vth0=device.subthreshold.vth0 + 0.002 * b
                )
                row.append(Mosfet(device, vth_shift=0.001 * b))
            grid.append(row)
        packed = PackedMosfets(grid, 320.0)
        vg, vd, vs, vb = rng.uniform(-0.1, 1.0, size=(4, 4, 6))
        ig, idr, isr, ib = packed.kcl_currents(vg, vd, vs, vb)
        components = packed.component_currents(vg, vd, vs, vb)
        for t in range(4):
            for b in range(6):
                want = grid[t][b].terminal_currents(
                    vg[t, b], vd[t, b], vs[t, b], vb[t, b], 320.0
                )
                for got, expected in (
                    (ig[t, b], want.ig),
                    (idr[t, b], want.id),
                    (isr[t, b], want.is_),
                    (ib[t, b], want.ib),
                    (components.i_subthreshold[t, b], want.i_subthreshold),
                    (components.i_gate[t, b], want.i_gate),
                    (components.i_btbt[t, b], want.i_btbt),
                ):
                    assert got == pytest.approx(expected, rel=1e-12, abs=1e-28)

    def test_polarity_must_stay_constant_per_slot(self, bulk25):
        grid = [[Mosfet(bulk25.nmos), Mosfet(bulk25.pmos)]]
        with pytest.raises(ValueError, match="polarity"):
            PackedMosfets(grid, 300.0)


class TestChandrupatla:
    def test_finds_roots_of_mixed_functions(self):
        def f(x):
            out = np.empty_like(x)
            out[0] = x[0] ** 3 - 2.0
            out[1] = np.exp(x[1]) - 5.0
            out[2] = x[2] - 0.25
            return out

        roots = chandrupatla(
            f, np.array([0.0, 0.0, -1.0]), np.array([2.0, 3.0, 1.0]), xtol=1e-13
        )
        assert roots == pytest.approx(
            [2.0 ** (1 / 3), np.log(5.0), 0.25], abs=1e-12
        )

    def test_batch_composition_does_not_change_roots(self):
        def f(x):
            return np.exp(x) - 3.0

        alone = chandrupatla(f, np.array([0.0]), np.array([2.0]), xtol=1e-13)
        batch = chandrupatla(
            f, np.zeros(5), np.full(5, 2.0), xtol=1e-13
        )
        assert np.all(batch == alone[0])

    def test_frozen_columns_keep_their_values(self):
        def f(x):
            return x - 1.0

        frozen = np.array([False, True])
        values = np.array([0.0, 7.5])
        roots = chandrupatla(
            f,
            np.zeros(2),
            np.full(2, 2.0),
            xtol=1e-13,
            frozen=frozen,
            frozen_values=values,
        )
        assert roots[1] == 7.5
        assert roots[0] == pytest.approx(1.0, abs=1e-12)

    def test_missing_sign_change_rejected(self):
        def f(x):
            return x + 10.0

        with pytest.raises(ValueError, match="sign change"):
            chandrupatla(f, np.zeros(1), np.ones(1), xtol=1e-13)


def _nand2_cell(technology, vector, injection=None):
    netlist = TransistorNetlist(vdd=technology.vdd)
    netlist.add_node("a", fixed_voltage=technology.vdd * vector[0])
    netlist.add_node("b", fixed_voltage=technology.vdd * vector[1])
    build_gate_transistors(
        netlist, technology, GateType.NAND2, "g", {"a": "a", "b": "b", "y": "out"}
    )
    if injection:
        netlist.add_current_source("out", injection)
    return netlist


@pytest.mark.slow
class TestBatchedSolverEquivalence:
    def test_voltages_and_leakage_match_scalar_oracle(self, bulk25):
        injections = [None, 5e-7, -5e-7, 2e-6, -2e-6]
        netlists = [_nand2_cell(bulk25, (1, 0), inj) for inj in injections]
        batched = BatchedDcSolver(netlists, 300.0, TIGHT)
        op = batched.solve()
        assert op.all_converged
        owner_leakage = batched.leakage_by_owner(op)["g"]
        for index, netlist in enumerate(netlists):
            scalar_op = DcSolver(netlist, 300.0, TIGHT).solve()
            assert scalar_op.converged
            for name, voltage in scalar_op.voltages.items():
                batched_v = op.voltages[op.node_index[name], index]
                assert batched_v == pytest.approx(voltage, abs=TIGHT.voltage_tol)
            scalar_leakage = leakage_by_owner(netlist, scalar_op)["g"]
            got = owner_leakage.at(index)
            assert got.subthreshold == pytest.approx(
                scalar_leakage.subthreshold, rel=1e-9
            )
            assert got.gate == pytest.approx(scalar_leakage.gate, rel=1e-9)
            assert got.btbt == pytest.approx(scalar_leakage.btbt, rel=1e-9)

    def test_default_tolerances_agree_to_voltage_tol(self, bulk25):
        netlists = [_nand2_cell(bulk25, (0, 0)), _nand2_cell(bulk25, (1, 1))]
        options = SolverOptions()
        op = BatchedDcSolver(netlists, 300.0, options).solve()
        for index, netlist in enumerate(netlists):
            scalar_op = DcSolver(netlist, 300.0, options).solve()
            for name, voltage in scalar_op.voltages.items():
                batched_v = op.voltages[op.node_index[name], index]
                assert batched_v == pytest.approx(
                    voltage, abs=2.0 * options.voltage_tol
                )

    def test_pathological_no_sign_change_node_pins_like_scalar(self, bulk25):
        """A node attached only to a gate terminal, with a huge forced
        injection the tunneling current cannot absorb: both solvers must pin
        it to the same admissible-range endpoint."""

        def build():
            netlist = TransistorNetlist(vdd=bulk25.vdd)
            netlist.add_node("float_gate")
            netlist.add_transistor(
                name="m1",
                mosfet=Mosfet(bulk25.nmos),
                gate="float_gate",
                drain="vdd",
                source="gnd",
                bulk="gnd",
                owner="g",
            )
            netlist.add_current_source("float_gate", 1.0e-3)
            return netlist

        scalar_op = DcSolver(build(), 300.0, TIGHT).solve()
        batched_op = BatchedDcSolver([build()], 300.0, TIGHT).solve()
        assert batched_op.voltage("float_gate")[0] == pytest.approx(
            scalar_op.voltage("float_gate"), abs=1e-12
        )
        # The pin really is at the upper bracket limit.
        assert scalar_op.voltage("float_gate") == pytest.approx(
            bulk25.vdd + TIGHT.bracket_margin
        )

    def test_instances_converge_at_different_sweep_counts(self, bulk25):
        netlists = [
            _nand2_cell(bulk25, (0, 0)),
            _nand2_cell(bulk25, (1, 1), injection=3e-6),
        ]
        # Deliberately poor initial guess for the second instance only.
        op = BatchedDcSolver(netlists, 300.0, TIGHT).solve(
            initial_voltages=[{"out": bulk25.vdd}, {"out": 0.0}]
        )
        assert op.all_converged
        assert op.sweeps[0] != op.sweeps[1]
        # Each instance must match its own single-instance solve bitwise:
        # converged columns freeze, so batch composition cannot leak in.
        for index, netlist in enumerate(netlists):
            alone = BatchedDcSolver([netlist], 300.0, TIGHT).solve(
                initial_voltages=[
                    {"out": bulk25.vdd} if index == 0 else {"out": 0.0}
                ]
            )
            assert np.array_equal(alone.voltages[:, 0], op.voltages[:, index])
            assert alone.sweeps[0] == op.sweeps[index]

    def test_topology_mismatch_rejected(self, bulk25):
        good = _nand2_cell(bulk25, (0, 0))
        renamed = TransistorNetlist(vdd=bulk25.vdd)
        renamed.add_node("a", fixed_voltage=0.0)
        renamed.add_node("b", fixed_voltage=0.0)
        build_gate_transistors(
            renamed, bulk25, GateType.NAND2, "g", {"a": "a", "b": "b", "y": "out2"}
        )
        with pytest.raises(ValueError, match="node names"):
            BatchedDcSolver([good, renamed], 300.0)

    def test_mixed_supply_voltages_in_one_batch(self, bulk25):
        """Instances may run at different VDD (the Monte-Carlo case)."""

        def cell(vdd_scale):
            scaled = bulk25.replace(vdd=bulk25.vdd * vdd_scale)
            netlist = TransistorNetlist(vdd=scaled.vdd)
            netlist.add_node("in", fixed_voltage=0.0)
            build_gate_transistors(
                netlist, scaled, GateType.INV, "g", {"a": "in", "y": "out"}
            )
            return netlist

        netlists = [cell(1.0), cell(0.9), cell(1.1)]
        op = BatchedDcSolver(netlists, 300.0, TIGHT).solve()
        assert op.all_converged
        for index, netlist in enumerate(netlists):
            scalar_op = DcSolver(netlist, 300.0, TIGHT).solve()
            assert op.voltage("out")[index] == pytest.approx(
                scalar_op.voltage("out"), abs=1e-9
            )


@pytest.mark.slow
class TestBatchedCharacterizationEquivalence:
    def test_records_match_scalar_engine(self, bulk25):
        kwargs = dict(injection_grid=SMALL_GRID, solver=TIGHT)
        scalar = GateCharacterizer(
            bulk25, options=CharacterizationOptions(engine="scalar", **kwargs)
        )
        batched = GateCharacterizer(
            bulk25, options=CharacterizationOptions(engine="batched", **kwargs)
        )
        for vector in ((0, 1), (1, 1)):
            want = scalar.characterize(GateType.NAND2, vector)
            got = batched.characterize(GateType.NAND2, vector)
            assert got.output_voltage == pytest.approx(
                want.output_voltage, abs=1e-9
            )
            for pin, expected in want.pin_injection.items():
                assert got.pin_injection[pin] == pytest.approx(
                    expected, rel=1e-9, abs=1e-24
                )
            assert set(got.responses) == set(want.responses)
            for pin, curve in want.responses.items():
                batched_curve = got.responses[pin]
                np.testing.assert_array_equal(
                    batched_curve.injections, curve.injections
                )
                for component in ("subthreshold", "gate", "btbt"):
                    np.testing.assert_allclose(
                        getattr(batched_curve, component),
                        getattr(curve, component),
                        rtol=1e-9,
                    )

    def test_characterize_type_matches_per_vector_calls(self, bulk25):
        options = CharacterizationOptions(injection_grid=SMALL_GRID)
        characterizer = GateCharacterizer(bulk25, options=options)
        whole = characterizer.characterize_type(GateType.NAND2)
        spec = gate_spec(GateType.NAND2)
        assert set(whole) == set(spec.all_vectors())
        single = characterizer.characterize(GateType.NAND2, (0, 1))
        record = whole[(0, 1)]
        assert record.nominal.total == pytest.approx(
            single.nominal.total, rel=1e-9
        )

    def test_duplicate_vectors_rejected(self, bulk25):
        characterizer = GateCharacterizer(bulk25)
        with pytest.raises(ValueError, match="duplicate"):
            characterizer.characterize_type(GateType.INV, [(0,), (0,)])

    def test_engine_validation(self):
        with pytest.raises(ValueError, match="engine"):
            CharacterizationOptions(engine="gpu")


@pytest.mark.slow
class TestBatchedMonteCarloEquivalence:
    def test_samples_match_scalar_engine(self, d25s):
        task = build_sample_task(
            d25s, input_loads=2, output_loads=2, solver_options=TIGHT
        )
        streams = spawn_streams(31, 6)
        batched = simulate_batch(task, streams)
        for index, stream in enumerate(spawn_streams(31, 6)):
            scalar = simulate_sample(task, stream)
            for loaded in (True, False):
                want = scalar.with_loading if loaded else scalar.without_loading
                got = (
                    batched[index].with_loading
                    if loaded
                    else batched[index].without_loading
                )
                assert got.subthreshold == pytest.approx(
                    want.subthreshold, rel=1e-9
                )
                assert got.gate == pytest.approx(want.gate, rel=1e-9)
                assert got.btbt == pytest.approx(want.btbt, rel=1e-9)

    def test_chunking_is_bitwise_invariant(self, d25s):
        task = build_sample_task(d25s, input_loads=1, output_loads=1)
        whole = simulate_batch(task, spawn_streams(5, 4))
        fresh = spawn_streams(5, 4)  # streams are stateful: re-spawn per run
        chunked = simulate_batch(task, fresh[:2]) + simulate_batch(
            task, fresh[2:]
        )
        for a, b in zip(whole, chunked):
            assert a.with_loading.total == b.with_loading.total
            assert a.without_loading.total == b.without_loading.total
