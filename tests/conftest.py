"""Shared fixtures for the test suite.

Characterizing gates and solving transistor-level netlists are the expensive
operations of this library, so the fixtures that own them are session-scoped:
every test module reuses one characterized :class:`GateLibrary` per
technology and one :class:`LoadingAnalyzer`, which keeps the full suite fast
while still exercising the real numerical paths (nothing is mocked).
"""

from __future__ import annotations

import pytest

from repro.core.loading import LoadingAnalyzer
from repro.device.presets import make_technology
from repro.gates.characterize import CharacterizationOptions, GateLibrary

#: Reduced injection grid used by test libraries: spans the same +/- 3.2 uA
#: range with fewer points so first-use characterization stays quick.
FAST_GRID = (-3.2e-6, -1.6e-6, 0.0, 1.6e-6, 3.2e-6)


@pytest.fixture(scope="session")
def bulk25():
    """The default 25 nm technology."""
    return make_technology("bulk-25nm")


@pytest.fixture(scope="session")
def bulk50():
    """The 50 nm technology of Sec. 2.1."""
    return make_technology("bulk-50nm")


@pytest.fixture(scope="session")
def d25s():
    """The subthreshold-dominated variant used by circuit-level experiments."""
    return make_technology("d25-s")


@pytest.fixture(scope="session")
def library25(bulk25):
    """A characterized library on the 25 nm technology (session cache)."""
    return GateLibrary(bulk25, options=CharacterizationOptions(injection_grid=FAST_GRID))


@pytest.fixture(scope="session")
def library_d25s(d25s):
    """A characterized library on the subthreshold-dominated variant."""
    return GateLibrary(d25s, options=CharacterizationOptions(injection_grid=FAST_GRID))


@pytest.fixture(scope="session")
def analyzer25(bulk25):
    """A loading analyzer on the 25 nm technology."""
    return LoadingAnalyzer(bulk25)
