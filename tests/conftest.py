"""Shared fixtures for the test suite.

Characterizing gates and solving transistor-level netlists are the expensive
operations of this library, so the fixtures that own them are session-scoped:
every test module reuses one characterized :class:`GateLibrary` per
technology and one :class:`LoadingAnalyzer`, which keeps the full suite fast
while still exercising the real numerical paths (nothing is mocked).

On top of the in-memory session scope, the library fixtures are backed by a
**fingerprinted on-disk cache** — :class:`repro.gates.cache.LibraryStore`,
which grew out of this conftest and now lives in the library proper: at
session start records characterized by a previous run are loaded from a
cache file keyed by the full characterization fingerprint, and at session
end the (possibly grown) record set is published back with the store's
convergent-union atomic write+rename.  A fingerprint mismatch (different
technology/options/temperature) simply ignores the file, so a stale cache
can never poison a run.

The win is **across runs** (and, under ``pytest-xdist``, multiplied by the
worker count, since session fixtures are per-process and every worker pays
characterization on a cold cache): point ``REPRO_TEST_LIBRARY_CACHE`` at a
persistent directory — locally a fixed path, in CI an ``actions/cache``-d
one — and subsequent runs characterize nothing.  Within a single cold run
the cache is only *published* at session teardown (workers start
simultaneously, so there is no useful intra-run handoff); the run-shared
default location merely keeps concurrent sessions from trampling system
temp.  Wall-clock numbers are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.loading import LoadingAnalyzer
from repro.device.presets import make_technology
from repro.gates.cache import LibraryStore
from repro.gates.characterize import CharacterizationOptions, GateLibrary

#: Reduced injection grid used by test libraries: spans the same +/- 3.2 uA
#: range with fewer points so first-use characterization stays quick.
FAST_GRID = (-3.2e-6, -1.6e-6, 0.0, 1.6e-6, 3.2e-6)

#: Cache-file generation, folded into the cache filename.  The settings
#: fingerprint covers technology/options/temperature but NOT the model code
#: itself: with a persistent ``REPRO_TEST_LIBRARY_CACHE``, records produced
#: before a device-model or solver numerics change would otherwise be
#: silently reused.  Bump this when changing numerics (or wipe the cache
#: directory); the run-shared default location never outlives one run, so
#: only persistent caches are exposed.
CACHE_GENERATION = 1


@pytest.fixture(scope="session")
def library_cache_dir(tmp_path_factory) -> Path:
    """Directory holding the fingerprinted characterization caches.

    Default: a sibling of the pytest base temp shared by every xdist worker
    of the current run.  ``REPRO_TEST_LIBRARY_CACHE`` overrides it with a
    persistent location that also survives across runs.
    """
    override = os.environ.get("REPRO_TEST_LIBRARY_CACHE")
    if override:
        path = Path(override)
    else:
        base = tmp_path_factory.getbasetemp()
        # Under pytest-xdist each worker gets basetemp/popen-gwN; the parent
        # is the run-shared root where workers can see each other's cache.
        if base.name.startswith(("popen-", "gw")):
            base = base.parent
        path = base / "library-cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _disk_cached_library(
    technology, options: CharacterizationOptions, cache_dir: Path
):
    """Yield a :class:`GateLibrary` warmed from / published to the disk store.

    The load/publish mechanics (strict-fingerprint load with graceful
    fallback, convergent-union atomic write+rename publish) live in
    :class:`LibraryStore`; the fixture only decides the lifecycle — warm at
    session start, publish whatever characterization the session added at
    teardown.
    """
    library = GateLibrary(technology, options=options)
    store = LibraryStore(cache_dir, generation=CACHE_GENERATION)
    store.load(library)
    yield library
    store.publish(library)


@pytest.fixture(scope="session")
def bulk25():
    """The default 25 nm technology."""
    return make_technology("bulk-25nm")


@pytest.fixture(scope="session")
def bulk50():
    """The 50 nm technology of Sec. 2.1."""
    return make_technology("bulk-50nm")


@pytest.fixture(scope="session")
def d25s():
    """The subthreshold-dominated variant used by circuit-level experiments."""
    return make_technology("d25-s")


@pytest.fixture(scope="session")
def library25(bulk25, library_cache_dir):
    """A characterized library on the 25 nm technology (disk-backed cache)."""
    yield from _disk_cached_library(
        bulk25,
        CharacterizationOptions(injection_grid=FAST_GRID),
        library_cache_dir,
    )


@pytest.fixture(scope="session")
def library_d25s(d25s, library_cache_dir):
    """A characterized library on the subthreshold-dominated variant."""
    yield from _disk_cached_library(
        d25s,
        CharacterizationOptions(injection_grid=FAST_GRID),
        library_cache_dir,
    )


@pytest.fixture(scope="session")
def analyzer25(bulk25):
    """A loading analyzer on the 25 nm technology."""
    return LoadingAnalyzer(bulk25)
