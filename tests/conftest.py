"""Shared fixtures for the test suite.

Characterizing gates and solving transistor-level netlists are the expensive
operations of this library, so the fixtures that own them are session-scoped:
every test module reuses one characterized :class:`GateLibrary` per
technology and one :class:`LoadingAnalyzer`, which keeps the full suite fast
while still exercising the real numerical paths (nothing is mocked).

On top of the in-memory session scope, the library fixtures are backed by a
**fingerprinted on-disk cache** (:mod:`repro.gates.cache`): at session start
records characterized by a previous run are loaded from a cache file keyed
by the full characterization fingerprint, and at session end the (possibly
grown) record set is written back atomically.  A fingerprint mismatch
(different technology/options/temperature) simply ignores the file, so a
stale cache can never poison a run.

The win is **across runs** (and, under ``pytest-xdist``, multiplied by the
worker count, since session fixtures are per-process and every worker pays
characterization on a cold cache): point ``REPRO_TEST_LIBRARY_CACHE`` at a
persistent directory — locally a fixed path, in CI an ``actions/cache``-d
one — and subsequent runs characterize nothing.  Within a single cold run
the cache is only *published* at session teardown (workers start
simultaneously, so there is no useful intra-run handoff); the run-shared
default location merely keeps concurrent sessions from trampling system
temp.  Wall-clock numbers are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.loading import LoadingAnalyzer
from repro.device.presets import make_technology
from repro.gates.cache import characterization_fingerprint, load_library, save_library
from repro.gates.characterize import CharacterizationOptions, GateLibrary

#: Reduced injection grid used by test libraries: spans the same +/- 3.2 uA
#: range with fewer points so first-use characterization stays quick.
FAST_GRID = (-3.2e-6, -1.6e-6, 0.0, 1.6e-6, 3.2e-6)

#: Cache-file generation, folded into the cache filename.  The settings
#: fingerprint covers technology/options/temperature but NOT the model code
#: itself: with a persistent ``REPRO_TEST_LIBRARY_CACHE``, records produced
#: before a device-model or solver numerics change would otherwise be
#: silently reused.  Bump this when changing numerics (or wipe the cache
#: directory); the run-shared default location never outlives one run, so
#: only persistent caches are exposed.
CACHE_GENERATION = 1


@pytest.fixture(scope="session")
def library_cache_dir(tmp_path_factory) -> Path:
    """Directory holding the fingerprinted characterization caches.

    Default: a sibling of the pytest base temp shared by every xdist worker
    of the current run.  ``REPRO_TEST_LIBRARY_CACHE`` overrides it with a
    persistent location that also survives across runs.
    """
    override = os.environ.get("REPRO_TEST_LIBRARY_CACHE")
    if override:
        path = Path(override)
    else:
        base = tmp_path_factory.getbasetemp()
        # Under pytest-xdist each worker gets basetemp/popen-gwN; the parent
        # is the run-shared root where workers can see each other's cache.
        if base.name.startswith(("popen-", "gw")):
            base = base.parent
        path = base / "library-cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _disk_cached_library(
    technology, options: CharacterizationOptions, cache_dir: Path
):
    """Yield a :class:`GateLibrary` warmed from / saved to the disk cache."""
    library = GateLibrary(technology, options=options)
    fingerprint = characterization_fingerprint(
        technology, options, library.temperature_k
    )
    path = cache_dir / (
        f"{technology.name}-g{CACHE_GENERATION}-{fingerprint[:16]}.json"
    )
    if path.exists():
        try:
            load_library(library, path, strict=True)
        except (ValueError, KeyError, OSError):
            # Mismatched fingerprint or a torn file: characterize lazily as
            # if no cache existed; the session-end save repairs the file.
            pass
    yield library
    # Convergent-union publish: merge whatever is on disk *now* (another
    # xdist worker may have published records this worker never touched —
    # records are deterministic for a fingerprint, so overwrite direction
    # is irrelevant) and only republish when the union grew.  Last writer
    # still wins the rename race, but every publish is a superset of the
    # file it read, so repeated runs monotonically converge to the full
    # record set instead of ping-ponging partial per-worker views.
    on_disk = 0
    if path.exists():
        try:
            on_disk = load_library(library, path, strict=True)
        except (ValueError, KeyError, OSError):
            on_disk = 0
    if len(library.cached_records()) > on_disk:
        # Atomic publish (write + rename) so concurrent workers can never
        # tear each other's cache files; every variant is a valid,
        # fingerprinted cache.
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        try:
            save_library(library, tmp)
            tmp.replace(path)
        except OSError:  # pragma: no cover - disk-full etc.; cache is optional
            tmp.unlink(missing_ok=True)


@pytest.fixture(scope="session")
def bulk25():
    """The default 25 nm technology."""
    return make_technology("bulk-25nm")


@pytest.fixture(scope="session")
def bulk50():
    """The 50 nm technology of Sec. 2.1."""
    return make_technology("bulk-50nm")


@pytest.fixture(scope="session")
def d25s():
    """The subthreshold-dominated variant used by circuit-level experiments."""
    return make_technology("d25-s")


@pytest.fixture(scope="session")
def library25(bulk25, library_cache_dir):
    """A characterized library on the 25 nm technology (disk-backed cache)."""
    yield from _disk_cached_library(
        bulk25,
        CharacterizationOptions(injection_grid=FAST_GRID),
        library_cache_dir,
    )


@pytest.fixture(scope="session")
def library_d25s(d25s, library_cache_dir):
    """A characterized library on the subthreshold-dominated variant."""
    yield from _disk_cached_library(
        d25s,
        CharacterizationOptions(injection_grid=FAST_GRID),
        library_cache_dir,
    )


@pytest.fixture(scope="session")
def analyzer25(bulk25):
    """A loading analyzer on the 25 nm technology."""
    return LoadingAnalyzer(bulk25)
