"""Integration tests for the per-figure experiment drivers.

Each driver is run with a reduced configuration and checked for (a) result
structure and (b) the qualitative trend the corresponding paper figure
reports.  The full-size configurations live in ``benchmarks/``.
"""

import pytest

from repro.circuit.generators import loaded_inverter_cluster, random_logic
from repro.experiments import (
    run_fig4_device_trends,
    run_fig5_inverter_loading,
    run_fig6_ldall_surface,
    run_fig7_nand_vectors,
    run_fig8_device_variants,
    run_fig9_temperature,
    run_fig12_circuit_estimation,
    run_ivc_study,
    run_runtime_comparison,
)
from repro.optimize import GeneticOptions, GreedyOptions
from repro.device.presets import DeviceVariant
from repro.gates.characterize import GateLibrary


class TestFig4:
    def test_trends(self, bulk50):
        result = run_fig4_device_trends(
            bulk50,
            halo_values_cm3=[1e18, 4e18],
            tox_values_nm=[1.0, 1.4],
            temperatures_k=[300.0, 400.0],
        )
        # Halo: subthreshold falls, BTBT rises, gate flat.
        assert result.halo.subthreshold[1] < result.halo.subthreshold[0]
        assert result.halo.btbt[1] > result.halo.btbt[0]
        assert result.halo.gate[1] == pytest.approx(result.halo.gate[0], rel=1e-6)
        # Tox: gate falls, subthreshold rises.
        assert result.tox.gate[1] < result.tox.gate[0]
        assert result.tox.subthreshold[1] > result.tox.subthreshold[0]
        # Temperature: subthreshold rises by far the most.
        sub_ratio = result.temperature.subthreshold[1] / result.temperature.subthreshold[0]
        gate_ratio = result.temperature.gate[1] / result.temperature.gate[0]
        assert sub_ratio > 5.0
        assert gate_ratio < 1.5
        assert "Isub" in result.to_table()


class TestFig5Fig6:
    def test_fig5_panels(self, bulk25):
        result = run_fig5_inverter_loading(bulk25, loading_currents=(0.0, 2.0e-6))
        panel = result.input_loading_in0
        assert panel.effects[0].total == pytest.approx(0.0, abs=1e-9)
        assert panel.effects[-1].subthreshold > 0
        assert result.output_loading_in0.effects[-1].btbt < 0
        assert len(result.panels()) == 4
        assert "LD sub" in result.to_table()

    def test_fig6_surface(self, bulk25):
        result = run_fig6_ldall_surface(bulk25, grid=(0.0, 2.0e-6))
        assert result.input0.value(0, 0) == pytest.approx(0.0, abs=1e-9)
        # Moving along the input-loading axis raises LD_ALL, along the
        # output-loading axis lowers it.
        assert result.input0.value(1, 0) > result.input0.value(0, 0)
        assert result.input0.value(0, 1) < result.input0.value(0, 0)
        assert "IL-IN" in result.to_table()


@pytest.mark.slow
class TestFig7Fig8Fig9:
    def test_fig7_vector_dependence(self, bulk25):
        result = run_fig7_nand_vectors(bulk25, loading_currents=(0.0, 2.5e-6))
        assert set(result.panels) == {"00", "01", "10", "11"}
        # Input loading is stronger with an input at '0' than with '11'.
        assert (
            result.panel("01").input_a[-1].total
            > result.panel("11").input_a[-1].total
        )
        # Output loading is strongest when the output is '0' (vector '11').
        assert abs(result.panel("11").output[-1].total) > abs(
            result.panel("00").output[-1].total
        )
        assert "NAND2" in result.to_table()

    def test_fig8_variant_ordering(self):
        result = run_fig8_device_variants(loading_currents=(0.0, 2.5e-6))
        series = result.series
        assert (
            series[DeviceVariant.D25_S].max_input_total()
            > series[DeviceVariant.D25_G].max_input_total()
        )
        assert (
            series[DeviceVariant.D25_JN].max_output_total()
            > series[DeviceVariant.D25_G].max_output_total()
        )
        assert "d25-s" in result.to_table()

    def test_fig9_temperature_trend(self, bulk25):
        result = run_fig9_temperature(bulk25, temperatures_c=(25.0, 125.0))
        sub = result.component_series("subthreshold")
        assert sub[-1] > sub[0] > 0
        assert "LD sub" in result.to_table()


@pytest.mark.slow
class TestFig12AndRuntime:
    def test_fig12_small_suite(self, d25s, library_d25s):
        circuits = {
            "cluster": loaded_inverter_cluster(4, 4),
            "rnd40": random_logic("rnd40", 6, 40, rng=1),
        }
        result = run_fig12_circuit_estimation(
            circuits,
            technology=d25s,
            library=library_d25s,
            vectors=4,
            reference_vectors=1,
            reference_max_gates=100,
            rng=0,
        )
        assert {entry.name for entry in result.entries} == {"cluster", "rnd40"}
        cluster = result.entry("cluster")
        assert cluster.reference_power_uw is not None
        assert abs(cluster.estimate_vs_reference_percent["total"]) < 2.0
        assert cluster.impact.average_percent["subthreshold"] > 0
        table = result.to_table()
        assert "Fig. 12(a)" in table and "Fig. 12(c)" in table

    def test_runtime_speedup(self, d25s, library_d25s):
        circuit = random_logic("rt", 6, 30, rng=4)
        result = run_runtime_comparison(
            circuit, technology=d25s, library=library_d25s, vectors=1, rng=0
        )
        assert result.speedup > 10.0
        assert result.gate_count == 30
        assert "speed-up" in result.to_table()


class TestIvcStudy:
    def test_searched_vectors_never_lose_to_random(self, library_d25s):
        circuits = [
            random_logic("ivc_a", 6, 20, rng=2),
            random_logic("ivc_b", 8, 24, rng=3),
        ]
        study = run_ivc_study(
            circuits,
            library_d25s,
            seed=7,
            greedy_options=GreedyOptions(restarts=6),
            genetic_options=GeneticOptions(population=16, generations=10),
        )
        assert [entry.circuit_name for entry in study.results] == ["ivc_a", "ivc_b"]
        for entry in study.results:
            # The baseline budget never undercuts either optimizer's ledger.
            assert entry.random_evaluations >= entry.greedy.evaluations
            assert entry.random_evaluations >= entry.genetic.evaluations
            assert entry.greedy.best_total <= entry.random_best
            assert entry.genetic.best_total <= entry.random_best
            # Small circuits also record the oracle; searches must reach it.
            assert entry.exhaustive_best is not None
            assert entry.greedy.best_total == entry.exhaustive_best
            assert entry.improvement_percent("greedy") >= 0.0
        table = study.to_table()
        assert "best-of-random-N" in table and "ivc_b" in table

    def test_same_seed_reproduces_the_study(self, library_d25s):
        circuits = [random_logic("ivc_c", 6, 16, rng=5)]
        options = dict(
            greedy_options=GreedyOptions(restarts=4),
            genetic_options=GeneticOptions(population=12, generations=6),
        )
        first = run_ivc_study(circuits, library_d25s, seed=11, **options)
        second = run_ivc_study(circuits, library_d25s, seed=11, **options)
        assert first.results[0].random_best == second.results[0].random_best
        assert (
            first.results[0].greedy.best_total
            == second.results[0].greedy.best_total
        )
