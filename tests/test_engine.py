"""Regression tests for the batched campaign engine.

The contract of :mod:`repro.engine` is equivalence: the scalar
:class:`LoadingAwareEstimator` is the oracle, and the batched engine must
reproduce its totals (and per-gate breakdowns) to rounding error while the
parallel Monte-Carlo driver must reproduce the serial sample stream
bitwise.
"""

import numpy as np
import pytest

from repro.circuit.generators import (
    iscas_like,
    loaded_inverter_cluster,
    nand_tree,
    random_logic,
)
from repro.circuit.logic import random_vectors
from repro.core.baseline import NoLoadingEstimator
from repro.core.estimator import LoadingAwareEstimator
from repro.core.report import REPORT_COMPONENTS
from repro.core.vectors import minimum_leakage_vector, run_vector_campaign
from repro.engine import (
    ParallelMonteCarlo,
    clear_compile_cache,
    compile_circuit,
    run_compiled,
)
from repro.variation.montecarlo import run_loaded_inverter_monte_carlo


def _assert_campaigns_match(batched, scalar, rtol=1e-12):
    assert batched.vector_count == scalar.vector_count
    assert batched.method == scalar.method
    for component in REPORT_COMPONENTS:
        expected = scalar.totals(component)
        observed = batched.totals(component)
        np.testing.assert_allclose(observed, expected, rtol=rtol, atol=0.0)


class TestEngineOutOfRangePolicy:
    def test_engine_applies_extrapolation_policy(self, library25):
        """The batched LUT path must honour the same out-of-range policy as
        ResponseCurve.breakdown_at: a fanout large enough to push a net's
        loading outside the characterized grid warns (or raises)."""
        from repro.gates.lut import (
            ResponseCurveRangeWarning,
            set_extrapolation_policy,
        )

        circuit = loaded_inverter_cluster(0, 14)
        compiled = compile_circuit(circuit, library25)
        assignments = [{"in": 0}, {"in": 1}]
        previous = set_extrapolation_policy("warn")
        try:
            with pytest.warns(ResponseCurveRangeWarning, match="gate type"):
                run_compiled(compiled, assignments)
            set_extrapolation_policy("raise")
            with pytest.raises(ValueError, match="outside"):
                run_compiled(compiled, assignments)
            set_extrapolation_policy("clamp")
            run_compiled(compiled, assignments)  # silent again
        finally:
            set_extrapolation_policy(previous)


class TestBatchedCampaignMatchesScalar:
    @pytest.mark.parametrize("name,scale", [("s838", 0.1), ("s1196", 0.08)])
    def test_iscas_like_totals_pin_to_scalar(self, library_d25s, name, scale):
        circuit = iscas_like(name, scale=scale)
        estimator = LoadingAwareEstimator(library_d25s)
        vectors = list(random_vectors(circuit, 12, rng=9))
        batched = run_vector_campaign(
            estimator, circuit, vectors=vectors, engine="batched"
        )
        scalar = run_vector_campaign(
            estimator, circuit, vectors=vectors, engine="scalar"
        )
        _assert_campaigns_match(batched, scalar)

    def test_tied_inputs_pin_to_scalar(self, library_d25s):
        """Tied-input self-loading regression: a gate with two pins on one
        net must subtract *both* of its own pins from the net total, in the
        scalar estimator and in the engine's np.add.at accumulation alike."""
        from repro.circuit.netlist import Circuit
        from repro.gates.library import GateType

        circuit = Circuit(name="tied_mix")
        circuit.add_input("in")
        circuit.add_gate("drv", GateType.INV, ["in"], "x")
        circuit.add_gate("tied", GateType.NAND2, ["x", "x"], "y")
        circuit.add_gate("tied3", GateType.NAND3, ["x", "y", "x"], "w")
        circuit.add_gate("load", GateType.INV, ["x"], "z")
        circuit.add_output("w")
        circuit.add_output("z")

        estimator = LoadingAwareEstimator(library_d25s)
        vectors = [{"in": 0}, {"in": 1}]
        batched = run_vector_campaign(
            estimator, circuit, vectors=vectors, engine="batched"
        )
        scalar = run_vector_campaign(
            estimator, circuit, vectors=vectors, engine="scalar"
        )
        _assert_campaigns_match(batched, scalar)
        for v in range(len(vectors)):
            report_b, report_s = batched.reports[v], scalar.reports[v]
            for name in circuit.gates:
                assert report_b.per_gate[name].input_loading == pytest.approx(
                    report_s.per_gate[name].input_loading, rel=1e-12, abs=1e-24
                )

    def test_no_loading_totals_pin_to_scalar(self, library_d25s):
        circuit = iscas_like("s838", scale=0.1)
        estimator = NoLoadingEstimator(library_d25s)
        vectors = list(random_vectors(circuit, 6, rng=2))
        batched = run_vector_campaign(
            estimator, circuit, vectors=vectors, engine="batched"
        )
        scalar = run_vector_campaign(
            estimator, circuit, vectors=vectors, engine="scalar"
        )
        _assert_campaigns_match(batched, scalar)

    def test_materialized_reports_match_scalar_per_gate(self, library_d25s):
        circuit = loaded_inverter_cluster(4, 4)
        estimator = LoadingAwareEstimator(library_d25s)
        vectors = list(random_vectors(circuit, 3, rng=5))
        batched = run_vector_campaign(
            estimator, circuit, vectors=vectors, engine="batched"
        )
        scalar = run_vector_campaign(
            estimator, circuit, vectors=vectors, engine="scalar"
        )
        for v in range(3):
            report_b = batched.reports[v]
            report_s = scalar.reports[v]
            assert report_b.input_assignment == report_s.input_assignment
            assert set(report_b.per_gate) == set(report_s.per_gate)
            for gate_name, entry_s in report_s.per_gate.items():
                entry_b = report_b.per_gate[gate_name]
                assert entry_b.vector == entry_s.vector
                assert entry_b.gate_type_name == entry_s.gate_type_name
                for component in ("subthreshold", "gate", "btbt"):
                    assert entry_b.breakdown.component(component) == pytest.approx(
                        entry_s.breakdown.component(component), rel=1e-12
                    )
                assert entry_b.input_loading == pytest.approx(
                    entry_s.input_loading, rel=1e-9, abs=1e-24
                )
                assert entry_b.output_loading == pytest.approx(
                    entry_s.output_loading, rel=1e-9, abs=1e-24
                )

    def test_campaign_result_api_over_batched_run(self, library_d25s):
        circuit = nand_tree(2)
        campaign = run_vector_campaign(
            LoadingAwareEstimator(library_d25s), circuit, count=5, rng=1
        )
        # Engine-backed by default: totals precomputed, runtime from the batch.
        assert campaign.precomputed_totals is not None
        assert campaign.vector_count == 5
        assert campaign.totals().shape == (5,)
        assert campaign.mean_total() > 0
        assert campaign.runtime_s() > 0.0
        assert len(campaign.reports) == 5
        assert campaign.reports[0].metadata["engine"] == "batched"

    def test_engine_mode_validation(self, library_d25s):
        circuit = nand_tree(1)
        estimator = LoadingAwareEstimator(library_d25s)
        with pytest.raises(ValueError, match="engine"):
            run_vector_campaign(estimator, circuit, count=1, rng=0, engine="bogus")

        class NotLibraryBacked:
            method_name = "custom"

            def estimate(self, circuit, assignment):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError, match="library-backed"):
            run_vector_campaign(
                NotLibraryBacked(), circuit, count=1, rng=0, engine="batched"
            )

    def test_minimum_leakage_vector_matches_scalar(self, library_d25s):
        circuit = random_logic("minv_engine", 5, 18, rng=3)
        estimator = LoadingAwareEstimator(library_d25s)
        vectors = list(random_vectors(circuit, 10, rng=7))
        vec_b, total_b = minimum_leakage_vector(
            estimator, circuit, vectors=vectors, engine="batched"
        )
        vec_s, total_s = minimum_leakage_vector(
            estimator, circuit, vectors=vectors, engine="scalar"
        )
        assert vec_b == vec_s
        assert total_b == pytest.approx(total_s, rel=1e-12)

    def test_bad_assignment_rejected_like_propagate(self, library_d25s):
        circuit = nand_tree(1)
        compiled = compile_circuit(circuit, library_d25s)
        with pytest.raises(KeyError, match="unassigned"):
            run_compiled(compiled, [{"in0": 1}])
        with pytest.raises(KeyError, match="non-primary-input"):
            run_compiled(compiled, [{"in0": 1, "in1": 0, "bogus": 1}])

    def test_chunked_run_equals_single_pass(self, library_d25s):
        circuit = loaded_inverter_cluster(3, 3)
        compiled = compile_circuit(circuit, library_d25s)
        vectors = list(random_vectors(circuit, 9, rng=4))
        whole = run_compiled(compiled, vectors)
        chunked = run_compiled(compiled, vectors, chunk_size=2)
        for component, values in whole.component_totals().items():
            np.testing.assert_array_equal(values, chunked.component_totals()[component])


class TestCompileCache:
    def test_cache_hits_for_structural_copies(self, library_d25s):
        clear_compile_cache()
        circuit = nand_tree(2)
        first = compile_circuit(circuit, library_d25s)
        assert compile_circuit(circuit, library_d25s) is first
        # A structural copy (different object, same netlist) reuses the compile.
        assert compile_circuit(circuit.copy(), library_d25s) is first
        assert compile_circuit(circuit, library_d25s, cache=False) is not first

    def test_different_structure_recompiles(self, library_d25s):
        clear_compile_cache()
        first = compile_circuit(nand_tree(2), library_d25s)
        second = compile_circuit(nand_tree(3), library_d25s)
        assert first is not second


@pytest.mark.slow
class TestParallelMonteCarlo:
    def test_parallel_samples_pin_to_serial_bitwise(self, d25s):
        serial = run_loaded_inverter_monte_carlo(
            d25s, samples=4, rng=17, input_loads=2, output_loads=2
        )
        driver = ParallelMonteCarlo(
            d25s, input_loads=2, output_loads=2, max_workers=2
        )
        parallel = driver.run(4, rng=17)
        assert parallel.sample_count == serial.sample_count
        for component in REPORT_COMPONENTS:
            for loaded in (True, False):
                assert (
                    parallel.values(component, loaded=loaded).tolist()
                    == serial.values(component, loaded=loaded).tolist()
                )

    def test_worker_count_does_not_change_samples(self, d25s):
        one = ParallelMonteCarlo(
            d25s, input_loads=1, output_loads=1, max_workers=1
        ).run(3, rng=23)
        three = ParallelMonteCarlo(
            d25s, input_loads=1, output_loads=1, max_workers=3
        ).run(3, rng=23)
        assert one.values("total").tolist() == three.values("total").tolist()

    def test_parameter_validation(self, d25s):
        with pytest.raises(ValueError):
            ParallelMonteCarlo(d25s, max_workers=0)
        with pytest.raises(ValueError):
            ParallelMonteCarlo(d25s).run(0)
