"""Tests for the composed four-terminal MOSFET element."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.device.mosfet import Mosfet
from repro.device.presets import make_technology

_TECH = make_technology("bulk-25nm")
_VDD = _TECH.vdd

voltages = st.floats(min_value=-0.05, max_value=_VDD + 0.05)


class TestTerminalCurrents:
    def test_kcl_holds_for_off_nmos(self):
        currents = Mosfet(_TECH.nmos).terminal_currents(0.0, _VDD, 0.0, 0.0, 300.0)
        assert abs(currents.kcl_residual) < 1e-15

    def test_components_nonnegative(self):
        currents = Mosfet(_TECH.nmos).terminal_currents(0.0, _VDD, 0.0, 0.0, 300.0)
        assert currents.i_subthreshold >= 0
        assert currents.i_gate >= 0
        assert currents.i_btbt >= 0
        assert currents.total_leakage > 0

    def test_off_flag(self):
        off = Mosfet(_TECH.nmos).terminal_currents(0.0, _VDD, 0.0, 0.0, 300.0)
        on = Mosfet(_TECH.nmos).terminal_currents(_VDD, 0.01, 0.0, 0.0, 300.0)
        assert off.is_off
        assert not on.is_off
        assert on.i_subthreshold == 0.0

    def test_kcl_fast_path_matches_full(self):
        mosfet = Mosfet(_TECH.pmos)
        args = (0.0, _VDD * 0.4, _VDD, _VDD, 320.0)
        full = mosfet.terminal_currents(*args)
        fast = mosfet.kcl_currents(*args)
        assert fast == pytest.approx((full.ig, full.id, full.is_, full.ib))

    def test_pmos_mirror_of_nmos(self):
        """A PMOS with mirrored bias must produce mirrored terminal currents."""
        nmos = Mosfet(_TECH.nmos)
        pmos_params = _TECH.nmos.replace(polarity=_TECH.pmos.polarity)
        pmos = Mosfet(pmos_params)
        n = nmos.terminal_currents(0.0, 0.7, 0.0, 0.0, 300.0)
        p = pmos.terminal_currents(0.0, -0.7, 0.0, 0.0, 300.0)
        assert p.ig == pytest.approx(-n.ig, rel=1e-9, abs=1e-21)
        assert p.id == pytest.approx(-n.id, rel=1e-9, abs=1e-21)
        assert p.is_ == pytest.approx(-n.is_, rel=1e-9, abs=1e-21)
        assert p.ib == pytest.approx(-n.ib, rel=1e-9, abs=1e-21)

    def test_source_drain_symmetry(self):
        """Swapping source and drain must swap their terminal currents."""
        mosfet = Mosfet(_TECH.nmos)
        forward = mosfet.terminal_currents(0.3, 0.8, 0.1, 0.0, 300.0)
        swapped = mosfet.terminal_currents(0.3, 0.1, 0.8, 0.0, 300.0)
        assert forward.id == pytest.approx(swapped.is_, rel=1e-6, abs=1e-20)
        assert forward.is_ == pytest.approx(swapped.id, rel=1e-6, abs=1e-20)

    def test_width_override_scales_leakage(self):
        base = Mosfet(_TECH.nmos).terminal_currents(0.0, _VDD, 0.0, 0.0, 300.0)
        wide = Mosfet(_TECH.nmos, width_nm=2 * _TECH.nmos.width_nm).terminal_currents(
            0.0, _VDD, 0.0, 0.0, 300.0
        )
        assert wide.total_leakage == pytest.approx(2 * base.total_leakage, rel=0.05)

    def test_vth_shift_hook(self):
        base = Mosfet(_TECH.nmos).terminal_currents(0.0, _VDD, 0.0, 0.0, 300.0)
        shifted = Mosfet(_TECH.nmos, vth_shift=0.05).terminal_currents(
            0.0, _VDD, 0.0, 0.0, 300.0
        )
        assert shifted.i_subthreshold < base.i_subthreshold

    @settings(max_examples=60, deadline=None)
    @given(vg=voltages, vd=voltages, vs=voltages, vb=st.just(0.0))
    def test_kcl_residual_is_negligible_everywhere(self, vg, vd, vs, vb):
        """Charge conservation: terminal currents always sum to ~zero."""
        currents = Mosfet(_TECH.nmos).terminal_currents(vg, vd, vs, vb, 300.0)
        scale = max(abs(currents.ig), abs(currents.id), abs(currents.is_), 1e-12)
        assert abs(currents.kcl_residual) < 1e-9 * scale + 1e-18

    @settings(max_examples=60, deadline=None)
    @given(vg=voltages, vd=voltages, vs=voltages)
    def test_pmos_kcl_residual(self, vg, vd, vs):
        currents = Mosfet(_TECH.pmos).terminal_currents(vg, vd, vs, _VDD, 300.0)
        scale = max(abs(currents.ig), abs(currents.id), abs(currents.is_), 1e-12)
        assert abs(currents.kcl_residual) < 1e-9 * scale + 1e-18


class TestGatePinCurrentSigns:
    """The sign conventions Sec. 4 of the paper relies on."""

    def test_receiver_injects_into_a_low_net(self):
        """With the input net at '0' the receiver pushes current into it."""
        nmos = Mosfet(_TECH.nmos).gate_pin_current(0.0, _VDD, 0.0, 0.0, 300.0)
        pmos = Mosfet(_TECH.pmos).gate_pin_current(0.0, _VDD, _VDD, _VDD, 300.0)
        # Negative pin current = current flows out of the device into the net.
        assert nmos < 0
        assert pmos < 0

    def test_receiver_draws_from_a_high_net(self):
        """With the input net at '1' the receiver pulls current out of it."""
        nmos = Mosfet(_TECH.nmos).gate_pin_current(_VDD, 0.0, 0.0, 0.0, 300.0)
        pmos = Mosfet(_TECH.pmos).gate_pin_current(_VDD, 0.0, _VDD, _VDD, 300.0)
        assert nmos > 0
        assert pmos > 0
