"""Regression tests for the batched transistor-level reference path.

The contract mirrors the batched campaign engine's: the scalar
:meth:`ReferenceSimulator.estimate` relaxation is the oracle, and
:meth:`ReferenceSimulator.estimate_batch` must reproduce its per-gate
breakdowns and totals to solver-tolerance error while being *bitwise*
independent of how a vector set is grouped into batches (chunk sizes,
batch neighbours, parallel workers).
"""

import numpy as np
import pytest

from repro.circuit.flatten import flatten, flatten_batch
from repro.circuit.generators import (
    array_multiplier,
    inverter_chain,
    iscas_like,
    nand_tree,
)
from repro.circuit.logic import random_vectors
from repro.core.reference import ReferenceSimulator, run_reference_campaign
from repro.core.report import REPORT_COMPONENTS
from repro.engine import ParallelReferenceCampaign
from repro.spice.solver import SolverOptions

#: Solver-tolerance-level agreement between the scalar and batched engines
#: (default tolerances; the benchmark pins 1e-11 at tightened ones).
ENGINE_RTOL = 1e-6


def _assert_reports_match(batched, scalar, rtol=ENGINE_RTOL):
    assert batched.input_assignment == scalar.input_assignment
    assert set(batched.per_gate) == set(scalar.per_gate)
    for name, entry_s in scalar.per_gate.items():
        entry_b = batched.per_gate[name]
        assert entry_b.vector == entry_s.vector
        assert entry_b.gate_type_name == entry_s.gate_type_name
        for component in ("subthreshold", "gate", "btbt"):
            assert entry_b.breakdown.component(component) == pytest.approx(
                entry_s.breakdown.component(component), rel=rtol, abs=1e-24
            )
    for component in REPORT_COMPONENTS:
        assert batched.component(component) == pytest.approx(
            scalar.component(component), rel=rtol
        )


def _bitwise_equal(report_a, report_b):
    if report_a.input_assignment != report_b.input_assignment:
        return False
    for name, entry_a in report_a.per_gate.items():
        entry_b = report_b.per_gate[name]
        if entry_a.breakdown.as_dict() != entry_b.breakdown.as_dict():
            return False
    return True


class TestFlattenBatch:
    def test_structure_shared_and_per_vector_arrays(self, d25s):
        circuit = nand_tree(2)
        assignments = [
            {f"in{i}": bit for i in range(4)} for bit in (0, 1)
        ]
        flattened = flatten_batch(circuit, d25s, assignments)
        assert flattened.batch == 2
        views = flattened.netlist_views()
        assert len(views) == 2
        # One shared transistor topology: the views alias the instance list.
        assert all(view.transistors is flattened.netlist.transistors for view in views)
        # Per-vector columns equal the scalar flatten of the same assignment.
        seeds = flattened.initial_voltages()
        for column, assignment in enumerate(assignments):
            scalar = flatten(circuit, d25s, assignment)
            for net in circuit.primary_inputs:
                assert views[column].nodes[net].voltage == pytest.approx(
                    scalar.netlist.nodes[net].voltage
                )
            scalar_seeds = scalar.initial_voltages()
            assert set(seeds) == set(scalar_seeds)
            for node, values in seeds.items():
                assert values[column] == scalar_seeds[node]

    def test_empty_assignments_rejected(self, d25s):
        with pytest.raises(ValueError, match="at least one"):
            flatten_batch(nand_tree(1), d25s, [])


class TestBatchedMatchesScalar:
    # The ENGINE_RTOL parity bar encodes "same relaxation, vectorized": the
    # batched Gauss-Seidel sweeps mirror the scalar solver's trajectory, so
    # these tests pin method="gauss-seidel".  The Newton default is compared
    # against the scalar oracle in tests/test_newton_solver.py, at tight
    # solver tolerances where both engines are at the root.
    GS = SolverOptions(method="gauss-seidel")

    def test_synthetic_circuit(self, d25s):
        circuit = iscas_like("s838", scale=0.05)
        vectors = list(random_vectors(circuit, 4, rng=3))
        simulator = ReferenceSimulator(d25s, solver_options=self.GS)
        batched = simulator.estimate_batch(circuit, vectors)
        for report, vector in zip(batched, vectors):
            _assert_reports_match(report, simulator.estimate(circuit, vector))
            assert report.metadata["engine"] == "batched"
            assert report.metadata["solver_converged"]

    def test_multiplier(self, d25s):
        circuit = array_multiplier(3)
        inputs = list(circuit.primary_inputs)
        vectors = [
            {net: (i >> j) & 1 for j, net in enumerate(inputs)}
            for i in (0, 21, 63)
        ]
        simulator = ReferenceSimulator(d25s, solver_options=self.GS)
        batched = simulator.estimate_batch(circuit, vectors)
        for report, vector in zip(batched, vectors):
            _assert_reports_match(report, simulator.estimate(circuit, vector))


class TestBatchCompositionInvariance:
    def test_chunk_size_is_bitwise_neutral(self, d25s):
        circuit = nand_tree(2)
        vectors = list(random_vectors(circuit, 5, rng=7))
        simulator = ReferenceSimulator(d25s)
        whole = simulator.estimate_batch(circuit, vectors, chunk_size=5)
        chunked = simulator.estimate_batch(circuit, vectors, chunk_size=2)
        solo = simulator.estimate_batch(circuit, vectors, chunk_size=1)
        for a, b, c in zip(whole, chunked, solo):
            assert _bitwise_equal(a, b)
            assert _bitwise_equal(a, c)

    def test_mixed_batch_with_corner_vectors(self, d25s):
        """A batch mixing all-zeros, all-ones and random vectors: every
        column must match its own single-vector batch bitwise."""
        circuit = nand_tree(2)
        inputs = list(circuit.primary_inputs)
        vectors = (
            [{net: 0 for net in inputs}]
            + list(random_vectors(circuit, 2, rng=11))
            + [{net: 1 for net in inputs}]
        )
        simulator = ReferenceSimulator(d25s)
        together = simulator.estimate_batch(circuit, vectors)
        for vector, report in zip(vectors, together):
            [alone] = simulator.estimate_batch(circuit, [vector])
            assert _bitwise_equal(report, alone)
        # The corner vectors really are in the batch (and differ).
        assert together[0].input_assignment == {net: 0 for net in inputs}
        assert together[-1].input_assignment == {net: 1 for net in inputs}
        assert together[0].total != together[-1].total

    def test_chunk_size_validation(self, d25s):
        simulator = ReferenceSimulator(d25s)
        with pytest.raises(ValueError, match="chunk_size"):
            simulator.estimate_batch(nand_tree(1), [{"in0": 0, "in1": 0}], chunk_size=0)


class TestReferenceCampaign:
    def test_batched_campaign_matches_scalar_campaign(self, d25s):
        circuit = inverter_chain(3)
        vectors = [{"in": 0}, {"in": 1}]
        batched = run_reference_campaign(
            circuit, d25s, vectors=vectors, engine="batched"
        )
        scalar = run_reference_campaign(
            circuit, d25s, vectors=vectors, engine="scalar"
        )
        assert batched.method == scalar.method == "reference"
        assert batched.vector_count == scalar.vector_count == 2
        np.testing.assert_allclose(
            batched.totals(), scalar.totals(), rtol=ENGINE_RTOL
        )
        assert batched.runtime_s() > 0.0

    def test_engine_validation(self, d25s):
        with pytest.raises(ValueError, match="engine"):
            run_reference_campaign(
                inverter_chain(1), d25s, vectors=[{"in": 0}], engine="quantum"
            )

    def test_empty_vector_set_rejected(self, d25s):
        with pytest.raises(ValueError, match="no vectors"):
            run_reference_campaign(inverter_chain(1), d25s, vectors=[])

    def test_random_vector_draw(self, d25s):
        campaign = run_reference_campaign(
            nand_tree(1), d25s, count=2, rng=5
        )
        assert campaign.vector_count == 2

    def test_parallel_driver_is_bitwise_identical(self, d25s):
        circuit = nand_tree(2)
        vectors = list(random_vectors(circuit, 4, rng=13))
        serial = run_reference_campaign(
            circuit, d25s, vectors=vectors, chunk_size=2
        )
        parallel = ParallelReferenceCampaign(
            d25s, max_workers=2, chunk_size=2
        ).run(circuit, vectors)
        assert parallel.method == "reference"
        for a, b in zip(serial.reports, parallel.reports):
            assert _bitwise_equal(a, b)

    def test_parallel_driver_validation(self, d25s):
        with pytest.raises(ValueError, match="engine"):
            ParallelReferenceCampaign(d25s, engine="nope")
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelReferenceCampaign(d25s, chunk_size=0)
        with pytest.raises(ValueError, match="max_workers"):
            ParallelReferenceCampaign(d25s, max_workers=0)
        with pytest.raises(ValueError, match="no vectors"):
            ParallelReferenceCampaign(d25s, max_workers=1).run(nand_tree(1), [])


class TestMissingOwnerDiagnostic:
    def test_scalar_path_names_gate_template_and_owners(self, d25s, monkeypatch):
        import repro.core.reference as reference_module

        real = reference_module.leakage_by_owner

        def dropping(netlist, op):
            result = real(netlist, op)
            result.pop("inv1")
            return result

        monkeypatch.setattr(reference_module, "leakage_by_owner", dropping)
        simulator = ReferenceSimulator(d25s)
        with pytest.raises(RuntimeError) as excinfo:
            simulator.estimate(inverter_chain(2), {"in": 0})
        message = str(excinfo.value)
        assert "'inv1'" in message  # the gate
        assert "template 'inv'" in message  # its template
        assert "'inv2'" in message  # the owners actually present

    def test_batched_path_names_gate_template_and_owners(self, d25s, monkeypatch):
        from repro.spice.batched import BatchedDcSolver

        real = BatchedDcSolver.leakage_by_owner

        def dropping(self, op):
            result = real(self, op)
            result.pop("inv1")
            return result

        monkeypatch.setattr(BatchedDcSolver, "leakage_by_owner", dropping)
        simulator = ReferenceSimulator(d25s)
        with pytest.raises(RuntimeError) as excinfo:
            simulator.estimate_batch(inverter_chain(2), [{"in": 0}])
        message = str(excinfo.value)
        assert "'inv1'" in message
        assert "template 'inv'" in message
        assert "'inv2'" in message
