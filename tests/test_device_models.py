"""Tests for the subthreshold, gate-tunneling and BTBT compact models.

These encode the physical signatures the paper's analysis relies on
(Sec. 2-3, Fig. 4): exponential bias/temperature sensitivities with the right
signs, and the geometry/doping trade-offs between the components.
"""

import pytest

from repro.device.btbt import btbt_current_density, junction_btbt_current
from repro.device.gate_tunneling import (
    gate_tunneling_components,
    tunneling_current_density,
)
from repro.device.subthreshold import (
    channel_current,
    effective_threshold,
    is_off,
    oxide_capacitance_per_area,
    specific_current,
)


class TestSubthreshold:
    def test_off_current_positive(self, bulk25):
        current = channel_current(bulk25.nmos, 0.0, bulk25.vdd, 0.0, 300.0)
        assert current > 0

    def test_increases_exponentially_with_vgs(self, bulk25):
        low = channel_current(bulk25.nmos, 0.0, bulk25.vdd, 0.0, 300.0)
        high = channel_current(bulk25.nmos, 0.10, bulk25.vdd, 0.0, 300.0)
        assert high / low > 5.0

    def test_dibl_raises_leakage_with_vds(self, bulk25):
        low_vds = channel_current(bulk25.nmos, 0.0, 0.3, 0.0, 300.0)
        high_vds = channel_current(bulk25.nmos, 0.0, bulk25.vdd, 0.0, 300.0)
        assert high_vds > low_vds

    def test_body_effect_reduces_leakage(self, bulk25):
        grounded = channel_current(bulk25.nmos, 0.0, bulk25.vdd, 0.0, 300.0)
        reverse_body = channel_current(bulk25.nmos, 0.0, bulk25.vdd, -0.3, 300.0)
        assert reverse_body < grounded

    def test_temperature_dependence_is_strong(self, bulk25):
        cold = channel_current(bulk25.nmos, 0.0, bulk25.vdd, 0.0, 300.0)
        hot = channel_current(bulk25.nmos, 0.0, bulk25.vdd, 0.0, 400.0)
        assert hot / cold > 5.0

    def test_thicker_oxide_increases_subthreshold(self, bulk25):
        nominal = channel_current(bulk25.nmos, 0.0, bulk25.vdd, 0.0, 300.0)
        thick = channel_current(
            bulk25.nmos.replace(tox_nm=bulk25.nmos.tox_nm + 0.2),
            0.0,
            bulk25.vdd,
            0.0,
            300.0,
        )
        assert thick > nominal

    def test_heavier_halo_reduces_subthreshold(self, bulk25):
        nominal = channel_current(bulk25.nmos, 0.0, bulk25.vdd, 0.0, 300.0)
        heavy = channel_current(
            bulk25.nmos.replace_btbt(halo_cm3=2 * bulk25.nmos.btbt.halo_cm3),
            0.0,
            bulk25.vdd,
            0.0,
            300.0,
        )
        assert heavy < nominal

    def test_vth_shift_moves_current(self, bulk25):
        nominal = channel_current(bulk25.nmos, 0.0, bulk25.vdd, 0.0, 300.0)
        shifted = channel_current(
            bulk25.nmos, 0.0, bulk25.vdd, 0.0, 300.0, vth_shift=0.05
        )
        assert shifted < nominal

    def test_mobility_degradation_only_above_threshold(self, bulk25):
        device = bulk25.nmos
        no_theta = device.replace_subthreshold(theta_mobility=0.0)
        off_with = channel_current(device, 0.0, bulk25.vdd, 0.0, 300.0)
        off_without = channel_current(no_theta, 0.0, bulk25.vdd, 0.0, 300.0)
        assert off_with == pytest.approx(off_without, rel=1e-9)
        on_with = channel_current(device, bulk25.vdd, 0.05, 0.0, 300.0)
        on_without = channel_current(no_theta, bulk25.vdd, 0.05, 0.0, 300.0)
        assert on_with < on_without

    def test_is_off_classification(self, bulk25):
        assert is_off(bulk25.nmos, 0.0, bulk25.vdd, 0.0, 300.0)
        assert not is_off(bulk25.nmos, bulk25.vdd, 0.05, 0.0, 300.0)

    def test_negative_vds_rejected(self, bulk25):
        with pytest.raises(ValueError):
            channel_current(bulk25.nmos, 0.0, -0.1, 0.0, 300.0)

    def test_oxide_capacitance_and_specific_current(self, bulk25):
        assert oxide_capacitance_per_area(1.0) > oxide_capacitance_per_area(2.0)
        with pytest.raises(ValueError):
            oxide_capacitance_per_area(0.0)
        assert specific_current(bulk25.nmos, 300.0) > 0

    def test_effective_threshold_drops_with_temperature(self, bulk25):
        cold = effective_threshold(bulk25.nmos, bulk25.vdd, 0.0, 300.0)
        hot = effective_threshold(bulk25.nmos, bulk25.vdd, 0.0, 400.0)
        assert hot < cold


class TestGateTunneling:
    def test_zero_bias_zero_current(self, bulk25):
        params = bulk25.nmos.gate_tunneling
        assert tunneling_current_density(0.0, bulk25.nmos.tox_nm, params) == 0.0

    def test_calibration_point(self, bulk25):
        params = bulk25.nmos.gate_tunneling
        value = tunneling_current_density(params.vref, params.tox_ref_nm, params)
        assert value == pytest.approx(params.jg_ref, rel=1e-6)

    def test_increases_with_bias(self, bulk25):
        params = bulk25.nmos.gate_tunneling
        low = tunneling_current_density(0.5, bulk25.nmos.tox_nm, params)
        high = tunneling_current_density(0.9, bulk25.nmos.tox_nm, params)
        assert high > low > 0

    def test_decreases_exponentially_with_tox(self, bulk25):
        params = bulk25.nmos.gate_tunneling
        thin = tunneling_current_density(0.9, 1.0, params)
        thick = tunneling_current_density(0.9, 1.4, params)
        assert thin / thick > 10.0

    def test_nearly_temperature_independent(self, bulk25):
        params = bulk25.nmos.gate_tunneling
        cold = tunneling_current_density(0.9, 1.0, params, 300.0)
        hot = tunneling_current_density(0.9, 1.0, params, 400.0)
        assert abs(hot - cold) / cold < 0.10

    def test_component_signs_for_off_nmos(self, bulk25):
        device = bulk25.nmos
        vdd = bulk25.vdd
        # Off NMOS in an inverter at input '0': gate 0, drain vdd.
        components = gate_tunneling_components(device, 0.0, vdd, 0.0, 0.0, 300.0, 0.2)
        # Gate-to-drain overlap sees a negative gate-drain bias: current flows
        # out of the gate terminal (negative contribution).
        assert components.igdo < 0
        assert components.magnitude > 0

    def test_on_nmos_gate_to_channel_dominates(self, bulk25):
        device = bulk25.nmos
        vdd = bulk25.vdd
        components = gate_tunneling_components(device, vdd, 0.0, 0.0, 0.0, 300.0, 0.2)
        assert components.igcs > 0
        assert components.igcd > 0
        assert components.total_gate_terminal > 0


class TestBtbt:
    def test_no_current_without_reverse_bias(self, bulk25):
        params = bulk25.nmos.btbt
        assert btbt_current_density(0.0, params) == 0.0
        assert btbt_current_density(-0.5, params) == 0.0

    def test_calibration_point(self, bulk25):
        # The calibration point is defined at the *reference* halo dose.
        params = bulk25.nmos.replace_btbt(
            halo_cm3=bulk25.nmos.btbt.halo_ref_cm3
        ).btbt
        value = btbt_current_density(params.vref, params)
        assert value == pytest.approx(params.jbtbt_ref, rel=1e-6)

    def test_increases_with_reverse_bias(self, bulk25):
        params = bulk25.nmos.btbt
        assert btbt_current_density(0.9, params) > btbt_current_density(0.5, params)

    def test_increases_strongly_with_halo(self, bulk25):
        light = bulk25.nmos.replace_btbt(halo_cm3=1.0e18).btbt
        heavy = bulk25.nmos.replace_btbt(halo_cm3=6.0e18).btbt
        ratio = btbt_current_density(0.9, heavy) / btbt_current_density(0.9, light)
        assert ratio > 10.0

    def test_mild_temperature_increase(self, bulk25):
        params = bulk25.nmos.btbt
        cold = btbt_current_density(0.9, params, 300.0)
        hot = btbt_current_density(0.9, params, 400.0)
        assert hot > cold
        assert hot / cold < 3.0

    def test_junction_current_scales_with_area(self, bulk25):
        narrow = junction_btbt_current(bulk25.nmos, bulk25.vdd, 0.0, 300.0)
        wide = junction_btbt_current(
            bulk25.nmos.scaled_width(2.0), bulk25.vdd, 0.0, 300.0
        )
        assert wide == pytest.approx(2 * narrow, rel=1e-9)
