"""Tests for the batched damped-Newton DC solver and its analytic Jacobians.

Three layers are covered:

* device layer — analytic model derivatives
  (``*_grad_v`` twins and :meth:`PackedMosfets.kcl_jacobian`) against
  central finite differences of the value twins, across the bias regions
  with non-trivial branch structure (deep subthreshold, the
  mobility-degradation clamp corner near threshold, the smooth Vds~0
  source/drain blend);
* circuit layer — the assembled dense ``(B, N, N)`` free-node Jacobian
  against finite differences of the assembled residual, on mixed batches;
* solver layer — Newton-vs-Gauss-Seidel equivalence at tight tolerances,
  bitwise batch-composition invariance, the Gauss–Seidel fallback
  (bitwise identical to a pure relaxation solve), the characterization
  convergence policy, and the solver-method cache fingerprint.
"""

import numpy as np
import pytest

from repro.device.batched import PackedMosfets
from repro.device.btbt import btbt_current_density_grad_v, btbt_current_density_v
from repro.device.gate_tunneling import (
    gate_tunneling_components_grad_v,
    gate_tunneling_components_v,
    tunneling_current_density_grad_v,
    tunneling_current_density_v,
)
from repro.device.mosfet import Mosfet
from repro.device.subthreshold import (
    channel_current_grad_v,
    channel_current_v,
    effective_threshold,
    effective_threshold_grad_v,
    effective_threshold_v,
)
from repro.gates.cache import (
    characterization_fingerprint,
    load_library,
    save_library,
)
from repro.gates.characterize import (
    CharacterizationConvergenceWarning,
    CharacterizationOptions,
    GateCharacterizer,
    GateLibrary,
)
from repro.gates.library import GateType
from repro.gates.templates import build_gate_transistors
from repro.spice.analysis import leakage_by_owner
from repro.spice.batched import BatchedDcSolver
from repro.spice.netlist import TransistorNetlist
from repro.spice.newton import _NewtonAssembler
from repro.spice.solver import DcSolver, SolverOptions

#: Tight tolerances put both engines at the root, far below the 1e-9
#: leakage-agreement bar the Newton path is held to.
TIGHT_NEWTON = SolverOptions(
    voltage_tol=1e-11, xtol=1e-14, max_sweeps=250, method="newton"
)
TIGHT_GS = SolverOptions(
    voltage_tol=1e-11, xtol=1e-14, max_sweeps=250, method="gauss-seidel"
)


def assert_grad_close(analytic, fd, rtol=1e-3, floor=1e-18):
    """Masked relative comparison: entries whose magnitude (on either side)
    stays below ``floor`` are dominated by finite-difference roundoff and
    carry no Jacobian information."""
    analytic = np.asarray(analytic, dtype=float)
    fd = np.asarray(fd, dtype=float)
    scale = np.maximum(np.abs(analytic), np.abs(fd))
    mask = scale > floor
    if not mask.any():
        return
    error = np.abs(analytic - fd)[mask] / scale[mask]
    assert float(error.max()) <= rtol, (
        f"worst gradient mismatch {float(error.max()):.3e} "
        f"(analytic {analytic[mask][np.argmax(error)]:.6e}, "
        f"fd {fd[mask][np.argmax(error)]:.6e})"
    )


def packed_single(device, temperature_k=300.0, vth_shift=0.0) -> PackedMosfets:
    """A 1x1 packed grid: the parameter arrays the grad twins consume."""
    return PackedMosfets([[Mosfet(device, vth_shift=vth_shift)]], temperature_k)


class TestSubthresholdGradients:
    H = 1e-6

    def _threshold_kwargs(self, packed):
        return dict(
            vth_base=packed.vth_base,
            body_gamma=packed.body_gamma,
            phi_s=packed.phi_s,
            sqrt_phi_s=packed.sqrt_phi_s,
            dibl=packed.dibl,
        )

    def _channel_kwargs(self, packed):
        return dict(
            n_swing=packed.n_swing,
            i_spec=packed.i_spec,
            theta_mobility=packed.theta_mobility,
            isub_scale=packed.isub_scale,
        )

    def _bias_points(self, device):
        """(vgs, vds, vbs) spanning subthreshold, the clamp corner, on."""
        vth = effective_threshold(device, 0.5, 0.0, 300.0)
        return np.array(
            [
                (0.05, 1.0, 0.0),  # deep subthreshold
                (0.0, 0.6, -0.3),  # off with body bias
                (vth - 0.002, 0.5, 0.0),  # just below the clamp corner
                (vth + 0.002, 0.5, 0.0),  # just above the clamp corner
                (vth + 0.3, 1.0, 0.0),  # strong inversion
                (0.4, 0.004, 0.0),  # small Vds
            ]
        ).T

    def test_threshold_and_channel_match_finite_differences(self, bulk25):
        for device in (bulk25.nmos, bulk25.pmos):
            packed = packed_single(device)
            vgs, vds, vbs = self._bias_points(device)
            kwargs = self._threshold_kwargs(packed)

            def current(vgs, vds, vbs):
                vth = effective_threshold_v(vds, vbs, **kwargs)
                return channel_current_v(
                    vgs, vds, 300.0, vth_eff=vth, **self._channel_kwargs(packed)
                )

            vth, dvds, dvbs = effective_threshold_grad_v(vds, vbs, **kwargs)
            np.testing.assert_array_equal(
                vth, effective_threshold_v(vds, vbs, **kwargs)
            )
            value, d_vgs, d_vds, d_vbs = channel_current_grad_v(
                vgs,
                vds,
                300.0,
                vth_eff=vth,
                dvth_dvds=dvds,
                dvth_dvbs=dvbs,
                **self._channel_kwargs(packed),
            )
            np.testing.assert_array_equal(value, current(vgs, vds, vbs))

            h = self.H
            assert_grad_close(
                d_vgs, (current(vgs + h, vds, vbs) - current(vgs - h, vds, vbs)) / (2 * h)
            )
            assert_grad_close(
                d_vds, (current(vgs, vds + h, vbs) - current(vgs, vds - h, vbs)) / (2 * h)
            )
            assert_grad_close(
                d_vbs, (current(vgs, vds, vbs + h) - current(vgs, vds, vbs - h)) / (2 * h)
            )


class TestGateTunnelingGradients:
    def test_density_gradient_across_branches(self, bulk25):
        packed = packed_single(bulk25.nmos)
        phi = float(packed.barrier_ev[0, 0])
        kwargs = dict(
            barrier_ev=packed.barrier_ev,
            b_tox_per_nm=packed.b_tox_per_nm,
            density_scale=packed.gt_density_scale,
            temp_factor=packed.gt_temp_factor,
        )
        # Points on both sides of every branch boundary, none straddling one.
        vox = np.array([5e-7, 1e-4, 0.05, 0.4, 0.9 * phi, 1.1 * phi, 1.8])
        h = np.minimum(1e-7, 0.1 * vox)
        value, grad = tunneling_current_density_grad_v(
            vox, packed.tox_nm, **kwargs
        )
        np.testing.assert_array_equal(
            value, tunneling_current_density_v(vox, packed.tox_nm, **kwargs)
        )
        fd = (
            tunneling_current_density_v(vox + h, packed.tox_nm, **kwargs)
            - tunneling_current_density_v(vox - h, packed.tox_nm, **kwargs)
        ) / (2 * h)
        assert_grad_close(grad, fd, rtol=2e-3)

    def test_components_match_finite_differences(self, bulk25):
        """Including the smooth Vds~0 source/drain blend region."""
        packed = packed_single(bulk25.nmos)
        threshold_kwargs = dict(
            vth_base=packed.vth_base,
            body_gamma=packed.body_gamma,
            phi_s=packed.phi_s,
            sqrt_phi_s=packed.sqrt_phi_s,
            dibl=packed.dibl,
        )
        model_kwargs = dict(
            tox_nm=packed.tox_nm,
            overlap_area_um2=packed.overlap_area,
            gate_area_um2=packed.gate_area,
            accumulation_factor=packed.accumulation_factor,
            gb_fraction=packed.gb_fraction,
            barrier_ev=packed.barrier_ev,
            b_tox_per_nm=packed.b_tox_per_nm,
            density_scale=packed.gt_density_scale,
            temp_factor=packed.gt_temp_factor,
            igate_scale=packed.igate_scale,
        )

        def components(g, d, s, b):
            vth = effective_threshold_v(d - s, b - s, **threshold_kwargs)
            return np.stack(
                gate_tunneling_components_v(g, d, s, b, vth_eff=vth, **model_kwargs)
            )

        # Ordered-frame points (d >= s); the last three probe the Vds~0
        # blend at offsets well inside the 0.05 V smoothing width.  The
        # leading axis of one matches the packed (slots, batch) grid shape.
        g = np.array([[1.0, 1.0, 0.0, 0.2, 0.9, 0.9, 0.9]])
        d = np.array([[1.0, 0.5, 1.0, 0.8, 0.41, 0.402, 0.4006]])
        s = np.array([[0.0, 0.0, 0.0, 0.1, 0.4, 0.4, 0.4]])
        b = np.array([[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]])

        vth, dvds, dvbs = effective_threshold_grad_v(
            d - s, b - s, **threshold_kwargs
        )
        value, jacobian = gate_tunneling_components_grad_v(
            g,
            d,
            s,
            b,
            vth_eff=vth,
            dvth_dd=dvds,
            dvth_ds=-(dvds + dvbs),
            dvth_db=dvbs,
            **model_kwargs,
        )
        np.testing.assert_array_equal(value, components(g, d, s, b))

        h = 1e-7
        volts = [g, d, s, b]
        for x in range(4):
            plus = [v.copy() for v in volts]
            minus = [v.copy() for v in volts]
            plus[x] = plus[x] + h
            minus[x] = minus[x] - h
            fd = (components(*plus) - components(*minus)) / (2 * h)
            # Floor above the finite-difference roundoff noise (~1e-14 A/V
            # at these current magnitudes): structurally-zero partials are
            # checked against noisy-zero differences.
            assert_grad_close(jacobian[:, x], fd, rtol=2e-3, floor=1e-12)


class TestBtbtGradients:
    def test_density_gradient(self, bulk25):
        for device in (bulk25.nmos, bulk25.pmos):
            packed = packed_single(device)
            kwargs = dict(
                jbtbt_ref=packed.jbtbt_ref,
                vref=packed.btbt_vref,
                psi_bi=packed.psi_bi,
                field_exponent=packed.field_exponent,
                field_scale=packed.field_scale,
                b_eff=packed.b_eff,
                reference=packed.btbt_reference,
            )
            vrev = np.array([1e-4, 0.01, 0.2, 0.7, 1.0, 1.4])
            h = np.minimum(1e-7, 0.1 * vrev)
            value, grad = btbt_current_density_grad_v(vrev, **kwargs)
            np.testing.assert_array_equal(
                value, btbt_current_density_v(vrev, **kwargs)
            )
            fd = (
                btbt_current_density_v(vrev + h, **kwargs)
                - btbt_current_density_v(vrev - h, **kwargs)
            ) / (2 * h)
            assert_grad_close(grad, fd, rtol=2e-3)
            # The non-reverse branch is exactly zero in value and slope.
            value0, grad0 = btbt_current_density_grad_v(
                np.array([-0.3, 0.0]), **kwargs
            )
            assert np.all(value0 == 0.0) and np.all(grad0 == 0.0)


def _mixed_grid(technology, batch=5):
    """A mixed NMOS/PMOS grid with per-column parameter variation."""
    grid = []
    for slot in range(4):
        row = []
        for column in range(batch):
            device = technology.nmos if slot % 2 == 0 else technology.pmos
            device = device.replace(
                tox_nm=device.tox_nm + 0.01 * column,
                length_nm=device.length_nm + 0.2 * column,
            )
            row.append(Mosfet(device, vth_shift=0.001 * column))
        grid.append(row)
    return grid


class TestPackedJacobian:
    def test_currents_bitwise_equal_kcl_currents(self, bulk25):
        packed = PackedMosfets(_mixed_grid(bulk25), 320.0)
        rng = np.random.default_rng(11)
        vg, vd, vs, vb = rng.uniform(-0.05, 1.05, size=(4, 4, 5))
        currents, _ = packed.kcl_jacobian(vg, vd, vs, vb)
        expected = packed.kcl_currents(vg, vd, vs, vb)
        for got, want in zip(currents, expected):
            np.testing.assert_array_equal(
                np.broadcast_to(got, want.shape), want
            )

    def test_jacobian_matches_finite_differences(self, bulk25):
        """Random biases cover both source/drain orderings and polarities."""
        packed = PackedMosfets(_mixed_grid(bulk25), 320.0)
        rng = np.random.default_rng(11)
        vg, vd, vs, vb = rng.uniform(-0.05, 1.05, size=(4, 4, 5))
        _, jacobian = packed.kcl_jacobian(vg, vd, vs, vb)
        h = 1e-6
        volts = [vg, vd, vs, vb]
        for x in range(4):
            plus = [v.copy() for v in volts]
            minus = [v.copy() for v in volts]
            plus[x] = plus[x] + h
            minus[x] = minus[x] - h
            up = packed.kcl_currents(*plus)
            down = packed.kcl_currents(*minus)
            for i in range(4):
                fd = (up[i] - down[i]) / (2 * h)
                assert_grad_close(jacobian[i, x], fd, rtol=2e-3, floor=1e-16)


def _nand2_cell(technology, vector, injection=None, vth_shift=0.0):
    netlist = TransistorNetlist(vdd=technology.vdd)
    netlist.add_node("a", fixed_voltage=technology.vdd * vector[0])
    netlist.add_node("b", fixed_voltage=technology.vdd * vector[1])
    build_gate_transistors(
        netlist, technology, GateType.NAND2, "g", {"a": "a", "b": "b", "y": "out"}
    )
    if injection:
        netlist.add_current_source("out", injection)
    if vth_shift:
        for transistor in netlist.transistors:
            transistor.mosfet.vth_shift = vth_shift
    return netlist


class TestCircuitJacobian:
    def test_assembled_jacobian_matches_finite_differences(self, bulk25):
        """Mixed batch: different vectors, injections and Vth shifts."""
        netlists = [
            _nand2_cell(bulk25, (1, 0)),
            _nand2_cell(bulk25, (0, 0), injection=5e-7),
            _nand2_cell(bulk25, (1, 1), injection=-2e-7, vth_shift=0.004),
        ]
        solver = BatchedDcSolver(netlists, 300.0, TIGHT_NEWTON)
        assembler = _NewtonAssembler(solver)
        voltages = solver._initial_matrix(None)
        # Move off the all-rails start so every device sees generic biases.
        rng = np.random.default_rng(3)
        voltages[assembler.free_rows] += rng.uniform(
            0.05, 0.3, size=(assembler.n_free, solver.batch)
        )
        injection = assembler.injection
        residual, matrices = assembler.jacobian(
            solver.packed, voltages, injection
        )
        np.testing.assert_array_equal(
            residual, assembler.residual(solver.packed, voltages, injection)
        )
        assert matrices.shape == (3, assembler.n_free, assembler.n_free)

        h = 1e-6
        for j, row in enumerate(assembler.free_rows):
            plus = voltages.copy()
            minus = voltages.copy()
            plus[row] += h
            minus[row] -= h
            fd = (
                assembler.residual(solver.packed, plus, injection)
                - assembler.residual(solver.packed, minus, injection)
            ) / (2 * h)
            # fd[:, column] is column j of batch instance `column`'s matrix.
            assert_grad_close(
                matrices[:, :, j].T, fd, rtol=2e-3, floor=1e-16
            )


@pytest.mark.slow
class TestNewtonEquivalence:
    def test_voltages_and_leakage_match_scalar_oracle(self, bulk25):
        injections = [None, 5e-7, -5e-7, 2e-6, -2e-6]
        netlists = [_nand2_cell(bulk25, (1, 0), inj) for inj in injections]
        op = BatchedDcSolver(netlists, 300.0, TIGHT_NEWTON).solve()
        assert op.all_converged
        assert op.method == "newton"
        assert not op.fallback.any()
        solver = BatchedDcSolver(netlists, 300.0, TIGHT_NEWTON)
        owner_leakage = solver.leakage_by_owner(op)["g"]
        for index, netlist in enumerate(netlists):
            scalar_op = DcSolver(netlist, 300.0, TIGHT_GS).solve()
            assert scalar_op.converged
            for name, voltage in scalar_op.voltages.items():
                batched_v = op.voltages[op.node_index[name], index]
                assert batched_v == pytest.approx(voltage, abs=1e-9)
            scalar_leakage = leakage_by_owner(netlist, scalar_op)["g"]
            got = owner_leakage.at(index)
            for component in ("subthreshold", "gate", "btbt"):
                assert got.component(component) == pytest.approx(
                    scalar_leakage.component(component), rel=1e-9, abs=1e-24
                )

    def test_newton_matches_batched_gauss_seidel(self, bulk25):
        netlists = [
            _nand2_cell(bulk25, (0, 1)),
            _nand2_cell(bulk25, (1, 1), injection=1e-6),
        ]
        newton = BatchedDcSolver(netlists, 300.0, TIGHT_NEWTON).solve()
        relaxed = BatchedDcSolver(netlists, 300.0, TIGHT_GS).solve()
        assert newton.all_converged and relaxed.all_converged
        assert np.abs(newton.voltages - relaxed.voltages).max() < 1e-9

    def test_mixed_supply_voltages(self, bulk25):
        def cell(vdd_scale):
            scaled = bulk25.replace(vdd=bulk25.vdd * vdd_scale)
            netlist = TransistorNetlist(vdd=scaled.vdd)
            netlist.add_node("in", fixed_voltage=0.0)
            build_gate_transistors(
                netlist, scaled, GateType.INV, "g", {"a": "in", "y": "out"}
            )
            return netlist

        netlists = [cell(1.0), cell(0.9), cell(1.1)]
        op = BatchedDcSolver(netlists, 300.0, TIGHT_NEWTON).solve()
        assert op.all_converged
        for index, netlist in enumerate(netlists):
            scalar_op = DcSolver(netlist, 300.0, TIGHT_GS).solve()
            assert op.voltage("out")[index] == pytest.approx(
                scalar_op.voltage("out"), abs=1e-9
            )


@pytest.mark.slow
class TestNewtonBatchInvariance:
    def test_batch_composition_is_bitwise_neutral(self, bulk25):
        """Each column solved alone, chunked, or in the full batch must be
        bit-for-bit identical — including columns that converge at
        different iteration counts (warm vs cold starts)."""
        netlists = [
            _nand2_cell(bulk25, (0, 0)),
            _nand2_cell(bulk25, (1, 1), injection=3e-6),
            _nand2_cell(bulk25, (1, 0), injection=-1e-6),
            _nand2_cell(bulk25, (0, 1)),
        ]
        guesses = [
            {"out": bulk25.vdd},
            {"out": 0.0},
            {"out": 0.5 * bulk25.vdd},
            {"out": bulk25.vdd},
        ]
        whole = BatchedDcSolver(netlists, 300.0, TIGHT_NEWTON).solve(
            initial_voltages=guesses
        )
        assert whole.all_converged
        assert len(set(whole.newton_iterations.tolist())) > 1
        for index, netlist in enumerate(netlists):
            alone = BatchedDcSolver([netlist], 300.0, TIGHT_NEWTON).solve(
                initial_voltages=[guesses[index]]
            )
            assert np.array_equal(alone.voltages[:, 0], whole.voltages[:, index])
            assert alone.newton_iterations[0] == whole.newton_iterations[index]
        halves = [
            BatchedDcSolver(netlists[:2], 300.0, TIGHT_NEWTON).solve(
                initial_voltages=guesses[:2]
            ),
            BatchedDcSolver(netlists[2:], 300.0, TIGHT_NEWTON).solve(
                initial_voltages=guesses[2:]
            ),
        ]
        recombined = np.concatenate(
            [half.voltages for half in halves], axis=1
        )
        assert np.array_equal(recombined, whole.voltages)


@pytest.mark.slow
class TestNewtonFallback:
    def _pinned_cell(self, technology, injection):
        netlist = TransistorNetlist(vdd=technology.vdd)
        netlist.add_node("float_gate")
        netlist.add_transistor(
            name="m1",
            mosfet=Mosfet(technology.nmos),
            gate="float_gate",
            drain="vdd",
            source="gnd",
            bulk="gnd",
            owner="g",
        )
        netlist.add_current_source("float_gate", injection)
        return netlist

    def test_pinned_node_falls_back_bitwise_to_gauss_seidel(self, bulk25):
        """A KCL equation with no root in the admissible band: Newton's
        line search stalls at the band edge and the column must fall back,
        reproducing the relaxation result exactly."""
        newton = BatchedDcSolver(
            [self._pinned_cell(bulk25, 1e-3)], 300.0, TIGHT_NEWTON
        ).solve()
        relaxed = BatchedDcSolver(
            [self._pinned_cell(bulk25, 1e-3)], 300.0, TIGHT_GS
        ).solve()
        assert newton.fallback[0]
        assert np.array_equal(newton.voltages, relaxed.voltages)
        assert newton.voltage("float_gate")[0] == pytest.approx(
            bulk25.vdd + TIGHT_NEWTON.bracket_margin
        )

    def test_mixed_fallback_batch_stays_column_independent(self, bulk25):
        """One pinned column (fallback) and one benign column (Newton) in
        the same topology: each must match its single-column solve."""
        netlists = [
            self._pinned_cell(bulk25, 1e-3),
            self._pinned_cell(bulk25, 1e-12),
        ]
        whole = BatchedDcSolver(netlists, 300.0, TIGHT_NEWTON).solve()
        assert whole.all_converged
        assert whole.fallback[0] and not whole.fallback[1]
        for index, netlist in enumerate(netlists):
            alone = BatchedDcSolver([netlist], 300.0, TIGHT_NEWTON).solve()
            assert np.array_equal(alone.voltages[:, 0], whole.voltages[:, index])


class TestConvergencePolicy:
    #: One sweep at an unreachable tolerance: guaranteed non-convergence.
    STARVED = SolverOptions(
        max_sweeps=1, voltage_tol=1e-15, method="gauss-seidel"
    )
    GRID = (-1e-6, 1e-6)

    def test_scalar_engine_warns_naming_gate_and_vector(self, bulk25):
        characterizer = GateCharacterizer(
            bulk25,
            options=CharacterizationOptions(
                injection_grid=self.GRID, engine="scalar", solver=self.STARVED
            ),
        )
        with pytest.warns(
            CharacterizationConvergenceWarning, match=r"inv.*\(0,\)"
        ):
            characterizer.solve_cell(GateType.INV, (0,))

    def test_batched_engine_warns_naming_gate_and_vector(self, bulk25):
        characterizer = GateCharacterizer(
            bulk25,
            options=CharacterizationOptions(
                injection_grid=self.GRID, engine="batched", solver=self.STARVED
            ),
        )
        with pytest.warns(
            CharacterizationConvergenceWarning, match=r"inv.*vector \(1,\)"
        ):
            characterizer.characterize(GateType.INV, (1,))

    def test_raise_policy(self, bulk25):
        characterizer = GateCharacterizer(
            bulk25,
            options=CharacterizationOptions(
                injection_grid=self.GRID,
                engine="batched",
                solver=self.STARVED,
                on_nonconverged="raise",
            ),
        )
        with pytest.raises(RuntimeError, match="did not converge"):
            characterizer.characterize(GateType.INV, (0,))

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="on_nonconverged"):
            CharacterizationOptions(on_nonconverged="ignore")

    def test_converged_solves_stay_silent(self, bulk25, recwarn):
        characterizer = GateCharacterizer(
            bulk25,
            options=CharacterizationOptions(injection_grid=self.GRID),
        )
        characterizer.characterize(GateType.INV, (0,))
        assert not [
            w
            for w in recwarn.list
            if issubclass(w.category, CharacterizationConvergenceWarning)
        ]


class TestSolverOptionsValidation:
    def test_method_validated(self):
        with pytest.raises(ValueError, match="method"):
            SolverOptions(method="bisection")

    def test_newton_knobs_validated(self):
        with pytest.raises(ValueError, match="newton_max_iterations"):
            SolverOptions(newton_max_iterations=0)
        with pytest.raises(ValueError, match="newton_backtracks"):
            SolverOptions(newton_backtracks=-1)
        with pytest.raises(ValueError, match="newton_step_limit"):
            SolverOptions(newton_step_limit=0.0)


class TestMethodCacheFingerprint:
    def _library(self, technology, method):
        return GateLibrary(
            technology,
            options=CharacterizationOptions(
                injection_grid=(-1e-6, 1e-6),
                solver=SolverOptions(method=method),
            ),
        )

    def test_method_changes_fingerprint(self, bulk25):
        newton = self._library(bulk25, "newton")
        relaxed = self._library(bulk25, "gauss-seidel")
        fingerprints = {
            characterization_fingerprint(
                bulk25, library.characterizer.options, library.temperature_k
            )
            for library in (newton, relaxed)
        }
        assert len(fingerprints) == 2

    def test_reporting_policy_does_not_change_fingerprint(self, bulk25):
        """on_nonconverged is warn-vs-raise reporting: it can never change
        a record that was produced, so it must not fork caches."""
        fingerprints = {
            characterization_fingerprint(
                bulk25,
                CharacterizationOptions(
                    injection_grid=(-1e-6, 1e-6), on_nonconverged=policy
                ),
                bulk25.temperature_k,
            )
            for policy in ("warn", "raise")
        }
        assert len(fingerprints) == 1

    def test_strict_load_refuses_method_mismatch(self, bulk25, tmp_path):
        path = tmp_path / "library.json"
        newton = self._library(bulk25, "newton")
        newton.precharacterize([GateType.INV])
        save_library(newton, path)

        relaxed = self._library(bulk25, "gauss-seidel")
        with pytest.raises(ValueError, match="options"):
            load_library(relaxed, path)
        # Non-strict loads (exploratory work) still go through ...
        assert load_library(relaxed, path, strict=False) == 2
        # ... and a matching library loads strictly.
        assert load_library(self._library(bulk25, "newton"), path) == 2
