"""Tests for physical constants and unit conversions."""

import math

import pytest

from repro.utils.constants import (
    ROOM_TEMPERATURE_K,
    intrinsic_carrier_concentration,
    silicon_bandgap,
    thermal_voltage,
)
from repro.utils import units


class TestThermalVoltage:
    def test_room_temperature_value(self):
        assert thermal_voltage(300.0) == pytest.approx(0.02585, rel=1e-3)

    def test_scales_linearly_with_temperature(self):
        assert thermal_voltage(600.0) == pytest.approx(2 * thermal_voltage(300.0))

    def test_rejects_non_positive_temperature(self):
        with pytest.raises(ValueError):
            thermal_voltage(0.0)
        with pytest.raises(ValueError):
            thermal_voltage(-10.0)


class TestSiliconBandgap:
    def test_room_temperature_near_1p12_ev(self):
        assert silicon_bandgap(300.0) == pytest.approx(1.12, abs=0.01)

    def test_narrows_with_temperature(self):
        assert silicon_bandgap(400.0) < silicon_bandgap(300.0) < silicon_bandgap(200.0)

    def test_rejects_negative_temperature(self):
        with pytest.raises(ValueError):
            silicon_bandgap(-1.0)


class TestIntrinsicCarrierConcentration:
    def test_reference_value_at_300k(self):
        assert intrinsic_carrier_concentration(ROOM_TEMPERATURE_K) == pytest.approx(
            1.0e10, rel=1e-6
        )

    def test_increases_steeply_with_temperature(self):
        ratio = intrinsic_carrier_concentration(400.0) / intrinsic_carrier_concentration(300.0)
        assert ratio > 100.0

    def test_rejects_non_positive_temperature(self):
        with pytest.raises(ValueError):
            intrinsic_carrier_concentration(0.0)


class TestUnitConversions:
    def test_current_roundtrip(self):
        assert units.amps_to_nanoamps(units.nanoamps_to_amps(123.0)) == pytest.approx(123.0)

    def test_power_conversions(self):
        assert units.watts_to_microwatts(1.5e-6) == pytest.approx(1.5)
        assert units.microwatts_to_watts(2.0) == pytest.approx(2.0e-6)

    def test_temperature_roundtrip(self):
        assert units.kelvin_to_celsius(units.celsius_to_kelvin(27.0)) == pytest.approx(27.0)
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_length_conversions(self):
        assert units.nm_to_m(50.0) == pytest.approx(5.0e-8)
        assert units.nm_to_cm(50.0) == pytest.approx(5.0e-6)
        assert units.angstrom_to_nm(6.7) == pytest.approx(0.67)

    def test_voltage_conversion(self):
        assert units.millivolts_to_volts(333.0) == pytest.approx(0.333)
