"""Tests for gate leakage characterization and the characterized library."""

import warnings

import numpy as np
import pytest

from repro.gates.cache import load_library, record_from_dict, record_to_dict, save_library
from repro.gates.characterize import (
    CharacterizationOptions,
    GateCharacterizer,
    GateLibrary,
)
from repro.gates.library import GateType
from repro.gates.lut import GateVectorCharacterization, ResponseCurve
from repro.spice.analysis import ComponentBreakdown


class TestCharacterizationOptions:
    def test_grid_must_increase(self):
        with pytest.raises(ValueError):
            CharacterizationOptions(injection_grid=(1e-6, 0.0))
        with pytest.raises(ValueError):
            CharacterizationOptions(injection_grid=(0.0,))

    def test_driver_fanout_positive(self):
        with pytest.raises(ValueError):
            CharacterizationOptions(driver_fanout=0.0)


class TestSolveCell:
    def test_nominal_inverter_components(self, bulk25):
        characterizer = GateCharacterizer(bulk25)
        cell = characterizer.solve_cell(GateType.INV, (0,))
        assert cell.op.converged
        breakdown = cell.dut_breakdown
        assert breakdown.subthreshold > 0
        assert breakdown.gate > 0
        assert breakdown.btbt > 0
        # Input '0' -> output '1'.
        assert cell.op.voltage("net_y") > 0.9 * bulk25.vdd

    def test_unknown_pin_rejected(self, bulk25):
        characterizer = GateCharacterizer(bulk25)
        with pytest.raises(ValueError, match="unknown pins"):
            characterizer.solve_cell(GateType.INV, (0,), {"q": 1e-6})

    def test_wrong_vector_width_rejected(self, bulk25):
        characterizer = GateCharacterizer(bulk25)
        with pytest.raises(ValueError):
            characterizer.solve_cell(GateType.NAND2, (0,))

    def test_input_loading_raises_subthreshold(self, bulk25):
        """Paper Sec. 4: input loading increases subthreshold, trims gate."""
        characterizer = GateCharacterizer(bulk25)
        nominal = characterizer.solve_cell(GateType.INV, (0,)).dut_breakdown
        loaded = characterizer.solve_cell(GateType.INV, (0,), {"a": 2e-6}).dut_breakdown
        assert loaded.subthreshold > nominal.subthreshold
        assert loaded.gate < nominal.gate

    def test_output_loading_reduces_all_components(self, bulk25):
        characterizer = GateCharacterizer(bulk25)
        nominal = characterizer.solve_cell(GateType.INV, (0,)).dut_breakdown
        loaded = characterizer.solve_cell(GateType.INV, (0,), {"y": -2e-6}).dut_breakdown
        assert loaded.subthreshold < nominal.subthreshold
        assert loaded.gate < nominal.gate
        assert loaded.btbt < nominal.btbt

    def test_without_drivers_inputs_are_ideal(self, bulk25):
        options = CharacterizationOptions(include_drivers=False)
        characterizer = GateCharacterizer(bulk25, options=options)
        cell = characterizer.solve_cell(GateType.INV, (1,))
        assert cell.op.voltage("net_a") == pytest.approx(bulk25.vdd)


class TestCharacterizationRecords:
    def test_pin_injection_sign_follows_input_level(self, library25):
        record = library25.characterization(GateType.NAND2, (0, 1))
        # Pin 'a' sits at '0': the gate injects current into its net.
        assert record.pin_injection["a"] < 0 or record.pin_injection["a"] > 0
        # Signs: net at 0 -> receiver injects (negative of our ig convention
        # is handled inside gate_injection_at_node, so here: a at 0 -> +, b at 1 -> -).
        assert record.pin_injection["a"] > 0
        assert record.pin_injection["b"] < 0

    def test_responses_cover_all_pins(self, library25):
        record = library25.characterization(GateType.NAND2, (0, 1))
        assert set(record.responses) == {"a", "b", "y"}
        assert record.vector_label == "01"

    def test_leakage_with_loading_moves_in_right_direction(self, library25):
        record = library25.characterization(GateType.INV, (0,))
        nominal = record.nominal
        loaded = record.leakage_with_loading({"a": 2.0e-6})
        assert loaded.subthreshold > nominal.subthreshold
        unloaded = record.leakage_with_loading({})
        assert unloaded.total == pytest.approx(nominal.total)

    def test_unknown_response_pin_raises(self, library25):
        record = library25.characterization(GateType.INV, (0,))
        with pytest.raises(KeyError):
            record.leakage_with_loading({"b": 1e-6})

    def test_loading_effect_percent(self, library25):
        record = library25.characterization(GateType.INV, (0,))
        value = record.loading_effect_percent({"a": 2.0e-6}, "subthreshold")
        assert value > 0

    def test_library_caches_records(self, library25):
        first = library25.characterization(GateType.INV, (1,))
        second = library25.characterization(GateType.INV, (1,))
        assert first is second

    def test_nominal_and_pin_injection_accessors(self, library25):
        nominal = library25.nominal_leakage(GateType.INV, (1,))
        assert nominal.total > 0
        injection = library25.pin_injection(GateType.INV, (1,), "a")
        assert injection < 0  # input at '1' draws from the net
        with pytest.raises(KeyError):
            library25.pin_injection(GateType.INV, (1,), "b")


def _example_curve():
    return ResponseCurve(
        pin="a",
        injections=np.array([-1.0e-6, 0.0, 1.0e-6]),
        subthreshold=np.array([1.0e-9, 2.0e-9, 4.0e-9]),
        gate=np.array([3.0e-9, 3.0e-9, 3.0e-9]),
        btbt=np.array([1.0e-9, 1.0e-9, 1.0e-9]),
    )


class TestResponseCurve:
    def test_interpolation_and_extrapolation(self):
        curve = _example_curve()
        mid = curve.breakdown_at(0.5e-6)
        assert mid.subthreshold == pytest.approx(3.0e-9)
        clamped = curve.breakdown_at(10e-6, policy="clamp")
        assert clamped.subthreshold == pytest.approx(4.0e-9)
        delta = curve.delta_at(1.0e-6, ComponentBreakdown(2.0e-9, 3.0e-9, 1.0e-9))
        assert delta.subthreshold == pytest.approx(2.0e-9)
        assert curve.max_injection == pytest.approx(1.0e-6)

    def test_out_of_range_warns_once_and_still_clamps(self):
        from repro.gates.lut import (
            ResponseCurveRangeWarning,
            set_extrapolation_policy,
        )

        previous = set_extrapolation_policy("warn")
        try:
            curve = _example_curve()
            with pytest.warns(ResponseCurveRangeWarning, match="outside"):
                clamped = curve.breakdown_at(10e-6)
            assert clamped.subthreshold == pytest.approx(4.0e-9)
            # Warn-once: the same (pin, direction) stays quiet afterwards.
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                curve.breakdown_at(11e-6)
            # The other direction warns independently.
            with pytest.warns(ResponseCurveRangeWarning):
                curve.breakdown_at(-10e-6)
        finally:
            set_extrapolation_policy(previous)

    def test_out_of_range_raise_policy(self):
        curve = _example_curve()
        with pytest.raises(ValueError, match="outside"):
            curve.breakdown_at(10e-6, policy="raise")
        with pytest.raises(ValueError, match="policy"):
            curve.breakdown_at(0.0, policy="bogus")

    def test_set_extrapolation_policy_validates(self):
        from repro.gates.lut import set_extrapolation_policy

        with pytest.raises(ValueError, match="policy"):
            set_extrapolation_policy("bogus")

    def test_validation(self):
        with pytest.raises(ValueError):
            ResponseCurve(
                pin="a",
                injections=np.array([0.0, 0.0]),
                subthreshold=np.zeros(2),
                gate=np.zeros(2),
                btbt=np.zeros(2),
            )
        with pytest.raises(ValueError):
            ResponseCurve(
                pin="a",
                injections=np.array([0.0, 1.0]),
                subthreshold=np.zeros(3),
                gate=np.zeros(2),
                btbt=np.zeros(2),
            )


class TestPersistence:
    def test_record_roundtrip(self, library25):
        record = library25.characterization(GateType.INV, (0,))
        clone = record_from_dict(record_to_dict(record))
        assert clone.gate_type_name == record.gate_type_name
        assert clone.nominal.total == pytest.approx(record.nominal.total)
        assert set(clone.responses) == set(record.responses)

    def test_save_and_load_library(self, bulk25, library25, tmp_path):
        library25.characterization(GateType.INV, (0,))
        path = tmp_path / "cache.json"
        written = save_library(library25, path)
        assert written >= 1

        # A strict load requires identical characterization settings.
        fresh = GateLibrary(bulk25, options=library25.characterizer.options)
        loaded = load_library(fresh, path)
        assert loaded == written
        assert fresh.nominal_leakage(GateType.INV, (0,)).total == pytest.approx(
            library25.nominal_leakage(GateType.INV, (0,)).total
        )

    def test_strict_mismatch_rejected(self, library25, d25s, tmp_path):
        library25.characterization(GateType.INV, (0,))
        path = tmp_path / "cache.json"
        save_library(library25, path)
        other = GateLibrary(d25s)
        with pytest.raises(ValueError, match="does not match"):
            load_library(other, path)
        assert load_library(other, path, strict=False) >= 1

    def test_mismatched_options_rejected(self, bulk25, library25, tmp_path):
        """Same technology but different characterization options must be
        refused: the records were characterized under different settings."""
        library25.characterization(GateType.INV, (0,))
        path = tmp_path / "cache.json"
        save_library(library25, path)
        other_grid = GateLibrary(
            bulk25,
            options=CharacterizationOptions(
                injection_grid=(-1.0e-6, 0.0, 1.0e-6)
            ),
        )
        with pytest.raises(ValueError, match="options"):
            load_library(other_grid, path)

    def test_mismatched_solver_tolerances_rejected(self, bulk25, library25, tmp_path):
        from repro.spice.solver import SolverOptions

        library25.characterization(GateType.INV, (0,))
        path = tmp_path / "cache.json"
        save_library(library25, path)
        options = CharacterizationOptions(
            injection_grid=library25.characterizer.options.injection_grid,
            solver=SolverOptions(voltage_tol=1.0e-7),
        )
        with pytest.raises(ValueError, match="options"):
            load_library(GateLibrary(bulk25, options=options), path)

    def test_old_format_version_rejected(self, bulk25, library25, tmp_path):
        import json

        library25.characterization(GateType.INV, (0,))
        path = tmp_path / "cache.json"
        save_library(library25, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_library(
                GateLibrary(bulk25, options=library25.characterizer.options), path
            )
