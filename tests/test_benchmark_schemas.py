"""Schema regression tests for the recorded benchmark artifacts.

Every ``benchmarks/*.json`` is a *recorded claim* — a speedup, an
agreement bar, a solver method — that CI re-produces and downstream
documentation quotes.  Nothing previously guarded their shape: a benchmark
refactor could silently rename ``speedup`` or drop the error bars and the
stale artifact would keep looking authoritative.  This module pins, per
artifact, the key paths the claims live at (dotted paths; ``circuits.*``
applies a sub-schema to every entry of a keyed table) and their types, and
refuses unknown artifacts so a new benchmark must register its schema here
alongside its JSON.
"""

import json
import math
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

NUMBER = (int, float)

#: Required key paths per artifact.  A path maps to the expected type(s);
#: the special segment ``*`` applies the remaining path to every value of a
#: (non-empty) dict at that point.
SCHEMAS: dict[str, dict[str, type | tuple]] = {
    "engine_batched.json": {
        "circuit": str,
        "gates": int,
        "vectors": int,
        "seed": int,
        "scalar_seconds": NUMBER,
        "batched_seconds": NUMBER,
        "speedup": NUMBER,
        "max_relative_error": NUMBER,
        "relative_error_per_component.total": NUMBER,
    },
    "batched_solver.json": {
        "seed": int,
        "solver_options.voltage_tol": NUMBER,
        "solver_options.xtol": NUMBER,
        "solver_options.method": str,
        "characterization.speedup": NUMBER,
        "characterization.max_relative_error": NUMBER,
        "monte_carlo.speedup": NUMBER,
        "monte_carlo.max_relative_error": NUMBER,
        "monte_carlo.solver_method": str,
    },
    "batched_reference.json": {
        "seed": int,
        "solver_options.method": str,
        "min_speedup": NUMBER,
        "max_relative_error_bar": NUMBER,
        "circuits.*.speedup": NUMBER,
        "circuits.*.max_relative_error": NUMBER,
        "circuits.*.batched_solver.method": str,
    },
    "newton_solver.json": {
        "seed": int,
        "solver_options.newton_max_iterations": int,
        "min_speedup": NUMBER,
        "max_relative_error_bar": NUMBER,
        "characterization.speedup_vs_gauss_seidel": NUMBER,
        "characterization.speedup_vs_scalar": NUMBER,
        "characterization.max_relative_error_vs_scalar": NUMBER,
        "reference.speedup_vs_gauss_seidel": NUMBER,
        "reference.max_relative_error_vs_scalar": NUMBER,
        "reference.chunk_invariant": bool,
    },
    "sparse_newton.json": {
        "seed": int,
        "solver_options.newton_sparse_threshold": int,
        "solver_options.newton_dense_memory_limit": NUMBER,
        "min_speedup": NUMBER,
        "max_relative_error_bar": NUMBER,
        "dense_parity_bar": NUMBER,
        "medium.free_nodes": int,
        "medium.speedup_vs_dense": NUMBER,
        "medium.max_relative_error_vs_oracle": NUMBER,
        "medium.max_relative_error_vs_dense": NUMBER,
        "medium.chunk_invariant": bool,
        "large.free_nodes": int,
        "large.speedup_vs_dense": NUMBER,
        "large.max_relative_error_vs_oracle": NUMBER,
        "large.max_relative_error_vs_dense": NUMBER,
        "large.chunk_invariant": bool,
        "large.auto_resolves_sparse": bool,
        "large.dense_infeasible_batch": int,
        "large.sparse_solver_stats.fallbacks": int,
    },
    "session.json": {
        "circuit": str,
        "gates": int,
        "seed": int,
        "vectors_per_query": int,
        "speedup": NUMBER,
        "warm.threads": int,
        "warm.queries": int,
        "warm.queries_per_second": NUMBER,
        "warm.bitwise_identical": bool,
        "cold.queries": int,
        "cold.queries_per_second": NUMBER,
        "cold.bitwise_identical": bool,
        "coalescing.requests": int,
        "coalescing.batches": int,
        "coalescing.coalesced_requests": int,
        "compile_cache.hits": int,
        "compile_cache.misses": int,
    },
    "resilience.json": {
        "seed": int,
        "samples": int,
        "workers": int,
        "max_overhead_bar": NUMBER,
        "fault_free.seconds": NUMBER,
        "fault_free.bitwise_identical": bool,
        "faulted.seconds": NUMBER,
        "faulted.bitwise_identical": bool,
        "faulted.overhead_vs_fault_free": NUMBER,
        "faulted.retries": int,
        "faulted.pool_restarts": int,
        "faulted.gave_up": int,
        "resume.bitwise_identical": bool,
        "resume.resumed_chunks": int,
        "resume.reexecuted_attempts": int,
        "resume.checkpoint_publishes": int,
    },
    "statistical_leakage.json": {
        "seed": int,
        "sigma_vth_inter_v": NUMBER,
        "samples_per_replicate": int,
        "replicates": int,
        "reference_samples": int,
        "min_efficiency_bar": NUMBER,
        "reference.std_shift_percent": NUMBER,
        "reference.lognormal_bias_percent": NUMBER,
        "std_shift.rmse_mc_empirical": NUMBER,
        "std_shift.rmse_qmc_empirical": NUMBER,
        "std_shift.rmse_qmc_lognormal": NUMBER,
        "std_shift.efficiency_qmc_empirical": NUMBER,
        "std_shift.efficiency_variance_reduced": NUMBER,
        "equivalent_mc_samples_log_std": NUMBER,
        "moments.oracle_samples": int,
        "moments.method": str,
        "moments.solve_count": int,
        "moments.speedup_vs_oracle": NUMBER,
        "moments.mean_error_bar": NUMBER,
        "moments.std_error_bar": NUMBER,
        "moments.loaded_mean_error": NUMBER,
        "moments.loaded_std_error": NUMBER,
        "moments.unloaded_mean_error": NUMBER,
        "moments.unloaded_std_error": NUMBER,
        "reproducibility.qmc_pool_bitwise": bool,
    },
    "vector_search.json": {
        "seed": int,
        "engine": str,
        "solver_method": str,
        "min_speedup": NUMBER,
        "exhaustive_parity.all_match": bool,
        "reproducibility.greedy_island_bitwise": bool,
        "reproducibility.genetic_pool_bitwise": bool,
        "circuits.*.speedup_vs_scalar": NUMBER,
        "circuits.*.improvement_percent.greedy": NUMBER,
        "circuits.*.improvement_percent.genetic": NUMBER,
        "circuits.*.beats_random.greedy": bool,
        "circuits.*.beats_random.genetic": bool,
    },
}


def _resolve(payload, path: str, artifact: str):
    """Yield every value at ``path``, expanding ``*`` over dict entries."""
    head, _, rest = path.partition(".")
    if head == "*":
        assert isinstance(payload, dict) and payload, (
            f"{artifact}: expected a non-empty table where '*' applies"
        )
        for key, value in payload.items():
            yield from _resolve(value, rest, f"{artifact}[{key}]")
        return
    assert isinstance(payload, dict), f"{artifact}: expected an object at {head!r}"
    assert head in payload, f"{artifact}: missing required key {head!r}"
    if rest:
        yield from _resolve(payload[head], rest, f"{artifact}.{head}")
    else:
        yield f"{artifact}.{head}", payload[head]


def _artifacts():
    return sorted(BENCHMARKS_DIR.glob("*.json"))


def test_every_artifact_has_a_registered_schema():
    """A new benchmark JSON must register its required keys here."""
    present = {path.name for path in _artifacts()}
    unknown = present - set(SCHEMAS)
    assert not unknown, (
        f"benchmark artifacts without a registered schema: {sorted(unknown)} — "
        "add their required key paths to tests/test_benchmark_schemas.py"
    )


@pytest.mark.parametrize(
    "path", _artifacts(), ids=lambda p: p.name
)
def test_artifact_parses_and_carries_required_keys(path):
    payload = json.loads(path.read_text())
    assert isinstance(payload, dict) and payload, f"{path.name}: empty record"
    schema = SCHEMAS[path.name]
    for key_path, expected_type in schema.items():
        for where, value in _resolve(payload, key_path, path.name):
            # bool is an int subclass; an int slot must not silently hold one.
            if expected_type in (int, NUMBER):
                assert not isinstance(value, bool), f"{where}: bool where number expected"
            assert isinstance(value, expected_type), (
                f"{where}: expected {expected_type}, got "
                f"{type(value).__name__} ({value!r})"
            )
            if isinstance(value, float):
                assert math.isfinite(value), f"{where}: non-finite {value!r}"


@pytest.mark.parametrize(
    "name", sorted(SCHEMAS), ids=lambda name: name
)
def test_registered_artifacts_exist(name):
    """Registered claims must actually be recorded in the repo."""
    assert (BENCHMARKS_DIR / name).exists(), (
        f"{name} is registered but not recorded under benchmarks/"
    )
