"""Tests for device parameter containers and presets."""

import dataclasses

import pytest

from repro.device.params import Polarity, TechnologyParams
from repro.device.presets import (
    DeviceVariant,
    device_pair,
    make_device,
    make_technology,
    variant_description,
)


class TestPolarity:
    def test_signs(self):
        assert Polarity.NMOS.sign == 1
        assert Polarity.PMOS.sign == -1


class TestDeviceParams:
    def test_preset_geometry_properties(self, bulk25):
        nmos = bulk25.nmos
        assert nmos.is_nmos
        assert nmos.gate_area_um2 == pytest.approx(
            nmos.width_nm * nmos.length_nm * 1e-6
        )
        assert nmos.overlap_area_um2 > 0
        assert nmos.junction_area_um2 > 0

    def test_replace_returns_new_object(self, bulk25):
        wider = bulk25.nmos.replace(width_nm=999.0)
        assert wider.width_nm == 999.0
        assert bulk25.nmos.width_nm != 999.0

    def test_replace_nested_groups(self, bulk25):
        changed = bulk25.nmos.replace_subthreshold(vth0=0.5)
        assert changed.subthreshold.vth0 == 0.5
        changed = bulk25.nmos.replace_gate_tunneling(jg_ref=1e-9)
        assert changed.gate_tunneling.jg_ref == 1e-9
        changed = bulk25.nmos.replace_btbt(halo_cm3=9e18)
        assert changed.btbt.halo_cm3 == 9e18

    def test_scaled_width(self, bulk25):
        doubled = bulk25.nmos.scaled_width(2.0)
        assert doubled.width_nm == pytest.approx(2 * bulk25.nmos.width_nm)
        with pytest.raises(ValueError):
            bulk25.nmos.scaled_width(0.0)

    def test_invalid_geometry_rejected(self, bulk25):
        with pytest.raises(ValueError):
            bulk25.nmos.replace(width_nm=-1.0)
        with pytest.raises(ValueError):
            bulk25.nmos.replace(tox_nm=0.0)

    def test_negative_scale_factors_rejected(self, bulk25):
        with pytest.raises(ValueError):
            bulk25.nmos.replace(isub_scale=-1.0)

    def test_subthreshold_validation(self, bulk25):
        with pytest.raises(ValueError):
            bulk25.nmos.replace_subthreshold(vth0=-0.1)
        with pytest.raises(ValueError):
            bulk25.nmos.replace_subthreshold(n_swing=0.5)
        with pytest.raises(ValueError):
            bulk25.nmos.replace_subthreshold(mobility_m2=0.0)
        with pytest.raises(ValueError):
            bulk25.nmos.replace_subthreshold(theta_mobility=-1.0)

    def test_gate_tunneling_validation(self, bulk25):
        with pytest.raises(ValueError):
            bulk25.nmos.replace_gate_tunneling(jg_ref=-1.0)
        with pytest.raises(ValueError):
            bulk25.nmos.replace_gate_tunneling(gb_fraction=1.5)

    def test_btbt_validation(self, bulk25):
        with pytest.raises(ValueError):
            bulk25.nmos.replace_btbt(halo_cm3=0.0)
        with pytest.raises(ValueError):
            bulk25.nmos.replace_btbt(psi_bi=-0.1)


class TestTechnologyParams:
    def test_polarity_consistency_enforced(self, bulk25):
        with pytest.raises(ValueError):
            TechnologyParams(
                name="broken",
                vdd=1.0,
                temperature_k=300.0,
                nmos=bulk25.pmos,
                pmos=bulk25.pmos,
            )

    def test_at_temperature(self, bulk25):
        hot = bulk25.at_temperature(400.0)
        assert hot.temperature_k == 400.0
        assert bulk25.temperature_k == 300.0

    def test_device_lookup(self, bulk25):
        assert bulk25.device(Polarity.NMOS) is bulk25.nmos
        assert bulk25.device(Polarity.PMOS) is bulk25.pmos

    def test_invalid_supply_rejected(self, bulk25):
        with pytest.raises(ValueError):
            bulk25.replace(vdd=0.0)


class TestPresets:
    @pytest.mark.parametrize("variant", list(DeviceVariant))
    def test_every_variant_builds(self, variant):
        technology = make_technology(variant)
        assert technology.nmos.is_nmos
        assert not technology.pmos.is_nmos
        assert technology.vdd > 0
        assert variant_description(variant)

    def test_string_variant_accepted(self):
        assert make_technology("bulk-50nm").name == "bulk-50nm"

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            make_technology("bulk-7nm")

    def test_device_pair_matches_make_device(self):
        nmos, pmos = device_pair(DeviceVariant.D25_G)
        assert make_device(DeviceVariant.D25_G, Polarity.NMOS).name == nmos.name
        assert make_device(DeviceVariant.D25_G, Polarity.PMOS).name == pmos.name

    def test_dominance_scales(self):
        base_n, _ = device_pair(DeviceVariant.BULK25)
        sub_n, _ = device_pair(DeviceVariant.D25_S)
        gate_n, _ = device_pair(DeviceVariant.D25_G)
        jn_n, _ = device_pair(DeviceVariant.D25_JN)
        assert sub_n.isub_scale > base_n.isub_scale
        assert gate_n.igate_scale > base_n.igate_scale
        assert jn_n.ibtbt_scale > base_n.ibtbt_scale

    def test_presets_are_frozen(self, bulk25):
        with pytest.raises(dataclasses.FrozenInstanceError):
            bulk25.nmos.width_nm = 1.0  # type: ignore[misc]
