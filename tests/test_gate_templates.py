"""Tests for the transistor-level gate templates.

The electrical truth table of every template is checked by building the gate
with ideal inputs, solving its operating point and comparing the output rail
against the logic function — i.e. the templates are validated against the
specs through the real solver, not by inspection.
"""

import pytest

from repro.gates.library import GateType, all_gate_types, gate_spec
from repro.gates.templates import build_gate_transistors, transistor_count
from repro.spice.netlist import TransistorNetlist
from repro.spice.solver import DcSolver


def _solve_output(technology, gate_type, bits):
    spec = gate_spec(gate_type)
    netlist = TransistorNetlist(vdd=technology.vdd)
    pins = {}
    for pin, bit in zip(spec.inputs, bits):
        node = f"in_{pin}"
        netlist.add_node(node, fixed_voltage=technology.vdd * bit)
        pins[pin] = node
    pins[spec.output] = "out"
    internal = build_gate_transistors(netlist, technology, gate_type, "dut", pins)
    initial = {"out": technology.vdd * spec.evaluate(bits)}
    for node in internal:
        initial[node] = initial["out"]
    op = DcSolver(netlist, 300.0).solve(initial_voltages=initial)
    assert op.converged
    return op.voltage("out")


class TestTransistorCounts:
    @pytest.mark.parametrize("gate_type", all_gate_types())
    def test_template_creates_declared_count(self, bulk25, gate_type):
        spec = gate_spec(gate_type)
        netlist = TransistorNetlist(vdd=bulk25.vdd)
        pins = {pin: f"n_{pin}" for pin in spec.inputs}
        pins[spec.output] = "n_y"
        for node in pins.values():
            netlist.add_node(node, fixed_voltage=0.0)
        netlist.free_node("n_y")
        build_gate_transistors(netlist, bulk25, gate_type, "dut", pins)
        assert len(netlist.transistors) == transistor_count(gate_type)

    def test_missing_pin_rejected(self, bulk25):
        netlist = TransistorNetlist(vdd=bulk25.vdd)
        with pytest.raises(ValueError, match="missing pin"):
            build_gate_transistors(netlist, bulk25, GateType.NAND2, "g", {"a": "x", "y": "y"})

    def test_owner_defaults_to_instance(self, bulk25):
        netlist = TransistorNetlist(vdd=bulk25.vdd)
        netlist.add_node("a", fixed_voltage=0.0)
        build_gate_transistors(netlist, bulk25, GateType.INV, "myinv", {"a": "a", "y": "z"})
        assert {t.owner for t in netlist.transistors} == {"myinv"}

    def test_series_stack_is_widened(self, bulk25):
        netlist = TransistorNetlist(vdd=bulk25.vdd)
        for node in ("a", "b", "c"):
            netlist.add_node(node, fixed_voltage=0.0)
        build_gate_transistors(
            netlist, bulk25, GateType.NAND3, "g", {"a": "a", "b": "b", "c": "c", "y": "y"}
        )
        nmos_widths = {
            t.mosfet.device.width_nm
            for t in netlist.transistors
            if t.mosfet.device.is_nmos
        }
        assert nmos_widths == {3.0 * bulk25.nmos.width_nm}


@pytest.mark.slow
class TestElectricalTruthTables:
    @pytest.mark.parametrize(
        "gate_type",
        [
            GateType.INV,
            GateType.BUF,
            GateType.NAND2,
            GateType.NOR2,
            GateType.AND2,
            GateType.OR2,
            GateType.XOR2,
            GateType.XNOR2,
            GateType.AOI21,
            GateType.OAI21,
            GateType.NAND3,
            GateType.NOR3,
        ],
    )
    def test_output_rail_matches_logic(self, bulk25, gate_type):
        spec = gate_spec(gate_type)
        vdd = bulk25.vdd
        for bits in spec.all_vectors():
            expected = spec.evaluate(bits)
            output = _solve_output(bulk25, gate_type, bits)
            if expected:
                assert output > 0.9 * vdd, f"{spec.name}{bits}: {output}"
            else:
                assert output < 0.1 * vdd, f"{spec.name}{bits}: {output}"

    def test_internal_nodes_reported(self, bulk25):
        netlist = TransistorNetlist(vdd=bulk25.vdd)
        for node in ("a", "b"):
            netlist.add_node(node, fixed_voltage=0.0)
        internal = build_gate_transistors(
            netlist, bulk25, GateType.AND2, "g", {"a": "a", "b": "b", "y": "y"}
        )
        assert len(internal) >= 2  # stack node + internal stage
        for node in internal:
            assert node.startswith("g.")
            assert node in netlist.nodes
