"""Tests for the transistor-level gate templates.

The electrical truth table of every template is checked by building the gate
with ideal inputs, solving its operating point and comparing the output rail
against the logic function — i.e. the templates are validated against the
specs through the real solver, not by inspection.
"""

import pytest

from repro.gates.library import GateType, all_gate_types, gate_spec
from repro.gates.templates import (
    build_gate_transistors,
    internal_seed_levels,
    transistor_count,
)
from repro.spice.netlist import TransistorNetlist
from repro.spice.solver import DcSolver


def _solve_output(technology, gate_type, bits):
    spec = gate_spec(gate_type)
    netlist = TransistorNetlist(vdd=technology.vdd)
    pins = {}
    for pin, bit in zip(spec.inputs, bits):
        node = f"in_{pin}"
        netlist.add_node(node, fixed_voltage=technology.vdd * bit)
        pins[pin] = node
    pins[spec.output] = "out"
    internal = build_gate_transistors(netlist, technology, gate_type, "dut", pins)
    initial = {"out": technology.vdd * spec.evaluate(bits)}
    for node in internal:
        initial[node] = initial["out"]
    op = DcSolver(netlist, 300.0).solve(initial_voltages=initial)
    assert op.converged
    return op.voltage("out")


class TestTransistorCounts:
    @pytest.mark.parametrize("gate_type", all_gate_types())
    def test_template_creates_declared_count(self, bulk25, gate_type):
        spec = gate_spec(gate_type)
        netlist = TransistorNetlist(vdd=bulk25.vdd)
        pins = {pin: f"n_{pin}" for pin in spec.inputs}
        pins[spec.output] = "n_y"
        for node in pins.values():
            netlist.add_node(node, fixed_voltage=0.0)
        netlist.free_node("n_y")
        build_gate_transistors(netlist, bulk25, gate_type, "dut", pins)
        assert len(netlist.transistors) == transistor_count(gate_type)

    def test_missing_pin_rejected(self, bulk25):
        netlist = TransistorNetlist(vdd=bulk25.vdd)
        with pytest.raises(ValueError, match="missing pin"):
            build_gate_transistors(netlist, bulk25, GateType.NAND2, "g", {"a": "x", "y": "y"})

    def test_owner_defaults_to_instance(self, bulk25):
        netlist = TransistorNetlist(vdd=bulk25.vdd)
        netlist.add_node("a", fixed_voltage=0.0)
        build_gate_transistors(netlist, bulk25, GateType.INV, "myinv", {"a": "a", "y": "z"})
        assert {t.owner for t in netlist.transistors} == {"myinv"}

    def test_series_stack_is_widened(self, bulk25):
        netlist = TransistorNetlist(vdd=bulk25.vdd)
        for node in ("a", "b", "c"):
            netlist.add_node(node, fixed_voltage=0.0)
        build_gate_transistors(
            netlist, bulk25, GateType.NAND3, "g", {"a": "a", "b": "b", "c": "c", "y": "y"}
        )
        nmos_widths = {
            t.mosfet.device.width_nm
            for t in netlist.transistors
            if t.mosfet.device.is_nmos
        }
        assert nmos_widths == {3.0 * bulk25.nmos.width_nm}


@pytest.mark.slow
class TestElectricalTruthTables:
    @pytest.mark.parametrize(
        "gate_type",
        [
            GateType.INV,
            GateType.BUF,
            GateType.NAND2,
            GateType.NOR2,
            GateType.AND2,
            GateType.OR2,
            GateType.XOR2,
            GateType.XNOR2,
            GateType.AOI21,
            GateType.OAI21,
            GateType.NAND3,
            GateType.NOR3,
        ],
    )
    def test_output_rail_matches_logic(self, bulk25, gate_type):
        spec = gate_spec(gate_type)
        vdd = bulk25.vdd
        for bits in spec.all_vectors():
            expected = spec.evaluate(bits)
            output = _solve_output(bulk25, gate_type, bits)
            if expected:
                assert output > 0.9 * vdd, f"{spec.name}{bits}: {output}"
            else:
                assert output < 0.1 * vdd, f"{spec.name}{bits}: {output}"

    def test_internal_nodes_reported(self, bulk25):
        netlist = TransistorNetlist(vdd=bulk25.vdd)
        for node in ("a", "b"):
            netlist.add_node(node, fixed_voltage=0.0)
        internal = build_gate_transistors(
            netlist, bulk25, GateType.AND2, "g", {"a": "a", "b": "b", "y": "y"}
        )
        assert len(internal) >= 2  # stack node + internal stage
        for node in internal:
            assert node.startswith("g.")
            assert node in netlist.nodes


class TestInternalSeedLevels:
    """The seed table must name every template node with a sane level."""

    def test_covers_every_template_node(self, bulk25):
        for gate_type in all_gate_types():
            spec = gate_spec(gate_type)
            netlist = TransistorNetlist(vdd=bulk25.vdd)
            pins = {}
            for pin in spec.inputs:
                netlist.add_node(f"in_{pin}", fixed_voltage=0.0)
                pins[pin] = f"in_{pin}"
            pins[spec.output] = "out"
            internal = build_gate_transistors(
                netlist, bulk25, gate_type, "dut", pins
            )
            labels = {node.removeprefix("dut.") for node in internal}
            for bits in spec.all_vectors():
                levels = internal_seed_levels(
                    gate_type, bits, spec.evaluate(bits)
                )
                assert set(levels) == labels, f"{spec.name}{bits}"
                assert all(value in (0, 1) for value in levels.values())

    def test_two_stage_nodes_are_complements(self):
        # BUF mid and AND/OR stage1 are outputs of the *inverting* first
        # stage; XOR/XNOR input inverters complement their own input.
        assert internal_seed_levels(GateType.BUF, [1], 1) == {"mid": 0}
        assert internal_seed_levels(GateType.BUF, [0], 0) == {"mid": 1}
        assert internal_seed_levels(GateType.AND2, [1, 1], 1)["stage1"] == 0
        assert internal_seed_levels(GateType.OR2, [0, 0], 0)["stage1"] == 1
        levels = internal_seed_levels(GateType.XOR2, [1, 0], 1)
        assert levels["a_bar"] == 0
        assert levels["b_bar"] == 1

    def test_series_stack_follows_conduction(self):
        # NAND3 stack gates top->bottom (1, 0, 1), output '1': above the
        # OFF device the node conducts to the output, below it to ground.
        levels = internal_seed_levels(GateType.NAND3, [1, 0, 1], 1)
        assert levels == {"sn0": 1, "sn1": 0}
        # All inputs high (output '0'): the whole stack conducts to both
        # ends, which agree at the ground rail.
        assert internal_seed_levels(GateType.NAND3, [1, 1, 1], 0) == {
            "sn0": 0,
            "sn1": 0,
        }
        # NOR3 all-low (output '1'): the PMOS stack conducts to supply.
        assert internal_seed_levels(GateType.NOR3, [0, 0, 0], 1) == {
            "sp0": 1,
            "sp1": 1,
        }

    def test_driven_internal_stages_settle_at_seed_rail(self, bulk25):
        # Electrical check: for every two-stage/XOR template and vector,
        # the actively driven internal nodes converge at the rail the seed
        # table names (floating stack nodes are excluded — a leakage
        # divider parks them anywhere in the band).
        driven = {
            GateType.BUF: ("mid",),
            GateType.AND2: ("stage1",),
            GateType.OR2: ("stage1",),
            GateType.XOR2: ("a_bar", "b_bar"),
            GateType.XNOR2: ("a_bar", "b_bar"),
        }
        vdd = bulk25.vdd
        for gate_type, labels in driven.items():
            spec = gate_spec(gate_type)
            for bits in spec.all_vectors():
                netlist = TransistorNetlist(vdd=vdd)
                pins = {}
                for pin, bit in zip(spec.inputs, bits):
                    netlist.add_node(f"in_{pin}", fixed_voltage=vdd * bit)
                    pins[pin] = f"in_{pin}"
                pins[spec.output] = "out"
                internal = build_gate_transistors(
                    netlist, bulk25, gate_type, "dut", pins
                )
                levels = internal_seed_levels(
                    gate_type, bits, spec.evaluate(bits)
                )
                initial = {"out": vdd * spec.evaluate(bits)}
                for node in internal:
                    initial[node] = vdd * levels[node.removeprefix("dut.")]
                op = DcSolver(netlist, 300.0).solve(initial_voltages=initial)
                assert op.converged
                for label in labels:
                    seed = levels[label]
                    solved = op.voltage(f"dut.{label}")
                    if seed:
                        assert solved > 0.9 * vdd, f"{spec.name}{bits} {label}"
                    else:
                        assert solved < 0.1 * vdd, f"{spec.name}{bits} {label}"

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="input values"):
            internal_seed_levels(GateType.NAND2, [1], 0)
