"""Tests for the netlist lint layer (:mod:`repro.analysis`).

Covers, per the diagnostics contract:

* one crafted violating circuit per rule, each firing *exactly once*;
* clean passes over the benchmark generators and ISCAS-like circuits;
* fault injection — corrupted ``.bench`` text and tampered circuits are
  detected with the expected stable codes;
* the pre-flight policy knob at the numeric entry points (compile,
  reference simulation, vector campaigns);
* the ``python -m repro.analysis`` CLI exit codes and JSON report.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    NetlistLintError,
    NetlistLintWarning,
    RULES,
    RULES_BY_CODE,
    Severity,
    lint_bench_text,
    lint_circuit,
    lint_flattened,
    lint_vectors,
    merge_reports,
    preflight_circuit,
    preflight_vectors,
)
from repro.analysis.__main__ import main as lint_main
from repro.circuit.bench_io import write_bench
from repro.circuit.generators import (
    alu,
    array_multiplier,
    fanout_star,
    inverter_chain,
    iscas_like,
    nand_tree,
    random_logic,
)
from repro.circuit.netlist import Circuit, Gate
from repro.gates.library import GateType


def _inject(circuit: Circuit, gate: Gate) -> None:
    """Place a gate into the netlist bypassing ``add_gate`` validation.

    The crafted rule-violation circuits need wirings that ``add_gate``
    correctly refuses (double drivers, bad arity, unknown types) — exactly
    the states a linter must diagnose when they arrive from a file or a
    buggy generator.
    """
    circuit.gates[gate.name] = gate
    circuit._invalidate()


# --------------------------------------------------------------------- #
# one crafted circuit per rule, each firing exactly once
# --------------------------------------------------------------------- #
class TestEachRuleFiresExactlyOnce:
    def test_nl001_floating_net(self):
        c = Circuit("nl001")
        c.add_input("a")
        _inject(c, Gate("g1", GateType.NAND2, ("a", "ghost"), "y"))
        c.add_output("y")
        report = lint_circuit(c)
        assert report.rule_histogram() == {"NL001": 1}
        (d,) = report.diagnostics
        assert d.location.net == "ghost"
        assert d.severity is Severity.ERROR

    def test_nl001_undriven_primary_output(self):
        c = Circuit("nl001po")
        c.add_input("a")
        c.add_gate("g1", GateType.INV, ["a"], "y")
        c.add_output("y")
        c.add_output("phantom")
        report = lint_circuit(c)
        assert report.rule_histogram() == {"NL001": 1}
        assert report.diagnostics[0].location.net == "phantom"

    def test_nl002_two_gate_drivers(self):
        c = Circuit("nl002")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("g1", GateType.INV, ["a"], "y")
        _inject(c, Gate("g2", GateType.INV, ("b",), "y"))
        c.add_output("y")
        report = lint_circuit(c)
        assert report.rule_histogram() == {"NL002": 1}
        assert "2 gates" in report.diagnostics[0].message

    def test_nl002_gate_drives_primary_input(self):
        c = Circuit("nl002pi")
        c.add_input("a")
        c.add_input("b")
        _inject(c, Gate("g1", GateType.INV, ("a",), "b"))
        c.add_gate("g2", GateType.INV, ["b"], "y")
        c.add_output("y")
        report = lint_circuit(c)
        assert report.rule_histogram() == {"NL002": 1}
        assert "primary input" in report.diagnostics[0].message

    def test_nl003_combinational_loop(self):
        c = Circuit("nl003")
        c.add_gate("g1", GateType.INV, ["w"], "y")
        c.add_gate("g2", GateType.INV, ["y"], "w")
        c.add_output("y")
        report = lint_circuit(c)
        assert report.rule_histogram() == {"NL003": 1}
        message = report.diagnostics[0].message
        assert "'g1'" in message and "'g2'" in message

    def test_nl003_two_independent_loops_two_findings(self):
        c = Circuit("nl003x2")
        c.add_gate("g1", GateType.INV, ["w"], "y")
        c.add_gate("g2", GateType.INV, ["y"], "w")
        c.add_gate("h1", GateType.INV, ["p"], "q")
        c.add_gate("h2", GateType.INV, ["q"], "p")
        c.add_output("y")
        c.add_output("q")
        report = lint_circuit(c)
        assert report.rule_histogram() == {"NL003": 2}

    def test_nl004_zero_fanout_gate(self):
        c = Circuit("nl004")
        c.add_input("a")
        c.add_gate("g1", GateType.INV, ["a"], "y")
        report = lint_circuit(c)
        assert report.rule_histogram() == {"NL004": 1}
        assert report.diagnostics[0].severity is Severity.WARNING
        assert report.ok  # warnings do not fail the pre-flight

    def test_nl005_unknown_gate_template(self):
        c = Circuit("nl005")
        c.add_input("a")
        c.add_input("b")
        _inject(c, Gate("g1", "maj3", ("a", "b"), "y"))
        c.add_output("y")
        report = lint_circuit(c)
        assert report.rule_histogram() == {"NL005": 1}
        assert "maj3" in report.diagnostics[0].message

    def test_nl006_pin_arity_mismatch(self):
        c = Circuit("nl006")
        c.add_input("a")
        _inject(c, Gate("g1", GateType.NAND2, ("a",), "y"))
        c.add_output("y")
        report = lint_circuit(c)
        assert report.rule_histogram() == {"NL006": 1}
        assert "expects 2" in report.diagnostics[0].message

    def test_nl008_unreachable_collateral(self):
        c = Circuit("nl008")
        _inject(c, Gate("g1", GateType.INV, ("ghost",), "m"))
        c.add_gate("g2", GateType.INV, ["m"], "y")
        c.add_output("y")
        report = lint_circuit(c)
        # g1 is the root cause (NL001 on its undriven input); g2 is wired
        # correctly but sits behind the defect — the collateral NL008.
        assert report.rule_histogram() == {"NL001": 1, "NL008": 1}
        nl008 = report.by_rule("NL008")[0]
        assert nl008.location.gate == "g2"
        assert nl008.severity is Severity.WARNING

    def test_rule_registry_is_stable(self):
        codes = [rule.code for rule in RULES]
        assert codes == sorted(codes)
        assert set(codes) == {
            "NL001", "NL002", "NL003", "NL004", "NL005",
            "NL006", "NL007", "NL008", "NL009", "NL100",
        }
        assert RULES_BY_CODE["NL001"].slug == "floating-net"
        for rule in RULES:
            assert (rule.check is not None) == (rule.scope == "circuit")


# --------------------------------------------------------------------- #
# vector scope (NL007)
# --------------------------------------------------------------------- #
class TestVectorRule:
    @pytest.fixture()
    def chain(self):
        return inverter_chain(3)

    def test_clean_vectors_pass(self, chain):
        report = lint_vectors(chain, [{"in": 0}, {"in": 1}])
        assert report.clean

    def test_missing_input_flagged(self, chain):
        report = lint_vectors(chain, [{}])
        assert report.rule_histogram() == {"NL007": 1}
        assert "missing inputs" in report.diagnostics[0].message

    def test_extra_net_flagged(self, chain):
        report = lint_vectors(chain, [{"in": 0, "bogus": 1}])
        assert report.rule_histogram() == {"NL007": 1}
        assert "non-primary-input" in report.diagnostics[0].message

    def test_non_binary_value_flagged(self, chain):
        report = lint_vectors(chain, [{"in": 2}])
        assert report.rule_histogram() == {"NL007": 1}
        assert "non-binary" in report.diagnostics[0].message

    def test_one_diagnostic_per_offending_vector(self, chain):
        report = lint_vectors(chain, [{"in": 0}, {}, {"in": 3}])
        assert report.rule_histogram() == {"NL007": 2}
        assert "vector #1" in report.diagnostics[0].message
        assert "vector #2" in report.diagnostics[1].message


# --------------------------------------------------------------------- #
# flattened scope (NL009)
# --------------------------------------------------------------------- #
class TestFlattenedRule:
    def test_real_flatten_is_clean_and_orphan_is_caught(self, bulk50):
        from repro.circuit.flatten import flatten

        flattened = flatten(inverter_chain(2), bulk50, {"in": 0})
        assert lint_flattened(flattened).clean
        flattened.netlist.free_node("orphan")
        report = lint_flattened(flattened)
        assert report.rule_histogram() == {"NL009": 1}
        assert report.diagnostics[0].location.net == "orphan"
        assert report.ok  # NL009 is a warning


# --------------------------------------------------------------------- #
# clean passes over everything the generators produce
# --------------------------------------------------------------------- #
class TestCleanCircuits:
    @pytest.mark.parametrize(
        "circuit_factory",
        [
            lambda: inverter_chain(8),
            lambda: fanout_star(6),
            lambda: nand_tree(4),
            lambda: array_multiplier(4),
            lambda: alu(4),
            lambda: random_logic("clean_random", n_inputs=8, n_gates=60, rng=7),
        ],
        ids=["inverter_chain", "fanout_star", "nand_tree",
             "array_multiplier", "alu", "random_logic"],
    )
    def test_generator_circuits_lint_clean(self, circuit_factory):
        report = lint_circuit(circuit_factory())
        assert report.clean, report.render_text()

    @pytest.mark.parametrize("name", ["s1423", "s838"])
    def test_iscas_like_lints_clean(self, name):
        report = lint_circuit(iscas_like(name, scale=0.25, rng=11))
        assert report.clean, report.render_text()

    def test_bench_round_trip_lints_clean(self):
        circuit = iscas_like("s1423", scale=0.25, rng=11)
        report = lint_bench_text(write_bench(circuit), name="s1423.bench")
        assert report.clean, report.render_text()


# --------------------------------------------------------------------- #
# fault injection: corrupted .bench text and tampered circuits
# --------------------------------------------------------------------- #
class TestFaultInjection:
    @pytest.fixture(scope="class")
    def bench_text(self):
        return write_bench(iscas_like("s838", scale=0.25, rng=3))

    def _gate_lines(self, text):
        return [
            (i, line)
            for i, line in enumerate(text.splitlines(), start=1)
            if "=" in line
        ]

    def test_duplicate_definition_detected(self, bench_text):
        lines = bench_text.splitlines()
        line_no, gate_line = self._gate_lines(bench_text)[0]
        corrupted = "\n".join(lines + [gate_line])
        report = lint_bench_text(corrupted, name="dup.bench")
        assert report.rule_histogram() == {"NL100": 1}
        d = report.diagnostics[0]
        assert "duplicate definition" in d.message
        assert d.location.line == len(lines) + 1

    def test_undefined_signal_detected(self, bench_text):
        lines = bench_text.splitlines()
        line_no, gate_line = self._gate_lines(bench_text)[-1]
        lhs, rhs = gate_line.split("=", 1)
        head, _, tail = rhs.partition("(")
        first_arg = tail.split(",")[0].rstrip(") ")
        lines[line_no - 1] = gate_line.replace(first_arg, "never_defined", 1)
        report = lint_bench_text("\n".join(lines), name="undef.bench")
        assert report.rule_histogram() == {"NL100": 1}
        d = report.diagnostics[0]
        assert "undefined signal" in d.message
        assert d.location.line == line_no

    def test_unknown_primitive_detected(self, bench_text):
        lines = bench_text.splitlines()
        line_no, gate_line = self._gate_lines(bench_text)[0]
        lhs, rhs = gate_line.split("=", 1)
        args = rhs[rhs.index("(") :]
        lines[line_no - 1] = f"{lhs}= MAJ{args}"
        report = lint_bench_text("\n".join(lines), name="maj.bench")
        assert report.rule_histogram() == {"NL100": 1}
        assert "unsupported" in report.diagnostics[0].message
        assert report.diagnostics[0].location.line == line_no

    def test_garbage_line_detected(self, bench_text):
        lines = bench_text.splitlines()
        lines.insert(2, "this is not bench syntax")
        report = lint_bench_text("\n".join(lines), name="garbage.bench")
        assert report.rule_histogram() == {"NL100": 1}
        assert report.diagnostics[0].location.line == 3

    def test_deleted_driver_detected_structurally(self):
        circuit = iscas_like("s838", scale=0.25, rng=3)
        victim = next(
            name
            for name, gate in circuit.gates.items()
            if gate.output not in circuit.primary_outputs
        )
        del circuit.gates[victim]
        circuit._invalidate()
        histogram = lint_circuit(circuit).rule_histogram()
        assert histogram.get("NL001", 0) >= 1

    def test_retyped_gate_detected_structurally(self):
        circuit = iscas_like("s838", scale=0.25, rng=3)
        name, gate = next(iter(circuit.gates.items()))
        _inject(circuit, Gate(name, "mystery9", gate.inputs, gate.output))
        histogram = lint_circuit(circuit).rule_histogram()
        assert histogram.get("NL005", 0) == 1

    def test_rewired_arity_detected_structurally(self):
        circuit = iscas_like("s838", scale=0.25, rng=3)
        name, gate = next(iter(circuit.gates.items()))
        widened = gate.inputs + (circuit.primary_inputs[0],)
        _inject(circuit, Gate(name, gate.gate_type, widened, gate.output))
        histogram = lint_circuit(circuit).rule_histogram()
        assert histogram.get("NL006", 0) == 1


# --------------------------------------------------------------------- #
# pre-flight policy and entry-point wiring
# --------------------------------------------------------------------- #
def _bad_circuit() -> Circuit:
    c = Circuit("bad")
    c.add_input("a")
    _inject(c, Gate("g1", GateType.NAND2, ("a", "ghost"), "y"))
    c.add_output("y")
    return c


class TestPreflightPolicy:
    def test_raise_policy_raises_with_report(self):
        with pytest.raises(NetlistLintError) as excinfo:
            preflight_circuit(_bad_circuit(), lint="raise")
        assert "NL001" in str(excinfo.value)
        assert excinfo.value.report.rule_histogram() == {"NL001": 1}

    def test_raise_policy_is_the_default(self):
        with pytest.raises(NetlistLintError):
            preflight_circuit(_bad_circuit())

    def test_warn_policy_downgrades_errors(self):
        with pytest.warns(NetlistLintWarning, match="NL001"):
            report = preflight_circuit(_bad_circuit(), lint="warn")
        assert report is not None and not report.ok

    def test_off_policy_skips_linting(self):
        assert preflight_circuit(_bad_circuit(), lint="off") is None

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="lint must be one of"):
            preflight_circuit(_bad_circuit(), lint="loudly")

    def test_warning_findings_warn_under_raise(self):
        c = Circuit("deadgate")
        c.add_input("a")
        c.add_gate("g1", GateType.INV, ["a"], "y")  # zero fanout, no PO
        with pytest.warns(NetlistLintWarning, match="NL004"):
            report = preflight_circuit(c, lint="raise")
        assert report is not None and report.ok

    def test_lint_error_is_a_value_error(self):
        # Callers guarding the pre-lint Circuit.validate() failures with
        # ``except ValueError`` must keep working.
        with pytest.raises(ValueError):
            preflight_circuit(_bad_circuit())

    def test_preflight_vectors_raises_on_mismatch(self):
        chain = inverter_chain(3)
        with pytest.raises(NetlistLintError, match="NL007"):
            preflight_vectors(chain, [{"wrong_net": 0}])

    def test_rule_subset_selection(self):
        report = lint_circuit(_bad_circuit(), rules=["NL004"])
        assert report.clean  # NL001 excluded by the subset
        with pytest.raises(KeyError, match="NL999"):
            lint_circuit(_bad_circuit(), rules=["NL999"])


class TestEntryPointWiring:
    def test_compile_rejects_malformed_circuit_before_solving(self, library25):
        from repro.engine.compile import compile_circuit

        with pytest.raises(NetlistLintError, match="NL001"):
            compile_circuit(_bad_circuit(), library25)

    def test_compile_lint_off_falls_back_to_validate(self, library25):
        from repro.engine.compile import compile_circuit

        with pytest.raises(ValueError) as excinfo:
            compile_circuit(_bad_circuit(), library25, lint="off")
        assert not isinstance(excinfo.value, NetlistLintError)

    def test_reference_simulator_rejects_malformed_circuit(self, bulk50):
        from repro.core.reference import ReferenceSimulator

        simulator = ReferenceSimulator(bulk50)
        with pytest.raises(NetlistLintError, match="NL001"):
            simulator.estimate(_bad_circuit(), {"a": 0})

    def test_vector_campaign_rejects_mismatched_vectors(self, library25):
        from repro.core import LoadingAwareEstimator
        from repro.core.vectors import run_vector_campaign

        estimator = LoadingAwareEstimator(library25)
        with pytest.raises(NetlistLintError, match="NL007"):
            run_vector_campaign(
                estimator, inverter_chain(3), vectors=[{"bogus": 1}]
            )

    def test_minimum_leakage_vector_rejects_malformed_circuit(self, library25):
        from repro.core import LoadingAwareEstimator
        from repro.core.vectors import minimum_leakage_vector

        estimator = LoadingAwareEstimator(library25)
        with pytest.raises(NetlistLintError, match="NL001"):
            minimum_leakage_vector(estimator, _bad_circuit())


# --------------------------------------------------------------------- #
# report plumbing
# --------------------------------------------------------------------- #
class TestReportApi:
    def test_json_round_trip(self):
        report = lint_circuit(_bad_circuit())
        payload = json.loads(report.to_json())
        assert payload["subject"] == "bad"
        assert payload["ok"] is False
        assert payload["diagnostics"][0]["rule"] == "NL001"

    def test_merge_reports(self):
        merged = merge_reports(
            "both",
            [lint_circuit(_bad_circuit()), lint_circuit(inverter_chain(2))],
        )
        assert merged.subject == "both"
        assert merged.rule_histogram() == {"NL001": 1}

    def test_diagnostic_rendering_names_code_and_severity(self):
        report = lint_circuit(_bad_circuit())
        text = str(report.diagnostics[0])
        assert "NL001" in text and "error" in text
        assert "NL001" in report.render_text()


# --------------------------------------------------------------------- #
# the CLI
# --------------------------------------------------------------------- #
class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.bench"
        path.write_text(write_bench(nand_tree(3)))
        assert lint_main([str(path)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_corrupted_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "broken.bench"
        path.write_text("INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n")
        assert lint_main([str(path)]) == 1
        assert "NL100" in capsys.readouterr().out

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope.bench")]) == 1
        assert "cannot read file" in capsys.readouterr().out

    def test_warning_only_file_gated_by_werror(self, tmp_path, capsys):
        path = tmp_path / "deadgate.bench"
        # d never reaches an output: zero-fanout warning, not an error.
        path.write_text(
            "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\nd = NOT(a)\n"
        )
        assert lint_main([str(path)]) == 0
        assert lint_main([str(path), "--werror"]) == 1
        assert "NL004" in capsys.readouterr().out

    def test_json_report_written(self, tmp_path, capsys):
        bench = tmp_path / "clean.bench"
        bench.write_text(write_bench(nand_tree(3)))
        out = tmp_path / "report.json"
        assert lint_main([str(bench), "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert len(payload["subjects"]) == 1

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule.code in out

    def test_no_arguments_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            lint_main([])
        assert excinfo.value.code == 2

    def test_self_check_passes(self, capsys):
        assert lint_main(["--self-check", "--scale", "0.25", "--quiet"]) == 0
        assert "0 error(s)" in capsys.readouterr().out
