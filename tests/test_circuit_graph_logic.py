"""Tests for topological ordering, levelization and logic propagation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.generators import inverter_chain, nand_tree, random_logic
from repro.circuit.graph import (
    fanout_histogram,
    levelize,
    logic_depth,
    reachable_from_inputs,
    to_networkx,
    topological_order,
)
from repro.circuit.logic import (
    exhaustive_vectors,
    gate_input_bits,
    propagate,
    random_input_assignment,
    random_vectors,
)
from repro.circuit.netlist import Circuit
from repro.gates.library import GateType


class TestTopologicalOrder:
    def test_chain_order(self):
        circuit = inverter_chain(5)
        order = topological_order(circuit)
        assert order == [f"inv{i}" for i in range(1, 6)]

    def test_cycle_detection(self):
        circuit = Circuit(name="cyclic")
        circuit.add_input("a")
        circuit.add_gate("g1", GateType.NAND2, ["a", "n2"], "n1")
        circuit.add_gate("g2", GateType.INV, ["n1"], "n2")
        with pytest.raises(ValueError, match="cycle"):
            topological_order(circuit)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000), gates=st.integers(8, 60))
    def test_order_respects_dependencies(self, seed, gates):
        """Property: every gate appears after all gates driving its inputs."""
        circuit = random_logic("prop", 6, gates, rng=seed)
        order = topological_order(circuit)
        position = {name: idx for idx, name in enumerate(order)}
        assert len(order) == circuit.gate_count
        for gate in circuit.gates.values():
            for net in gate.inputs:
                driver = circuit.driver_of(net)
                if driver is not None:
                    assert position[driver] < position[gate.name]


class TestLevelsAndStats:
    def test_levelize_chain(self):
        circuit = inverter_chain(4)
        levels = levelize(circuit)
        assert [levels[f"inv{i}"] for i in range(1, 5)] == [0, 1, 2, 3]
        assert logic_depth(circuit) == 4

    def test_tree_depth(self):
        circuit = nand_tree(3)
        assert logic_depth(circuit) == 3

    def test_fanout_histogram(self):
        circuit = inverter_chain(3)
        histogram = fanout_histogram(circuit)
        assert histogram[1] == 3  # in, n1, n2 each drive one inverter
        assert histogram[0] == 1  # final output

    def test_networkx_export(self):
        circuit = inverter_chain(3)
        graph = to_networkx(circuit)
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2

    def test_reachable_from_inputs(self):
        circuit = inverter_chain(3)
        assert reachable_from_inputs(circuit) == set(circuit.gates)

    def test_empty_circuit_depth(self):
        assert logic_depth(Circuit(name="empty")) == 0


class TestLogicPropagation:
    def test_inverter_chain_alternates(self):
        circuit = inverter_chain(4)
        values = propagate(circuit, {"in": 1})
        assert values["n1"] == 0
        assert values["n2"] == 1
        assert values["n4"] == 1

    def test_missing_input_rejected(self):
        circuit = inverter_chain(2)
        with pytest.raises(KeyError, match="unassigned"):
            propagate(circuit, {})

    def test_extra_input_rejected(self):
        circuit = inverter_chain(2)
        with pytest.raises(KeyError, match="non-primary"):
            propagate(circuit, {"in": 0, "bogus": 1})

    def test_gate_input_bits(self):
        circuit = inverter_chain(2)
        values = propagate(circuit, {"in": 0})
        assert gate_input_bits(circuit.gates["inv2"], values) == (1,)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_propagation_consistent_with_specs(self, seed):
        """Property: every gate output equals its spec applied to its inputs."""
        circuit = random_logic("prop", 5, 40, rng=seed)
        assignment = random_input_assignment(circuit, rng=seed)
        values = propagate(circuit, assignment)
        for gate in circuit.gates.values():
            bits = tuple(values[n] for n in gate.inputs)
            assert values[gate.output] == gate.spec.evaluate(bits)


class TestVectorGeneration:
    def test_random_vectors_reproducible(self):
        circuit = nand_tree(2)
        first = list(random_vectors(circuit, 5, rng=42))
        second = list(random_vectors(circuit, 5, rng=42))
        assert first == second

    def test_random_vector_covers_all_inputs(self):
        circuit = nand_tree(2)
        assignment = random_input_assignment(circuit, rng=1)
        assert set(assignment) == set(circuit.primary_inputs)
        assert set(assignment.values()) <= {0, 1}

    def test_negative_count_rejected(self):
        circuit = nand_tree(2)
        with pytest.raises(ValueError):
            list(random_vectors(circuit, -1))

    def test_exhaustive_vectors(self):
        circuit = nand_tree(2)  # 4 inputs
        vectors = list(exhaustive_vectors(circuit))
        assert len(vectors) == 16
        assert len({tuple(sorted(v.items())) for v in vectors}) == 16
