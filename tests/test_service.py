"""Service layer: estimation sessions, request coalescing, caches, stores.

The load-bearing contracts:

* **coalescing is invisible in the numbers** — N threads submitting
  overlapping vector sets through one session receive totals bitwise
  identical to serial per-request evaluation;
* **every request is accounted for** — the coalescer's vector ledger
  balances (``request_vectors == batched_vectors``) and every batch is a
  timeout or a full flush;
* **no starvation** — a batch closes before its (possibly slow) evaluation
  runs, so requests arriving behind a slow one are led independently, and a
  solo request pays at most one window (timeout flush of a partial batch);
* the compile cache is a bounded LRU whose counters add up;
* the library store round-trips, refuses mismatches gracefully, and
  converges to the union under multiple publishers.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.circuit.generators import nand_tree, random_logic
from repro.circuit.logic import random_vectors
from repro.core.estimator import LoadingAwareEstimator
from repro.core.vectors import minimum_leakage_vector, run_vector_campaign
from repro.engine.campaign import run_compiled, run_totals
from repro.engine.compile import CompileCache, compile_circuit
from repro.gates.cache import LibraryStore
from repro.gates.characterize import CharacterizationOptions, GateLibrary
from repro.gates.library import GateType
from repro.service import (
    DeadlineExceeded,
    EstimationSession,
    RequestCoalescer,
    ServiceOverloaded,
)
from repro.service.session import stats_delta

#: Same reduced injection grid as the conftest fixtures, so libraries built
#: here share characterization settings (and disk-cache files) with them.
FAST_GRID = (-3.2e-6, -1.6e-6, 0.0, 1.6e-6, 3.2e-6)


@pytest.fixture()
def session(library_d25s):
    """A fresh session (private compile cache, isolated counters)."""
    return EstimationSession()


@pytest.fixture(scope="module")
def circuit():
    return nand_tree(4)


def _random_bits(circuit, n_vectors, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(
        0, 2, size=(len(circuit.primary_inputs), n_vectors), dtype=np.uint8
    ).astype(np.uint8)


# --------------------------------------------------------------------------- #
# coalesced == serial, bitwise
# --------------------------------------------------------------------------- #


def test_concurrent_totals_bitwise_identical_to_serial(
    session, circuit, library_d25s
):
    """N threads with overlapping vector sets: coalesced == serial bitwise."""
    bits = _random_bits(circuit, 60)
    compiled = session.compiled(circuit, library_d25s)
    serial = run_totals(compiled, bits)

    # Overlapping slices: every thread shares vectors with its neighbours,
    # so identical columns must produce identical totals wherever they land
    # in whatever batch composition the scheduler produces.
    slices = [slice(0, 20), slice(10, 35), slice(25, 50), slice(40, 60)]
    results: dict[int, np.ndarray] = {}
    barrier = threading.Barrier(len(slices))

    def worker(i: int, sl: slice) -> None:
        barrier.wait()
        results[i] = session.totals(circuit, library_d25s, bits[:, sl])

    threads = [
        threading.Thread(target=worker, args=(i, sl))
        for i, sl in enumerate(slices)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    for i, sl in enumerate(slices):
        assert np.array_equal(results[i], serial[sl]), (
            f"thread {i} got different totals than serial evaluation"
        )


def test_concurrent_campaigns_bitwise_identical_to_serial(
    session, circuit, library_d25s
):
    """Coalesced campaign slices match standalone run_compiled bitwise."""
    vectors = list(random_vectors(circuit, 24, rng=2005))
    compiled = session.compiled(circuit, library_d25s)

    chunks = [vectors[0:8], vectors[8:16], vectors[16:24]]
    results: dict[int, object] = {}
    barrier = threading.Barrier(len(chunks))

    def worker(i: int, chunk) -> None:
        barrier.wait()
        results[i] = session.campaign(circuit, library_d25s, chunk)

    threads = [
        threading.Thread(target=worker, args=(i, c)) for i, c in enumerate(chunks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    for i, chunk in enumerate(chunks):
        alone = run_compiled(compiled, chunk)
        run = results[i]
        assert run.assignments == chunk
        assert np.array_equal(run.per_gate, alone.per_gate)
        assert np.array_equal(run.vec_index, alone.vec_index)
        assert np.array_equal(run.input_loading, alone.input_loading)
        assert np.array_equal(run.output_loading, alone.output_loading)
        # Sliced runs still materialize full scalar-compatible reports.
        assert run.report(0).input_assignment == chunk[0]


def test_serial_totals_accept_assignments_and_bits(session, circuit, library_d25s):
    """Dict-vector and bit-matrix inputs produce identical totals."""
    bits = _random_bits(circuit, 10, seed=3)
    vectors = [
        dict(zip(circuit.primary_inputs, bits[:, j].tolist()))
        for j in range(bits.shape[1])
    ]
    from_bits = session.totals(circuit, library_d25s, bits, coalesce=False)
    from_dicts = session.totals(circuit, library_d25s, vectors, coalesce=False)
    assert np.array_equal(from_bits, from_dicts)


def test_iter_campaign_streams_bitwise_chunks(session, circuit, library_d25s):
    """Streamed chunks concatenate to the one-shot campaign, bitwise."""
    vectors = list(random_vectors(circuit, 11, rng=7))
    whole = session.campaign(circuit, library_d25s, vectors, coalesce=False)
    chunks = list(
        session.iter_campaign(circuit, library_d25s, iter(vectors), chunk_size=4)
    )
    assert [c.vector_count for c in chunks] == [4, 4, 3]
    streamed = np.concatenate([c.component_totals()["total"] for c in chunks])
    assert np.array_equal(streamed, whole.component_totals()["total"])


# --------------------------------------------------------------------------- #
# coalescer accounting and flush behavior
# --------------------------------------------------------------------------- #


def test_stats_account_for_every_request(session, circuit, library_d25s):
    """The vector ledger balances: nothing dropped, nothing double-counted."""
    bits = _random_bits(circuit, 40)
    slices = [slice(0, 10), slice(10, 25), slice(25, 40)]
    barrier = threading.Barrier(len(slices))

    def worker(sl: slice) -> None:
        barrier.wait()
        session.totals(circuit, library_d25s, bits[:, sl])

    threads = [threading.Thread(target=worker, args=(sl,)) for sl in slices]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # One more through the serial path: counted as a session request but
    # never enters the coalescer.
    session.totals(circuit, library_d25s, bits[:, :5], coalesce=False)

    stats = session.stats()
    co = stats["coalescer"]
    assert stats["session"]["requests"] == len(slices) + 1
    assert co["requests"] == len(slices)
    assert co["request_vectors"] == 40
    assert co["batched_vectors"] == co["request_vectors"]
    assert co["batches"] == co["timeout_flushes"] + co["full_flushes"]
    assert 1 <= co["batches"] <= len(slices)
    assert co["coalesced_requests"] == co["requests"] - co["batches"]
    assert stats["compile_cache"]["misses"] == 1
    assert stats["compile_cache"]["hits"] >= len(slices)


def test_full_batch_flushes_early_without_waiting_window():
    """Reaching max_batch_vectors wakes the leader before the deadline."""
    coalescer = RequestCoalescer(window_s=30.0, max_batch_vectors=8)
    results: dict[str, list] = {}

    def run_batch(payloads):
        return [[x * 10 for x in p] for p in payloads]

    def leader():
        results["leader"] = coalescer.submit("k", [1, 2, 3, 4], 4, run_batch)

    def follower():
        # Join only once the leader's vectors are registered in the open
        # batch, so the composition (and the full flush) is deterministic.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            with coalescer._lock:
                if coalescer._request_vectors >= 4:
                    break
            time.sleep(0.001)
        results["follower"] = coalescer.submit("k", [5, 6, 7, 8], 4, run_batch)

    start = time.monotonic()
    t1 = threading.Thread(target=leader)
    t2 = threading.Thread(target=follower)
    t1.start()
    t2.start()
    t1.join(timeout=10.0)
    t2.join(timeout=10.0)
    elapsed = time.monotonic() - start

    assert results["leader"] == [10, 20, 30, 40]
    assert results["follower"] == [50, 60, 70, 80]
    # A 30 s window that returned in well under that proves the full-batch
    # early flush fired.
    assert elapsed < 10.0
    stats = coalescer.stats()
    assert stats["batches"] == 1
    assert stats["full_flushes"] == 1
    assert stats["timeout_flushes"] == 0
    assert stats["coalesced_requests"] == 1
    assert stats["max_batch_requests"] == 2


def test_timeout_flushes_partial_batch():
    """A solo request is answered after one window — never starved."""
    coalescer = RequestCoalescer(window_s=0.02, max_batch_vectors=10_000)
    start = time.monotonic()
    result = coalescer.submit("k", [1], 1, lambda payloads: [p[0] for p in payloads])
    elapsed = time.monotonic() - start
    assert result == 1
    assert elapsed < 5.0  # one window + evaluation, not the vector bound
    stats = coalescer.stats()
    assert stats["batches"] == 1
    assert stats["timeout_flushes"] == 1
    assert stats["full_flushes"] == 0


def test_slow_request_does_not_starve_later_requests():
    """The batch closes before evaluation: a slow run can't hold up others."""
    coalescer = RequestCoalescer(window_s=0.01, max_batch_vectors=10_000)
    slow_started = threading.Event()
    release_slow = threading.Event()
    order: list[str] = []

    def slow_batch(payloads):
        slow_started.set()
        assert release_slow.wait(timeout=10.0)
        return payloads

    def fast_batch(payloads):
        return payloads

    def slow_caller():
        coalescer.submit("k", "slow", 1, slow_batch)
        order.append("slow")

    def fast_caller():
        slow_started.wait(timeout=10.0)
        coalescer.submit("k", "fast", 1, fast_batch)
        order.append("fast")
        release_slow.set()

    t1 = threading.Thread(target=slow_caller)
    t2 = threading.Thread(target=fast_caller)
    t1.start()
    t2.start()
    t1.join(timeout=10.0)
    t2.join(timeout=10.0)

    # The fast request completed while the slow evaluation was still
    # blocked (it is what released it), in its own batch.
    assert order == ["fast", "slow"]
    assert coalescer.stats()["batches"] == 2


def test_evaluation_error_propagates_to_every_batch_member():
    """A failing batch raises in the leader and every follower alike."""
    coalescer = RequestCoalescer(window_s=0.05, max_batch_vectors=10_000)
    errors: list[BaseException] = []
    barrier = threading.Barrier(2)

    def bad_batch(payloads):
        raise RuntimeError("engine exploded")

    def caller():
        barrier.wait()
        try:
            coalescer.submit("k", None, 1, bad_batch)
        except RuntimeError as exc:
            errors.append(exc)

    threads = [threading.Thread(target=caller) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10.0)
    assert len(errors) == 2
    assert all("engine exploded" in str(e) for e in errors)


def test_coalescer_rejects_bad_parameters():
    with pytest.raises(ValueError):
        RequestCoalescer(window_s=-0.1)
    with pytest.raises(ValueError):
        RequestCoalescer(max_batch_vectors=0)
    with pytest.raises(ValueError):
        RequestCoalescer(max_in_flight=0)
    coalescer = RequestCoalescer()
    with pytest.raises(ValueError):
        coalescer.submit("k", [1], 1, lambda p: p, deadline_s=0.0)


# --------------------------------------------------------------------------- #
# coalescer hardening: deadlines, load shedding, leader death (PR 9)
# --------------------------------------------------------------------------- #


def test_deadline_returns_to_caller_without_sinking_the_batch():
    """A caller's deadline expires promptly; the evaluation still lands."""
    coalescer = RequestCoalescer(window_s=0.01, max_batch_vectors=10_000)
    release = threading.Event()
    evaluated = threading.Event()

    def slow_batch(payloads):
        assert release.wait(timeout=10.0)
        evaluated.set()
        return payloads

    start = time.monotonic()
    with pytest.raises(DeadlineExceeded):
        coalescer.submit("k", [1], 1, slow_batch, deadline_s=0.1)
    elapsed = time.monotonic() - start
    # The caller got out in about one deadline, not one evaluation.
    assert elapsed < 5.0
    release.set()
    assert evaluated.wait(timeout=10.0)  # batch kept running regardless
    assert coalescer.stats()["deadline_exceeded"] == 1
    # The coalescer is not wedged: a fresh request completes normally.
    assert coalescer.submit("k", [2], 1, lambda p: p) == [2]


def test_window_zero_flushes_immediately():
    """``window_s=0`` is a valid degenerate config: no batching delay."""
    coalescer = RequestCoalescer(window_s=0.0, max_batch_vectors=10_000)
    start = time.monotonic()
    result = coalescer.submit(
        "k", [7], 1, lambda payloads: [[x * 2 for x in p] for p in payloads]
    )
    assert result == [14]
    assert time.monotonic() - start < 5.0
    assert coalescer.stats()["batches"] == 1


def test_admission_control_sheds_load_when_full():
    """At max_in_flight the coalescer refuses instead of queueing forever."""
    coalescer = RequestCoalescer(
        window_s=0.01, max_batch_vectors=10_000, max_in_flight=1
    )
    occupied = threading.Event()
    release = threading.Event()
    results: dict[str, object] = {}

    def slow_batch(payloads):
        occupied.set()
        assert release.wait(timeout=10.0)
        return payloads

    def occupant():
        results["occupant"] = coalescer.submit("k", [1], 1, slow_batch)

    thread = threading.Thread(target=occupant)
    thread.start()
    assert occupied.wait(timeout=10.0)
    with pytest.raises(ServiceOverloaded):
        coalescer.submit("k", [2], 1, lambda p: p)
    release.set()
    thread.join(timeout=10.0)
    assert results["occupant"] == [1]
    stats = coalescer.stats()
    assert stats["rejected"] == 1
    assert stats["in_flight"] == 0  # slots are released on every path


def test_leader_death_releases_followers():
    """If the leader dies before flushing, followers get the error — they
    never hang on a batch nobody will run."""
    coalescer = RequestCoalescer(window_s=0.05, max_batch_vectors=10_000)
    outcomes: dict[str, BaseException | str] = {}
    real_start = threading.Thread.start

    def exploding_start(self, *args, **kwargs):
        if self.name.startswith("coalescer-flush"):
            raise RuntimeError("leader died before flush")
        return real_start(self, *args, **kwargs)

    def member(name: str, wait_for_leader: bool):
        if wait_for_leader:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                with coalescer._lock:
                    if coalescer._request_vectors >= 1:
                        break
                time.sleep(0.001)
        try:
            coalescer.submit("k", [1], 1, lambda p: p)
            outcomes[name] = "ok"
        except RuntimeError as exc:
            outcomes[name] = exc

    threading.Thread.start = exploding_start
    try:
        threads = [
            threading.Thread(target=member, args=("leader", False)),
            threading.Thread(target=member, args=("follower", True)),
        ]
        for t in threads:
            real_start(t)
        for t in threads:
            t.join(timeout=10.0)
            assert not t.is_alive(), "a coalescer member hung on leader death"
    finally:
        threading.Thread.start = real_start

    assert all(
        isinstance(outcome, RuntimeError)
        and "leader died" in str(outcome)
        for outcome in outcomes.values()
    ), outcomes
    # The coalescer recovered: the next request flushes normally.
    assert coalescer.submit("k", [3], 1, lambda p: p) == [3]


def test_session_degrades_to_direct_evaluation_on_coalescer_failure(
    circuit, library_d25s
):
    """A broken coalescer downgrades service, never correctness."""
    session = EstimationSession()
    bits = _random_bits(circuit, 8, seed=21)
    expected = session.totals(circuit, library_d25s, bits, coalesce=False)

    def broken_submit(*args, **kwargs):
        raise RuntimeError("coalescer wedged")

    session._coalescer.submit = broken_submit  # type: ignore[method-assign]
    degraded = session.totals(circuit, library_d25s, bits)
    assert np.array_equal(degraded, expected)
    assert session.stats()["session"]["degraded_requests"] == 1


def test_session_does_not_degrade_deadline_or_overload(circuit, library_d25s):
    """Deadline/overload are caller contracts — they propagate, with no
    silent serial fallback that would blow the deadline anyway."""
    session = EstimationSession()
    bits = _random_bits(circuit, 4, seed=22)

    def deadline_submit(*args, **kwargs):
        raise DeadlineExceeded("past deadline")

    session._coalescer.submit = deadline_submit  # type: ignore[method-assign]
    with pytest.raises(DeadlineExceeded):
        session.totals(circuit, library_d25s, bits, deadline_s=0.5)

    def overloaded_submit(*args, **kwargs):
        raise ServiceOverloaded("queue full")

    session._coalescer.submit = overloaded_submit  # type: ignore[method-assign]
    with pytest.raises(ServiceOverloaded):
        session.totals(circuit, library_d25s, bits)
    assert session.stats()["session"]["degraded_requests"] == 0


def test_session_campaign_honors_deadline(circuit, library_d25s):
    """campaign() forwards deadlines exactly like totals()."""
    session = EstimationSession()
    vectors = list(random_vectors(circuit, 4, rng=9))
    expected = session.campaign(circuit, library_d25s, vectors, coalesce=False)
    run = session.campaign(circuit, library_d25s, vectors, deadline_s=30.0)
    assert np.array_equal(run.per_gate, expected.per_gate)


# --------------------------------------------------------------------------- #
# compile cache: bounded LRU with truthful counters
# --------------------------------------------------------------------------- #


def test_compile_cache_counters_and_lru_eviction(library_d25s):
    cache = CompileCache(maxsize=2)
    c1, c2, c3 = nand_tree(2), nand_tree(3), nand_tree(4)

    a = cache.get_or_compile(c1, library_d25s)
    assert cache.get_or_compile(c1, library_d25s) is a
    b = cache.get_or_compile(c2, library_d25s)
    # Touch c1 so c2 is the least recently used entry ...
    assert cache.get_or_compile(c1, library_d25s) is a
    cache.get_or_compile(c3, library_d25s)
    # ... and verify c2 (not c1) was evicted.
    assert cache.get_or_compile(c1, library_d25s) is a
    assert cache.get_or_compile(c2, library_d25s) is not b

    info = cache.cache_info()
    assert info.maxsize == 2
    assert info.entries == 2
    assert info.misses == 4  # c1, c2, c3, c2-again
    assert info.hits == 3
    assert info.evictions == 2
    total = info.as_dict()
    assert total["hits"] + total["misses"] == 7


def test_compile_cache_clear_resets_counters(library_d25s):
    cache = CompileCache(maxsize=4)
    cache.get_or_compile(nand_tree(2), library_d25s)
    cache.clear()
    info = cache.cache_info()
    assert (info.hits, info.misses, info.evictions, info.entries) == (0, 0, 0, 0)


def test_compile_cache_purges_dead_library_entries(d25s):
    cache = CompileCache(maxsize=8)
    circuit = nand_tree(2)
    options = CharacterizationOptions(injection_grid=FAST_GRID)
    library = GateLibrary(d25s, options=options)
    cache.get_or_compile(circuit, library)
    assert cache.cache_info().entries == 1
    del library
    import gc

    gc.collect()
    info = cache.cache_info()
    assert info.entries == 0
    assert info.evictions == 1


def test_compile_circuit_uses_explicit_store(circuit, library_d25s):
    """compile_circuit(store=...) bypasses the process-default cache."""
    private = CompileCache(maxsize=4)
    compiled = compile_circuit(circuit, library_d25s, store=private)
    assert compile_circuit(circuit, library_d25s, store=private) is compiled
    assert private.cache_info().hits == 1
    # cache=False always returns a fresh instance and records nothing.
    fresh = compile_circuit(circuit, library_d25s, cache=False, store=private)
    assert fresh is not compiled
    assert private.cache_info().misses == 1


# --------------------------------------------------------------------------- #
# library store
# --------------------------------------------------------------------------- #


def _fast_library(technology):
    return GateLibrary(
        technology, options=CharacterizationOptions(injection_grid=FAST_GRID)
    )


def test_library_store_round_trip(tmp_path, d25s):
    store = LibraryStore(tmp_path)
    source = _fast_library(d25s)
    source.precharacterize([GateType.INV])
    published = store.publish(source)
    assert published == len(source.cached_records()) > 0

    warmed = _fast_library(d25s)
    loaded = store.load(warmed)
    assert loaded == published
    record = source.characterization(GateType.INV, (0,))
    again = warmed.characterization(GateType.INV, (0,))
    assert again.nominal.subthreshold == record.nominal.subthreshold
    stats = store.stats()
    assert stats["loads"] == 1
    assert stats["records_loaded"] == published
    assert stats["publishes"] == 1
    assert stats["load_failures"] == 0


def test_library_store_ignores_corrupt_file(tmp_path, d25s):
    store = LibraryStore(tmp_path)
    library = _fast_library(d25s)
    store.path_for(library).write_text("{not json")
    assert store.load(library) == 0
    assert store.stats()["load_failures"] == 1


def test_library_store_different_settings_use_different_files(tmp_path, d25s):
    store = LibraryStore(tmp_path)
    fast = _fast_library(d25s)
    default = GateLibrary(d25s)
    assert store.path_for(fast) != store.path_for(default)
    # Different generations also separate, so numerics bumps can't conflate.
    assert store.path_for(fast) != LibraryStore(tmp_path, generation=1).path_for(fast)


def test_library_store_publishes_converge_to_union(tmp_path, d25s):
    """Two writers with disjoint records: the store converges to the union."""
    store = LibraryStore(tmp_path)
    writer_a = _fast_library(d25s)
    writer_a.precharacterize([GateType.INV])
    count_a = store.publish(writer_a)

    writer_b = _fast_library(d25s)
    writer_b.precharacterize([GateType.BUF])
    count_b = store.publish(writer_b)
    assert count_b > count_a  # merged A's records before writing

    reader = _fast_library(d25s)
    assert store.load(reader) == count_b
    # Both gate types answer from the cache without re-characterization.
    keys = {record.gate_type_name for record in reader.cached_records()}
    assert {"inv", "buf"} <= {k.lower() for k in keys}


def test_library_store_skips_publish_when_nothing_grew(tmp_path, d25s):
    store = LibraryStore(tmp_path)
    library = _fast_library(d25s)
    library.precharacterize([GateType.INV])
    assert store.publish(library) > 0
    # Re-publishing the identical record set writes nothing.
    assert store.publish(library) == 0
    assert store.stats()["publishes"] == 1


# --------------------------------------------------------------------------- #
# session plumbing: registry, adapters, stats
# --------------------------------------------------------------------------- #


def test_session_library_registry_deduplicates(d25s, tmp_path):
    session = EstimationSession(store=tmp_path)
    options = CharacterizationOptions(injection_grid=FAST_GRID)
    first = session.library(d25s, options=options)
    second = session.library(d25s, options=options)
    assert first is second
    stats = session.stats()
    assert stats["libraries"] == {"entries": 1, "hits": 1, "misses": 1}
    assert stats["store"]["loads"] == 1


def test_session_register_library_prefers_existing_instance(d25s):
    session = EstimationSession()
    options = CharacterizationOptions(injection_grid=FAST_GRID)
    original = GateLibrary(d25s, options=options)
    assert session.register_library(original) is original
    equivalent = GateLibrary(d25s, options=options)
    assert session.register_library(equivalent) is original


def test_session_publish_libraries_round_trips(tmp_path, d25s):
    session = EstimationSession(store=tmp_path)
    options = CharacterizationOptions(injection_grid=FAST_GRID)
    library = session.library(d25s, options=options)
    library.precharacterize([GateType.INV])
    assert session.publish_libraries() > 0

    fresh = EstimationSession(store=tmp_path)
    warmed = fresh.library(d25s, options=options)
    assert len(warmed.cached_records()) == len(library.cached_records())


def test_run_vector_campaign_accepts_session(circuit, library_d25s):
    session = EstimationSession()
    estimator = LoadingAwareEstimator(library_d25s)
    vectors = list(random_vectors(circuit, 6, rng=1))
    through_session = run_vector_campaign(
        estimator, circuit, vectors=vectors, session=session
    )
    default_path = run_vector_campaign(estimator, circuit, vectors=vectors)
    assert np.array_equal(through_session.totals(), default_path.totals())
    assert session.stats()["compile_cache"]["misses"] == 1


def test_minimum_leakage_vector_accepts_session(circuit, library_d25s):
    session = EstimationSession()
    estimator = LoadingAwareEstimator(library_d25s)
    best, total = minimum_leakage_vector(
        estimator, circuit, exhaustive=True, session=session
    )
    best_default, total_default = minimum_leakage_vector(
        estimator, circuit, exhaustive=True
    )
    assert best == best_default
    assert total == total_default
    assert session.stats()["compile_cache"]["misses"] == 1
    assert session.stats()["session"]["requests"] >= 1


def test_random_logic_session_campaign_matches_direct_engine(library_d25s):
    """A wider circuit through the session == direct engine, bitwise."""
    circuit = random_logic("svc_rand", n_inputs=8, n_gates=24, rng=11)
    session = EstimationSession()
    bits = _random_bits(circuit, 32, seed=5)
    totals = session.totals(circuit, library_d25s, bits, coalesce=False)
    direct = run_totals(compile_circuit(circuit, library_d25s, cache=False), bits)
    assert np.array_equal(totals, direct)


def test_stats_delta_subtracts_counters_and_keeps_gauges():
    before = {"compile_cache": {"hits": 2, "misses": 1, "entries": 3}}
    after = {
        "compile_cache": {"hits": 5, "misses": 1, "entries": 4},
        "coalescer": {"requests": 2},
    }
    delta = stats_delta(before, after)
    assert delta["compile_cache"] == {"hits": 3, "misses": 0, "entries": 4}
    assert delta["coalescer"] == {"requests": 2}
