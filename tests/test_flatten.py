"""Tests for gate-level to transistor-level flattening."""

import pytest

from repro.circuit.flatten import flatten
from repro.circuit.generators import inverter_chain, loaded_inverter_cluster
from repro.circuit.netlist import Circuit
from repro.gates.library import GateType
from repro.gates.templates import transistor_count
from repro.spice.netlist import NodeKind


class TestFlatten:
    def test_transistor_count_matches_templates(self, bulk25):
        circuit = Circuit(name="mix")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("g1", GateType.NAND2, ["a", "b"], "n1")
        circuit.add_gate("g2", GateType.XOR2, ["n1", "a"], "n2")
        circuit.add_output("n2")
        flattened = flatten(circuit, bulk25, {"a": 0, "b": 1})
        expected = transistor_count(GateType.NAND2) + transistor_count(GateType.XOR2)
        assert flattened.transistor_count == expected

    def test_primary_inputs_fixed_at_rails(self, bulk25):
        circuit = inverter_chain(3)
        flattened = flatten(circuit, bulk25, {"in": 1})
        node = flattened.netlist.nodes["in"]
        assert node.kind is NodeKind.FIXED
        assert node.voltage == pytest.approx(bulk25.vdd)

    def test_internal_nets_free_with_logic_guesses(self, bulk25):
        circuit = inverter_chain(3)
        flattened = flatten(circuit, bulk25, {"in": 1})
        guesses = flattened.initial_voltages()
        assert guesses["n1"] == pytest.approx(0.0)
        assert guesses["n2"] == pytest.approx(bulk25.vdd)
        assert flattened.netlist.nodes["n1"].kind is NodeKind.FREE

    def test_gate_internal_nodes_seeded_by_conduction(self, bulk25):
        # NAND3 stack (top->bottom gates a=1, b=0, a=1), output '1': the
        # node above the OFF middle device conducts to the output rail,
        # the node below it conducts to ground.
        circuit = Circuit(name="nand")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("g1", GateType.NAND3, ["a", "b", "a"], "y")
        circuit.add_output("y")
        flattened = flatten(circuit, bulk25, {"a": 1, "b": 0})
        guesses = flattened.initial_voltages()
        assert guesses["g1.sn0"] == pytest.approx(bulk25.vdd)
        assert guesses["g1.sn1"] == pytest.approx(0.0)

    def test_two_stage_internal_seeded_at_complement(self, bulk25):
        # AND2 is NAND2 + inverter: the internal stage1 net settles at the
        # complement of the gate output, not at the output rail.
        circuit = Circuit(name="and")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("g1", GateType.AND2, ["a", "b"], "y")
        circuit.add_output("y")
        flattened = flatten(circuit, bulk25, {"a": 1, "b": 1})
        guesses = flattened.initial_voltages()
        assert guesses["g1.stage1"] == pytest.approx(0.0)  # output is '1'
        assert guesses["y"] == pytest.approx(bulk25.vdd)

    def test_owner_tags_match_gate_names(self, bulk25):
        circuit = loaded_inverter_cluster(2, 2)
        flattened = flatten(circuit, bulk25, {"in": 0})
        owners = {t.owner for t in flattened.netlist.transistors}
        assert owners == set(circuit.gates)

    def test_net_values_recorded(self, bulk25):
        circuit = inverter_chain(2)
        flattened = flatten(circuit, bulk25, {"in": 0})
        assert flattened.net_values == {"in": 0, "n1": 1, "n2": 0}
        assert flattened.input_assignment == {"in": 0}

    def test_invalid_circuit_rejected(self, bulk25):
        circuit = Circuit(name="broken")
        circuit.add_input("a")
        circuit.add_gate("g", GateType.NAND2, ["a", "ghost"], "y")
        with pytest.raises(ValueError):
            flatten(circuit, bulk25, {"a": 0})
