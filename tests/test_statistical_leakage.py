"""Tests for the variance-reduced statistical-leakage subsystem.

Covers the scrambled-Sobol QMC sampler (reproducibility, truncation,
serial-vs-pool bitwise identity), the moment-propagation fast path against
the Monte-Carlo oracle, the percentile/yield estimators with bootstrap
confidence intervals, the session-level ``percentile_leakage`` query and
its population cache, and the statistics-layer bugfix pass: guarded
percent-shift division, per-sample convergence policies, and the
empty-population guards of the Fig. 10 / Fig. 11 drivers.
"""

import math

import numpy as np
import pytest

from repro.engine.parallel import ParallelMonteCarlo
from repro.experiments.fig10 import run_fig10_variation_histograms
from repro.experiments.fig11 import run_fig11_variation_statistics
from repro.service import EstimationSession
from repro.spice.solver import SolverOptions
from repro.utils.rng import ensure_rng
from repro.variation.moments import (
    clipped_gaussian_exp_moment,
    propagate_loaded_inverter_moments,
)
from repro.variation.montecarlo import (
    MonteCarloConvergenceWarning,
    run_loaded_inverter_monte_carlo,
)
from repro.variation.qmc import (
    INTER_DIE_AXES,
    ParameterDraws,
    SobolBalanceWarning,
    draw_qmc_parameters,
    sobol_standard_normal,
)
from repro.variation.spec import VariationSpec
from repro.variation.statistics import (
    equivalent_mc_samples,
    loading_shift_of_mean,
    loading_shift_of_std,
    lognormal_mean,
    lognormal_shift_of_mean,
    lognormal_shift_of_std,
    lognormal_std,
    percentile_leakage,
    yield_fraction,
)

#: One Gauss-Seidel sweep cannot reach the 5 uV tolerance from the DC seed;
#: every sample of a study run with these options comes back non-converged.
NONCONVERGING = SolverOptions(method="gauss-seidel", max_sweeps=1)


def _samples_bitwise_equal(result_a, result_b) -> bool:
    if result_a.sample_count != result_b.sample_count:
        return False
    for a, b in zip(result_a.samples, result_b.samples):
        if a.with_loading.as_dict() != b.with_loading.as_dict():
            return False
        if a.without_loading.as_dict() != b.without_loading.as_dict():
            return False
    return True


class TestSobolSampler:
    def test_shape_and_standardization(self):
        block = sobol_standard_normal(256, 5, rng=0)
        assert block.shape == (256, 5)
        assert np.isfinite(block).all()
        # Scrambled Sobol + inverse normal: near-perfect marginals.
        assert np.abs(block.mean(axis=0)).max() < 0.1
        assert np.abs(block.std(axis=0) - 1.0).max() < 0.1

    def test_reproducible_for_same_seed(self):
        a = sobol_standard_normal(64, 3, rng=7)
        b = sobol_standard_normal(64, 3, rng=7)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = sobol_standard_normal(64, 3, rng=7)
        b = sobol_standard_normal(64, 3, rng=8)
        assert not np.array_equal(a, b)

    def test_non_power_of_two_warns(self):
        with pytest.warns(SobolBalanceWarning):
            sobol_standard_normal(100, 2, rng=0)

    def test_power_of_two_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sobol_standard_normal(64, 2, rng=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            sobol_standard_normal(0, 2, rng=0)
        with pytest.raises(ValueError):
            sobol_standard_normal(8, 0, rng=0)


class TestParameterDraws:
    def test_shapes_and_truncation(self):
        spec = VariationSpec()
        draws = draw_qmc_parameters(spec, 64, transistor_count=12, rng=0)
        assert draws.sample_count == 64
        assert draws.transistor_count == 12
        assert draws.intra_vth_v.shape == (64, 12)
        bound = spec.truncation * spec.sigma_vth_inter_v
        assert np.abs(draws.delta_vth_v).max() <= bound + 1e-15
        bound = spec.truncation * spec.sigma_vth_intra_v
        assert np.abs(draws.intra_vth_v).max() <= bound + 1e-15

    def test_zero_sigma_axis_is_exactly_zero(self):
        spec = VariationSpec(sigma_vdd_v=0.0)
        draws = draw_qmc_parameters(spec, 32, transistor_count=4, rng=0)
        assert np.all(draws.delta_vdd_v == 0.0)
        # The other axes still vary.
        assert np.any(draws.delta_vth_v != 0.0)

    def test_slice_matches_full_block(self):
        draws = draw_qmc_parameters(VariationSpec(), 32, transistor_count=6, rng=3)
        head, tail = draws.slice(0, 20), draws.slice(20, 32)
        assert head.sample_count == 20 and tail.sample_count == 12
        assert np.array_equal(
            np.concatenate([head.delta_length_nm, tail.delta_length_nm]),
            draws.delta_length_nm,
        )
        assert np.array_equal(
            np.vstack([head.intra_vth_v, tail.intra_vth_v]), draws.intra_vth_v
        )

    def test_inter_die_accessor(self):
        draws = draw_qmc_parameters(VariationSpec(), 8, transistor_count=2, rng=1)
        sample = draws.inter_die(3)
        assert sample.delta_vth_v == draws.delta_vth_v[3]
        assert draws.intra_vth(3).shape == (2,)

    def test_axis_layout(self):
        assert INTER_DIE_AXES == ("length_nm", "tox_nm", "vth_inter_v", "vdd_v")

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(ValueError):
            ParameterDraws(
                spec=VariationSpec(),
                delta_length_nm=np.zeros(4),
                delta_tox_nm=np.zeros(4),
                delta_vth_v=np.zeros(3),
                delta_vdd_v=np.zeros(4),
                intra_vth_v=np.zeros((4, 2)),
            )


class TestLoadingShiftGuards:
    """Regression: percent shifts with a (near-)zero unloaded statistic."""

    def test_zero_over_zero_is_zero_shift(self):
        constant = np.array([2.0, 2.0, 2.0])
        assert loading_shift_of_std(constant, constant) == 0.0
        zeros = np.zeros(3)
        assert loading_shift_of_mean(zeros, zeros) == 0.0

    def test_finite_over_zero_raises_naming_the_statistic(self):
        loaded = np.array([1.0, 2.0, 3.0])
        constant = np.array([1.0, 1.0, 1.0])
        with pytest.raises(ValueError, match="std"):
            loading_shift_of_std(loaded, constant)
        with pytest.raises(ValueError, match="mean"):
            loading_shift_of_mean(loaded, np.array([-1.0, 1.0]))

    def test_single_sample_population_has_zero_std(self):
        # ddof=1 on one sample is 0/0-degenerate; treated as zero spread.
        assert loading_shift_of_std(np.array([5.0]), np.array([3.0])) == 0.0

    def test_empty_population_raises(self):
        with pytest.raises(ValueError, match="empty"):
            loading_shift_of_mean(np.array([]), np.array([1.0]))
        with pytest.raises(ValueError, match="empty"):
            loading_shift_of_std(np.array([1.0]), np.array([]))

    def test_normal_case_unchanged(self):
        loaded = np.array([1.0, 2.0, 3.0]) * 1.10
        unloaded = np.array([1.0, 2.0, 3.0])
        assert loading_shift_of_mean(loaded, unloaded) == pytest.approx(10.0)
        assert loading_shift_of_std(loaded, unloaded) == pytest.approx(10.0)


class TestLognormalEstimators:
    def test_matches_population_moments_for_lognormal_data(self):
        rng = ensure_rng(0)
        values = np.exp(rng.normal(loc=-14.0, scale=0.8, size=200_000))
        mu, sigma = -14.0, 0.8
        true_mean = math.exp(mu + sigma**2 / 2.0)
        true_std = true_mean * math.sqrt(math.expm1(sigma**2))
        assert lognormal_mean(values) == pytest.approx(true_mean, rel=0.02)
        assert lognormal_std(values) == pytest.approx(true_std, rel=0.03)

    def test_plugin_shift_tracks_empirical_shift(self):
        rng = ensure_rng(1)
        unloaded = np.exp(rng.normal(scale=0.5, size=100_000))
        loaded = unloaded * 1.08
        # A pure scale factor shifts both estimators by exactly 8 %.
        assert lognormal_shift_of_mean(loaded, unloaded) == pytest.approx(8.0)
        assert lognormal_shift_of_std(loaded, unloaded) == pytest.approx(8.0)
        assert loading_shift_of_std(loaded, unloaded) == pytest.approx(8.0)

    def test_plugin_std_has_lower_scatter(self):
        # The variance-reduction claim, on synthetic lognormal replicates:
        # the plug-in std estimate scatters far less than the empirical
        # sample std, whose error is dominated by the few extreme samples.
        rng = ensure_rng(2)
        empirical, plugin = [], []
        for _ in range(60):
            values = np.exp(rng.normal(scale=1.2, size=400))
            empirical.append(values.std(ddof=1))
            plugin.append(lognormal_std(values))
        assert np.std(plugin, ddof=1) < 0.8 * np.std(empirical, ddof=1)

    def test_rejects_non_positive_samples(self):
        with pytest.raises(ValueError, match="positive"):
            lognormal_std(np.array([1.0, 0.0, 2.0]))
        with pytest.raises(ValueError, match="positive"):
            lognormal_mean(np.array([-1.0, 2.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            lognormal_mean(np.array([]))
        with pytest.raises(ValueError, match="empty"):
            lognormal_shift_of_std(np.array([]), np.array([1.0]))


class TestPercentileAndYield:
    def test_percentile_on_known_population(self):
        values = np.arange(1000.0)
        estimate = percentile_leakage(values, 50.0, bootstrap=200, rng=0)
        assert estimate.value == pytest.approx(499.5)
        assert estimate.ci_low <= estimate.value <= estimate.ci_high
        assert estimate.sample_count == 1000

    def test_percentile_reproducible(self):
        values = ensure_rng(0).normal(size=200)
        a = percentile_leakage(values, 99.0, bootstrap=100, rng=4)
        b = percentile_leakage(values, 99.0, bootstrap=100, rng=4)
        assert a == b

    def test_percentile_validation(self):
        values = np.array([1.0, 2.0])
        with pytest.raises(ValueError, match="empty"):
            percentile_leakage(np.array([]), 50.0)
        with pytest.raises(ValueError):
            percentile_leakage(values, 101.0)
        with pytest.raises(ValueError):
            percentile_leakage(values, 50.0, confidence=1.0)
        with pytest.raises(ValueError):
            percentile_leakage(values, 50.0, bootstrap=0)

    def test_yield_fraction(self):
        values = np.arange(10.0)
        estimate = yield_fraction(values, limit=4.0, bootstrap=100, rng=0)
        assert estimate.fraction == pytest.approx(0.5)
        assert 0.0 <= estimate.ci_low <= estimate.ci_high <= 1.0
        assert estimate.limit == 4.0

    def test_equivalent_mc_samples_is_near_budget_for_iid(self):
        # Four iid replicates of plain-MC data are worth ~ their own budget.
        block = ensure_rng(1).normal(size=1024)
        replicate_stats = np.array([part.mean() for part in np.split(block, 4)])
        equivalent = equivalent_mc_samples(block, replicate_stats, rng=0)
        assert 1024 / 4 < equivalent < 1024 * 4

    def test_equivalent_mc_samples_zero_scatter_is_inf(self):
        assert math.isinf(
            equivalent_mc_samples(np.arange(16.0), np.array([1.0, 1.0]), rng=0)
        )

    def test_equivalent_mc_samples_validation(self):
        with pytest.raises(ValueError, match="empty"):
            equivalent_mc_samples(np.array([]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError, match="replicates"):
            equivalent_mc_samples(np.arange(8.0), np.array([1.0]))


class TestClippedGaussianMoment:
    def test_matches_monte_carlo_integral(self):
        rng = ensure_rng(0)
        z = np.clip(rng.normal(size=400_000), -2.0, 2.0)
        for c1, c2 in [(0.5, 0.0), (1.0, 0.1), (-0.8, -0.2), (0.0, 0.3)]:
            closed = clipped_gaussian_exp_moment(c1, c2, truncation=2.0)
            empirical = float(np.mean(np.exp(c1 * z + c2 * z * z)))
            assert closed == pytest.approx(empirical, rel=0.02)

    def test_identity_at_zero(self):
        assert clipped_gaussian_exp_moment(0.0, 0.0, 3.0) == pytest.approx(1.0)

    def test_divergent_quadratic_rejected(self):
        with pytest.raises(ValueError, match="0.5"):
            clipped_gaussian_exp_moment(0.0, 0.5, 3.0)


@pytest.mark.slow
class TestQmcMonteCarlo:
    def test_qmc_metadata_and_reproducibility(self, d25s):
        kwargs = dict(
            samples=8, rng=3, input_loads=2, output_loads=2, sampler="qmc"
        )
        a = run_loaded_inverter_monte_carlo(d25s, **kwargs)
        b = run_loaded_inverter_monte_carlo(d25s, **kwargs)
        assert a.metadata["sampler"] == "qmc"
        assert a.sample_count == 8
        assert _samples_bitwise_equal(a, b)

    def test_unknown_sampler_rejected(self, d25s):
        with pytest.raises(ValueError, match="sampler"):
            run_loaded_inverter_monte_carlo(d25s, samples=4, rng=0, sampler="lhs")

    def test_qmc_agrees_with_mc_at_matched_budget(self, d25s):
        kwargs = dict(samples=64, input_loads=2, output_loads=2)
        mc = run_loaded_inverter_monte_carlo(d25s, rng=0, sampler="mc", **kwargs)
        qmc = run_loaded_inverter_monte_carlo(d25s, rng=0, sampler="qmc", **kwargs)
        for loaded in (True, False):
            mc_mean = float(np.mean(np.log(mc.values("total", loaded=loaded))))
            qmc_mean = float(np.mean(np.log(qmc.values("total", loaded=loaded))))
            # Same distribution, different sampler: log-means agree well
            # within the MC standard error at this budget.
            assert qmc_mean == pytest.approx(mc_mean, abs=0.35)

    def test_qmc_serial_vs_pool_bitwise_batched(self, d25s):
        serial = run_loaded_inverter_monte_carlo(
            d25s, samples=16, rng=5, input_loads=2, output_loads=2, sampler="qmc"
        )
        pooled = ParallelMonteCarlo(
            d25s, input_loads=2, output_loads=2, max_workers=3, sampler="qmc"
        ).run(16, rng=5)
        assert pooled.metadata["sampler"] == "qmc"
        assert _samples_bitwise_equal(serial, pooled)

    def test_qmc_serial_vs_pool_bitwise_scalar(self, d25s):
        serial = run_loaded_inverter_monte_carlo(
            d25s,
            samples=8,
            rng=11,
            input_loads=2,
            output_loads=2,
            sampler="qmc",
            engine="scalar",
        )
        pooled = ParallelMonteCarlo(
            d25s,
            input_loads=2,
            output_loads=2,
            max_workers=2,
            engine="scalar",
            sampler="qmc",
        ).run(8, rng=11)
        assert _samples_bitwise_equal(serial, pooled)


@pytest.mark.slow
class TestNonconvergedPolicies:
    def test_warn_policy_records_mask(self, d25s):
        with pytest.warns(MonteCarloConvergenceWarning):
            result = run_loaded_inverter_monte_carlo(
                d25s,
                samples=4,
                rng=0,
                input_loads=2,
                output_loads=2,
                solver_options=NONCONVERGING,
            )
        assert result.sample_count == 4
        assert not result.converged_mask.any()
        assert result.metadata.get("dropped_nonconverged", 0) == 0

    def test_raise_policy(self, d25s):
        with pytest.raises(RuntimeError, match="did not converge"):
            run_loaded_inverter_monte_carlo(
                d25s,
                samples=4,
                rng=0,
                input_loads=2,
                output_loads=2,
                solver_options=NONCONVERGING,
                on_nonconverged="raise",
            )

    @pytest.mark.parametrize("engine", ["batched", "scalar"])
    def test_drop_policy_counts_dropped(self, d25s, engine):
        result = run_loaded_inverter_monte_carlo(
            d25s,
            samples=2,
            rng=0,
            input_loads=2,
            output_loads=2,
            solver_options=NONCONVERGING,
            engine=engine,
            on_nonconverged="drop",
        )
        assert result.sample_count == 0
        assert result.metadata["dropped_nonconverged"] == 2

    def test_converged_runs_have_true_mask(self, d25s):
        result = run_loaded_inverter_monte_carlo(
            d25s, samples=4, rng=0, input_loads=2, output_loads=2
        )
        assert result.converged_mask.all()
        assert result.metadata["sampler"] == "mc"

    def test_unknown_policy_rejected(self, d25s):
        with pytest.raises(ValueError, match="on_nonconverged"):
            run_loaded_inverter_monte_carlo(
                d25s, samples=4, rng=0, on_nonconverged="ignore"
            )

    def test_fig11_names_the_drained_sigma_point(self, d25s):
        with pytest.raises(ValueError, match="sigma point 30 mV"):
            run_fig11_variation_statistics(
                d25s,
                sigma_values_v=(0.030,),
                samples=2,
                rng=0,
                solver_options=NONCONVERGING,
                on_nonconverged="drop",
            )

    def test_fig11_lognormal_estimator(self, d25s):
        result = run_fig11_variation_statistics(
            d25s,
            sigma_values_v=(0.030,),
            samples=16,
            rng=0,
            sampler="qmc",
            estimator="lognormal",
        )
        assert len(result.points) == 1
        assert math.isfinite(result.points[0].std_shift_percent)

    def test_fig11_unknown_estimator_rejected(self, d25s):
        with pytest.raises(ValueError, match="estimator"):
            run_fig11_variation_statistics(
                d25s, sigma_values_v=(0.030,), samples=4, estimator="robust"
            )

    def test_fig10_names_the_drained_configuration(self, d25s):
        with pytest.raises(ValueError, match="2\\+2 loads"):
            run_fig10_variation_histograms(
                d25s,
                samples=2,
                rng=0,
                input_loads=2,
                output_loads=2,
                solver_options=NONCONVERGING,
                on_nonconverged="drop",
            )


@pytest.mark.slow
class TestMomentPropagation:
    def test_closed_form_path(self, d25s):
        result = propagate_loaded_inverter_moments(
            d25s, input_loads=2, output_loads=2, interaction_axes=0
        )
        assert result.method == "closed-form"
        assert result.interaction_pairs == 0
        for component in ("subthreshold", "gate", "btbt", "total"):
            for loaded in (True, False):
                estimate = result.estimate(component, loaded=loaded)
                assert estimate.mean > 0.0
                assert estimate.std >= 0.0
        assert math.isfinite(result.mean_shift_percent())
        assert math.isfinite(result.std_shift_percent())

    def test_quadrature_path(self, d25s):
        result = propagate_loaded_inverter_moments(
            d25s,
            input_loads=2,
            output_loads=2,
            interaction_axes=4,
            quadrature_points=2**10,
        )
        assert result.method == "sobol-quadrature"
        assert result.interaction_pairs > 0
        assert result.estimate("total").mean > 0.0

    def test_order_validation(self, d25s):
        with pytest.raises(ValueError, match="order"):
            propagate_loaded_inverter_moments(d25s, order=3)

    def test_order_one_linearizes(self, d25s):
        result = propagate_loaded_inverter_moments(
            d25s, input_loads=2, output_loads=2, order=1, interaction_axes=0
        )
        assert result.order == 1
        assert result.estimate("total").mean > 0.0

    def test_moments_match_monte_carlo_oracle(self, d25s):
        moments = propagate_loaded_inverter_moments(
            d25s, input_loads=2, output_loads=2, quadrature_points=2**12
        )
        oracle = run_loaded_inverter_monte_carlo(
            d25s,
            samples=256,
            rng=0,
            input_loads=2,
            output_loads=2,
            sampler="qmc",
        )
        for loaded in (True, False):
            values = oracle.values("total", loaded=loaded)
            estimate = moments.estimate("total", loaded=loaded)
            assert estimate.mean == pytest.approx(
                float(values.mean()), rel=0.15
            )
            assert estimate.std == pytest.approx(
                float(values.std(ddof=1)), rel=0.35
            )

    def test_to_table_renders(self, d25s):
        result = propagate_loaded_inverter_moments(
            d25s, input_loads=2, output_loads=2, interaction_axes=0
        )
        table = result.to_table()
        assert "total" in table and "subthreshold" in table


@pytest.mark.slow
class TestSessionStatisticalLeakage:
    def test_query_and_population_cache(self, d25s):
        session = EstimationSession()
        kwargs = dict(
            samples=16,
            replicates=2,
            rng=0,
            input_loads=2,
            output_loads=2,
            bootstrap=50,
        )
        cold = session.percentile_leakage(d25s, percentile=99.0, **kwargs)
        assert not cold.population_cached
        assert cold.sampler == "qmc"
        assert cold.sample_count == 32
        assert cold.percentile.ci_low <= cold.percentile.value <= cold.percentile.ci_high
        assert cold.equivalent_mc_samples > 0.0

        warm = session.percentile_leakage(d25s, percentile=99.0, **kwargs)
        assert warm.population_cached
        assert warm.percentile == cold.percentile

        # A different percentile against the same population: no new solves.
        median = session.percentile_leakage(d25s, percentile=50.0, **kwargs)
        assert median.population_cached
        assert median.percentile.value <= cold.percentile.value

        stats = session.stats()["statistical_leakage"]
        assert stats["entries"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == 2

    def test_yield_estimate_present_with_limit(self, d25s):
        session = EstimationSession()
        estimate = session.percentile_leakage(
            d25s,
            percentile=50.0,
            samples=16,
            replicates=2,
            rng=0,
            input_loads=2,
            output_loads=2,
            bootstrap=50,
            limit=1.0,  # amperes: every inverter corner passes
        )
        assert estimate.yield_estimate is not None
        assert estimate.yield_estimate.fraction == pytest.approx(1.0)

    def test_validation(self, d25s):
        session = EstimationSession()
        with pytest.raises(ValueError, match="replicates"):
            session.percentile_leakage(d25s, replicates=1, samples=8)
        with pytest.raises(KeyError, match="component"):
            session.percentile_leakage(
                d25s,
                samples=8,
                replicates=2,
                input_loads=2,
                output_loads=2,
                bootstrap=20,
                component="dynamic",
            )
