"""Tests for the DC operating-point solver and analysis helpers."""

import pytest

from repro.device.mosfet import Mosfet
from repro.gates.library import GateType
from repro.gates.templates import build_gate_transistors
from repro.spice.analysis import (
    ComponentBreakdown,
    gate_injection_at_node,
    leakage_by_owner,
    total_leakage,
    transistor_currents,
)
from repro.spice.netlist import GROUND, SUPPLY, TransistorNetlist
from repro.spice.solver import DcSolver, SolverOptions


def _inverter_cell(technology, input_value):
    """Build a single inverter with an ideal (fixed) input."""
    netlist = TransistorNetlist(vdd=technology.vdd)
    netlist.add_node("in", fixed_voltage=technology.vdd * input_value)
    build_gate_transistors(
        netlist, technology, GateType.INV, "inv", {"a": "in", "y": "out"}
    )
    return netlist


class TestSolverOptions:
    def test_defaults_valid(self):
        options = SolverOptions()
        assert options.max_sweeps >= 1
        assert options.voltage_tol > 0

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            SolverOptions(max_sweeps=0)
        with pytest.raises(ValueError):
            SolverOptions(voltage_tol=0.0)


class TestInverterOperatingPoint:
    @pytest.mark.parametrize("input_value, expect_high", [(0, True), (1, False)])
    def test_output_sits_at_opposite_rail(self, bulk25, input_value, expect_high):
        netlist = _inverter_cell(bulk25, input_value)
        op = DcSolver(netlist, 300.0).solve()
        assert op.converged
        output = op.voltage("out")
        if expect_high:
            assert output > 0.95 * bulk25.vdd
        else:
            assert output < 0.05 * bulk25.vdd

    def test_residual_is_small_after_convergence(self, bulk25):
        netlist = _inverter_cell(bulk25, 0)
        solver = DcSolver(netlist, 300.0)
        op = solver.solve()
        assert abs(solver.residual("out", op.voltages)) < 1e-11

    def test_residual_unknown_node_raises(self, bulk25):
        netlist = _inverter_cell(bulk25, 0)
        solver = DcSolver(netlist, 300.0)
        op = solver.solve()
        with pytest.raises(KeyError):
            solver.residual("vdd", op.voltages)

    def test_temperature_must_be_positive(self, bulk25):
        netlist = _inverter_cell(bulk25, 0)
        with pytest.raises(ValueError):
            DcSolver(netlist, -5.0)

    def test_injection_raises_low_node(self, bulk25):
        """A current injected into a low output must lift its voltage."""
        base = _inverter_cell(bulk25, 1)
        op0 = DcSolver(base, 300.0).solve()
        loaded = _inverter_cell(bulk25, 1)
        loaded.add_current_source("out", 1.0e-6)
        op1 = DcSolver(loaded, 300.0).solve()
        assert op1.voltage("out") > op0.voltage("out")

    def test_injection_lowers_high_node(self, bulk25):
        base = _inverter_cell(bulk25, 0)
        op0 = DcSolver(base, 300.0).solve()
        loaded = _inverter_cell(bulk25, 0)
        loaded.add_current_source("out", -1.0e-6)
        op1 = DcSolver(loaded, 300.0).solve()
        assert op1.voltage("out") < op0.voltage("out")


class TestStackingEffect:
    def test_nand2_stack_node_rises_with_both_inputs_low(self, bulk25):
        """The classic stacking effect: the internal node floats above ground,
        reverse-biasing the top transistor and cutting subthreshold leakage."""
        netlist = TransistorNetlist(vdd=bulk25.vdd)
        netlist.add_node("a", fixed_voltage=0.0)
        netlist.add_node("b", fixed_voltage=0.0)
        internal = build_gate_transistors(
            netlist, bulk25, GateType.NAND2, "g", {"a": "a", "b": "b", "y": "out"}
        )
        op = DcSolver(netlist, 300.0).solve()
        assert op.converged
        stack_node = internal[0]
        assert 0.01 < op.voltage(stack_node) < 0.5 * bulk25.vdd

    def test_nand2_00_leaks_less_than_10(self, library25):
        """Subthreshold-wise, '00' benefits from stacking relative to '10'."""
        leak_00 = library25.nominal_leakage(GateType.NAND2, (0, 0))
        leak_10 = library25.nominal_leakage(GateType.NAND2, (1, 0))
        assert leak_00.subthreshold < leak_10.subthreshold


class TestAnalysis:
    def test_component_breakdown_arithmetic(self):
        a = ComponentBreakdown(1.0, 2.0, 3.0)
        b = ComponentBreakdown(0.5, 0.5, 0.5)
        total = a + b
        assert total.total == pytest.approx(7.5)
        assert a.scaled(2.0).gate == 4.0
        assert a.component("total") == 6.0
        assert a.as_dict()["btbt"] == 3.0
        assert a.power(0.9) == pytest.approx(5.4)
        with pytest.raises(KeyError):
            a.component("bogus")

    def test_leakage_by_owner_covers_all_transistors(self, bulk25):
        netlist = _inverter_cell(bulk25, 0)
        op = DcSolver(netlist, 300.0).solve()
        per_owner = leakage_by_owner(netlist, op)
        assert set(per_owner) == {"inv"}
        overall = total_leakage(netlist, op)
        assert overall.total == pytest.approx(per_owner["inv"].total)

    def test_transistor_currents_keys(self, bulk25):
        netlist = _inverter_cell(bulk25, 0)
        op = DcSolver(netlist, 300.0).solve()
        currents = transistor_currents(netlist, op)
        assert set(currents) == {t.name for t in netlist.transistors}

    def test_gate_injection_sign_follows_net_level(self, bulk25):
        """Receivers inject into a '0' net and draw from a '1' net."""
        netlist = TransistorNetlist(vdd=bulk25.vdd)
        netlist.add_node("drv_in", fixed_voltage=bulk25.vdd)  # driver output low
        build_gate_transistors(
            netlist, bulk25, GateType.INV, "drv", {"a": "drv_in", "y": "net"}
        )
        build_gate_transistors(
            netlist, bulk25, GateType.INV, "recv", {"a": "net", "y": "out"}
        )
        op = DcSolver(netlist, 300.0).solve()
        injection_low = gate_injection_at_node(netlist, op, "net")
        assert injection_low > 0

        netlist_high = TransistorNetlist(vdd=bulk25.vdd)
        netlist_high.add_node("drv_in", fixed_voltage=0.0)  # driver output high
        build_gate_transistors(
            netlist_high, bulk25, GateType.INV, "drv", {"a": "drv_in", "y": "net"}
        )
        build_gate_transistors(
            netlist_high, bulk25, GateType.INV, "recv", {"a": "net", "y": "out"}
        )
        op_high = DcSolver(netlist_high, 300.0).solve()
        injection_high = gate_injection_at_node(netlist_high, op_high, "net")
        assert injection_high < 0

    def test_gate_injection_owner_exclusion(self, bulk25):
        netlist = TransistorNetlist(vdd=bulk25.vdd)
        netlist.add_node("drv_in", fixed_voltage=bulk25.vdd)
        build_gate_transistors(
            netlist, bulk25, GateType.INV, "drv", {"a": "drv_in", "y": "net"}
        )
        build_gate_transistors(
            netlist, bulk25, GateType.INV, "recv", {"a": "net", "y": "out"}
        )
        op = DcSolver(netlist, 300.0).solve()
        all_receivers = gate_injection_at_node(netlist, op, "net")
        excluded = gate_injection_at_node(netlist, op, "net", exclude_owners={"recv"})
        assert excluded == pytest.approx(0.0, abs=1e-18)
        assert all_receivers != 0.0
