"""Tests for the process-variation substrate and Monte-Carlo driver."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng
from repro.variation.montecarlo import run_loaded_inverter_monte_carlo
from repro.variation.spec import (
    VariationSpec,
    apply_inter_die,
    sample_inter_die,
    sample_intra_die_vth,
)
from repro.variation.statistics import (
    histogram,
    loading_shift_of_mean,
    loading_shift_of_std,
    summarize,
)


class TestVariationSpec:
    def test_defaults_match_paper_caption(self):
        spec = VariationSpec()
        assert spec.sigma_length_nm == pytest.approx(2.0)
        assert spec.sigma_tox_nm == pytest.approx(0.067)
        assert spec.sigma_vth_inter_v == pytest.approx(0.030)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            VariationSpec(sigma_length_nm=-1.0)
        with pytest.raises(ValueError):
            VariationSpec(truncation=0.0)

    def test_with_vth_inter_sigma(self):
        spec = VariationSpec().with_vth_inter_sigma(0.050)
        assert spec.sigma_vth_inter_v == 0.050
        assert spec.sigma_vth_intra_v == VariationSpec().sigma_vth_intra_v


class TestSampling:
    def test_inter_die_sampling_reproducible(self):
        spec = VariationSpec()
        a = sample_inter_die(spec, ensure_rng(3))
        b = sample_inter_die(spec, ensure_rng(3))
        assert a == b

    def test_truncation_respected(self):
        spec = VariationSpec(truncation=1.0)
        rng = ensure_rng(0)
        for _ in range(200):
            sample = sample_inter_die(spec, rng)
            assert abs(sample.delta_vth_v) <= spec.sigma_vth_inter_v + 1e-12
            assert abs(sample.delta_length_nm) <= spec.sigma_length_nm + 1e-12

    def test_zero_sigma_produces_zero_shift(self):
        spec = VariationSpec(
            sigma_length_nm=0.0,
            sigma_tox_nm=0.0,
            sigma_vth_inter_v=0.0,
            sigma_vth_intra_v=0.0,
            sigma_vdd_v=0.0,
        )
        sample = sample_inter_die(spec, ensure_rng(1))
        assert sample.delta_length_nm == 0.0
        assert sample.delta_vdd_v == 0.0
        assert np.all(sample_intra_die_vth(spec, ensure_rng(1), 5) == 0.0)

    def test_intra_die_count_validation(self):
        with pytest.raises(ValueError):
            sample_intra_die_vth(VariationSpec(), ensure_rng(0), -1)


class TestApplyInterDie:
    def test_shifts_applied_to_both_devices(self, bulk25):
        spec = VariationSpec()
        sample = sample_inter_die(spec, ensure_rng(7))
        shifted = apply_inter_die(bulk25, sample)
        assert shifted.vdd == pytest.approx(bulk25.vdd + sample.delta_vdd_v)
        assert shifted.nmos.tox_nm == pytest.approx(bulk25.nmos.tox_nm + sample.delta_tox_nm)
        assert shifted.pmos.subthreshold.vth0 == pytest.approx(
            bulk25.pmos.subthreshold.vth0 + sample.delta_vth_v
        )
        # Original is untouched.
        assert bulk25.nmos.tox_nm != shifted.nmos.tox_nm or sample.delta_tox_nm == 0.0


class TestStatistics:
    def test_summary(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        summary = summarize(values)
        assert summary.mean == pytest.approx(2.5)
        assert summary.count == 4
        assert summary.minimum == 1.0 and summary.maximum == 4.0
        assert summary.as_dict()["p95"] >= summary.as_dict()["p05"]
        with pytest.raises(ValueError):
            summarize(np.array([]))

    def test_histogram(self):
        counts, edges = histogram(np.array([1.0, 1.1, 2.9, 3.0]), bins=2)
        assert counts.sum() == 4
        assert len(edges) == 3
        with pytest.raises(ValueError):
            histogram(np.array([1.0]), bins=0)

    def test_loading_shifts(self):
        unloaded = np.array([1.0, 2.0, 3.0])
        loaded = unloaded * 1.10
        assert loading_shift_of_mean(loaded, unloaded) == pytest.approx(10.0)
        assert loading_shift_of_std(loaded, unloaded) == pytest.approx(10.0)


@pytest.mark.slow
class TestMonteCarlo:
    def test_small_run_shapes_and_directions(self, d25s):
        result = run_loaded_inverter_monte_carlo(
            d25s, samples=8, rng=0, input_value=0, input_loads=4, output_loads=4
        )
        assert result.sample_count == 8
        loaded = result.values("subthreshold", loaded=True)
        unloaded = result.values("subthreshold", loaded=False)
        assert loaded.shape == (8,)
        # Input loading raises the subthreshold leakage of the studied gate
        # in every sample (paper Fig. 10: the loaded histogram sits higher).
        assert np.all(loaded >= unloaded)

    def test_reproducible_for_seed(self, d25s):
        first = run_loaded_inverter_monte_carlo(d25s, samples=3, rng=11)
        second = run_loaded_inverter_monte_carlo(d25s, samples=3, rng=11)
        assert first.values("total").tolist() == second.values("total").tolist()

    def test_parameter_validation(self, d25s):
        with pytest.raises(ValueError):
            run_loaded_inverter_monte_carlo(d25s, samples=0)
        with pytest.raises(ValueError):
            run_loaded_inverter_monte_carlo(d25s, samples=1, input_value=2)
