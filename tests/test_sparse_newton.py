"""Tests for the sparse Newton backend and the solver-backend dispatch.

Covers the backend abstraction introduced around
:mod:`repro.spice.sparse`:

* parity — the sparse backend must agree with the dense backend on mixed
  batches (voltages and per-owner leakage to ~machine precision, far
  below the 1e-12 relative bar asserted here);
* the solver-level invariants the dense path already guarantees, now for
  the sparse path: bitwise batch-composition invariance and the bitwise
  Gauss–Seidel fallback;
* the ``"auto"`` dispatch policy (free-node threshold and dense-memory
  escape) and the resolved-method reporting;
* the pre-flight dense-Jacobian memory guard and its actionable message;
* the characterization-cache fingerprint: the new solver options fork
  caches, strict loads refuse a backend mismatch;
* the scalable layered-DAG generator the large-system benchmark builds on
  (``iscas_like(n_gates)``), which must be lint-clean by construction.
"""

import numpy as np
import pytest

from repro.analysis.netlist_lint import lint_circuit
from repro.circuit.flatten import flatten_batch
from repro.circuit.generators import iscas_like, layered_logic
from repro.circuit.graph import logic_depth
from repro.device.mosfet import Mosfet
from repro.gates.cache import (
    characterization_fingerprint,
    load_library,
    save_library,
)
from repro.gates.characterize import (
    CharacterizationOptions,
    GateCharacterizer,
    GateLibrary,
)
from repro.gates.library import GateType
from repro.gates.templates import build_gate_transistors
from repro.spice.batched import BatchedDcSolver
from repro.spice.netlist import NodeKind, TransistorNetlist
from repro.spice.newton import (
    DenseJacobianMemoryError,
    dense_jacobian_bytes,
    resolve_newton_method,
)
from repro.spice.solver import SolverOptions

TIGHT = dict(voltage_tol=1e-11, xtol=1e-14, max_sweeps=250)
TIGHT_DENSE = SolverOptions(method="newton", **TIGHT)
TIGHT_SPARSE = SolverOptions(method="newton-sparse", **TIGHT)
TIGHT_GS = SolverOptions(method="gauss-seidel", **TIGHT)


def _nand2_cell(technology, vector, injection=None, vth_shift=0.0):
    netlist = TransistorNetlist(vdd=technology.vdd)
    netlist.add_node("a", fixed_voltage=technology.vdd * vector[0])
    netlist.add_node("b", fixed_voltage=technology.vdd * vector[1])
    build_gate_transistors(
        netlist, technology, GateType.NAND2, "g", {"a": "a", "b": "b", "y": "out"}
    )
    if injection:
        netlist.add_current_source("out", injection)
    if vth_shift:
        for transistor in netlist.transistors:
            transistor.mosfet.vth_shift = vth_shift
    return netlist


def _mixed_batch(technology):
    return [
        _nand2_cell(technology, (1, 0)),
        _nand2_cell(technology, (0, 0), injection=5e-7),
        _nand2_cell(technology, (1, 1), injection=-2e-7, vth_shift=0.004),
        _nand2_cell(technology, (0, 1), injection=2e-6),
    ]


def _relative_gap(a, b, floor=1e-30):
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    scale = np.maximum(np.maximum(np.abs(a), np.abs(b)), floor)
    return float(np.max(np.abs(a - b) / scale))


@pytest.mark.slow
class TestSparseDenseParity:
    def test_voltages_and_leakage_match_on_mixed_batch(self, bulk25):
        netlists = _mixed_batch(bulk25)
        dense_solver = BatchedDcSolver(netlists, 300.0, TIGHT_DENSE)
        sparse_solver = BatchedDcSolver(netlists, 300.0, TIGHT_SPARSE)
        dense = dense_solver.solve()
        sparse = sparse_solver.solve()
        assert dense.all_converged and sparse.all_converged
        assert dense.method == "newton"
        assert sparse.method == "newton-sparse"
        assert not sparse.fallback.any()
        assert np.max(np.abs(dense.voltages - sparse.voltages)) <= 1e-12

        dense_leak = dense_solver.leakage_by_owner(dense)["g"]
        sparse_leak = sparse_solver.leakage_by_owner(sparse)["g"]
        for index in range(len(netlists)):
            got = sparse_leak.at(index)
            want = dense_leak.at(index)
            assert _relative_gap(got.total, want.total) <= 1e-12
            for component in ("subthreshold", "gate", "btbt"):
                assert (
                    _relative_gap(
                        got.component(component), want.component(component)
                    )
                    <= 1e-12
                )

    def test_sparse_matches_gauss_seidel_oracle(self, bulk25):
        netlists = _mixed_batch(bulk25)
        sparse = BatchedDcSolver(netlists, 300.0, TIGHT_SPARSE).solve()
        relaxed = BatchedDcSolver(netlists, 300.0, TIGHT_GS).solve()
        assert sparse.all_converged and relaxed.all_converged
        assert np.max(np.abs(sparse.voltages - relaxed.voltages)) <= 1e-9


@pytest.mark.slow
class TestSparseBatchInvariance:
    def test_batch_composition_is_bitwise_neutral(self, bulk25):
        """Sparse columns solved alone, chunked, or in the full batch must
        be bit-for-bit identical (per-column SuperLU factorization never
        mixes columns)."""
        netlists = _mixed_batch(bulk25)
        whole = BatchedDcSolver(netlists, 300.0, TIGHT_SPARSE).solve()
        assert whole.all_converged
        for index, netlist in enumerate(netlists):
            alone = BatchedDcSolver([netlist], 300.0, TIGHT_SPARSE).solve()
            assert np.array_equal(alone.voltages[:, 0], whole.voltages[:, index])
            assert alone.newton_iterations[0] == whole.newton_iterations[index]
        halves = [
            BatchedDcSolver(netlists[:2], 300.0, TIGHT_SPARSE).solve(),
            BatchedDcSolver(netlists[2:], 300.0, TIGHT_SPARSE).solve(),
        ]
        recombined = np.concatenate([half.voltages for half in halves], axis=1)
        assert np.array_equal(recombined, whole.voltages)


@pytest.mark.slow
class TestSparseFallback:
    def _pinned_cell(self, technology, injection):
        netlist = TransistorNetlist(vdd=technology.vdd)
        netlist.add_node("float_gate")
        netlist.add_transistor(
            name="m1",
            mosfet=Mosfet(technology.nmos),
            gate="float_gate",
            drain="vdd",
            source="gnd",
            bulk="gnd",
            owner="g",
        )
        netlist.add_current_source("float_gate", injection)
        return netlist

    def test_pinned_node_falls_back_bitwise_to_gauss_seidel(self, bulk25):
        sparse = BatchedDcSolver(
            [self._pinned_cell(bulk25, 1e-3)], 300.0, TIGHT_SPARSE
        ).solve()
        relaxed = BatchedDcSolver(
            [self._pinned_cell(bulk25, 1e-3)], 300.0, TIGHT_GS
        ).solve()
        assert sparse.fallback[0]
        assert sparse.method == "newton-sparse"
        assert np.array_equal(sparse.voltages, relaxed.voltages)

    def test_mixed_fallback_batch_stays_column_independent(self, bulk25):
        netlists = [
            self._pinned_cell(bulk25, 1e-3),
            self._pinned_cell(bulk25, 1e-12),
        ]
        whole = BatchedDcSolver(netlists, 300.0, TIGHT_SPARSE).solve()
        assert whole.all_converged
        assert whole.fallback[0] and not whole.fallback[1]
        for index, netlist in enumerate(netlists):
            alone = BatchedDcSolver([netlist], 300.0, TIGHT_SPARSE).solve()
            assert np.array_equal(alone.voltages[:, 0], whole.voltages[:, index])


class TestAutoDispatch:
    def test_resolution_policy(self):
        dense_default = SolverOptions(method="auto")
        assert resolve_newton_method(dense_default, 8, 4) == "newton"
        assert resolve_newton_method(dense_default, 1024, 1) == "newton-sparse"
        assert resolve_newton_method(SolverOptions(method="newton"), 5000, 64) == (
            "newton"
        )
        assert resolve_newton_method(SolverOptions(method="newton-sparse"), 2, 1) == (
            "newton-sparse"
        )
        # The dense-memory escape triggers sparse below the node threshold.
        tight_memory = SolverOptions(method="auto", newton_dense_memory_limit=100.0)
        assert resolve_newton_method(tight_memory, 8, 4) == "newton-sparse"

    def test_estimate(self):
        assert dense_jacobian_bytes(3, 10) == 3 * 10 * 10 * 8

    @pytest.mark.slow
    def test_auto_below_threshold_is_bitwise_dense(self, bulk25):
        netlists = _mixed_batch(bulk25)
        auto = SolverOptions(method="auto", **TIGHT)
        resolved = BatchedDcSolver(netlists, 300.0, auto).solve()
        dense = BatchedDcSolver(netlists, 300.0, TIGHT_DENSE).solve()
        assert resolved.method == "newton"
        assert np.array_equal(resolved.voltages, dense.voltages)

    @pytest.mark.slow
    def test_auto_at_threshold_is_bitwise_sparse(self, bulk25):
        netlists = _mixed_batch(bulk25)
        auto = SolverOptions(method="auto", newton_sparse_threshold=1, **TIGHT)
        resolved = BatchedDcSolver(netlists, 300.0, auto).solve()
        sparse = BatchedDcSolver(netlists, 300.0, TIGHT_SPARSE).solve()
        assert resolved.method == "newton-sparse"
        assert np.array_equal(resolved.voltages, sparse.voltages)

    @pytest.mark.slow
    def test_auto_over_memory_limit_switches_instead_of_raising(self, bulk25):
        netlists = _mixed_batch(bulk25)
        auto = SolverOptions(
            method="auto", newton_dense_memory_limit=10.0, **TIGHT
        )
        resolved = BatchedDcSolver(netlists, 300.0, auto).solve()
        assert resolved.method == "newton-sparse"
        assert resolved.all_converged


class TestDenseMemoryGuard:
    def test_over_limit_raises_actionable_error(self, bulk25):
        netlists = _mixed_batch(bulk25)
        starved = SolverOptions(method="newton", newton_dense_memory_limit=10.0)
        solver = BatchedDcSolver(netlists, 300.0, starved)
        with pytest.raises(DenseJacobianMemoryError) as excinfo:
            solver.solve()
        message = str(excinfo.value)
        assert "4 batch columns" in message  # B
        assert "2 x 2 free nodes" in message  # N
        assert "newton-sparse" in message  # the escape hatch
        assert "newton_dense_memory_limit" in message

    def test_guard_is_a_memory_error(self):
        assert issubclass(DenseJacobianMemoryError, MemoryError)

    def test_options_validated(self):
        with pytest.raises(ValueError, match="newton_sparse_threshold"):
            SolverOptions(newton_sparse_threshold=0)
        with pytest.raises(ValueError, match="newton_dense_memory_limit"):
            SolverOptions(newton_dense_memory_limit=0.0)


class TestSparseCacheFingerprint:
    def _options(self, **solver_kwargs):
        return CharacterizationOptions(
            injection_grid=(-1e-6, 1e-6),
            solver=SolverOptions(**solver_kwargs),
        )

    def test_backend_options_change_fingerprint(self, bulk25):
        """Each backend knob is part of the cache identity: dense and sparse
        agree only to ~1e-15, not bitwise, so records must not be shared."""
        fingerprints = {
            characterization_fingerprint(
                bulk25, self._options(**kwargs), bulk25.temperature_k
            )
            for kwargs in (
                dict(method="newton"),
                dict(method="newton-sparse"),
                dict(method="auto"),
                dict(method="auto", newton_sparse_threshold=64),
                dict(method="auto", newton_dense_memory_limit=1e8),
            )
        }
        assert len(fingerprints) == 5

    def test_strict_load_refuses_backend_mismatch(self, bulk25, tmp_path):
        path = tmp_path / "library.json"
        dense = GateLibrary(bulk25, options=self._options(method="newton"))
        dense.precharacterize([GateType.INV])
        save_library(dense, path)

        sparse = GateLibrary(bulk25, options=self._options(method="newton-sparse"))
        with pytest.raises(ValueError, match="options"):
            load_library(sparse, path)
        assert load_library(sparse, path, strict=False) == 2
        assert load_library(
            GateLibrary(bulk25, options=self._options(method="newton")), path
        ) == 2


class TestBackendReporting:
    def test_characterizer_counts_resolved_backends(self, bulk25):
        characterizer = GateCharacterizer(
            bulk25,
            options=CharacterizationOptions(
                injection_grid=(-1e-6, 1e-6),
                engine="batched",
                solver=SolverOptions(method="newton-sparse", **TIGHT),
            ),
        )
        characterizer.characterize(GateType.INV, (0,))
        methods = characterizer.solve_stats["methods"]
        assert methods.get("newton-sparse", 0) > 0
        assert "auto" not in methods
        solves = characterizer.solve_stats["solves"]
        assert sum(methods.values()) == solves

    def test_auto_request_reports_resolved_backend(self, bulk25):
        characterizer = GateCharacterizer(
            bulk25,
            options=CharacterizationOptions(
                injection_grid=(-1e-6, 1e-6),
                engine="batched",
                solver=SolverOptions(method="auto", **TIGHT),
            ),
        )
        characterizer.characterize(GateType.INV, (1,))
        methods = characterizer.solve_stats["methods"]
        assert "auto" not in methods
        assert methods.get("newton", 0) > 0  # tiny cells resolve dense


class TestLayeredGenerator:
    def test_gate_count_and_determinism(self):
        circuit = iscas_like(64, rng=5)
        again = iscas_like(64, rng=5)
        assert len(circuit.gates) == 64
        assert list(circuit.gates) == list(again.gates)
        assert [g.inputs for g in circuit.gates.values()] == [
            g.inputs for g in again.gates.values()
        ]

    def test_lint_clean_by_construction(self):
        for seed in (0, 1, 2):
            circuit = iscas_like(200, rng=seed)
            assert not lint_circuit(circuit).diagnostics

    def test_layers_bound_logic_depth(self):
        circuit = layered_logic("l4", n_inputs=8, n_gates=40, rng=3, n_layers=4)
        assert len(circuit.gates) == 40
        assert not lint_circuit(circuit).diagnostics
        assert logic_depth(circuit) <= 4

    def test_scale_shrinks_gate_count(self):
        full = iscas_like(120, rng=9)
        half = iscas_like(120, scale=0.5, rng=9)
        assert len(half.gates) == 60
        assert len(full.gates) == 120

    def test_input_validation(self):
        with pytest.raises(ValueError, match="gate count"):
            iscas_like(4)
        with pytest.raises(TypeError, match="gate count"):
            iscas_like(True)
        with pytest.raises(ValueError, match="n_inputs"):
            layered_logic("bad", n_inputs=2, n_gates=10)
        with pytest.raises(ValueError, match="skip_fraction"):
            layered_logic("bad", n_inputs=8, n_gates=10, skip_fraction=1.5)

    @pytest.mark.slow
    def test_flattened_circuit_solves_with_auto_sparse(self, bulk25):
        """End-to-end: a generated circuit flattens past the (lowered) auto
        threshold and the sparse backend solves it, matching Gauss–Seidel."""
        circuit = iscas_like(48, rng=7)
        rng = np.random.default_rng(1)
        assignments = [
            {
                pi: int(v)
                for pi, v in zip(
                    circuit.primary_inputs,
                    rng.integers(0, 2, len(circuit.primary_inputs)),
                )
            }
            for _ in range(2)
        ]
        flattened = flatten_batch(circuit, bulk25, assignments)
        views = flattened.netlist_views()
        free = sum(
            1
            for node in flattened.netlist.nodes.values()
            if node.kind is NodeKind.FREE
        )
        auto = SolverOptions(method="auto", newton_sparse_threshold=free, **TIGHT)
        op = BatchedDcSolver(views, 300.0, auto).solve(
            flattened.initial_voltages()
        )
        relaxed = BatchedDcSolver(views, 300.0, TIGHT_GS).solve(
            flattened.initial_voltages()
        )
        assert op.method == "newton-sparse"
        assert op.all_converged
        assert np.max(np.abs(op.voltages - relaxed.voltages)) <= 1e-9
