"""Tests for the numeric helpers, table formatting and RNG plumbing."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.mathtools import (
    clamp,
    interp_linear,
    log1p_exp,
    percent_difference,
    relative_difference,
    safe_exp,
    smooth_step,
)
from repro.utils.rng import ensure_rng, spawn_child
from repro.utils.tables import format_key_values, format_table


class TestSafeExp:
    def test_matches_exp_in_normal_range(self):
        assert safe_exp(1.0) == pytest.approx(math.exp(1.0))
        assert safe_exp(-3.0) == pytest.approx(math.exp(-3.0))

    def test_clips_large_arguments(self):
        assert math.isfinite(safe_exp(1e6))
        assert safe_exp(1e6) == safe_exp(60.0)

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_always_finite_and_positive(self, x):
        value = safe_exp(x)
        assert math.isfinite(value)
        assert value > 0.0


class TestLog1pExp:
    def test_softplus_limits(self):
        assert log1p_exp(-100.0) == pytest.approx(math.exp(-100.0), rel=1e-6, abs=1e-60)
        assert log1p_exp(100.0) == pytest.approx(100.0)

    @given(st.floats(min_value=-500, max_value=500, allow_nan=False))
    def test_monotonic_and_nonnegative(self, x):
        assert log1p_exp(x) >= 0.0
        assert log1p_exp(x + 1.0) > log1p_exp(x)


class TestClampAndSmoothStep:
    def test_clamp_bounds(self):
        assert clamp(5.0, 0.0, 1.0) == 1.0
        assert clamp(-5.0, 0.0, 1.0) == 0.0
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_clamp_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            clamp(0.0, 1.0, -1.0)

    def test_smooth_step_limits(self):
        assert smooth_step(-100.0) == pytest.approx(0.0, abs=1e-12)
        assert smooth_step(100.0) == pytest.approx(1.0, abs=1e-12)
        assert smooth_step(0.0) == pytest.approx(0.5)

    def test_smooth_step_rejects_bad_width(self):
        with pytest.raises(ValueError):
            smooth_step(0.0, width=0.0)


class TestRelativeDifference:
    def test_basic(self):
        assert relative_difference(110.0, 100.0) == pytest.approx(0.10)
        assert percent_difference(90.0, 100.0) == pytest.approx(-10.0)

    def test_zero_reference_raises(self):
        with pytest.raises(ZeroDivisionError):
            relative_difference(1.0, 0.0)


class TestInterpLinear:
    def test_interior_interpolation(self):
        assert interp_linear(1.5, [0.0, 1.0, 2.0], [0.0, 10.0, 20.0]) == pytest.approx(15.0)

    def test_flat_extrapolation(self):
        xs, ys = [0.0, 1.0], [3.0, 5.0]
        assert interp_linear(-10.0, xs, ys) == 3.0
        assert interp_linear(+10.0, xs, ys) == 5.0

    def test_single_point_table(self):
        assert interp_linear(42.0, [1.0], [7.0]) == 7.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            interp_linear(0.5, [0.0, 1.0], [1.0])

    @given(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=8, unique=True),
        st.floats(min_value=-200, max_value=200),
    )
    def test_result_within_value_bounds(self, xs, x):
        xs = sorted(xs)
        ys = [2.0 * v for v in xs]
        value = interp_linear(x, xs, ys)
        assert min(ys) - 1e-9 <= value <= max(ys) + 1e-9


class TestRng:
    def test_seed_reproducibility(self):
        a = ensure_rng(123).integers(0, 1000, size=5)
        b = ensure_rng(123).integers(0, 1000, size=5)
        assert list(a) == list(b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(7)
        assert ensure_rng(generator) is generator

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")

    def test_spawn_child_independent(self):
        parent = ensure_rng(5)
        child = spawn_child(parent)
        assert child is not parent
        assert list(child.integers(0, 10, 3)) != [None]


class TestTables:
    def test_format_table_alignment_and_title(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_scientific_rendering_for_extreme_values(self):
        text = format_table(["v"], [[1.23e-9]])
        assert "e-09" in text

    def test_format_key_values(self):
        text = format_key_values({"alpha": 1, "b": 2.0})
        assert "alpha" in text and ":" in text
