"""Tests for the minimum-leakage vector-search subsystem (`repro.optimize`).

Four layers are covered:

* engine layer — the totals-only fast path (:func:`run_totals`) against the
  report-materializing :func:`run_compiled`, including chunking invariance
  and input validation;
* objective layer — population scoring and the evaluation ledger;
* search layer — exhaustive-oracle parity of both heuristics on every
  small-input circuit shape (the acceptance bar: <= 12 primary inputs must
  return the true minimum), bitwise island/worker-count reproducibility,
  budget caps and convergence diagnostics;
* dispatch layer — ``minimum_leakage_vector(strategy=...)`` routing and its
  argument validation, plus the scalar fallback of the exhaustive oracle
  for non-library estimators.
"""

import numpy as np
import pytest

from repro.circuit.generators import (
    alu,
    array_multiplier,
    nand_tree,
    random_logic,
)
from repro.circuit.logic import exhaustive_vectors
from repro.core.baseline import NoLoadingEstimator
from repro.core.estimator import LoadingAwareEstimator
from repro.core.vectors import minimum_leakage_vector
from repro.engine import compile_circuit, run_compiled, run_totals
from repro.optimize import (
    GeneticOptions,
    GreedyOptions,
    LeakageObjective,
    MAX_EXHAUSTIVE_INPUTS,
    exhaustive_minimize,
    genetic_minimize,
    greedy_minimize,
    minimize_leakage,
)


@pytest.fixture(scope="module")
def estimator(library25):
    return LoadingAwareEstimator(library25)


@pytest.fixture(scope="module")
def small_circuit():
    return nand_tree(3)


@pytest.fixture(scope="module")
def compiled_small(small_circuit, library25):
    return compile_circuit(small_circuit, library25)


# --------------------------------------------------------------------------- #
# engine layer: run_totals
# --------------------------------------------------------------------------- #


class TestRunTotals:
    def test_matches_run_compiled_bitwise(self, compiled_small, small_circuit):
        vectors = list(exhaustive_vectors(small_circuit))[:40]
        run = run_compiled(compiled_small, vectors)
        bits = compiled_small.validate_assignments(vectors)
        totals = run_totals(compiled_small, bits)
        assert np.array_equal(totals, run.component_totals()["total"])

    def test_no_loading_matches(self, compiled_small, small_circuit):
        vectors = list(exhaustive_vectors(small_circuit))[:16]
        run = run_compiled(compiled_small, vectors, include_loading=False)
        bits = compiled_small.validate_assignments(vectors)
        totals = run_totals(compiled_small, bits, include_loading=False)
        assert np.array_equal(totals, run.component_totals()["total"])

    def test_chunking_is_bitwise_invariant(self, compiled_small):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, size=(8, 37), dtype=np.uint8)
        whole = run_totals(compiled_small, bits)
        for chunk_size in (1, 5, 37, 1000):
            assert np.array_equal(
                run_totals(compiled_small, bits, chunk_size=chunk_size), whole
            )

    def test_rejects_bad_inputs(self, compiled_small):
        with pytest.raises(ValueError, match="shape"):
            run_totals(compiled_small, np.zeros((3, 4), dtype=np.uint8))
        with pytest.raises(ValueError, match="0 or 1"):
            run_totals(compiled_small, np.full((8, 2), 2, dtype=np.uint8))
        with pytest.raises(ValueError, match="chunk_size"):
            run_totals(
                compiled_small, np.zeros((8, 2), dtype=np.uint8), chunk_size=0
            )


class TestObjective:
    def test_ledger_counts_every_candidate(self, compiled_small):
        objective = LeakageObjective(compiled_small)
        rng = np.random.default_rng(0)
        objective.totals(rng.integers(0, 2, size=(5, 8), dtype=np.uint8))
        objective.totals(rng.integers(0, 2, size=(3, 8), dtype=np.uint8))
        assert objective.evaluations == 8

    def test_assignment_roundtrip(self, compiled_small, small_circuit):
        objective = LeakageObjective(compiled_small)
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        assignment = objective.assignment(bits)
        assert list(assignment) == list(small_circuit.primary_inputs)
        assert [assignment[pi] for pi in small_circuit.primary_inputs] == [
            1, 0, 1, 1, 0, 0, 1, 0,
        ]

    def test_rejects_wrong_width(self, compiled_small):
        objective = LeakageObjective(compiled_small)
        with pytest.raises(ValueError, match="shape"):
            objective.totals(np.zeros((2, 5), dtype=np.uint8))
        with pytest.raises(ValueError, match="bits"):
            objective.assignment(np.zeros(5, dtype=np.uint8))


# --------------------------------------------------------------------------- #
# search layer: oracle parity, reproducibility, budgets
# --------------------------------------------------------------------------- #


def _small_circuits():
    """Every circuit shape of the acceptance bar (<= 12 primary inputs)."""
    return [
        nand_tree(2),  # 4 inputs, tree
        nand_tree(3),  # 8 inputs, tree
        array_multiplier(3),  # 6 inputs, exact arithmetic array
        alu(2),  # 7 inputs, mux/adder mix
        random_logic("opt_rl10", 10, 30, rng=7),  # 10 inputs, random logic
        random_logic("opt_rl12", 12, 36, rng=19),  # 12 inputs, random logic
    ]


class TestOracleParity:
    @pytest.mark.parametrize(
        "circuit", _small_circuits(), ids=lambda c: c.name
    )
    def test_heuristics_find_the_exhaustive_minimum(self, circuit, estimator):
        """<= 12 inputs: both strategies must return the true minimum."""
        oracle = minimize_leakage(estimator, circuit, strategy="exhaustive")
        greedy = minimize_leakage(estimator, circuit, strategy="greedy", rng=11)
        genetic = minimize_leakage(estimator, circuit, strategy="genetic", rng=11)
        assert greedy.best_total == oracle.best_total
        assert genetic.best_total == oracle.best_total

    def test_exhaustive_matches_legacy_streaming_search(
        self, estimator, small_circuit
    ):
        vector, total = minimum_leakage_vector(
            estimator, small_circuit, exhaustive=True
        )
        oracle = exhaustive_minimize(
            compile_circuit(small_circuit, estimator.library)
        )
        assert total == oracle.best_total
        assert vector == oracle.best_assignment

    def test_no_loading_scoring_follows_the_estimator(
        self, library25, small_circuit
    ):
        baseline = NoLoadingEstimator(library25)
        oracle = minimize_leakage(baseline, small_circuit, strategy="exhaustive")
        greedy = minimize_leakage(baseline, small_circuit, strategy="greedy", rng=5)
        assert not oracle.include_loading
        assert greedy.best_total == oracle.best_total

    def test_exhaustive_refuses_wide_circuits(self, estimator, library25):
        wide = random_logic("opt_wide", MAX_EXHAUSTIVE_INPUTS + 1, 30, rng=2)
        compiled = compile_circuit(wide, library25)
        with pytest.raises(ValueError, match="greedy"):
            exhaustive_minimize(compiled)


class TestReproducibility:
    def test_greedy_is_island_split_invariant(self, compiled_small):
        serial = greedy_minimize(compiled_small, rng=42, islands=1)
        split = greedy_minimize(compiled_small, rng=42, islands=3)
        assert serial.best_total == split.best_total
        assert np.array_equal(serial.best_bits, split.best_bits)
        assert serial.evaluations == split.evaluations

    @pytest.mark.slow
    def test_islands_match_process_pool_bitwise(self, compiled_small):
        options = GeneticOptions(population=12, generations=6)
        serial = genetic_minimize(
            compiled_small, options=options, rng=7, islands=2, max_workers=1
        )
        pooled = genetic_minimize(
            compiled_small, options=options, rng=7, islands=2, max_workers=2
        )
        assert serial.best_total == pooled.best_total
        assert np.array_equal(serial.best_bits, pooled.best_bits)
        assert serial.evaluations == pooled.evaluations
        for a, b in zip(serial.islands, pooled.islands):
            assert np.array_equal(a.trajectory, b.trajectory)
            assert a.stop_reason == b.stop_reason

    def test_same_seed_same_result(self, compiled_small):
        first = genetic_minimize(compiled_small, rng=123)
        second = genetic_minimize(compiled_small, rng=123)
        assert first.best_total == second.best_total
        assert np.array_equal(first.best_bits, second.best_bits)


class TestBudgetsAndDiagnostics:
    def test_greedy_round_cap_and_ledger(self, compiled_small):
        options = GreedyOptions(restarts=4, max_rounds=0)
        result = greedy_minimize(compiled_small, options=options, rng=1)
        # No neighborhood rounds: only the 4 start vectors were scored.
        assert result.evaluations == 4
        assert not result.converged
        assert result.islands[0].stop_reason == "max-rounds"

    def test_greedy_runs_to_local_minima(self, compiled_small):
        result = greedy_minimize(
            compiled_small, options=GreedyOptions(restarts=3), rng=1
        )
        assert result.converged
        assert all(i.stop_reason == "local-minima" for i in result.islands)
        n = result.n_inputs
        # Ledger: starts plus one n-candidate neighborhood per active
        # restart per round — bounded below by one final non-improving
        # round per restart.
        assert result.evaluations >= 3 + 3 * n

    def test_genetic_generation_ledger(self, compiled_small):
        options = GeneticOptions(
            population=10, generations=3, elite=2, stall_generations=None
        )
        result = genetic_minimize(compiled_small, options=options, rng=9)
        # population + generations * (population - elite) candidates scored.
        assert result.evaluations == 10 + 3 * (10 - 2)
        assert result.islands[0].rounds == 3

    def test_trajectories_are_monotone(self, compiled_small):
        result = genetic_minimize(compiled_small, rng=4)
        curve = result.trajectory
        assert curve.size
        assert np.all(np.diff(curve) <= 0.0)
        assert curve[-1] == result.best_total
        assert "Minimum-leakage" in result.to_table()

    def test_option_validation(self):
        with pytest.raises(ValueError):
            GreedyOptions(restarts=0)
        with pytest.raises(ValueError):
            GreedyOptions(max_rounds=-1)
        with pytest.raises(ValueError):
            GeneticOptions(population=1)
        with pytest.raises(ValueError):
            GeneticOptions(elite=32, population=32)
        with pytest.raises(ValueError):
            GeneticOptions(crossover_rate=1.5)
        with pytest.raises(ValueError):
            GeneticOptions(stall_generations=0)


# --------------------------------------------------------------------------- #
# dispatch layer: minimum_leakage_vector(strategy=...)
# --------------------------------------------------------------------------- #


class _ScalarOnlyEstimator:
    """A non-library estimator: only the streaming paths can serve it."""

    def __init__(self, inner):
        self._inner = inner

    def estimate(self, circuit, assignment):
        return self._inner.estimate(circuit, assignment)


class TestStrategyDispatch:
    def test_greedy_strategy_matches_subsystem(self, estimator, small_circuit):
        vector, total = minimum_leakage_vector(
            estimator, small_circuit, strategy="greedy", rng=11
        )
        direct = minimize_leakage(
            estimator, small_circuit, strategy="greedy", rng=11
        )
        assert total == direct.best_total
        assert vector == direct.best_assignment

    def test_exhaustive_strategy_equals_exhaustive_flag(
        self, estimator, small_circuit
    ):
        by_strategy = minimum_leakage_vector(
            estimator, small_circuit, strategy="exhaustive"
        )
        by_flag = minimum_leakage_vector(estimator, small_circuit, exhaustive=True)
        assert by_strategy == by_flag

    def test_exhaustive_strategy_scalar_fallback(self, estimator):
        circuit = nand_tree(2)
        stub = _ScalarOnlyEstimator(estimator)
        vector, total = minimum_leakage_vector(
            stub, circuit, strategy="exhaustive"
        )
        expected = minimum_leakage_vector(estimator, circuit, exhaustive=True)
        assert (vector, total) == expected

    def test_exhaustive_strategy_honors_scalar_engine(
        self, estimator, small_circuit
    ):
        """engine='scalar' + strategy='exhaustive' streams the scalar oracle."""
        by_scalar = minimum_leakage_vector(
            estimator, small_circuit, strategy="exhaustive", engine="scalar"
        )
        by_batched = minimum_leakage_vector(
            estimator, small_circuit, strategy="exhaustive"
        )
        assert by_scalar[0] == by_batched[0]
        assert by_scalar[1] == pytest.approx(by_batched[1], rel=1e-11)

    def test_strategy_engine_validation(self, estimator, library25):
        circuit = nand_tree(2)
        with pytest.raises(ValueError, match="engine must be one of"):
            minimum_leakage_vector(
                estimator, circuit, strategy="greedy", engine="bogus"
            )
        with pytest.raises(ValueError, match="batched"):
            minimum_leakage_vector(
                estimator, circuit, strategy="greedy", engine="scalar"
            )
        # The scalar exhaustive fallback carries its own (tighter) width
        # guard: per-vector estimator walks cap out far below the batched
        # oracle's limit.
        stub = _ScalarOnlyEstimator(estimator)
        wide = random_logic("dispatch_wide", 17, 24, rng=4)
        with pytest.raises(ValueError, match="2\\*\\*17"):
            minimum_leakage_vector(stub, wide, strategy="exhaustive")
        # Search knobs are rejected uniformly on both exhaustive branches.
        with pytest.raises(TypeError, match="strategy_options"):
            minimum_leakage_vector(
                stub, circuit, strategy="exhaustive",
                strategy_options=GreedyOptions(),
            )
        with pytest.raises(ValueError, match="islands"):
            minimum_leakage_vector(
                estimator, circuit, strategy="exhaustive", islands=2
            )

    def test_strategy_argument_validation(self, estimator, small_circuit):
        with pytest.raises(ValueError, match="strategy must be one of"):
            minimum_leakage_vector(estimator, small_circuit, strategy="anneal")
        with pytest.raises(ValueError, match="candidate set"):
            minimum_leakage_vector(
                estimator, small_circuit, strategy="greedy", exhaustive=True
            )
        with pytest.raises(ValueError, match="candidate set"):
            minimum_leakage_vector(
                estimator,
                small_circuit,
                strategy="genetic",
                vectors=[{}],
            )
        stub = _ScalarOnlyEstimator(estimator)
        with pytest.raises(ValueError, match="library-backed"):
            minimum_leakage_vector(stub, small_circuit, strategy="greedy")
        with pytest.raises(TypeError, match="GreedyOptions"):
            minimize_leakage(
                estimator,
                small_circuit,
                strategy="greedy",
                options=GeneticOptions(),
            )
        with pytest.raises(TypeError, match="GeneticOptions"):
            minimize_leakage(
                estimator,
                small_circuit,
                strategy="genetic",
                options=GreedyOptions(),
            )
