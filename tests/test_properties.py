"""Property-based tests of the device leakage models (hypothesis).

`tests/test_newton_solver.py` checks the analytic model derivatives at
hand-picked bias points on both sides of every branch boundary; this module
generalizes those spot checks into *properties* asserted on fuzzed bias
points:

* **finiteness** — every model returns finite values over (and beyond) the
  physical bias envelope;
* **continuity** — the deliberately smoothed corners stay smooth: the
  Vds~0 source/drain partition blend, the mobility-degradation clamp at
  threshold, the small-Vox Taylor branch of the tunneling shape function
  and the BTBT zero-bias cutoff;
* **monotonicity where physics demands it** — channel current never
  decreases with gate or drain bias, tunneling density never decreases
  with oxide voltage, BTBT density never decreases with reverse bias, the
  effective threshold never rises with Vds (DIBL) or Vbs (body effect);
* **gradient twins** — every ``*_grad_v`` function matches central finite
  differences of its value twin at fuzzed points (kink neighbourhoods are
  ``assume``-d away: exactly *at* a clamp the twins take the documented
  inactive-side derivative, which a straddling difference quotient cannot
  measure), and returns values bitwise identical to the value twin.

All examples run with ``derandomize=True`` so CI never sees a flaky
counterexample hunt; shrinking still reports minimal failing cases locally.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.device.btbt import (
    btbt_current_density,
    btbt_current_density_grad_v,
    btbt_current_density_v,
)
from repro.device.gate_tunneling import (
    gate_tunneling_components_grad_v,
    gate_tunneling_components_v,
    tunneling_current_density,
    tunneling_current_density_grad_v,
    tunneling_current_density_v,
)
from repro.device.batched import PackedMosfets
from repro.device.mosfet import Mosfet
from repro.device.subthreshold import (
    channel_current,
    channel_current_grad_v,
    channel_current_v,
    effective_threshold,
    effective_threshold_grad_v,
    effective_threshold_v,
)
from repro.utils.mathtools import (
    log1p_exp_grad_np,
    log1p_exp_np,
    smooth_step_grad_np,
    smooth_step_np,
)

#: Shared hypothesis profile: generous examples, deterministic replay.
PROP = settings(max_examples=40, deadline=None, derandomize=True)

#: Central-difference step for voltage arguments.
H = 1e-6

finite = dict(allow_nan=False, allow_infinity=False)


def packed_single(device, temperature_k=300.0) -> PackedMosfets:
    """A 1x1 packed grid: the parameter arrays the vectorized models consume."""
    return PackedMosfets([[Mosfet(device)]], temperature_k)


def assert_grad_close(analytic, fd, rtol=2e-3, floor=1e-18):
    """Masked relative comparison (same convention as test_newton_solver):
    entries below ``floor`` on both sides are finite-difference roundoff."""
    analytic = np.asarray(analytic, dtype=float)
    fd = np.asarray(fd, dtype=float)
    scale = np.maximum(np.abs(analytic), np.abs(fd))
    mask = scale > floor
    if not mask.any():
        return
    error = np.abs(analytic - fd)[mask] / scale[mask]
    assert float(error.max()) <= rtol, (
        f"worst gradient mismatch {float(error.max()):.3e} "
        f"(analytic {analytic[mask][np.argmax(error)]:.6e}, "
        f"fd {fd[mask][np.argmax(error)]:.6e})"
    )


def _threshold_kwargs(packed):
    return dict(
        vth_base=packed.vth_base,
        body_gamma=packed.body_gamma,
        phi_s=packed.phi_s,
        sqrt_phi_s=packed.sqrt_phi_s,
        dibl=packed.dibl,
    )


def _channel_kwargs(packed):
    return dict(
        n_swing=packed.n_swing,
        i_spec=packed.i_spec,
        theta_mobility=packed.theta_mobility,
        isub_scale=packed.isub_scale,
    )


def _tunneling_kwargs(packed):
    return dict(
        barrier_ev=packed.barrier_ev,
        b_tox_per_nm=packed.b_tox_per_nm,
        density_scale=packed.gt_density_scale,
        temp_factor=packed.gt_temp_factor,
    )


def _btbt_kwargs(packed):
    return dict(
        jbtbt_ref=packed.jbtbt_ref,
        vref=packed.btbt_vref,
        psi_bi=packed.psi_bi,
        field_exponent=packed.field_exponent,
        field_scale=packed.field_scale,
        b_eff=packed.b_eff,
        reference=packed.btbt_reference,
    )


def _devices(technology):
    return (technology.nmos, technology.pmos)


# --------------------------------------------------------------------------- #
# finiteness
# --------------------------------------------------------------------------- #


class TestFiniteness:
    @PROP
    @given(
        vgs=st.floats(min_value=-0.6, max_value=1.8, **finite),
        vds=st.floats(min_value=0.0, max_value=1.8, **finite),
        vbs=st.floats(min_value=-0.8, max_value=0.3, **finite),
        temperature_k=st.floats(min_value=250.0, max_value=400.0, **finite),
    )
    def test_channel_current_is_finite(self, bulk25, vgs, vds, vbs, temperature_k):
        for device in _devices(bulk25):
            assert np.isfinite(
                channel_current(device, vgs, vds, vbs, temperature_k)
            )

    @PROP
    @given(
        vg=st.floats(min_value=-0.4, max_value=1.6, **finite),
        vs=st.floats(min_value=0.0, max_value=1.2, **finite),
        delta=st.floats(min_value=0.0, max_value=1.2, **finite),
        vb=st.floats(min_value=-0.3, max_value=1.2, **finite),
    )
    def test_gate_tunneling_components_are_finite(self, bulk25, vg, vs, delta, vb):
        for device in _devices(bulk25):
            packed = packed_single(device)
            # (1, 1) arrays: the packed parameter grid's (slots, batch) shape.
            arr = lambda x: np.array([[x]])  # noqa: E731 - tiny local adapter
            vth = effective_threshold_v(
                arr(delta), arr(vb - vs), **_threshold_kwargs(packed)
            )
            components = gate_tunneling_components_v(
                arr(vg),
                arr(vs + delta),
                arr(vs),
                arr(vb),
                vth_eff=vth,
                tox_nm=packed.tox_nm,
                overlap_area_um2=packed.overlap_area,
                gate_area_um2=packed.gate_area,
                accumulation_factor=packed.accumulation_factor,
                gb_fraction=packed.gb_fraction,
                igate_scale=packed.igate_scale,
                **_tunneling_kwargs(packed),
            )
            assert all(np.isfinite(part).all() for part in components)

    @PROP
    @given(vrev=st.floats(min_value=-1.5, max_value=2.5, **finite))
    def test_btbt_density_is_finite_and_nonnegative(self, bulk25, vrev):
        for device in _devices(bulk25):
            value = btbt_current_density(vrev, device.btbt)
            assert np.isfinite(value) and value >= 0.0


# --------------------------------------------------------------------------- #
# continuity at the smoothed corners
# --------------------------------------------------------------------------- #


class TestContinuity:
    #: Continuity tolerance: an eps step of 1e-8 V may move a current by at
    #: most its local-slope share; 1e-4 relative is orders above that while
    #: catching any genuine branch jump (those are O(1) relative).
    EPS = 1e-8
    RTOL = 1e-4

    def _relative_jump(self, left, right):
        # The floor keeps sub-1e-18 A residues (layers below any physical
        # leakage, pure rounding) from registering as relative jumps.
        scale = max(abs(left), abs(right), 1e-18)
        return abs(left - right) / scale

    @PROP
    @given(
        vg=st.floats(min_value=0.0, max_value=1.2, **finite),
        vs=st.floats(min_value=0.0, max_value=1.0, **finite),
    )
    def test_source_drain_partition_blend_at_vds_zero(self, bulk25, vg, vs):
        """igcs/igcd are continuous where the source/drain order flips."""
        for device in _devices(bulk25):
            packed = packed_single(device)
            kwargs = dict(
                tox_nm=packed.tox_nm,
                overlap_area_um2=packed.overlap_area,
                gate_area_um2=packed.gate_area,
                accumulation_factor=packed.accumulation_factor,
                gb_fraction=packed.gb_fraction,
                igate_scale=packed.igate_scale,
                **_tunneling_kwargs(packed),
            )

            def parts(vd):
                vth = effective_threshold_v(
                    np.array([[vd - vs]]),
                    np.array([[-vs]]),
                    **_threshold_kwargs(packed),
                )
                return np.stack(
                    gate_tunneling_components_v(
                        np.array([[vg]]),
                        np.array([[vd]]),
                        np.array([[vs]]),
                        np.array([[0.0]]),
                        vth_eff=vth,
                        **kwargs,
                    )
                ).reshape(-1)

            at = parts(vs)
            above = parts(vs + self.EPS)
            for left, right in zip(at, above):
                assert self._relative_jump(left, right) <= self.RTOL

    @PROP
    @given(
        vds=st.floats(min_value=0.01, max_value=1.2, **finite),
        vbs=st.floats(min_value=-0.5, max_value=0.0, **finite),
    )
    def test_mobility_clamp_corner_is_continuous(self, bulk25, vds, vbs):
        """Channel current is continuous through vgs == vth_eff."""
        for device in _devices(bulk25):
            vth = effective_threshold(device, vds, vbs, 300.0)
            below = channel_current(device, vth - self.EPS, vds, vbs, 300.0)
            above = channel_current(device, vth + self.EPS, vds, vbs, 300.0)
            assert self._relative_jump(below, above) <= self.RTOL

    def test_tunneling_taylor_branch_is_continuous(self, bulk25):
        """The small-Vox branch switch (1e-6 V) and the origin are smooth."""
        for device in _devices(bulk25):
            params = device.gate_tunneling
            below = tunneling_current_density(0.999e-6, device.tox_nm, params)
            above = tunneling_current_density(1.001e-6, device.tox_nm, params)
            assert self._relative_jump(below, above) <= 1e-2
            near_zero = tunneling_current_density(1e-12, device.tox_nm, params)
            assert near_zero <= 1e-12 * tunneling_current_density(
                1.0, device.tox_nm, params
            )

    def test_btbt_zero_bias_cutoff_is_continuous(self, bulk25):
        """J -> 0 as vrev -> 0+: the cutoff introduces no jump."""
        for device in _devices(bulk25):
            reference = btbt_current_density(1.0, device.btbt)
            assert btbt_current_density(1e-9, device.btbt) <= 1e-8 * reference
            assert btbt_current_density(0.0, device.btbt) == 0.0


# --------------------------------------------------------------------------- #
# monotonicity where physics demands it
# --------------------------------------------------------------------------- #


@st.composite
def ordered_pair(draw, low, high):
    """Two floats with a <= b, both in [low, high]."""
    a = draw(st.floats(min_value=low, max_value=high, **finite))
    b = draw(st.floats(min_value=low, max_value=high, **finite))
    return (a, b) if a <= b else (b, a)


class TestMonotonicity:
    #: Rounding headroom on the monotone comparisons.
    SLACK = 1e-12

    def _nondecreasing(self, lower, upper):
        assert upper >= lower - self.SLACK * max(abs(lower), abs(upper))

    @PROP
    @given(
        pair=ordered_pair(-0.5, 1.6),
        vds=st.floats(min_value=0.0, max_value=1.5, **finite),
        vbs=st.floats(min_value=-0.6, max_value=0.2, **finite),
    )
    def test_channel_current_nondecreasing_in_vgs(self, bulk25, pair, vds, vbs):
        """More gate drive never lowers the channel current."""
        vgs_low, vgs_high = pair
        for device in _devices(bulk25):
            self._nondecreasing(
                channel_current(device, vgs_low, vds, vbs, 300.0),
                channel_current(device, vgs_high, vds, vbs, 300.0),
            )

    @PROP
    @given(
        pair=ordered_pair(0.0, 1.5),
        vgs=st.floats(min_value=-0.5, max_value=1.6, **finite),
        vbs=st.floats(min_value=-0.6, max_value=0.2, **finite),
    )
    def test_channel_current_nondecreasing_in_vds(self, bulk25, pair, vgs, vbs):
        """Drain bias (drain term + DIBL) never lowers the current."""
        vds_low, vds_high = pair
        for device in _devices(bulk25):
            self._nondecreasing(
                channel_current(device, vgs, vds_low, vbs, 300.0),
                channel_current(device, vgs, vds_high, vbs, 300.0),
            )

    @PROP
    @given(pair=ordered_pair(0.0, 2.0))
    def test_tunneling_density_nondecreasing_in_vox(self, bulk25, pair):
        vox_low, vox_high = pair
        for device in _devices(bulk25):
            self._nondecreasing(
                tunneling_current_density(
                    vox_low, device.tox_nm, device.gate_tunneling
                ),
                tunneling_current_density(
                    vox_high, device.tox_nm, device.gate_tunneling
                ),
            )

    @PROP
    @given(pair=ordered_pair(0.0, 1.6))
    def test_btbt_density_nondecreasing_in_vrev(self, bulk25, pair):
        vrev_low, vrev_high = pair
        for device in _devices(bulk25):
            self._nondecreasing(
                btbt_current_density(vrev_low, device.btbt),
                btbt_current_density(vrev_high, device.btbt),
            )

    @PROP
    @given(
        pair=ordered_pair(0.0, 1.5),
        vbs=st.floats(min_value=-0.6, max_value=0.2, **finite),
    )
    def test_threshold_nonincreasing_in_vds(self, bulk25, pair, vbs):
        """DIBL: drain bias can only lower the barrier."""
        vds_low, vds_high = pair
        for device in _devices(bulk25):
            assert effective_threshold(
                device, vds_high, vbs, 300.0
            ) <= effective_threshold(device, vds_low, vbs, 300.0) + self.SLACK

    @PROP
    @given(
        pair=ordered_pair(-0.8, 0.3),
        vds=st.floats(min_value=0.0, max_value=1.5, **finite),
    )
    def test_threshold_nonincreasing_in_vbs(self, bulk25, pair, vds):
        """Body effect: reverse body bias (vbs down) raises the threshold."""
        vbs_low, vbs_high = pair
        for device in _devices(bulk25):
            assert effective_threshold(
                device, vds, vbs_high, 300.0
            ) <= effective_threshold(device, vds, vbs_low, 300.0) + self.SLACK


# --------------------------------------------------------------------------- #
# gradient twins vs. central finite differences on fuzzed points
# --------------------------------------------------------------------------- #


class TestGradientTwins:
    @PROP
    @given(x=st.floats(min_value=-80.0, max_value=80.0, **finite))
    def test_log1p_exp_gradient(self, x):
        # Keep the difference quotient away from the +/-60 branch switches.
        assume(abs(abs(x) - 60.0) > 10 * H)
        fd = (log1p_exp_np(x + H) - log1p_exp_np(x - H)) / (2 * H)
        assert_grad_close(log1p_exp_grad_np(np.array([x])), [fd], rtol=1e-4)

    @PROP
    @given(
        x=st.floats(min_value=-2.0, max_value=2.0, **finite),
        width=st.floats(min_value=0.01, max_value=1.0, **finite),
    )
    def test_smooth_step_gradient(self, x, width):
        # In the saturated tails the float64 value is exactly flat, so a
        # difference quotient reads 0 while the analytic slope is a (true)
        # sub-1e-12 residue; only the measurable transition region can
        # falsify the gradient.
        assume(abs(x) < 25.0 * width)
        h = min(H, width * 1e-3)
        fd = (
            smooth_step_np(x + h, width=width) - smooth_step_np(x - h, width=width)
        ) / (2 * h)
        assert_grad_close(
            smooth_step_grad_np(np.array([x]), width=width), [fd], rtol=1e-4
        )

    @PROP
    @given(
        vds=st.floats(min_value=0.0, max_value=1.5, **finite),
        vbs=st.floats(min_value=-0.6, max_value=0.3, **finite),
    )
    def test_effective_threshold_gradient(self, bulk25, vds, vbs):
        assume(vds > 10 * H)  # away from the DIBL clamp kink
        for device in _devices(bulk25):
            packed = packed_single(device)
            kwargs = _threshold_kwargs(packed)
            assume(float(packed.phi_s[0, 0]) - vbs > 10 * H)  # body clamp
            vds_a, vbs_a = np.array([vds]), np.array([vbs])
            vth, d_vds, d_vbs = effective_threshold_grad_v(vds_a, vbs_a, **kwargs)
            np.testing.assert_array_equal(
                vth, effective_threshold_v(vds_a, vbs_a, **kwargs)
            )
            fd_vds = (
                effective_threshold_v(vds_a + H, vbs_a, **kwargs)
                - effective_threshold_v(vds_a - H, vbs_a, **kwargs)
            ) / (2 * H)
            fd_vbs = (
                effective_threshold_v(vds_a, vbs_a + H, **kwargs)
                - effective_threshold_v(vds_a, vbs_a - H, **kwargs)
            ) / (2 * H)
            assert_grad_close(d_vds, fd_vds, rtol=1e-4)
            assert_grad_close(d_vbs, fd_vbs, rtol=1e-4)

    @PROP
    @given(
        vgs=st.floats(min_value=-0.4, max_value=1.5, **finite),
        vds=st.floats(min_value=0.001, max_value=1.4, **finite),
        vbs=st.floats(min_value=-0.5, max_value=0.2, **finite),
    )
    def test_channel_current_gradient(self, bulk25, vgs, vds, vbs):
        """Full chain through the bias-dependent threshold, fuzzed."""
        for device in _devices(bulk25):
            packed = packed_single(device)
            threshold_kwargs = _threshold_kwargs(packed)
            channel_kwargs = _channel_kwargs(packed)

            def current(vgs, vds, vbs):
                vth = effective_threshold_v(vds, vbs, **threshold_kwargs)
                return channel_current_v(
                    vgs, vds, 300.0, vth_eff=vth, **channel_kwargs
                )

            vgs_a, vds_a, vbs_a = (
                np.array([vgs]),
                np.array([vds]),
                np.array([vbs]),
            )
            vth, dvds, dvbs = effective_threshold_grad_v(
                vds_a, vbs_a, **threshold_kwargs
            )
            # Keep the quotient off the mobility clamp and DIBL kinks.
            assume(abs(vgs - float(vth[0, 0])) > 10 * H)
            assume(vds > 10 * H)
            value, d_vgs, d_vds, d_vbs = channel_current_grad_v(
                vgs_a,
                vds_a,
                300.0,
                vth_eff=vth,
                dvth_dvds=dvds,
                dvth_dvbs=dvbs,
                **channel_kwargs,
            )
            np.testing.assert_array_equal(value, current(vgs_a, vds_a, vbs_a))
            assert_grad_close(
                d_vgs,
                (current(vgs_a + H, vds_a, vbs_a) - current(vgs_a - H, vds_a, vbs_a))
                / (2 * H),
            )
            assert_grad_close(
                d_vds,
                (current(vgs_a, vds_a + H, vbs_a) - current(vgs_a, vds_a - H, vbs_a))
                / (2 * H),
            )
            assert_grad_close(
                d_vbs,
                (current(vgs_a, vds_a, vbs_a + H) - current(vgs_a, vds_a, vbs_a - H))
                / (2 * H),
            )

    @PROP
    @given(vox=st.floats(min_value=1e-3, max_value=1.8, **finite))
    def test_tunneling_density_gradient(self, bulk25, vox):
        for device in _devices(bulk25):
            packed = packed_single(device)
            kwargs = _tunneling_kwargs(packed)
            phi = float(packed.barrier_ev[0, 0])
            assume(abs(vox - phi) > 10 * H)  # the ratio >= 1 branch switch
            vox_a = np.array([vox])
            value, grad = tunneling_current_density_grad_v(
                vox_a, packed.tox_nm, **kwargs
            )
            np.testing.assert_array_equal(
                value, tunneling_current_density_v(vox_a, packed.tox_nm, **kwargs)
            )
            fd = (
                tunneling_current_density_v(vox_a + H, packed.tox_nm, **kwargs)
                - tunneling_current_density_v(vox_a - H, packed.tox_nm, **kwargs)
            ) / (2 * H)
            assert_grad_close(grad, fd)

    @PROP
    @given(vrev=st.floats(min_value=1e-3, max_value=1.5, **finite))
    def test_btbt_density_gradient(self, bulk25, vrev):
        for device in _devices(bulk25):
            packed = packed_single(device)
            kwargs = _btbt_kwargs(packed)
            vrev_a = np.array([vrev])
            value, grad = btbt_current_density_grad_v(vrev_a, **kwargs)
            np.testing.assert_array_equal(
                value, btbt_current_density_v(vrev_a, **kwargs)
            )
            fd = (
                btbt_current_density_v(vrev_a + H, **kwargs)
                - btbt_current_density_v(vrev_a - H, **kwargs)
            ) / (2 * H)
            assert_grad_close(grad, fd)

    @PROP
    @given(
        vg=st.floats(min_value=-0.2, max_value=1.3, **finite),
        vs=st.floats(min_value=0.0, max_value=1.0, **finite),
        delta=st.floats(min_value=0.0, max_value=1.0, **finite),
        vb=st.floats(min_value=-0.2, max_value=0.5, **finite),
    )
    def test_gate_tunneling_components_gradient(self, bulk25, vg, vs, delta, vb):
        """The full 5-component x 4-voltage Jacobian on fuzzed frames."""
        device = bulk25.nmos
        packed = packed_single(device)
        threshold_kwargs = _threshold_kwargs(packed)
        model_kwargs = dict(
            tox_nm=packed.tox_nm,
            overlap_area_um2=packed.overlap_area,
            gate_area_um2=packed.gate_area,
            accumulation_factor=packed.accumulation_factor,
            gb_fraction=packed.gb_fraction,
            igate_scale=packed.igate_scale,
            **_tunneling_kwargs(packed),
        )
        vd = vs + delta

        def components(g, d, s, b):
            vth = effective_threshold_v(d - s, b - s, **threshold_kwargs)
            return np.stack(
                gate_tunneling_components_v(g, d, s, b, vth_eff=vth, **model_kwargs)
            )

        g, d, s, b = (np.array([[x]]) for x in (vg, vd, vs, vb))
        vth, dvds, dvbs = effective_threshold_grad_v(
            d - s, b - s, **threshold_kwargs
        )
        # Keep every FD probe away from the value path's select/clamp points
        # (the DIBL clamp at vds=0, the pinch-off min-select, the channel
        # clamp) and the oxide sign flips.
        assume(delta > 10 * H)
        pinch = vg - float(vth[0, 0])
        assume(abs(pinch - vd) > 10 * H)
        assume(abs(min(pinch, vd) - vs) > 10 * H)
        for vox in (vg - vs, vg - vd, vg - vb):
            assume(abs(vox) > 10 * H)
        value, jacobian = gate_tunneling_components_grad_v(
            g,
            d,
            s,
            b,
            vth_eff=vth,
            dvth_dd=dvds,
            dvth_ds=-(dvds + dvbs),
            dvth_db=dvbs,
            **model_kwargs,
        )
        np.testing.assert_array_equal(value, components(g, d, s, b))
        volts = [g, d, s, b]
        for x in range(4):
            plus = [v.copy() for v in volts]
            minus = [v.copy() for v in volts]
            plus[x] = plus[x] + H
            minus[x] = minus[x] - H
            fd = (components(*plus) - components(*minus)) / (2 * H)
            assert_grad_close(jacobian[:, x], fd, rtol=5e-3, floor=1e-12)
