"""Tests for the ISCAS .bench reader/writer."""

import pytest

from repro.circuit.bench_io import (
    BenchFormatError,
    BenchParseError,
    parse_bench,
    read_bench,
    write_bench,
)
from repro.circuit.generators import nand_tree
from repro.circuit.logic import propagate, random_vectors
from repro.gates.library import GateType

SAMPLE = """
# small sample
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G9)
G5 = NAND(G1, G2)
G6 = NOT(G3)
G7 = AND(G5, G6)
G8 = DFF(G7)
G9 = NOR(G8, G6)
"""


class TestParsing:
    def test_sample_structure(self):
        circuit = parse_bench(SAMPLE, name="sample")
        # DFF output G8 becomes a pseudo primary input, its data input G7 a
        # pseudo primary output.
        assert set(circuit.primary_inputs) == {"G1", "G2", "G3", "G8"}
        assert set(circuit.primary_outputs) == {"G9", "G7"}
        assert circuit.gate_count == 4
        circuit.validate()

    def test_gate_types_mapped(self):
        circuit = parse_bench(SAMPLE)
        types = circuit.gate_type_histogram()
        assert types == {"and2": 1, "inv": 1, "nand2": 1, "nor2": 1}

    def test_logic_of_parsed_circuit(self):
        circuit = parse_bench(SAMPLE)
        values = propagate(circuit, {"G1": 1, "G2": 1, "G3": 0, "G8": 0})
        assert values["G5"] == 0      # NAND(1,1)
        assert values["G6"] == 1      # NOT(0)
        assert values["G7"] == 0      # AND(0,1)
        assert values["G9"] == 0      # NOR(0,1)

    def test_wide_gate_decomposed(self):
        text = """
        INPUT(a)
        INPUT(b)
        INPUT(c)
        INPUT(d)
        INPUT(e)
        OUTPUT(y)
        y = NAND(a, b, c, d, e)
        """
        circuit = parse_bench(text)
        circuit.validate()
        # Logic must still be a 5-input NAND.
        for bits in [(1, 1, 1, 1, 1), (1, 1, 0, 1, 1), (0, 0, 0, 0, 0)]:
            assignment = dict(zip("abcde", bits))
            values = propagate(circuit, assignment)
            assert values["y"] == (0 if all(bits) else 1)

    def test_single_input_and_degenerates_to_buffer(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = AND(a)\n"
        circuit = parse_bench(text)
        assert list(circuit.gates.values())[0].gate_type is GateType.BUF

    def test_unknown_primitive_rejected(self):
        with pytest.raises(BenchFormatError, match="unsupported"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(BenchFormatError, match="cannot parse"):
            parse_bench("INPUT(a)\nthis is not bench\n")

    def test_not_with_two_inputs_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n")


class TestWriting:
    def test_roundtrip_preserves_logic(self):
        original = nand_tree(3)
        text = write_bench(original)
        parsed = parse_bench(text, name="roundtrip")
        assert set(parsed.primary_inputs) == set(original.primary_inputs)
        for vector in random_vectors(original, 8, rng=7):
            original_values = propagate(original, vector)
            parsed_values = propagate(parsed, vector)
            for net in original.primary_outputs:
                assert original_values[net] == parsed_values[net]

    def test_write_to_file(self, tmp_path):
        circuit = nand_tree(2)
        path = tmp_path / "tree.bench"
        write_bench(circuit, path)
        loaded = read_bench(path)
        assert loaded.gate_count == circuit.gate_count
        assert loaded.name == "tree"

    def test_complex_gates_exported_as_primitives(self):
        from repro.circuit.netlist import Circuit

        circuit = Circuit(name="aoi")
        for net in ("a", "b", "c"):
            circuit.add_input(net)
        circuit.add_gate("g", GateType.AOI21, ["a", "b", "c"], "y")
        circuit.add_output("y")
        text = write_bench(circuit)
        parsed = parse_bench(text)
        for bits in [(0, 0, 0), (1, 1, 0), (0, 1, 1), (1, 0, 0)]:
            assignment = dict(zip("abc", bits))
            assert (
                propagate(parsed, assignment)["y"]
                == propagate(circuit, assignment)["y"]
            )


class TestParseErrorPaths:
    """Malformed .bench input must fail with a line-numbered parse error,
    not a later KeyError deep inside propagation or flattening."""

    def test_parse_error_is_a_format_error(self):
        assert issubclass(BenchParseError, BenchFormatError)

    def test_undefined_gate_input_named_with_line(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = NAND(a, phantom)\n"
        with pytest.raises(BenchParseError, match="undefined signal 'phantom'") as excinfo:
            parse_bench(text)
        assert excinfo.value.line_no == 3

    def test_undefined_output_named_with_line(self):
        text = "INPUT(a)\nOUTPUT(ghost)\ny = NOT(a)\n"
        with pytest.raises(BenchParseError, match="undefined signal 'ghost'") as excinfo:
            parse_bench(text)
        assert excinfo.value.line_no == 2

    def test_duplicate_gate_definition_names_both_lines(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n"
        with pytest.raises(BenchParseError, match="duplicate definition") as excinfo:
            parse_bench(text)
        assert excinfo.value.line_no == 4
        assert "line 3" in str(excinfo.value)

    def test_gate_redefining_an_input_rejected(self):
        text = "INPUT(a)\nINPUT(b)\nOUTPUT(b)\nb = NOT(a)\n"
        with pytest.raises(BenchParseError, match="duplicate definition") as excinfo:
            parse_bench(text)
        assert excinfo.value.line_no == 4

    def test_duplicate_input_declaration_rejected(self):
        text = "INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"
        with pytest.raises(BenchParseError, match="already defined") as excinfo:
            parse_bench(text)
        assert excinfo.value.line_no == 2

    def test_zero_arity_gate_rejected(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = NAND()\n"
        with pytest.raises(BenchParseError) as excinfo:
            parse_bench(text)
        assert excinfo.value.line_no == 3

    def test_unknown_primitive_carries_line_number(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n"
        with pytest.raises(BenchParseError, match="unsupported") as excinfo:
            parse_bench(text)
        assert excinfo.value.line_no == 3

    def test_garbage_line_carries_line_number(self):
        text = "INPUT(a)\n\n# comment\nthis is not bench\n"
        with pytest.raises(BenchParseError, match="cannot parse") as excinfo:
            parse_bench(text)
        assert excinfo.value.line_no == 4

    def test_error_message_renders_line_prefix(self):
        with pytest.raises(BenchParseError, match=r"^line 3: "):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = MAJ(a)\n")
