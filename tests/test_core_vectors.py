"""Tests for vector campaigns, loading-impact statistics and vector search."""

import math

import pytest

from repro.circuit.generators import loaded_inverter_cluster, nand_tree, random_logic
from repro.circuit.logic import random_vectors
from repro.core.baseline import NoLoadingEstimator
from repro.core.estimator import LoadingAwareEstimator
from repro.core.report import CircuitLeakageReport, GateLeakage
from repro.core.vectors import (
    VectorCampaignResult,
    loading_impact_statistics,
    minimum_leakage_vector,
    run_vector_campaign,
)
from repro.spice.analysis import ComponentBreakdown


def _synthetic_report(sub=1e-9, gate=1e-9, btbt=1e-9, runtime=0.25):
    """Build a one-gate report with chosen component totals."""
    breakdown = ComponentBreakdown(subthreshold=sub, gate=gate, btbt=btbt)
    entry = GateLeakage(
        gate_name="g0", gate_type_name="inv", vector=(0,), breakdown=breakdown
    )
    metadata = {} if runtime is None else {"runtime_s": runtime}
    return CircuitLeakageReport(
        circuit_name="synthetic",
        method="loading-aware",
        input_assignment={"in": 0},
        per_gate={"g0": entry},
        temperature_k=300.0,
        vdd=0.9,
        metadata=metadata,
    )


def _synthetic_campaign(reports):
    return VectorCampaignResult(
        circuit_name="synthetic", method="loading-aware", reports=reports
    )


class TestVectorCampaign:
    def test_campaign_collects_reports(self, library_d25s):
        circuit = nand_tree(2)
        estimator = LoadingAwareEstimator(library_d25s)
        campaign = run_vector_campaign(estimator, circuit, count=5, rng=1)
        assert campaign.vector_count == 5
        assert campaign.method == "loading-aware"
        assert campaign.totals().shape == (5,)
        assert campaign.mean_total() > 0
        assert campaign.runtime_s() >= 0.0

    def test_explicit_vectors_shared_between_estimators(self, library_d25s):
        circuit = nand_tree(2)
        vectors = list(random_vectors(circuit, 4, rng=3))
        loaded = run_vector_campaign(
            LoadingAwareEstimator(library_d25s), circuit, vectors=vectors
        )
        baseline = run_vector_campaign(
            NoLoadingEstimator(library_d25s), circuit, vectors=vectors
        )
        assert loaded.vector_count == baseline.vector_count == 4
        for a, b in zip(loaded.reports, baseline.reports):
            assert a.input_assignment == b.input_assignment


class TestLoadingImpactStatistics:
    def test_statistics_structure_and_signs(self, library_d25s):
        circuit = loaded_inverter_cluster(5, 5)
        vectors = list(random_vectors(circuit, 4, rng=0))
        loaded = run_vector_campaign(
            LoadingAwareEstimator(library_d25s), circuit, vectors=vectors
        )
        baseline = run_vector_campaign(
            NoLoadingEstimator(library_d25s), circuit, vectors=vectors
        )
        stats = loading_impact_statistics(loaded, baseline)
        assert stats.vector_count == 4
        # Subthreshold is the component the loading effect moves the most.
        assert stats.average_percent["subthreshold"] > 0
        assert stats.maximum_percent["subthreshold"] >= stats.average_percent["subthreshold"]
        row = stats.row("average")
        assert row[0] == circuit.name
        assert len(row) == 5

    def test_mismatched_campaigns_rejected(self, library_d25s):
        circuit_a = nand_tree(2)
        circuit_b = loaded_inverter_cluster(2, 2)
        campaign_a = run_vector_campaign(
            LoadingAwareEstimator(library_d25s), circuit_a, count=2, rng=0
        )
        campaign_b = run_vector_campaign(
            NoLoadingEstimator(library_d25s), circuit_b, count=2, rng=0
        )
        with pytest.raises(ValueError, match="different circuits"):
            loading_impact_statistics(campaign_a, campaign_b)

    def test_mismatched_vector_counts_rejected(self, library_d25s):
        circuit = nand_tree(2)
        a = run_vector_campaign(LoadingAwareEstimator(library_d25s), circuit, count=2, rng=0)
        b = run_vector_campaign(NoLoadingEstimator(library_d25s), circuit, count=3, rng=0)
        with pytest.raises(ValueError, match="vector counts"):
            loading_impact_statistics(a, b)


class TestMinimumLeakageVector:
    def test_exhaustive_search_on_small_circuit(self, library_d25s):
        circuit = nand_tree(1)  # two inputs, one NAND2
        estimator = LoadingAwareEstimator(library_d25s)
        vector, total = minimum_leakage_vector(circuit=circuit, estimator=estimator, exhaustive=True)
        assert set(vector) == set(circuit.primary_inputs)
        assert total > 0
        # The winner must actually achieve the minimum over all four vectors.
        totals = {
            tuple(sorted(v.items())): estimator.estimate(circuit, v).total
            for v in (
                {"in0": a, "in1": b} for a in (0, 1) for b in (0, 1)
            )
        }
        assert total == pytest.approx(min(totals.values()))

    def test_random_search_is_reproducible(self, library_d25s):
        circuit = random_logic("minv", 5, 20, rng=2)
        estimator = LoadingAwareEstimator(library_d25s)
        first = minimum_leakage_vector(estimator, circuit, count=8, rng=5)
        second = minimum_leakage_vector(estimator, circuit, count=8, rng=5)
        assert first == second

    def test_empty_vector_set_rejected(self, library_d25s):
        circuit = nand_tree(1)
        estimator = LoadingAwareEstimator(library_d25s)
        with pytest.raises(ValueError, match="empty"):
            minimum_leakage_vector(estimator, circuit, vectors=[])

    def test_conflicting_vectors_and_exhaustive_rejected(self, library_d25s):
        circuit = nand_tree(1)
        estimator = LoadingAwareEstimator(library_d25s)
        with pytest.raises(ValueError, match="not both"):
            minimum_leakage_vector(
                estimator,
                circuit,
                vectors=[{"in0": 0, "in1": 0}],
                exhaustive=True,
            )

    def test_consumed_iterator_reported_clearly(self, library_d25s):
        circuit = nand_tree(1)
        estimator = LoadingAwareEstimator(library_d25s)
        one_shot = iter([{"in0": 0, "in1": 0}])
        list(one_shot)  # drain it, simulating accidental reuse
        with pytest.raises(ValueError, match="already consumed"):
            minimum_leakage_vector(estimator, circuit, vectors=one_shot)

    def test_generator_input_is_materialized(self, library_d25s):
        circuit = nand_tree(1)
        estimator = LoadingAwareEstimator(library_d25s)
        vectors = ({"in0": a, "in1": b} for a in (0, 1) for b in (0, 1))
        vector, total = minimum_leakage_vector(estimator, circuit, vectors=vectors)
        assert set(vector) == {"in0", "in1"}
        assert total > 0


class TestCampaignRuntimeMetadata:
    def test_runtime_sums_report_metadata(self):
        campaign = _synthetic_campaign(
            [_synthetic_report(runtime=0.25), _synthetic_report(runtime=0.5)]
        )
        assert campaign.runtime_s() == pytest.approx(0.75)

    def test_missing_runtime_metadata_raises(self):
        campaign = _synthetic_campaign(
            [_synthetic_report(runtime=0.25), _synthetic_report(runtime=None)]
        )
        with pytest.raises(ValueError, match="runtime_s"):
            campaign.runtime_s()

    def test_batch_runtime_wins_over_metadata(self):
        campaign = VectorCampaignResult(
            circuit_name="synthetic",
            method="loading-aware",
            reports=[_synthetic_report(runtime=None)],
            batch_runtime_s=0.125,
        )
        assert campaign.runtime_s() == pytest.approx(0.125)


class TestZeroUnloadedVectorHandling:
    def test_zero_unloaded_vectors_excluded_and_counted(self):
        loaded = _synthetic_campaign(
            [
                _synthetic_report(sub=2e-9, gate=1e-9, btbt=1e-9),
                _synthetic_report(sub=1e-9, gate=1e-9, btbt=1e-9),
            ]
        )
        unloaded = _synthetic_campaign(
            [
                _synthetic_report(sub=1e-9, gate=1e-9, btbt=1e-9),
                # Second vector has zero unloaded subthreshold: no defined
                # percent change for that component.
                _synthetic_report(sub=0.0, gate=1e-9, btbt=1e-9),
            ]
        )
        stats = loading_impact_statistics(loaded, unloaded)
        # Only the first vector contributes; the old code averaged in a
        # silent 0% for the second and reported 50% here.
        assert stats.average_percent["subthreshold"] == pytest.approx(100.0)
        assert stats.maximum_percent["subthreshold"] == pytest.approx(100.0)
        assert stats.skipped_vectors["subthreshold"] == 1
        assert stats.skipped_vectors["total"] == 0

    def test_all_vectors_skipped_yields_nan(self):
        loaded = _synthetic_campaign([_synthetic_report(btbt=1e-9)])
        unloaded = _synthetic_campaign([_synthetic_report(btbt=0.0)])
        stats = loading_impact_statistics(loaded, unloaded)
        assert math.isnan(stats.average_percent["btbt"])
        assert math.isnan(stats.maximum_percent["btbt"])
        assert stats.skipped_vectors["btbt"] == 1
