"""Tests for the benchmark-circuit generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.generators import (
    DEFAULT_GATE_MIX,
    ISCAS_PROFILES,
    alu,
    array_multiplier,
    fanout_star,
    inverter_chain,
    iscas_like,
    loaded_inverter_cluster,
    nand_tree,
    paper_benchmark_suite,
    random_logic,
)
from repro.circuit.graph import logic_depth
from repro.circuit.logic import propagate


def _bits(value, width, prefix):
    return {f"{prefix}{i}": (value >> i) & 1 for i in range(width)}


class TestPedagogicalStructures:
    def test_inverter_chain(self):
        circuit = inverter_chain(6)
        circuit.validate()
        assert circuit.gate_count == 6
        with pytest.raises(ValueError):
            inverter_chain(0)

    def test_fanout_star(self):
        circuit = fanout_star(5)
        circuit.validate()
        assert len(circuit.fanout_of("net_drv")) == 5
        with pytest.raises(ValueError):
            fanout_star(0)

    def test_loaded_inverter_cluster(self):
        circuit = loaded_inverter_cluster(6, 6)
        circuit.validate()
        # driver + g + 6 + 6
        assert circuit.gate_count == 14
        assert len(circuit.fanout_of("in_g")) == 7  # g plus 6 input loads
        assert len(circuit.fanout_of("out_g")) == 6

    def test_nand_tree(self):
        circuit = nand_tree(3)
        circuit.validate()
        assert len(circuit.primary_inputs) == 8
        assert circuit.gate_count == 7


class TestArithmeticBlocks:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_multiplier_exhaustive(self, width):
        circuit = array_multiplier(width)
        circuit.validate()
        for a in range(2**width):
            for b in range(2**width):
                assignment = {**_bits(a, width, "a"), **_bits(b, width, "b")}
                values = propagate(circuit, assignment)
                product = sum(
                    values[net] << i for i, net in enumerate(circuit.primary_outputs)
                )
                assert product == a * b, (a, b)

    def test_multiplier_8x8_spot_checks(self):
        circuit = array_multiplier(8)
        assert len(circuit.primary_outputs) == 16
        for a, b in [(0, 0), (255, 255), (170, 85), (13, 201)]:
            assignment = {**_bits(a, 8, "a"), **_bits(b, 8, "b")}
            values = propagate(circuit, assignment)
            product = sum(
                values[net] << i for i, net in enumerate(circuit.primary_outputs)
            )
            assert product == a * b

    @settings(max_examples=25, deadline=None)
    @given(a=st.integers(0, 255), b=st.integers(0, 255), op=st.integers(0, 3))
    def test_alu_operations(self, a, b, op):
        circuit = alu(8)
        assignment = {**_bits(a, 8, "a"), **_bits(b, 8, "b")}
        assignment["op0"] = op & 1
        assignment["op1"] = (op >> 1) & 1
        assignment["cin"] = 0
        values = propagate(circuit, assignment)
        result = sum(values[f"mux_{i}_y"] << i for i in range(8))
        expected = {0: (a + b) & 0xFF, 1: a & b, 2: a | b, 3: a ^ b}[op]
        assert result == expected

    def test_alu_carry_out(self):
        circuit = alu(8)
        assignment = {**_bits(255, 8, "a"), **_bits(1, 8, "b")}
        assignment.update({"op0": 0, "op1": 0, "cin": 0})
        values = propagate(circuit, assignment)
        assert values["add_fa7_c"] == 1

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            array_multiplier(1)
        with pytest.raises(ValueError):
            alu(0)


class TestRandomLogic:
    def test_deterministic_for_seed(self):
        first = random_logic("x", 8, 50, rng=11)
        second = random_logic("x", 8, 50, rng=11)
        assert list(first.gates) == list(second.gates)
        assert [g.inputs for g in first.gates.values()] == [
            g.inputs for g in second.gates.values()
        ]

    def test_requested_gate_count(self):
        circuit = random_logic("x", 8, 75, rng=0)
        assert circuit.gate_count == 75
        circuit.validate()

    def test_outputs_are_unloaded_nets(self):
        circuit = random_logic("x", 6, 40, rng=3)
        for net in circuit.primary_outputs:
            assert circuit.fanout_of(net) == []

    def test_gate_mix_respected(self):
        mix = {k: v for k, v in DEFAULT_GATE_MIX.items()}
        circuit = random_logic("x", 8, 200, rng=5, gate_mix=mix)
        histogram = circuit.gate_type_histogram()
        assert histogram.get("nand2", 0) > 0
        assert histogram.get("inv", 0) > 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            random_logic("x", 1, 10)
        with pytest.raises(ValueError):
            random_logic("x", 8, 0)
        with pytest.raises(ValueError):
            random_logic("x", 8, 10, locality=1)


class TestIscasSuite:
    def test_profiles_cover_paper_names(self):
        assert set(ISCAS_PROFILES) == {
            "s838",
            "s1196",
            "s1423",
            "s5372",
            "s9378",
            "s13207",
        }

    def test_scaled_generation(self):
        circuit = iscas_like("s838", scale=0.25)
        assert circuit.gate_count == pytest.approx(446 * 0.25, abs=2)
        circuit.validate()

    def test_aliases_accepted(self):
        assert iscas_like("s5378", scale=0.02).name == "s5372"

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            iscas_like("c6288")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            iscas_like("s838", scale=0.0)

    def test_determinism_without_explicit_seed(self):
        first = iscas_like("s1196", scale=0.1)
        second = iscas_like("s1196", scale=0.1)
        assert list(first.gates) == list(second.gates)

    def test_paper_suite_contents(self):
        suite = paper_benchmark_suite(scale=0.05)
        assert set(suite) == set(ISCAS_PROFILES) | {"alu88", "mult88"}
        assert suite["mult88"].gate_count == 320
        assert suite["alu88"].gate_count == 122

    def test_depth_is_reasonable(self):
        circuit = iscas_like("s838", scale=0.5)
        assert 5 < logic_depth(circuit) < 200
