#!/usr/bin/env python
"""Run the repository contract checkers over a source tree.

Usage::

    python tools/lint/check_contracts.py [PATHS...] [--json REPORT] [--list]

With no paths the repository's ``src`` tree is checked.  Exit status is 0
when no contract is violated, 1 otherwise (2 for usage errors), so the CI
lint job can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[2]

if __package__ in (None, ""):
    sys.path.insert(0, str(_REPO_ROOT / "tools"))

from lint.contracts import CHECKERS, check_tree  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_contracts",
        description="Check repository coding contracts (RC1xx rules).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=[str(_REPO_ROOT / "src")],
        help="files or directories to check (default: the repo src tree)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the violations as a JSON report",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the registered checkers and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-violation output (exit status only)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for spec in CHECKERS:
            print(f"{spec.code}  {spec.slug}: {spec.description}")
        return 0

    violations = check_tree(args.paths)

    if args.json:
        report = {
            "subject": [str(path) for path in args.paths],
            "checkers": [
                {"code": spec.code, "slug": spec.slug, "description": spec.description}
                for spec in CHECKERS
            ],
            "violations": [violation.to_dict() for violation in violations],
            "ok": not violations,
        }
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")

    if not args.quiet:
        for violation in violations:
            print(violation)
        n_files = sum(
            len(sorted(Path(p).rglob("*.py"))) if Path(p).is_dir() else 1
            for p in args.paths
        )
        status = "clean" if not violations else f"{len(violations)} violation(s)"
        print(f"checked {n_files} file(s): {status}")

    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
