"""AST contract checkers.

Each checker encodes one repository contract as a static check over Python
source (stdlib ``ast`` only — no third-party dependency, so the suite runs
in every environment the tests run in):

``RC101 rng-construction-outside-rng-module``
    ``numpy.random`` generators are constructed in exactly one place,
    :mod:`repro.utils.rng` (``ensure_rng`` / ``spawn_streams`` /
    ``spawn_child`` are the entry points).  Constructing a generator
    anywhere else forks the seeding discipline that makes campaigns and
    Monte-Carlo runs bitwise reproducible.

``RC102 global-or-time-seeded-rng``
    No calls to the global-state ``numpy.random.*`` / stdlib ``random.*``
    distribution functions (hidden process-wide state), and no RNG seeded
    from wall-clock time — both break run-to-run reproducibility silently.

``RC103 missing-value-twin``
    Every ``*_grad_v`` analytic-Jacobian device function must have a
    same-module value twin (``foo_grad_v`` next to ``foo``), so the
    finite-difference cross-checks in the tests always have both halves.

``RC104 unordered-set-iteration``
    No iteration over ``set``/``frozenset`` expressions feeding
    order-sensitive sinks (loops, ``sum``, ``list``, ``join``, executor
    fan-out): float reductions in set order are nondeterministic across
    runs because ``PYTHONHASHSEED`` perturbs string hashing.  Wrap in
    ``sorted(...)`` to fix.  (Dict iteration is insertion-ordered and
    therefore allowed.)

``RC105 float-downcast``
    No float32/float16 dtypes in the ``device``/``spice`` numerics: leakage
    component magnitudes span ~1e-12..1e-5 A and the solver tolerances sit
    at 1e-11 V, far below float32 resolution.

``RC106 swallowed-failure``
    In the execution-critical paths (``engine/``, ``service/``,
    ``resilience/``) no broad exception handler — bare ``except``,
    ``except Exception``/``BaseException``, or any handler catching
    ``BrokenProcessPool`` — may silently discard the failure (a body of
    only ``pass``/``continue``/docstring).  A swallowed worker death or
    batch error turns a recoverable fault into silently wrong or hanging
    results; handle it (retry, release waiters, degrade) or re-raise.

A violating line can be suppressed with a trailing
``# contract: allow(RC104)`` comment naming the code.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: numpy.random generator/bit-generator constructors (RC101).
_RNG_CONSTRUCTORS = frozenset(
    f"numpy.random.{name}"
    for name in (
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    )
)

#: Global-state RNG entry points (RC102): process-wide hidden state.
_GLOBAL_STATE_RNG = frozenset(
    f"numpy.random.{name}"
    for name in (
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "bytes",
        "normal",
        "standard_normal",
        "uniform",
        "choice",
        "shuffle",
        "permutation",
        "beta",
        "binomial",
        "exponential",
        "gamma",
        "lognormal",
        "poisson",
    )
) | frozenset(
    f"random.{name}"
    for name in (
        "seed",
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
    )
)

#: Wall-clock sources that must never seed an RNG (RC102).
_TIME_SOURCES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    }
)

#: Order-sensitive sinks whose arguments must not be set expressions (RC104).
_ORDER_SENSITIVE_CALLS = frozenset(
    {"enumerate", "zip", "sum", "list", "tuple", "map", "reversed"}
)

#: Order-sensitive *method* names (``", ".join(...)``, ``executor.map``).
_ORDER_SENSITIVE_METHODS = frozenset({"join", "map"})

#: Banned reduced-precision float dtypes (RC105).
_DOWNCAST_DTYPES = frozenset(
    {"numpy.float32", "numpy.float16", "numpy.half", "numpy.single"}
)
_DOWNCAST_STRINGS = frozenset({"float32", "float16", "f4", "f2", "half", "single"})

_ALLOW_RE = re.compile(r"#\s*contract:\s*allow\(([A-Z0-9, ]+)\)")


@dataclass(frozen=True)
class Violation:
    """One contract violation: code, message and source location."""

    code: str
    message: str
    path: str
    line: int

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
        }


@dataclass(frozen=True)
class CheckerSpec:
    """Registry entry of one contract checker."""

    code: str
    slug: str
    description: str
    applies: Callable[[str], bool]
    run: Callable[[ast.Module, dict[str, str], str], list[Violation]]


# --------------------------------------------------------------------- #
# name resolution through import aliases
# --------------------------------------------------------------------- #
def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted module path they alias.

    ``import numpy as np`` -> ``{"np": "numpy"}``; ``from numpy.random
    import default_rng as mk`` -> ``{"mk": "numpy.random.default_rng"}``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _dotted(node: ast.AST) -> str | None:
    """Return the dotted source text of a Name/Attribute chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _resolve(aliases: dict[str, str], node: ast.AST) -> str | None:
    """Resolve a Name/Attribute chain through the module's import aliases."""
    dotted = _dotted(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    full = aliases.get(head, head)
    return f"{full}.{rest}" if rest else full


def _calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


# --------------------------------------------------------------------- #
# RC101 — RNG construction outside utils/rng.py
# --------------------------------------------------------------------- #
def _is_rng_module(path: str) -> bool:
    return Path(path).as_posix().endswith("utils/rng.py")


def check_rng_construction(
    tree: ast.Module, aliases: dict[str, str], path: str
) -> list[Violation]:
    violations = []
    for call in _calls(tree):
        resolved = _resolve(aliases, call.func)
        if resolved in _RNG_CONSTRUCTORS:
            violations.append(
                Violation(
                    code="RC101",
                    message=(
                        f"{resolved} constructed outside repro/utils/rng.py; "
                        "route through ensure_rng()/spawn_streams()"
                    ),
                    path=path,
                    line=call.lineno,
                )
            )
    return violations


# --------------------------------------------------------------------- #
# RC102 — global-state or time-seeded RNG
# --------------------------------------------------------------------- #
def check_global_or_time_seeded_rng(
    tree: ast.Module, aliases: dict[str, str], path: str
) -> list[Violation]:
    violations = []
    for call in _calls(tree):
        resolved = _resolve(aliases, call.func)
        if resolved in _GLOBAL_STATE_RNG:
            violations.append(
                Violation(
                    code="RC102",
                    message=(
                        f"{resolved} uses hidden process-global RNG state; "
                        "take an explicit numpy Generator instead"
                    ),
                    path=path,
                    line=call.lineno,
                )
            )
            continue
        if resolved in _RNG_CONSTRUCTORS or resolved in (
            "repro.utils.rng.ensure_rng",
            "ensure_rng",
        ):
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                for sub in ast.walk(arg):
                    if (
                        isinstance(sub, ast.Call)
                        and _resolve(aliases, sub.func) in _TIME_SOURCES
                    ):
                        violations.append(
                            Violation(
                                code="RC102",
                                message=(
                                    "RNG seeded from wall-clock time; runs "
                                    "become unreproducible — pass an "
                                    "explicit seed"
                                ),
                                path=path,
                                line=call.lineno,
                            )
                        )
    return violations


# --------------------------------------------------------------------- #
# RC103 — *_grad_v without a same-module value twin
# --------------------------------------------------------------------- #
def check_grad_value_twins(
    tree: ast.Module, aliases: dict[str, str], path: str
) -> list[Violation]:
    functions: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.setdefault(node.name, node.lineno)
    violations = []
    for name, lineno in sorted(functions.items(), key=lambda item: item[1]):
        if name.endswith("_grad_v"):
            twin = name[: -len("_grad_v")]
            if twin not in functions:
                violations.append(
                    Violation(
                        code="RC103",
                        message=(
                            f"gradient function {name!r} has no same-module "
                            f"value twin {twin!r} (needed by the "
                            "finite-difference cross-checks)"
                        ),
                        path=path,
                        line=lineno,
                    )
                )
    return violations


# --------------------------------------------------------------------- #
# RC104 — set iteration feeding order-sensitive code
# --------------------------------------------------------------------- #
def _is_set_expression(aliases: dict[str, str], node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        resolved = _resolve(aliases, node.func)
        return resolved in ("set", "frozenset")
    return False


def check_unordered_set_iteration(
    tree: ast.Module, aliases: dict[str, str], path: str
) -> list[Violation]:
    violations = []

    def flag(node: ast.AST, context: str) -> None:
        violations.append(
            Violation(
                code="RC104",
                message=(
                    f"set expression {context}: iteration order is "
                    "hash-seed dependent; wrap in sorted(...) for a "
                    "deterministic order"
                ),
                path=path,
                line=getattr(node, "lineno", 0),
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expression(aliases, node.iter):
                flag(node.iter, "iterated by a for loop")
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                if _is_set_expression(aliases, generator.iter):
                    flag(generator.iter, "iterated by a comprehension")
        elif isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            method = (
                node.func.attr if isinstance(node.func, ast.Attribute) else None
            )
            if name in _ORDER_SENSITIVE_CALLS or method in _ORDER_SENSITIVE_METHODS:
                sink = name or f".{method}"
                for arg in node.args:
                    if _is_set_expression(aliases, arg):
                        flag(arg, f"fed to order-sensitive {sink}(...)")
    return violations


# --------------------------------------------------------------------- #
# RC105 — float32/float16 downcasts in the numerics
# --------------------------------------------------------------------- #
def _is_numerics_path(path: str) -> bool:
    posix = Path(path).as_posix()
    return "/device/" in posix or "/spice/" in posix


def check_float_downcasts(
    tree: ast.Module, aliases: dict[str, str], path: str
) -> list[Violation]:
    violations = []

    def flag(node: ast.AST, what: str) -> None:
        violations.append(
            Violation(
                code="RC105",
                message=(
                    f"{what} in device/spice numerics; leakage magnitudes "
                    "and solver tolerances need float64"
                ),
                path=path,
                line=getattr(node, "lineno", 0),
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            resolved = _resolve(aliases, node)
            if resolved in _DOWNCAST_DTYPES:
                flag(node, f"{resolved} dtype")
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value in _DOWNCAST_STRINGS
            ):
                flag(node, f"astype({node.args[0].value!r}) downcast")
            for keyword in node.keywords:
                if (
                    keyword.arg == "dtype"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value in _DOWNCAST_STRINGS
                ):
                    flag(keyword.value, f"dtype={keyword.value.value!r} downcast")
    return violations


# --------------------------------------------------------------------- #
# RC106 — silently swallowed failures in execution-critical paths
# --------------------------------------------------------------------- #

#: Exception names a handler must never both catch broadly and discard.
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})
_POOL_EXCEPTIONS = frozenset(
    {
        "BrokenProcessPool",
        "concurrent.futures.process.BrokenProcessPool",
        "concurrent.futures.BrokenExecutor",
        "BrokenExecutor",
    }
)


def _is_resilient_path(path: str) -> bool:
    posix = Path(path).as_posix()
    return any(
        part in posix for part in ("/engine/", "/service/", "/resilience/")
    )


def _handler_exception_names(
    aliases: dict[str, str], handler: ast.ExceptHandler
) -> list[str]:
    """Return the resolved dotted names a handler catches ('' for bare)."""
    if handler.type is None:
        return [""]
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names = []
    for node in types:
        resolved = _resolve(aliases, node)
        if resolved is not None:
            names.append(resolved)
    return names


def _is_trivial_body(body: list[ast.stmt]) -> bool:
    """True when a handler body discards the failure without acting on it."""
    return all(
        isinstance(stmt, (ast.Pass, ast.Continue))
        or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
        for stmt in body
    )


def check_swallowed_failures(
    tree: ast.Module, aliases: dict[str, str], path: str
) -> list[Violation]:
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        names = _handler_exception_names(aliases, node)
        broad = any(
            name == "" or name in _BROAD_EXCEPTIONS or name in _POOL_EXCEPTIONS
            for name in names
        )
        if broad and _is_trivial_body(node.body):
            caught = ", ".join(name or "<bare>" for name in names)
            violations.append(
                Violation(
                    code="RC106",
                    message=(
                        f"broad exception handler ({caught}) silently "
                        "discards the failure in an execution-critical "
                        "path; handle it (retry, release waiters, degrade) "
                        "or re-raise"
                    ),
                    path=path,
                    line=node.lineno,
                )
            )
    return violations


#: The checker registry.  Codes are stable; tooling and tests key on them.
CHECKERS: tuple[CheckerSpec, ...] = (
    CheckerSpec(
        code="RC101",
        slug="rng-construction-outside-rng-module",
        description="numpy.random generators are built only in utils/rng.py.",
        applies=lambda path: not _is_rng_module(path),
        run=check_rng_construction,
    ),
    CheckerSpec(
        code="RC102",
        slug="global-or-time-seeded-rng",
        description="No global-state numpy.random/random calls; no time seeds.",
        applies=lambda path: True,
        run=check_global_or_time_seeded_rng,
    ),
    CheckerSpec(
        code="RC103",
        slug="missing-value-twin",
        description="Every *_grad_v function has a same-module value twin.",
        applies=lambda path: True,
        run=check_grad_value_twins,
    ),
    CheckerSpec(
        code="RC104",
        slug="unordered-set-iteration",
        description="No set iteration feeding order-sensitive reductions.",
        applies=lambda path: True,
        run=check_unordered_set_iteration,
    ),
    CheckerSpec(
        code="RC105",
        slug="float-downcast",
        description="No float32/float16 dtypes in device/spice numerics.",
        applies=_is_numerics_path,
        run=check_float_downcasts,
    ),
    CheckerSpec(
        code="RC106",
        slug="swallowed-failure",
        description=(
            "No silently swallowed broad/BrokenProcessPool exception "
            "handlers in engine/, service/, resilience/."
        ),
        applies=_is_resilient_path,
        run=check_swallowed_failures,
    ),
)


def _allowed_codes(source_lines: list[str], line: int) -> frozenset[str]:
    """Return the codes suppressed by a ``# contract: allow(...)`` comment."""
    if not 1 <= line <= len(source_lines):
        return frozenset()
    match = _ALLOW_RE.search(source_lines[line - 1])
    if not match:
        return frozenset()
    return frozenset(code.strip() for code in match.group(1).split(","))


def check_source(source: str, path: str = "<string>") -> list[Violation]:
    """Run every applicable checker over one source string."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                code="RC000",
                message=f"cannot parse: {exc.msg}",
                path=path,
                line=exc.lineno or 0,
            )
        ]
    aliases = _collect_aliases(tree)
    lines = source.splitlines()
    violations: list[Violation] = []
    for spec in CHECKERS:
        if not spec.applies(path):
            continue
        for violation in spec.run(tree, aliases, path):
            if violation.code in _allowed_codes(lines, violation.line):
                continue
            violations.append(violation)
    return sorted(violations, key=lambda v: (v.path, v.line, v.code))


def check_file(path: str | Path) -> list[Violation]:
    """Run every applicable checker over one file."""
    path = Path(path)
    return check_source(path.read_text(), str(path))


def check_tree(roots: Iterable[str | Path]) -> list[Violation]:
    """Run the checkers over every ``*.py`` file under ``roots``."""
    violations: list[Violation] = []
    for root in roots:
        root = Path(root)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            violations.extend(check_file(file))
    return violations
