"""Custom AST checkers encoding this repository's coding contracts.

These are the machine-checked versions of rules that used to live only in
review comments and test suites: RNG discipline (all generator construction
goes through ``repro.utils.rng``), determinism discipline (no iteration over
unordered sets feeding fan-out/reduction code), device-model discipline
(every ``*_grad_v`` Jacobian twin has a same-module value function) and
numeric-precision discipline (no silent float32 downcasts in the
``device``/``spice`` numerics).

Run them with ``python tools/lint/check_contracts.py src`` (the CI lint job
does exactly that and fails on any violation).
"""

from lint.contracts import (
    CHECKERS,
    CheckerSpec,
    Violation,
    check_file,
    check_source,
    check_tree,
)

__all__ = [
    "CHECKERS",
    "CheckerSpec",
    "Violation",
    "check_file",
    "check_source",
    "check_tree",
]
