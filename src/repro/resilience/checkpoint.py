"""Fingerprinted, atomic checkpoint/resume for chunked long-running work.

A crashed 10,000-sample Monte-Carlo run used to lose everything; with a
checkpoint it resumes from the last completed chunk and — because every
chunk re-runs from its original ``SeedSequence.spawn`` stream and the
engines are batch-composition invariant — finishes **bitwise identical**
to a run that never crashed.

Design follows the :mod:`repro.gates.cache` store idiom:

* **atomic publish**: every write goes to a process-unique temporary file
  and is ``rename``d into place (atomic on POSIX), so a reader — including
  a resuming run racing a dying one — only ever sees a complete file;
* **fingerprint guard**: the file carries a SHA-256 fingerprint of the
  *work definition* (circuit/task structure, options, RNG state token,
  chunk layout).  A resume under any other definition is **refused** with
  :class:`~repro.resilience.errors.StaleCheckpointError` — a stale
  checkpoint must never be silently folded into a run it cannot
  bitwise-complete;
* **graceful corruption fallback**: a torn or garbled file (see
  :func:`repro.resilience.faults.corrupt_file`) loads as *empty* with a
  :class:`~repro.resilience.errors.CheckpointCorruptWarning` — progress is
  lost, correctness is not.

The payload is a ``{chunk_index: result}`` dict serialized with
:mod:`pickle` — chunk results are numpy-backed dataclasses whose float
values must round-trip bitwise, which pickle guarantees.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import warnings
from pathlib import Path
from typing import Any, Mapping

# The canonicalizer of the characterization cache already knows how to
# walk the repo's dataclass/enum/array settings trees; checkpoint
# fingerprints cover the same kinds of objects.
from repro.gates.cache import _canonical
from repro.resilience.errors import CheckpointCorruptWarning, StaleCheckpointError

#: Format version written into every checkpoint file; older files are
#: treated as unreadable (graceful fallback), not silently reinterpreted.
CHECKPOINT_FORMAT_VERSION = 1


def checkpoint_fingerprint(payload: Mapping[str, Any]) -> str:
    """Return a stable hex digest of a checkpoint's work definition.

    ``payload`` should contain everything that can change a chunk result
    or the chunk layout: the task/circuit definition, solver and campaign
    options, the RNG state token (:func:`repro.utils.rng.rng_state_token`)
    and the chunk count/size.  Nested dataclasses/enums/tuples are
    canonicalized exactly like the characterization-cache fingerprint.
    """
    canonical = json.dumps(_canonical(dict(payload)), sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


class Checkpoint:
    """One on-disk checkpoint of a chunked campaign.

    Parameters
    ----------
    path:
        Checkpoint file location (parent directories are created).
    fingerprint:
        The work-definition digest (:func:`checkpoint_fingerprint`) this
        checkpoint belongs to.  ``load`` refuses any other fingerprint.
    interval:
        Publish to disk every ``interval`` newly recorded chunks (1 =
        after every chunk).  Recording is cheap; publishing costs one
        pickle + rename.
    """

    def __init__(
        self, path: str | Path, fingerprint: str, interval: int = 1
    ) -> None:
        if interval < 1:
            raise ValueError("interval must be at least 1")
        self.path = Path(path)
        self.fingerprint = str(fingerprint)
        self.interval = int(interval)
        self._completed: dict[int, Any] = {}
        self._unpublished = 0
        #: Counters surfaced in driver result metadata.
        self.publishes = 0
        self.corrupt_loads = 0

    # ------------------------------------------------------------------ #
    # resume side
    # ------------------------------------------------------------------ #
    def load(self) -> dict[int, Any]:
        """Return the completed chunks recorded on disk.

        Missing file → empty dict (fresh run).  Corrupt file → empty dict
        plus :class:`CheckpointCorruptWarning` (progress lost, correctness
        kept).  Fingerprint mismatch → :class:`StaleCheckpointError` (a
        different work definition must never be resumed).
        """
        if not self.path.exists():
            return {}
        try:
            payload = pickle.loads(self.path.read_bytes())
            if (
                not isinstance(payload, dict)
                or payload.get("format_version") != CHECKPOINT_FORMAT_VERSION
            ):
                raise ValueError("unrecognized checkpoint layout")
            stored_fingerprint = payload["fingerprint"]
            completed = payload["completed"]
            if not isinstance(completed, dict):
                raise ValueError("unrecognized checkpoint layout")
        except StaleCheckpointError:  # pragma: no cover - defensive
            raise
        except Exception as exc:
            self.corrupt_loads += 1
            warnings.warn(
                f"checkpoint {self.path} is unreadable ({type(exc).__name__}: "
                f"{exc}); starting from scratch",
                CheckpointCorruptWarning,
                stacklevel=2,
            )
            return {}
        if stored_fingerprint != self.fingerprint:
            raise StaleCheckpointError(
                f"checkpoint {self.path} was written for a different work "
                f"definition (stored fingerprint {stored_fingerprint[:16]}..., "
                f"current {self.fingerprint[:16]}...); refusing to resume — "
                "delete the file or rerun with the original configuration"
            )
        self._completed = {int(k): v for k, v in completed.items()}
        return dict(self._completed)

    # ------------------------------------------------------------------ #
    # record side
    # ------------------------------------------------------------------ #
    def record(self, chunk_index: int, result: Any) -> None:
        """Record one completed chunk; publish every ``interval`` records."""
        self._completed[int(chunk_index)] = result
        self._unpublished += 1
        if self._unpublished >= self.interval:
            self.publish()

    def publish(self) -> None:
        """Write the completed-chunk set to disk (atomic write + rename)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "completed": dict(self._completed),
        }
        tmp = self.path.with_suffix(f".tmp-{os.getpid()}")
        try:
            tmp.write_bytes(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
            tmp.replace(self.path)
        except OSError:
            # A checkpoint is an optimization, never a correctness
            # dependency: on disk-full/permission errors the run continues
            # uncheckpointed, leaving no partial file behind.
            tmp.unlink(missing_ok=True)
            return
        self.publishes += 1
        self._unpublished = 0

    def flush(self) -> None:
        """Publish only if chunks were recorded since the last publish."""
        if self._unpublished:
            self.publish()

    def complete(self) -> None:
        """Remove the checkpoint file — the run it guarded has finished."""
        self.path.unlink(missing_ok=True)

    @property
    def completed_chunks(self) -> int:
        """Return the number of chunks currently recorded."""
        return len(self._completed)
