"""Supervised process-pool execution with retries, deadlines and a ledger.

:class:`ResilientExecutor` is the hardened replacement for the bare
``ProcessPoolExecutor.map`` loops of the long-running drivers.  It keeps
their contract — an order-preserving map of picklable chunk tasks — and
adds the failure handling a production campaign needs:

* **worker death** (``BrokenProcessPool``: OOM kill, segfault, injected
  ``os._exit``): the pool is re-spawned and the affected chunks re-run;
* **chunk deadlines**: a watchdog condemns the pool when a chunk overruns
  its per-chunk deadline (hung solve, livelocked worker), terminates the
  stuck workers and re-runs the outstanding chunks on a fresh pool;
* **transient chunk errors**: bounded retries with exponential backoff
  whose jitter is drawn from :func:`repro.utils.rng.keyed_rng`-style
  spawned streams — never wall-clock-seeded (RC102), so even the retry
  *timing* is reproducible;
* **a retry ledger** (attempts, retried chunks, pool restarts, deadline
  expirations, give-ups) surfaced in the drivers' result metadata;
* **interrupt-safe teardown**: any error or ``KeyboardInterrupt`` shuts
  the pool down with ``cancel_futures=True`` so no worker keeps computing
  doomed chunks after the driver has given up.

**Bitwise-recovery invariant.**  A chunk is retried by re-pickling its
*original* payload — including its original ``SeedSequence.spawn``-derived
streams, which live in the parent untouched — so a crash-and-retry run
produces results bitwise identical to a clean run, which is bitwise
identical to the serial driver (the repo's standing chunking-invariance
contract).  The resilience tests assert this under every injected fault.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.resilience.checkpoint import Checkpoint
from repro.resilience.errors import ChunkRetryError
from repro.resilience.faults import FaultInjector
from repro.utils.rng import spawn_streams

#: Upper bound of one scheduler nap (seconds): the loop wakes at least this
#: often to poll deadlines even when no future completes.
_MAX_TICK_S = 0.05


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/deadline policy of one supervised execution.

    Attributes
    ----------
    max_attempts:
        Total attempts per chunk (first run + retries); exceeding it
        raises :class:`~repro.resilience.errors.ChunkRetryError`.
    backoff_base_s / backoff_factor / backoff_max_s:
        Exponential backoff before retry ``k`` (1-based):
        ``min(base * factor**(k-1), max)`` seconds.
    backoff_jitter:
        Fractional jitter: the backoff is scaled by ``1 + jitter * u`` with
        ``u`` drawn from the chunk's spawned jitter stream (uniform [0,1)).
        Deterministic for a given ``jitter_seed`` — never wall-clock.
    chunk_deadline_s:
        Per-chunk watchdog deadline measured from the chunk's submission
        to a free worker slot; ``None`` disables the watchdog.
    jitter_seed:
        Root seed of the per-chunk jitter streams.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    backoff_jitter: float = 0.25
    chunk_deadline_s: float | None = None
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_s < 0.0 or self.backoff_max_s < 0.0:
            raise ValueError("backoff durations must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")
        if self.chunk_deadline_s is not None and self.chunk_deadline_s <= 0.0:
            raise ValueError("chunk_deadline_s must be positive")

    def backoff_s(self, retry_number: int, jitter_draw: float) -> float:
        """Return the backoff before 1-based retry ``retry_number``."""
        base = min(
            self.backoff_base_s * self.backoff_factor ** (retry_number - 1),
            self.backoff_max_s,
        )
        return base * (1.0 + self.backoff_jitter * jitter_draw)


@dataclass
class RetryLedger:
    """What the supervisor had to do to finish one execution."""

    chunks: int = 0
    attempts: int = 0
    retries: int = 0
    retried_chunks: list[int] = field(default_factory=list)
    deadline_expirations: int = 0
    pool_restarts: int = 0
    gave_up: int = 0
    resumed_chunks: int = 0

    def note_retry(self, chunk_index: int) -> None:
        self.retries += 1
        if chunk_index not in self.retried_chunks:
            self.retried_chunks.append(chunk_index)

    def as_dict(self) -> dict[str, object]:
        """Return the ledger as plain JSON-able types (result metadata)."""
        return {
            "chunks": self.chunks,
            "attempts": self.attempts,
            "retries": self.retries,
            "retried_chunks": sorted(self.retried_chunks),
            "deadline_expirations": self.deadline_expirations,
            "pool_restarts": self.pool_restarts,
            "gave_up": self.gave_up,
            "resumed_chunks": self.resumed_chunks,
        }


def _supervised_chunk(
    fn: Callable[[Any], Any],
    item: Any,
    chunk_index: int,
    attempt: int,
    injector: FaultInjector | None,
) -> Any:
    """Worker-side shim: fire injected faults, then run the real chunk."""
    if injector is not None:
        injector.apply_chunk_faults(chunk_index, attempt)
    return fn(item)


@contextmanager
def interruptible_pool(
    max_workers: int, factory: Callable[..., Any] = ProcessPoolExecutor
) -> Iterator[Any]:
    """A process pool whose teardown never leaks doomed work.

    ``with ProcessPoolExecutor() as pool`` calls ``shutdown(wait=True)``
    on *every* exit — including ``KeyboardInterrupt`` — so queued chunks
    keep computing while the user waits for a traceback.  This wrapper
    cancels queued futures and skips the blocking join on the error path,
    and joins normally on success.
    """
    pool = factory(max_workers=max_workers)
    try:
        yield pool
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    else:
        pool.shutdown()


class ResilientExecutor:
    """Order-preserving supervised map of picklable chunks over a pool.

    Parameters
    ----------
    max_workers:
        Worker-process count of each pool incarnation.
    policy:
        Retry/backoff/deadline policy (default :class:`RetryPolicy`).
    injector:
        Optional deterministic :class:`FaultInjector`, shipped into the
        workers (tests and the resilience benchmark use it; production
        runs leave it ``None``).
    """

    def __init__(
        self,
        max_workers: int,
        policy: RetryPolicy | None = None,
        injector: FaultInjector | None = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = int(max_workers)
        self.policy = policy or RetryPolicy()
        self.injector = injector

    # ------------------------------------------------------------------ #
    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        checkpoint: Checkpoint | None = None,
        completed: Mapping[int, Any] | None = None,
    ) -> tuple[list[Any], RetryLedger]:
        """Run ``fn`` over every item; return (results in order, ledger).

        ``completed`` maps already-finished chunk indexes to their results
        (a checkpoint resume); those chunks are not re-run.  Each newly
        completed chunk is recorded to ``checkpoint`` (which publishes on
        its own interval).
        """
        items = list(items)
        n = len(items)
        ledger = RetryLedger(chunks=n)
        results: list[Any] = [None] * n
        done = [False] * n
        attempts = [0] * n
        last_error: list[BaseException | None] = [None] * n

        queue: deque[int] = deque()
        for index in range(n):
            if completed is not None and index in completed:
                results[index] = completed[index]
                done[index] = True
                ledger.resumed_chunks += 1
            else:
                queue.append(index)
        if not queue:
            return results, ledger

        jitter_streams = spawn_streams(self.policy.jitter_seed, n)
        retry_at = [0.0] * n  # monotonic time before which a chunk must wait
        deadline = self.policy.chunk_deadline_s
        inflight: dict[Future, tuple[int, float]] = {}
        pool = ProcessPoolExecutor(max_workers=self.max_workers)

        def submit(index: int) -> None:
            attempts[index] += 1
            ledger.attempts += 1
            future = pool.submit(
                _supervised_chunk,
                fn,
                items[index],
                index,
                attempts[index] - 1,
                self.injector,
            )
            expires = (
                time.monotonic() + deadline if deadline is not None else float("inf")
            )
            inflight[future] = (index, expires)

        def handle_failure(index: int, error: BaseException) -> None:
            """Schedule a retry with backoff, or give up loudly."""
            last_error[index] = error
            if attempts[index] >= self.policy.max_attempts:
                ledger.gave_up += 1
                raise ChunkRetryError(index, attempts[index], error) from error
            ledger.note_retry(index)
            draw = float(jitter_streams[index].random())
            retry_at[index] = time.monotonic() + self.policy.backoff_s(
                attempts[index], draw
            )
            queue.append(index)

        def restart_pool() -> None:
            nonlocal pool
            _condemn(pool)
            ledger.pool_restarts += 1
            pool = ProcessPoolExecutor(max_workers=self.max_workers)

        try:
            while queue or inflight:
                now = time.monotonic()
                # Fill free worker slots with runnable (backoff-expired)
                # chunks.  In-flight is capped at the worker count so the
                # deadline clock starts when a chunk can actually run.
                runnable = [i for i in queue if retry_at[i] <= now]
                while runnable and len(inflight) < self.max_workers:
                    index = runnable.pop(0)
                    queue.remove(index)
                    submit(index)

                if not inflight:
                    # Everything runnable is backing off; nap until the
                    # earliest retry time.
                    soonest = min(retry_at[i] for i in queue)
                    time.sleep(max(0.0, min(soonest - now, _MAX_TICK_S)))
                    continue

                timeout = _MAX_TICK_S
                if deadline is not None:
                    soonest_deadline = min(expiry for _, expiry in inflight.values())
                    timeout = max(0.0, min(timeout, soonest_deadline - now))
                finished, _ = wait(
                    list(inflight), timeout=timeout, return_when=FIRST_COMPLETED
                )

                broken = False
                for future in finished:
                    index, _ = inflight.pop(future)
                    error = future.exception()
                    if error is None:
                        results[index] = future.result()
                        done[index] = True
                        if checkpoint is not None:
                            checkpoint.record(index, results[index])
                    elif isinstance(error, BrokenProcessPool):
                        # A worker died; every sibling future of this pool
                        # incarnation fails the same way — all are retried.
                        broken = True
                        handle_failure(index, error)
                    else:
                        handle_failure(index, error)

                if deadline is not None and not broken:
                    now = time.monotonic()
                    expired = [
                        future
                        for future, (_, expiry) in inflight.items()
                        if now >= expiry
                    ]
                    if expired:
                        # The stuck workers cannot be preempted one by one:
                        # condemn the whole pool, refund the innocent
                        # bystander chunks (their attempt never really ran
                        # to failure) and retry the overrunning ones.
                        for future in expired:
                            index, _ = inflight.pop(future)
                            ledger.deadline_expirations += 1
                            handle_failure(
                                index,
                                TimeoutError(
                                    f"chunk {index} exceeded its "
                                    f"{deadline:.3g}s deadline"
                                ),
                            )
                        for future, (index, _) in list(inflight.items()):
                            attempts[index] -= 1
                            ledger.attempts -= 1
                            queue.appendleft(index)
                        inflight.clear()
                        broken = True

                if broken:
                    for future, (index, _) in list(inflight.items()):
                        # Siblings of a broken pool fail with the same
                        # BrokenProcessPool once collected; retry them
                        # without waiting for the collection.
                        if not future.done():
                            attempts[index] -= 1
                            ledger.attempts -= 1
                            queue.appendleft(index)
                        else:
                            error = future.exception()
                            if error is None:
                                results[index] = future.result()
                                done[index] = True
                                if checkpoint is not None:
                                    checkpoint.record(index, results[index])
                            else:
                                handle_failure(index, error)
                    inflight.clear()
                    restart_pool()
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown()

        if checkpoint is not None:
            checkpoint.flush()
        return results, ledger


def _condemn(pool: ProcessPoolExecutor) -> None:
    """Abandon a pool whose workers are dead or stuck.

    ``shutdown(wait=False, cancel_futures=True)`` stops new work; stuck
    workers are then terminated outright (a hung chunk would otherwise
    keep a CPU pinned until process exit).  Termination uses the pool's
    process table when the running interpreter exposes it — a best-effort
    cleanup, never a correctness dependency.
    """
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, AttributeError, ValueError):
            # Already exited (or an interpreter without the internal
            # table); the shutdown above remains the portable cleanup.
            continue
