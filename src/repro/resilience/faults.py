"""Deterministic, seed-driven fault injection for the resilience layer.

Fault tolerance that is only exercised by real outages is fault tolerance
that has never been tested.  This module injects the failure modes the
resilience layer defends against — on purpose, reproducibly:

* ``kill-worker``: the worker process hosting a chunk calls ``os._exit``
  mid-chunk, which the parent observes as a ``BrokenProcessPool`` (the
  exact signature of an OOM-killed or segfaulted worker);
* ``raise``: the chunk raises :class:`~repro.resilience.errors.InjectedFault`
  from inside its evaluation (a poisoned input, a transient numerical
  failure);
* ``stall``: the chunk sleeps past its deadline before completing, so the
  watchdog must fire (a hung solve, a livelocked worker);
* ``corrupt-checkpoint``: a checkpoint file is truncated/garbled on disk
  (a torn write, bit rot) — applied by :func:`corrupt_file`, consumed by
  the checkpoint loader's graceful fallback.

Decisions are **deterministic**: explicit per-chunk injection via
:attr:`FaultSpec.chunks`, or rate-based injection whose coin flips come
from :func:`repro.utils.rng.keyed_rng` streams keyed by
``(seed, kind, chunk, attempt)`` — never from wall-clock or process-global
state, so a failing resilience test replays exactly.  By default a fault
fires only on attempt 0 of a chunk (``max_attempt=1``): the retry then
succeeds, which is how the bitwise-recovery tests isolate "recovered"
from "kept failing".
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.resilience.errors import InjectedFault
from repro.utils.rng import keyed_rng

#: Fault kinds understood by the injector (and the executor's chunk shim).
FAULT_KINDS = ("kill-worker", "raise", "stall", "corrupt-checkpoint")


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind's injection plan.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    chunks:
        Explicit chunk indexes to inject into; ``None`` uses ``rate``.
    rate:
        Per-(chunk, attempt) injection probability when ``chunks`` is
        ``None``, decided by a ``keyed_rng(seed, kind, chunk, attempt)``
        draw — deterministic for a given injector seed.
    max_attempt:
        Inject only while ``attempt < max_attempt`` (default 1: first
        attempt fails, retries run clean).  Raise it to test give-up
        behavior.
    stall_s:
        Sleep duration of a ``stall`` fault (ignored by other kinds).
    """

    kind: str
    chunks: frozenset[int] | None = None
    rate: float = 0.0
    max_attempt: int = 1
    stall_s: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.max_attempt < 1:
            raise ValueError("max_attempt must be at least 1")
        if self.stall_s < 0.0:
            raise ValueError("stall_s must be non-negative")
        if self.chunks is not None:
            object.__setattr__(self, "chunks", frozenset(int(c) for c in self.chunks))


@dataclass(frozen=True)
class FaultInjector:
    """Deterministic fault oracle shipped into workers alongside the task.

    Picklable (frozen dataclasses of plain values), so the supervised pool
    executor can send it to worker processes; the decision function is
    pure, so the parent and the workers agree on what fires where.
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    def decide(self, kind: str, chunk_index: int, attempt: int) -> bool:
        """Return whether fault ``kind`` fires for (chunk, attempt)."""
        if kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {kind!r}")
        for spec in self.specs:
            if spec.kind != kind or attempt >= spec.max_attempt:
                continue
            if spec.chunks is not None:
                if int(chunk_index) in spec.chunks:
                    return True
                continue
            if spec.rate > 0.0:
                draw = keyed_rng(self.seed, kind, int(chunk_index), int(attempt))
                if float(draw.random()) < spec.rate:
                    return True
        return False

    def stall_duration(self, chunk_index: int) -> float:
        """Return the stall sleep configured for ``chunk_index``."""
        for spec in self.specs:
            if spec.kind == "stall":
                return spec.stall_s
        return 0.0

    def apply_chunk_faults(self, chunk_index: int, attempt: int) -> None:
        """Fire any chunk-level faults for (chunk, attempt), in-worker.

        Called by the executor's chunk shim *inside the worker process*
        before the real work runs.  ``kill-worker`` hard-exits the process
        (the parent sees ``BrokenProcessPool``); ``raise`` raises
        :class:`InjectedFault`; ``stall`` sleeps, then lets the chunk run
        to completion — past its deadline, so the watchdog's retry races a
        straggler that *will* eventually finish, exactly the ambiguity a
        real hung-then-recovered worker presents.
        """
        if self.decide("kill-worker", chunk_index, attempt):
            os._exit(17)
        if self.decide("stall", chunk_index, attempt):
            time.sleep(self.stall_duration(chunk_index))
        if self.decide("raise", chunk_index, attempt):
            raise InjectedFault(
                f"injected failure in chunk {chunk_index} (attempt {attempt})"
            )


def corrupt_file(path: str | Path, mode: str = "truncate") -> None:
    """Corrupt an on-disk file in place (checkpoint fault injection).

    ``mode="truncate"`` keeps only the first half of the payload (a torn
    write); ``mode="garble"`` flips bytes in the middle (bit rot).  Both
    leave a file that *exists* but cannot be loaded, which is the case the
    checkpoint loader's graceful fallback must survive.
    """
    path = Path(path)
    payload = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(payload[: len(payload) // 2])
    elif mode == "garble":
        garbled = bytearray(payload)
        for offset in range(len(garbled) // 3, min(len(garbled), len(garbled) // 3 + 16)):
            garbled[offset] ^= 0xFF
        path.write_bytes(bytes(garbled))
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
