"""Exception and warning types of the resilience layer.

Centralised so every layer — the supervised pool executor, the checkpoint
store and the hardened service front-end — raises the same vocabulary and
callers can catch one module's types instead of fishing exceptions out of
``concurrent.futures`` internals.
"""

from __future__ import annotations


class DeadlineExceeded(TimeoutError):
    """A request's deadline expired before its result became available.

    Raised to the *caller* only: the batch the request joined keeps
    running and every other member still receives its result.  Subclasses
    :class:`TimeoutError` so generic timeout handling keeps working.
    """


class ServiceOverloaded(RuntimeError):
    """Admission control rejected a request because the service is full.

    Load shedding is explicit: instead of letting requests pile up in an
    unbounded queue (growing latency for everyone until the process dies),
    the service refuses new work the moment its bounded in-flight budget is
    exhausted.  Callers should back off and retry.
    """


class ChunkRetryError(RuntimeError):
    """A supervised chunk kept failing after every allowed retry.

    Carries the chunk index and the last underlying error (as
    ``__cause__``), so the caller knows exactly which unit of work to
    investigate.
    """

    def __init__(self, chunk_index: int, attempts: int, last_error: BaseException):
        self.chunk_index = int(chunk_index)
        self.attempts = int(attempts)
        super().__init__(
            f"chunk {chunk_index} failed on all {attempts} attempts; "
            f"last error: {type(last_error).__name__}: {last_error}"
        )


class StaleCheckpointError(ValueError):
    """A checkpoint's fingerprint does not match the current run.

    The fingerprint covers everything that can change the results — the
    work definition (circuit/task/options), the RNG state and the chunking
    — so a stale checkpoint is *refused* loudly instead of silently
    resumed into a run it cannot bitwise-complete.
    """


class CheckpointCorruptWarning(UserWarning):
    """A checkpoint file was unreadable (torn write, corruption).

    The run falls back to starting from scratch — the final result is
    unchanged, only the saved progress is lost — and this warning names
    the file so operators can investigate the storage.
    """


class InjectedFault(RuntimeError):
    """An error raised on purpose by the deterministic fault injector."""
