"""Resilience layer: supervised pools, checkpoints, deadlines, fault injection.

One package holds everything the long-running drivers need to survive the
failures a real campaign meets — worker death, hung chunks, transient
errors, process crashes, torn checkpoint writes — while preserving the
repo's standing bitwise-reproducibility contract: a run that crashed,
retried, resumed or degraded finishes with exactly the bytes a clean
serial run produces.

* :class:`ResilientExecutor` — supervised process-pool map with retries,
  backoff, deadlines and a :class:`RetryLedger` (``executor``);
* :class:`Checkpoint` — fingerprinted atomic checkpoint/resume
  (``checkpoint``);
* :class:`FaultInjector` — deterministic seed-driven fault injection
  (``faults``);
* the shared exception vocabulary (``errors``).

Drivers take one :class:`ResilienceOptions` bundle instead of five loose
keyword arguments.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    Checkpoint,
    checkpoint_fingerprint,
)
from repro.resilience.errors import (
    CheckpointCorruptWarning,
    ChunkRetryError,
    DeadlineExceeded,
    InjectedFault,
    ServiceOverloaded,
    StaleCheckpointError,
)
from repro.resilience.executor import (
    ResilientExecutor,
    RetryLedger,
    RetryPolicy,
    interruptible_pool,
)
from repro.resilience.faults import FAULT_KINDS, FaultInjector, FaultSpec, corrupt_file

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "Checkpoint",
    "CheckpointCorruptWarning",
    "ChunkRetryError",
    "DeadlineExceeded",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "ResilienceOptions",
    "ResilientExecutor",
    "RetryLedger",
    "RetryPolicy",
    "ServiceOverloaded",
    "StaleCheckpointError",
    "checkpoint_fingerprint",
    "corrupt_file",
    "interruptible_pool",
]


@dataclass(frozen=True)
class ResilienceOptions:
    """Resilience configuration a long-running driver accepts as one bundle.

    Attributes
    ----------
    policy:
        Retry/backoff/deadline policy of the supervised pool.
    injector:
        Optional deterministic fault injector (tests and the resilience
        benchmark; production runs leave it ``None``).
    checkpoint_path:
        Where to persist completed chunks; ``None`` disables
        checkpointing.
    checkpoint_interval:
        Publish the checkpoint every this many completed chunks.
    resume:
        Load ``checkpoint_path`` before running and skip its completed
        chunks.  A fingerprint mismatch raises
        :class:`StaleCheckpointError`; requires ``checkpoint_path``.
    keep_checkpoint:
        Leave the checkpoint file in place after a successful run
        (default: remove it, since the run it guarded has finished).
    """

    policy: RetryPolicy | None = None
    injector: FaultInjector | None = None
    checkpoint_path: str | Path | None = None
    checkpoint_interval: int = 1
    resume: bool = False
    keep_checkpoint: bool = False

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be at least 1")
        if self.resume and self.checkpoint_path is None:
            raise ValueError("resume=True requires a checkpoint_path")

    def executor(self, max_workers: int) -> ResilientExecutor:
        """Return the supervised executor this bundle configures."""
        return ResilientExecutor(
            max_workers, policy=self.policy, injector=self.injector
        )

    def checkpoint(self, fingerprint: str) -> Checkpoint | None:
        """Return the checkpoint for ``fingerprint``, or ``None``."""
        if self.checkpoint_path is None:
            return None
        return Checkpoint(
            self.checkpoint_path, fingerprint, interval=self.checkpoint_interval
        )
