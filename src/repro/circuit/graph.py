"""Graph algorithms over gate-level circuits.

The estimation algorithm of the paper visits gates in topological order
(Fig. 13, step "Topologically sort the nodes in G"); levelization and fanout
statistics are additionally used by the synthetic benchmark generators and by
the experiment reports.
"""

from __future__ import annotations

from collections import deque

import networkx as nx

from repro.circuit.netlist import Circuit


def _gate_dependencies(circuit: Circuit) -> dict[str, list[str]]:
    """Return, per gate, the list of gate names driving its inputs."""
    dependencies: dict[str, list[str]] = {}
    for gate in circuit.gates.values():
        predecessors = []
        for net in gate.inputs:
            driver = circuit.driver_of(net)
            if driver is not None:
                predecessors.append(driver)
        dependencies[gate.name] = predecessors
    return dependencies


def topological_order(circuit: Circuit) -> list[str]:
    """Return gate names in topological order (Kahn's algorithm).

    Raises ``ValueError`` if the circuit contains a combinational cycle.
    """
    dependencies = _gate_dependencies(circuit)
    indegree = {name: len(preds) for name, preds in dependencies.items()}
    successors: dict[str, list[str]] = {name: [] for name in dependencies}
    for name, preds in dependencies.items():
        for pred in preds:
            successors[pred].append(name)

    ready = deque(
        name for name in circuit.gates if indegree[name] == 0
    )
    order: list[str] = []
    while ready:
        name = ready.popleft()
        order.append(name)
        for succ in successors[name]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if len(order) != len(circuit.gates):
        unresolved = sorted(set(circuit.gates) - set(order))
        raise ValueError(
            f"combinational cycle detected involving gates: {unresolved[:10]}"
        )
    return order


def levelize(circuit: Circuit) -> dict[str, int]:
    """Return the logic level of each gate (longest distance from any PI).

    Primary-input-driven gates are level 0; every other gate's level is one
    more than the maximum level of its driving gates.
    """
    levels: dict[str, int] = {}
    dependencies = _gate_dependencies(circuit)
    for name in topological_order(circuit):
        preds = dependencies[name]
        if not preds:
            levels[name] = 0
        else:
            levels[name] = 1 + max(levels[pred] for pred in preds)
    return levels


def logic_depth(circuit: Circuit) -> int:
    """Return the number of logic levels of the circuit (0 for an empty one)."""
    levels = levelize(circuit)
    return (max(levels.values()) + 1) if levels else 0


def fanout_histogram(circuit: Circuit) -> dict[int, int]:
    """Return a histogram mapping fanout count to the number of nets with it.

    Only driven nets (primary inputs and gate outputs) are counted; the
    loading effect scales with exactly this distribution, which is why the
    synthetic ISCAS-like generators target a realistic fanout profile.
    """
    histogram: dict[int, int] = {}
    for net in circuit.nets():
        fanout = len(circuit.fanout_of(net))
        histogram[fanout] = histogram.get(fanout, 0) + 1
    return dict(sorted(histogram.items()))


def to_networkx(circuit: Circuit) -> "nx.DiGraph":
    """Return the gate-connectivity graph as a :class:`networkx.DiGraph`.

    Vertices are gate names (with ``gate_type`` attributes); an edge u -> v
    means a net driven by u feeds an input of v (with the net name as the
    ``net`` attribute).  Useful for ad-hoc analysis and plotting.
    """
    graph = nx.DiGraph(name=circuit.name)
    for gate in circuit.gates.values():
        graph.add_node(gate.name, gate_type=gate.gate_type.value)
    for gate in circuit.gates.values():
        for net in gate.inputs:
            driver = circuit.driver_of(net)
            if driver is not None:
                graph.add_edge(driver, gate.name, net=net)
    return graph


def reachable_from_inputs(circuit: Circuit) -> set[str]:
    """Return the set of gates reachable from the primary inputs.

    Gates outside this set have at least one input chain not rooted at a PI
    (which :meth:`Circuit.validate` flags); the function exists mainly for
    diagnostics on hand-written or imported netlists.
    """
    reachable_nets = set(circuit.primary_inputs)
    reachable_gates: set[str] = set()
    changed = True
    while changed:
        changed = False
        for gate in circuit.gates.values():
            if gate.name in reachable_gates:
                continue
            if all(net in reachable_nets for net in gate.inputs):
                reachable_gates.add(gate.name)
                reachable_nets.add(gate.output)
                changed = True
    return reachable_gates
