"""Benchmark-circuit generators.

The paper evaluates its circuit-level algorithm on six ISCAS89 benchmarks, an
8x8 multiplier and an 8-bit ALU (Fig. 12).  The original ISCAS89 netlists are
not redistributable inside this repository, so this module provides:

* **exact structural generators** for the arithmetic designs the paper also
  uses — :func:`array_multiplier` (the ``mult88`` circuit) and :func:`alu`
  (the ``alu88`` circuit) — built gate by gate from the library;
* **synthetic ISCAS-like circuits** (:func:`iscas_like`) with the published
  gate counts, a realistic gate-type mix, logic depth and fanout profile.
  The loading-effect results at circuit level depend on those topology
  statistics, not on the exact boolean functions, which is why the synthetic
  stand-ins preserve the paper's conclusions (see DESIGN.md);
* **pedagogical structures** (inverter chains, fanout stars, the loaded
  inverter cluster of Fig. 10) used by unit tests, examples and the
  device-level experiments.

All generators are deterministic for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.netlist import Circuit
from repro.gates.library import GateType, gate_spec
from repro.utils.rng import RngLike, ensure_rng

# --------------------------------------------------------------------------- #
# pedagogical structures
# --------------------------------------------------------------------------- #


def inverter_chain(length: int, name: str = "inv_chain") -> Circuit:
    """Return a chain of ``length`` inverters driven by one primary input."""
    if length < 1:
        raise ValueError("length must be at least 1")
    circuit = Circuit(name=name)
    previous = circuit.add_input("in")
    for index in range(length):
        output = f"n{index + 1}"
        circuit.add_gate(f"inv{index + 1}", GateType.INV, [previous], output)
        previous = output
    circuit.add_output(previous)
    return circuit


def fanout_star(fanout: int, name: str = "fanout_star") -> Circuit:
    """Return one driver inverter driving ``fanout`` load inverters.

    This is the elementary loading experiment: the driver's output net sees
    the summed gate-tunneling current of ``fanout`` receivers.
    """
    if fanout < 1:
        raise ValueError("fanout must be at least 1")
    circuit = Circuit(name=name)
    circuit.add_input("in")
    circuit.add_gate("driver", GateType.INV, ["in"], "net_drv")
    for index in range(fanout):
        output = f"load_out{index}"
        circuit.add_gate(f"load{index}", GateType.INV, ["net_drv"], output)
        circuit.add_output(output)
    return circuit


def loaded_inverter_cluster(
    input_loads: int = 6,
    output_loads: int = 6,
    name: str = "loaded_inverter",
) -> Circuit:
    """Return the Fig. 10 structure: an inverter with input and output loading.

    A driver inverter ``D`` drives net ``in_g``; the inverter under study
    ``G`` and ``input_loads`` additional inverters receive ``in_g`` (input
    loading of G), and ``output_loads`` inverters receive G's output net
    ``out_g`` (output loading of G).
    """
    if input_loads < 0 or output_loads < 0:
        raise ValueError("load counts must be non-negative")
    circuit = Circuit(name=name)
    circuit.add_input("in")
    circuit.add_gate("drv", GateType.INV, ["in"], "in_g")
    circuit.add_gate("g", GateType.INV, ["in_g"], "out_g")
    circuit.add_output("out_g")
    for index in range(input_loads):
        net = f"inload_out{index}"
        circuit.add_gate(f"inload{index}", GateType.INV, ["in_g"], net)
        circuit.add_output(net)
    for index in range(output_loads):
        net = f"outload_out{index}"
        circuit.add_gate(f"outload{index}", GateType.INV, ["out_g"], net)
        circuit.add_output(net)
    return circuit


def nand_tree(depth: int, name: str = "nand_tree") -> Circuit:
    """Return a balanced binary tree of NAND2 gates with ``2**depth`` inputs."""
    if depth < 1:
        raise ValueError("depth must be at least 1")
    circuit = Circuit(name=name)
    current = [circuit.add_input(f"in{i}") for i in range(2**depth)]
    level = 0
    while len(current) > 1:
        level += 1
        next_level = []
        for index in range(0, len(current), 2):
            output = f"l{level}_n{index // 2}"
            circuit.add_gate(
                f"nand_l{level}_{index // 2}",
                GateType.NAND2,
                [current[index], current[index + 1]],
                output,
            )
            next_level.append(output)
        current = next_level
    circuit.add_output(current[0])
    return circuit


# --------------------------------------------------------------------------- #
# arithmetic blocks (exact designs)
# --------------------------------------------------------------------------- #


def _half_adder(circuit: Circuit, a: str, b: str, prefix: str) -> tuple[str, str]:
    """Add a half adder; return (sum, carry) net names."""
    sum_net = f"{prefix}_s"
    carry_net = f"{prefix}_c"
    circuit.add_gate(f"{prefix}_xor", GateType.XOR2, [a, b], sum_net)
    circuit.add_gate(f"{prefix}_and", GateType.AND2, [a, b], carry_net)
    return sum_net, carry_net


def _full_adder(
    circuit: Circuit, a: str, b: str, cin: str, prefix: str
) -> tuple[str, str]:
    """Add a full adder; return (sum, carry-out) net names."""
    axb = f"{prefix}_axb"
    circuit.add_gate(f"{prefix}_xor1", GateType.XOR2, [a, b], axb)
    sum_net = f"{prefix}_s"
    circuit.add_gate(f"{prefix}_xor2", GateType.XOR2, [axb, cin], sum_net)
    t1 = f"{prefix}_t1"
    circuit.add_gate(f"{prefix}_and1", GateType.AND2, [a, b], t1)
    t2 = f"{prefix}_t2"
    circuit.add_gate(f"{prefix}_and2", GateType.AND2, [axb, cin], t2)
    carry_net = f"{prefix}_c"
    circuit.add_gate(f"{prefix}_or", GateType.OR2, [t1, t2], carry_net)
    return sum_net, carry_net


def _ripple_adder(
    circuit: Circuit,
    a_bits: list[str],
    b_bits: list[str],
    prefix: str,
    cin: str | None = None,
) -> tuple[list[str], str]:
    """Add a ripple-carry adder; return (sum bits LSB-first, carry-out)."""
    if len(a_bits) != len(b_bits):
        raise ValueError("operand widths differ")
    sums: list[str] = []
    carry = cin
    for index, (a, b) in enumerate(zip(a_bits, b_bits)):
        stage = f"{prefix}_fa{index}"
        if carry is None:
            sum_net, carry = _half_adder(circuit, a, b, stage)
        else:
            sum_net, carry = _full_adder(circuit, a, b, carry, stage)
        sums.append(sum_net)
    return sums, carry


def array_multiplier(width: int = 8, name: str | None = None) -> Circuit:
    """Return an unsigned ``width x width`` array multiplier (``mult88``).

    Partial products are formed with AND2 gates and accumulated row by row
    with ripple-carry adders — the classic carry-propagate array structure.
    The product bits ``p0 .. p(2*width-1)`` are the primary outputs.
    """
    if width < 2:
        raise ValueError("width must be at least 2")
    circuit = Circuit(name=name or f"mult{width}{width}")
    a_bits = [circuit.add_input(f"a{i}") for i in range(width)]
    b_bits = [circuit.add_input(f"b{i}") for i in range(width)]

    def partial_products(row: int) -> list[str]:
        nets = []
        for column in range(width):
            net = f"pp_{row}_{column}"
            circuit.add_gate(
                f"ppand_{row}_{column}",
                GateType.AND2,
                [a_bits[column], b_bits[row]],
                net,
            )
            nets.append(net)
        return nets

    product: list[str] = []
    accumulator = partial_products(0)
    product.append(accumulator[0])
    accumulator = accumulator[1:]

    for row in range(1, width):
        row_pp = partial_products(row)
        overlap = len(accumulator)
        sums, carry = _ripple_adder(
            circuit, row_pp[:overlap], accumulator, f"row{row}"
        )
        if overlap < width:
            # The row still has a partial-product bit above the accumulator;
            # it absorbs the carry through a half adder.
            top_sum, top_carry = _half_adder(
                circuit, row_pp[overlap], carry, f"row{row}_top"
            )
            new_top = [top_sum, top_carry]
        else:
            new_top = [carry]
        product.append(sums[0])
        accumulator = sums[1:] + new_top

    product.extend(accumulator)
    for net in product:
        circuit.add_output(net)
    return circuit


def _mux4(
    circuit: Circuit,
    d0: str,
    d1: str,
    d2: str,
    d3: str,
    s0: str,
    s1: str,
    s0_n: str,
    s1_n: str,
    prefix: str,
) -> str:
    """Add a 4:1 multiplexer built from AND3/OR2 gates; return the output net."""
    t0 = f"{prefix}_t0"
    t1 = f"{prefix}_t1"
    t2 = f"{prefix}_t2"
    t3 = f"{prefix}_t3"
    circuit.add_gate(f"{prefix}_a0", GateType.AND3, [d0, s1_n, s0_n], t0)
    circuit.add_gate(f"{prefix}_a1", GateType.AND3, [d1, s1_n, s0], t1)
    circuit.add_gate(f"{prefix}_a2", GateType.AND3, [d2, s1, s0_n], t2)
    circuit.add_gate(f"{prefix}_a3", GateType.AND3, [d3, s1, s0], t3)
    or01 = f"{prefix}_or01"
    or23 = f"{prefix}_or23"
    out = f"{prefix}_y"
    circuit.add_gate(f"{prefix}_o1", GateType.OR2, [t0, t1], or01)
    circuit.add_gate(f"{prefix}_o2", GateType.OR2, [t2, t3], or23)
    circuit.add_gate(f"{prefix}_o3", GateType.OR2, [or01, or23], out)
    return out


def alu(width: int = 8, name: str | None = None) -> Circuit:
    """Return a ``width``-bit ALU (``alu88``): ADD / AND / OR / XOR.

    Two select inputs choose the operation per the usual encoding
    (00=ADD, 01=AND, 10=OR, 11=XOR); the adder carry-in and carry-out are a
    primary input and output respectively.
    """
    if width < 1:
        raise ValueError("width must be at least 1")
    circuit = Circuit(name=name or f"alu{width}{width}")
    a_bits = [circuit.add_input(f"a{i}") for i in range(width)]
    b_bits = [circuit.add_input(f"b{i}") for i in range(width)]
    s0 = circuit.add_input("op0")
    s1 = circuit.add_input("op1")
    cin = circuit.add_input("cin")

    circuit.add_gate("inv_s0", GateType.INV, [s0], "op0_n")
    circuit.add_gate("inv_s1", GateType.INV, [s1], "op1_n")

    sums, carry_out = _ripple_adder(circuit, a_bits, b_bits, "add", cin=cin)
    circuit.add_output(carry_out)

    for index in range(width):
        a, b = a_bits[index], b_bits[index]
        and_net = f"and_{index}"
        or_net = f"or_{index}"
        xor_net = f"xorf_{index}"
        circuit.add_gate(f"fand_{index}", GateType.AND2, [a, b], and_net)
        circuit.add_gate(f"for_{index}", GateType.OR2, [a, b], or_net)
        circuit.add_gate(f"fxor_{index}", GateType.XOR2, [a, b], xor_net)
        out = _mux4(
            circuit,
            sums[index],
            and_net,
            or_net,
            xor_net,
            s0,
            s1,
            "op0_n",
            "op1_n",
            f"mux_{index}",
        )
        circuit.add_output(out)
    return circuit


# --------------------------------------------------------------------------- #
# synthetic random logic and ISCAS-like benchmarks
# --------------------------------------------------------------------------- #

#: Default gate-type mix of the synthetic circuits (weights need not sum to 1).
DEFAULT_GATE_MIX: dict[GateType, float] = {
    GateType.INV: 0.22,
    GateType.NAND2: 0.24,
    GateType.NOR2: 0.14,
    GateType.AND2: 0.09,
    GateType.OR2: 0.07,
    GateType.NAND3: 0.08,
    GateType.NOR3: 0.05,
    GateType.AOI21: 0.04,
    GateType.OAI21: 0.03,
    GateType.XOR2: 0.02,
    GateType.BUF: 0.02,
}


def random_logic(
    name: str,
    n_inputs: int,
    n_gates: int,
    rng: RngLike = None,
    gate_mix: dict[GateType, float] | None = None,
    locality: int = 64,
) -> Circuit:
    """Return a random levelized combinational circuit.

    Parameters
    ----------
    name:
        Circuit name.
    n_inputs:
        Number of primary inputs.
    n_gates:
        Number of gate instances to create.
    rng:
        Seed or generator controlling every random choice.
    gate_mix:
        Relative weights per gate type (defaults to :data:`DEFAULT_GATE_MIX`).
    locality:
        Inputs of a new gate are drawn preferentially from the most recent
        ``locality`` driven nets; smaller values make deeper, narrower
        circuits, larger values make shallower ones with higher fanout
        variance.

    Nets that end up with no receivers become the primary outputs, which is
    how real benchmark netlists look after flip-flop extraction.
    """
    if n_inputs < 2:
        raise ValueError("n_inputs must be at least 2")
    if n_gates < 1:
        raise ValueError("n_gates must be at least 1")
    if locality < 4:
        raise ValueError("locality must be at least 4")

    generator = ensure_rng(rng)
    mix = gate_mix or DEFAULT_GATE_MIX
    gate_types = list(mix)
    weights = [float(mix[t]) for t in gate_types]
    total_weight = sum(weights)
    probabilities = [w / total_weight for w in weights]

    circuit = Circuit(name=name)
    available = [circuit.add_input(f"pi{i}") for i in range(n_inputs)]

    for index in range(n_gates):
        choice = generator.choice(len(gate_types), p=probabilities)
        gate_type = gate_types[int(choice)]
        arity = gate_spec(gate_type).num_inputs
        window = available[-locality:]
        if len(window) < arity:
            window = available
        picks = generator.choice(len(window), size=arity, replace=len(window) < arity)
        inputs = [window[int(p)] for p in picks]
        output = f"{name}_n{index}"
        circuit.add_gate(f"{name}_g{index}", gate_type, inputs, output)
        available.append(output)

    for net in available:
        if not circuit.fanout_of(net) and not circuit.is_primary_input(net):
            circuit.add_output(net)
    if not circuit.primary_outputs:
        circuit.add_output(available[-1])
    circuit.validate()
    return circuit


def layered_logic(
    name: str,
    n_inputs: int,
    n_gates: int,
    rng: RngLike = None,
    n_layers: int | None = None,
    gate_mix: dict[GateType, float] | None = None,
    skip_fraction: float = 0.25,
) -> Circuit:
    """Return a random layered-DAG combinational circuit.

    Where :func:`random_logic` draws gate inputs from a rolling recency
    window (good at a few hundred gates, but degenerating into one long
    chain-like region as the window slides), this generator fixes the
    *levelized* structure real benchmark netlists have: primary inputs form
    layer 0, gates are spread evenly over ``n_layers`` explicit layers, and
    every gate draws its first input from the immediately preceding layer
    (pinning its logic depth) with each further input taken from an earlier
    layer with probability ``skip_fraction`` — the skip connections that
    give real circuits their fanout-variance profile.  The construction is
    lint-clean by design: every net has exactly one driver (NL002), gates
    only read already-driven nets of earlier layers (NL001, NL003, NL008),
    and nets with no receivers become the primary outputs (NL004).

    Parameters
    ----------
    name:
        Circuit name.
    n_inputs:
        Number of primary inputs (layer 0).
    n_gates:
        Number of gate instances, spread evenly across the layers.
    rng:
        Seed or generator controlling every random choice.
    n_layers:
        Number of gate layers (the logic depth); defaults to a realistic
        ``O(log n_gates)`` depth.
    gate_mix:
        Relative weights per gate type (defaults to :data:`DEFAULT_GATE_MIX`).
    skip_fraction:
        Probability that a non-first gate input skips past the preceding
        layer to a uniformly drawn earlier net.
    """
    if n_inputs < 4:
        raise ValueError("n_inputs must be at least 4")
    if n_gates < 1:
        raise ValueError("n_gates must be at least 1")
    if not 0.0 <= skip_fraction <= 1.0:
        raise ValueError("skip_fraction must be in [0, 1]")
    if n_layers is None:
        n_layers = max(4, int(round(2.0 * float(np.log2(n_gates + 1)))))
    if n_layers < 1:
        raise ValueError("n_layers must be at least 1")
    n_layers = min(n_layers, n_gates)

    generator = ensure_rng(rng)
    mix = gate_mix or DEFAULT_GATE_MIX
    gate_types = list(mix)
    weights = [float(mix[t]) for t in gate_types]
    total_weight = sum(weights)
    probabilities = [w / total_weight for w in weights]

    circuit = Circuit(name=name)
    previous = [circuit.add_input(f"pi{i}") for i in range(n_inputs)]
    earlier: list[str] = []  # all nets strictly before ``previous``
    all_nets: list[str] = list(previous)

    base, extra = divmod(n_gates, n_layers)
    index = 0
    for layer in range(n_layers):
        layer_size = base + (1 if layer < extra else 0)
        current: list[str] = []
        for _ in range(layer_size):
            choice = generator.choice(len(gate_types), p=probabilities)
            gate_type = gate_types[int(choice)]
            arity = gate_spec(gate_type).num_inputs
            # First input from the preceding layer pins the gate's depth;
            # the rest skip to an earlier layer with skip_fraction.
            n_skip = (
                int(np.sum(generator.random(arity - 1) < skip_fraction))
                if arity > 1 and earlier
                else 0
            )
            n_prev = arity - n_skip
            if n_prev > len(previous):
                n_skip += n_prev - len(previous)
                n_prev = len(previous)
            inputs: list[str] = []
            picks = generator.choice(
                len(previous), size=n_prev, replace=len(previous) < n_prev
            )
            inputs.extend(previous[int(p)] for p in picks)
            if n_skip:
                picks = generator.choice(
                    len(earlier), size=n_skip, replace=len(earlier) < n_skip
                )
                inputs.extend(earlier[int(p)] for p in picks)
            output = f"{name}_n{index}"
            circuit.add_gate(f"{name}_g{index}", gate_type, inputs, output)
            current.append(output)
            index += 1
        earlier.extend(previous)
        all_nets.extend(current)
        previous = current

    for net in all_nets:
        if not circuit.fanout_of(net) and not circuit.is_primary_input(net):
            circuit.add_output(net)
    if not circuit.primary_outputs:
        circuit.add_output(all_nets[-1])
    circuit.validate()
    return circuit


@dataclass(frozen=True)
class IscasProfile:
    """Published size profile of one benchmark circuit."""

    name: str
    n_inputs: int
    n_gates: int
    description: str


#: Size profiles for the circuits of the paper's Fig. 12, using the names as
#: printed in the paper (s5372 and s9378 correspond to the ISCAS89 circuits
#: s5378 and s9234).  Gate counts are the published combinational gate counts.
ISCAS_PROFILES: dict[str, IscasProfile] = {
    "s838": IscasProfile("s838", 67, 446, "ISCAS89 s838 (8-bit counter-like)"),
    "s1196": IscasProfile("s1196", 32, 547, "ISCAS89 s1196 combinational core"),
    "s1423": IscasProfile("s1423", 91, 657, "ISCAS89 s1423 combinational core"),
    "s5372": IscasProfile("s5372", 214, 2779, "ISCAS89 s5378 combinational core"),
    "s9378": IscasProfile("s9378", 247, 5597, "ISCAS89 s9234 combinational core"),
    "s13207": IscasProfile("s13207", 700, 7951, "ISCAS89 s13207 combinational core"),
}

#: Aliases accepted by :func:`iscas_like` for the canonical ISCAS89 names.
_ISCAS_ALIASES = {"s5378": "s5372", "s9234": "s9378"}


def iscas_like(
    name: str | int, scale: float = 1.0, rng: RngLike = None
) -> Circuit:
    """Return a synthetic circuit sized like an ISCAS89 benchmark.

    Parameters
    ----------
    name:
        One of the paper's circuit names (``s838`` ... ``s13207``; the
        canonical ISCAS89 names ``s5378`` and ``s9234`` are accepted
        aliases), *or* an integer gate count for an arbitrarily scalable
        ISCAS-like circuit beyond the published profiles (built with
        :func:`layered_logic`, input count sized to the typical
        inputs-per-gate ratio of the ISCAS89 suite).
    scale:
        Fractional size multiplier (0 < scale <= 1], used by fast test/bench
        configurations; the generated circuit keeps the same input count and
        gate mix with ``scale * n_gates`` gates (for integer ``name`` the
        input count scales with the gate count).
    rng:
        Seed or generator; by default a fixed seed derived from the name or
        gate count, so repeated calls produce the identical circuit.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    if isinstance(name, bool):
        raise TypeError("name must be a benchmark name or a gate count")
    if isinstance(name, int):
        if name < 8:
            raise ValueError("gate count must be at least 8")
        n_gates = max(8, int(round(name * scale)))
        if rng is None:
            # Deterministic per-size seed, mirroring the named profiles.
            rng = name * 7919
        return layered_logic(
            name=f"synth{name}",
            # ~1 primary input per 12 gates: the median inputs-per-gate
            # ratio of the ISCAS89 profiles above (1/6 .. 1/30).
            n_inputs=max(16, n_gates // 12),
            n_gates=n_gates,
            rng=ensure_rng(rng),
        )
    key = _ISCAS_ALIASES.get(name, name)
    profile = ISCAS_PROFILES.get(key)
    if profile is None:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(ISCAS_PROFILES)}"
        )
    n_gates = max(8, int(round(profile.n_gates * scale)))
    if rng is None:
        # Deterministic per-profile seed (not hash(), which is salted per run).
        rng = sum(ord(c) for c in profile.name) * 7919
    generator = ensure_rng(rng)
    circuit = random_logic(
        name=profile.name,
        n_inputs=profile.n_inputs,
        n_gates=n_gates,
        rng=generator,
    )
    return circuit


def paper_benchmark_suite(scale: float = 1.0) -> dict[str, Circuit]:
    """Return the full Fig. 12 circuit suite keyed by the paper's names.

    The suite is the six ISCAS-like circuits plus the exact ``mult88`` and
    ``alu88`` designs.  ``scale`` only affects the synthetic circuits.
    """
    suite: dict[str, Circuit] = {}
    for name in ISCAS_PROFILES:
        suite[name] = iscas_like(name, scale=scale)
    suite["alu88"] = alu(8)
    suite["mult88"] = array_multiplier(8)
    return suite
