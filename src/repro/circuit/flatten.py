"""Expansion of a gate-level circuit into a transistor-level netlist.

The reference ("SPICE") leakage analysis of a circuit needs every transistor
of every gate in one :class:`~repro.spice.netlist.TransistorNetlist`, with

* primary-input nets fixed at the rail implied by the applied input vector,
* every other net free (solved), seeded with the rail implied by its logic
  value so the DC solver starts near the answer.

Keeping the expansion separate from the solver lets tests inspect the
flattened structure (transistor counts, node sharing) independently of any
numerical behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.logic import propagate
from repro.circuit.netlist import Circuit
from repro.device.params import TechnologyParams
from repro.gates.templates import build_gate_transistors
from repro.spice.netlist import TransistorNetlist


@dataclass
class FlattenedCircuit:
    """A circuit flattened to transistors for one input assignment.

    Attributes
    ----------
    circuit:
        The source gate-level circuit.
    netlist:
        The transistor-level netlist (shares net names with the circuit).
    net_values:
        Logic value of every net under the applied input assignment.
    input_assignment:
        The primary-input assignment used for the expansion.
    internal_nodes:
        Per gate, the instance-internal node names (stack nodes, internal
        stages) created by its transistor template.
    """

    circuit: Circuit
    netlist: TransistorNetlist
    net_values: dict[str, int]
    input_assignment: dict[str, int]
    internal_nodes: dict[str, list[str]]

    @property
    def transistor_count(self) -> int:
        """Return the number of transistor instances."""
        return len(self.netlist.transistors)

    def initial_voltages(self) -> dict[str, float]:
        """Return rail-based initial guesses for every free node.

        Circuit nets start at the rail implied by their logic value.  Gate
        internal nodes start at their gate's *output* rail: for a series
        stack hanging off a driven output this is within millivolts of the
        converged answer, which is what keeps the Gauss–Seidel reference
        solve down to a handful of sweeps.
        """
        vdd = self.netlist.vdd
        guesses = {
            net: vdd * value
            for net, value in self.net_values.items()
            if not self.circuit.is_primary_input(net)
        }
        for gate_name, nodes in self.internal_nodes.items():
            output_value = self.net_values[self.circuit.gates[gate_name].output]
            for node in nodes:
                guesses[node] = vdd * output_value
        return guesses


def flatten(
    circuit: Circuit,
    technology: TechnologyParams,
    input_assignment: dict[str, int],
) -> FlattenedCircuit:
    """Flatten ``circuit`` under ``input_assignment`` into transistors.

    The circuit is validated first; logic values are propagated to seed the
    free nets and to fix the primary inputs at their rails.
    """
    circuit.validate()
    net_values = propagate(circuit, input_assignment)

    netlist = TransistorNetlist(vdd=technology.vdd)
    for net in circuit.primary_inputs:
        netlist.add_node(net, fixed_voltage=technology.vdd * net_values[net])

    internal_nodes: dict[str, list[str]] = {}
    for gate in circuit.gates.values():
        pins = {pin: net for pin, net in zip(gate.spec.inputs, gate.inputs)}
        pins[gate.spec.output] = gate.output
        internal_nodes[gate.name] = build_gate_transistors(
            netlist, technology, gate.gate_type, gate.name, pins, owner=gate.name
        )

    return FlattenedCircuit(
        circuit=circuit,
        netlist=netlist,
        net_values=net_values,
        input_assignment=dict(input_assignment),
        internal_nodes=internal_nodes,
    )
