"""Expansion of a gate-level circuit into a transistor-level netlist.

The reference ("SPICE") leakage analysis of a circuit needs every transistor
of every gate in one :class:`~repro.spice.netlist.TransistorNetlist`, with

* primary-input nets fixed at the rail implied by the applied input vector,
* every other net free (solved), seeded with the rail implied by its logic
  value so the DC solver starts near the answer.

A circuit flattens to *one* transistor topology: different input vectors only
change the fixed primary-input rails and the free-node seeds.
:func:`flatten_batch` exploits that — it builds the shared netlist once and
derives per-vector fixed-voltage and seed *arrays*, which is exactly the
same-topology contract :class:`~repro.spice.batched.BatchedDcSolver` solves
in one vectorized pass.

Keeping the expansion separate from the solver lets tests inspect the
flattened structure (transistor counts, node sharing) independently of any
numerical behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.logic import propagate
from repro.circuit.netlist import Circuit
from repro.device.params import TechnologyParams
from repro.gates.templates import build_gate_transistors, internal_seed_levels
from repro.spice.netlist import Node, TransistorNetlist


@dataclass
class FlattenedCircuit:
    """A circuit flattened to transistors for one input assignment.

    Attributes
    ----------
    circuit:
        The source gate-level circuit.
    netlist:
        The transistor-level netlist (shares net names with the circuit).
    net_values:
        Logic value of every net under the applied input assignment.
    input_assignment:
        The primary-input assignment used for the expansion.
    internal_nodes:
        Per gate, the instance-internal node names (stack nodes, internal
        stages) created by its transistor template.
    """

    circuit: Circuit
    netlist: TransistorNetlist
    net_values: dict[str, int]
    input_assignment: dict[str, int]
    internal_nodes: dict[str, list[str]]

    @property
    def transistor_count(self) -> int:
        """Return the number of transistor instances."""
        return len(self.netlist.transistors)

    def initial_voltages(self) -> dict[str, float]:
        """Return rail-based initial guesses for every free node.

        Circuit nets start at the rail implied by their logic value.  Gate
        internal nodes start at the rail their template actually settles
        them at (:func:`~repro.gates.templates.internal_seed_levels`): a
        series-stack node follows whichever end it conducts to, and the
        internal stage of a two-stage gate (BUF, AND*, OR*) sits at the
        *complement* of the output.  Seeding every internal node at the
        output rail — the old behaviour — leaves wrong-rail stage nodes
        with mA-scale residuals that the damped Newton solver grinds on
        for dozens of iterations at large circuit sizes.
        """
        vdd = self.netlist.vdd
        guesses = {
            net: vdd * value
            for net, value in self.net_values.items()
            if not self.circuit.is_primary_input(net)
        }
        for gate_name, nodes in self.internal_nodes.items():
            gate = self.circuit.gates[gate_name]
            levels = internal_seed_levels(
                gate.gate_type,
                [self.net_values[net] for net in gate.inputs],
                self.net_values[gate.output],
            )
            prefix = len(gate_name) + 1
            for node in nodes:
                # A KeyError here means the template created a node its
                # seed table does not know — fail loudly, not silently.
                guesses[node] = vdd * levels[node[prefix:]]
        return guesses


def _build_netlist(
    circuit: Circuit,
    technology: TechnologyParams,
    pi_voltages: dict[str, float],
) -> tuple[TransistorNetlist, dict[str, list[str]]]:
    """Expand ``circuit`` into transistors with the given primary-input rails."""
    netlist = TransistorNetlist(vdd=technology.vdd)
    for net in circuit.primary_inputs:
        netlist.add_node(net, fixed_voltage=pi_voltages[net])

    internal_nodes: dict[str, list[str]] = {}
    for gate in circuit.gates.values():
        pins = {pin: net for pin, net in zip(gate.spec.inputs, gate.inputs)}
        pins[gate.spec.output] = gate.output
        internal_nodes[gate.name] = build_gate_transistors(
            netlist, technology, gate.gate_type, gate.name, pins, owner=gate.name
        )
    return netlist, internal_nodes


def flatten(
    circuit: Circuit,
    technology: TechnologyParams,
    input_assignment: dict[str, int],
) -> FlattenedCircuit:
    """Flatten ``circuit`` under ``input_assignment`` into transistors.

    The circuit is validated first; logic values are propagated to seed the
    free nets and to fix the primary inputs at their rails.
    """
    circuit.validate()
    net_values = propagate(circuit, input_assignment)
    netlist, internal_nodes = _build_netlist(
        circuit,
        technology,
        {net: technology.vdd * net_values[net] for net in circuit.primary_inputs},
    )
    return FlattenedCircuit(
        circuit=circuit,
        netlist=netlist,
        net_values=net_values,
        input_assignment=dict(input_assignment),
        internal_nodes=internal_nodes,
    )


@dataclass
class BatchedFlattenedCircuit:
    """A circuit flattened once, instantiated for ``B`` input assignments.

    The transistor topology of a circuit does not depend on the applied
    vector, so a batch shares one :class:`TransistorNetlist` (one set of
    transistor instances and :class:`~repro.device.mosfet.Mosfet` objects);
    only the fixed primary-input rails and the free-node seeds vary, and they
    are carried as ``(B,)`` arrays.

    Attributes
    ----------
    circuit:
        The source gate-level circuit.
    netlist:
        The shared transistor-level netlist (primary inputs fixed at the
        rails of the *first* assignment; per-vector rails live in
        ``fixed_voltages``).
    assignments:
        The primary-input assignments, in batch order.
    net_values:
        Per assignment, the logic value of every net.
    internal_nodes:
        Per gate, the instance-internal node names of its template.
    fixed_voltages:
        Per primary-input net, the ``(B,)`` rail voltages implied by the
        assignments.
    """

    circuit: Circuit
    netlist: TransistorNetlist
    assignments: list[dict[str, int]]
    net_values: list[dict[str, int]]
    internal_nodes: dict[str, list[str]]
    fixed_voltages: dict[str, np.ndarray]

    @property
    def batch(self) -> int:
        """Return the number of batch instances (input assignments)."""
        return len(self.assignments)

    @property
    def transistor_count(self) -> int:
        """Return the number of transistor instances of the shared topology."""
        return len(self.netlist.transistors)

    def initial_voltages(self) -> dict[str, np.ndarray]:
        """Return per-vector rail-based initial guesses as ``(B,)`` arrays.

        Column ``b`` equals what :meth:`FlattenedCircuit.initial_voltages`
        returns for ``assignments[b]``, so the batched solve starts every
        instance exactly where the scalar reference solve would.
        """
        vdd = self.netlist.vdd
        guesses: dict[str, np.ndarray] = {}
        for net in self.net_values[0]:
            if self.circuit.is_primary_input(net):
                continue
            guesses[net] = vdd * np.array(
                [values[net] for values in self.net_values], dtype=float
            )
        for gate_name, nodes in self.internal_nodes.items():
            gate = self.circuit.gates[gate_name]
            per_vector = [
                internal_seed_levels(
                    gate.gate_type,
                    [values[net] for net in gate.inputs],
                    values[gate.output],
                )
                for values in self.net_values
            ]
            prefix = len(gate_name) + 1
            for node in nodes:
                label = node[prefix:]
                guesses[node] = vdd * np.array(
                    [levels[label] for levels in per_vector], dtype=float
                )
        return guesses

    def netlist_views(self) -> list[TransistorNetlist]:
        """Return ``B`` per-vector views of the shared netlist.

        Each view owns fresh :class:`Node` objects (so its primary-input
        rails can differ) but shares the transistor instance list — and
        therefore the device models — with every other view, which is what
        lets :class:`~repro.spice.batched.BatchedDcSolver` pack the device
        parameters once instead of ``B`` times.
        """
        views: list[TransistorNetlist] = []
        for b in range(self.batch):
            view = TransistorNetlist(vdd=self.netlist.vdd)
            view.nodes = {
                name: Node(
                    name=name,
                    kind=node.kind,
                    voltage=(
                        float(self.fixed_voltages[name][b])
                        if name in self.fixed_voltages
                        else node.voltage
                    ),
                )
                for name, node in self.netlist.nodes.items()
            }
            view.transistors = self.netlist.transistors
            views.append(view)
        return views


def flatten_batch(
    circuit: Circuit,
    technology: TechnologyParams,
    assignments: list[dict[str, int]],
) -> BatchedFlattenedCircuit:
    """Flatten ``circuit`` once for a whole batch of input assignments.

    The shared topology is built a single time; per-assignment logic values
    are propagated to derive the fixed-voltage and seed arrays.  Each column
    of the result is equivalent to ``flatten(circuit, technology,
    assignments[b])``, without rebuilding transistors per vector.
    """
    if not assignments:
        raise ValueError("flatten_batch needs at least one input assignment")
    circuit.validate()
    net_values = [propagate(circuit, assignment) for assignment in assignments]
    netlist, internal_nodes = _build_netlist(
        circuit,
        technology,
        {net: technology.vdd * net_values[0][net] for net in circuit.primary_inputs},
    )
    fixed_voltages = {
        net: technology.vdd
        * np.array([values[net] for values in net_values], dtype=float)
        for net in circuit.primary_inputs
    }
    return BatchedFlattenedCircuit(
        circuit=circuit,
        netlist=netlist,
        assignments=[dict(assignment) for assignment in assignments],
        net_values=net_values,
        internal_nodes=internal_nodes,
        fixed_voltages=fixed_voltages,
    )
