"""Gate-level circuit substrate.

The paper's estimation algorithm (Fig. 13) starts "with a graph representing
the circuit, with each vertex representing a logic gate and each edge
representing a net".  This package provides that substrate:

* :mod:`repro.circuit.netlist` — the :class:`Circuit` container (gates, nets,
  primary inputs/outputs) with driver/fanout indices;
* :mod:`repro.circuit.graph` — topological ordering, levelization and
  structural statistics;
* :mod:`repro.circuit.logic` — logic-value propagation and random-vector
  generation;
* :mod:`repro.circuit.bench_io` — ISCAS ``.bench`` reader/writer;
* :mod:`repro.circuit.generators` — benchmark-circuit generators (synthetic
  ISCAS89-sized circuits, the 8x8 array multiplier and the 8-bit ALU used in
  Fig. 12, plus small pedagogical structures);
* :mod:`repro.circuit.flatten` — expansion of a gate-level circuit into a
  transistor-level netlist for the reference ("SPICE") solve.
"""

from repro.circuit.netlist import Circuit, Gate
from repro.circuit.graph import (
    fanout_histogram,
    levelize,
    logic_depth,
    topological_order,
)
from repro.circuit.logic import (
    gate_input_bits,
    propagate,
    random_input_assignment,
    random_vectors,
)
from repro.circuit.flatten import FlattenedCircuit, flatten
from repro.circuit.bench_io import parse_bench, read_bench, write_bench

__all__ = [
    "Circuit",
    "Gate",
    "fanout_histogram",
    "levelize",
    "logic_depth",
    "topological_order",
    "gate_input_bits",
    "propagate",
    "random_input_assignment",
    "random_vectors",
    "FlattenedCircuit",
    "flatten",
    "parse_bench",
    "read_bench",
    "write_bench",
]
