"""Logic-value propagation and input-vector generation.

The loading-aware estimation algorithm needs the logic value of every net
("Propagate logic value from primary inputs to primary outputs, for input
pattern I" in Fig. 13): the per-gate characterized leakage is selected by the
gate's input vector, and the sign of the loading injection on a net depends
on whether the net sits at '0' or '1'.
"""

from __future__ import annotations

from typing import Iterator

from repro.circuit.graph import topological_order
from repro.circuit.netlist import Circuit, Gate
from repro.utils.rng import RngLike, ensure_rng


def propagate(circuit: Circuit, input_assignment: dict[str, int]) -> dict[str, int]:
    """Return the logic value (0/1) of every net for ``input_assignment``.

    Parameters
    ----------
    circuit:
        The circuit to evaluate.
    input_assignment:
        Mapping of primary-input net names to 0/1 values; every primary input
        must be assigned (missing or extra names raise ``KeyError``).
    """
    missing = [pi for pi in circuit.primary_inputs if pi not in input_assignment]
    if missing:
        raise KeyError(f"unassigned primary inputs: {missing[:10]}")
    extra = [net for net in input_assignment if net not in circuit.primary_inputs]
    if extra:
        raise KeyError(f"assignment names non-primary-input nets: {extra[:10]}")

    values: dict[str, int] = {
        net: 1 if input_assignment[net] else 0 for net in circuit.primary_inputs
    }
    for name in topological_order(circuit):
        gate = circuit.gates[name]
        bits = tuple(values[net] for net in gate.inputs)
        values[gate.output] = gate.spec.evaluate(bits)
    return values


def gate_input_bits(gate: Gate, net_values: dict[str, int]) -> tuple[int, ...]:
    """Return the input vector of ``gate`` under the net values ``net_values``."""
    return tuple(net_values[net] for net in gate.inputs)


def random_input_assignment(circuit: Circuit, rng: RngLike = None) -> dict[str, int]:
    """Return a uniformly random primary-input assignment."""
    generator = ensure_rng(rng)
    bits = generator.integers(0, 2, size=len(circuit.primary_inputs))
    return {net: int(bit) for net, bit in zip(circuit.primary_inputs, bits)}


def random_vectors(
    circuit: Circuit, count: int, rng: RngLike = None
) -> Iterator[dict[str, int]]:
    """Yield ``count`` random primary-input assignments.

    The paper's circuit-level experiments run 100 random vectors per circuit;
    this is the generator those campaigns use.  Passing a seed (or a shared
    generator) makes the vector set reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    generator = ensure_rng(rng)
    for _ in range(count):
        yield random_input_assignment(circuit, generator)


def exhaustive_vectors(circuit: Circuit) -> Iterator[dict[str, int]]:
    """Yield every possible primary-input assignment (2**n of them).

    Only sensible for small circuits (the minimum-leakage-vector search of
    the input-vector-control experiments); the iteration order is the natural
    binary counting order over the primary inputs as listed by the circuit.
    """
    inputs = list(circuit.primary_inputs)
    width = len(inputs)
    for code in range(2**width):
        yield {
            net: (code >> (width - 1 - index)) & 1
            for index, net in enumerate(inputs)
        }
