"""Gate-level circuit representation.

A :class:`Circuit` is a combinational netlist: primary inputs, primary
outputs and a set of :class:`Gate` instances connected by named nets.  Each
net has exactly one driver (a primary input or a gate output) and any number
of receivers.  The paper's loading effect lives on exactly this structure:
the gate-tunneling currents of a net's *receivers* perturb the net and change
the leakage of the net's *driver* and of the receivers themselves.

Sequential elements are not modelled; benchmark circuits with flip-flops are
handled by the ``.bench`` reader, which exposes flop outputs as pseudo
primary inputs and flop inputs as pseudo primary outputs (the standard
combinational-core treatment for leakage analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gates.library import GateSpec, GateType, gate_spec


@dataclass(frozen=True)
class Gate:
    """One gate instance of a circuit.

    Attributes
    ----------
    name:
        Unique instance name.
    gate_type:
        Library gate type.
    inputs:
        Net names connected to the gate's input pins, in pin order.
    output:
        Net name driven by the gate.
    """

    name: str
    gate_type: GateType
    inputs: tuple[str, ...]
    output: str

    @property
    def spec(self) -> GateSpec:
        """Return the library spec of this gate's type."""
        return gate_spec(self.gate_type)

    def input_net(self, pin: str) -> str:
        """Return the net connected to input pin ``pin``."""
        spec = self.spec
        try:
            index = spec.inputs.index(pin)
        except ValueError as exc:
            raise KeyError(f"{spec.name} has no input pin {pin!r}") from exc
        return self.inputs[index]

    def pin_of_net(self, net: str) -> list[str]:
        """Return the input pin names connected to ``net`` (possibly several)."""
        spec = self.spec
        return [pin for pin, n in zip(spec.inputs, self.inputs) if n == net]


@dataclass
class Circuit:
    """A combinational gate-level netlist."""

    name: str
    primary_inputs: list[str] = field(default_factory=list)
    primary_outputs: list[str] = field(default_factory=list)
    gates: dict[str, Gate] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_input(self, net: str) -> str:
        """Declare ``net`` as a primary input and return it."""
        if net in self.primary_inputs:
            return net
        if self.driver_of(net) is not None:
            raise ValueError(f"net {net!r} is already driven by a gate")
        self.primary_inputs.append(net)
        self._invalidate()
        return net

    def add_output(self, net: str) -> str:
        """Declare ``net`` as a primary output and return it."""
        if net not in self.primary_outputs:
            self.primary_outputs.append(net)
        return net

    def add_gate(
        self,
        name: str,
        gate_type: GateType | str,
        inputs: list[str] | tuple[str, ...],
        output: str,
    ) -> Gate:
        """Add a gate instance.

        Raises ``ValueError`` for duplicate instance names, arity mismatches,
        or nets driven by more than one source.
        """
        if name in self.gates:
            raise ValueError(f"duplicate gate name {name!r}")
        spec = gate_spec(gate_type)
        inputs = tuple(inputs)
        if len(inputs) != spec.num_inputs:
            raise ValueError(
                f"{spec.name} gate {name!r} expects {spec.num_inputs} inputs, "
                f"got {len(inputs)}"
            )
        if output in self.primary_inputs:
            raise ValueError(f"net {output!r} is a primary input and cannot be driven")
        existing_driver = self.driver_of(output)
        if existing_driver is not None:
            raise ValueError(
                f"net {output!r} already driven by gate {existing_driver!r}"
            )
        gate = Gate(name=name, gate_type=spec.gate_type, inputs=inputs, output=output)
        self.gates[name] = gate
        self._invalidate()
        return gate

    # ------------------------------------------------------------------ #
    # indices (built lazily, invalidated on mutation)
    # ------------------------------------------------------------------ #
    def _invalidate(self) -> None:
        self.__dict__.pop("_driver_index", None)
        self.__dict__.pop("_fanout_index", None)

    @property
    def _drivers(self) -> dict[str, str]:
        index = self.__dict__.get("_driver_index")
        if index is None:
            index = {gate.output: gate.name for gate in self.gates.values()}
            self.__dict__["_driver_index"] = index
        return index

    @property
    def _fanouts(self) -> dict[str, list[tuple[str, str]]]:
        index = self.__dict__.get("_fanout_index")
        if index is None:
            index = {}
            for gate in self.gates.values():
                for pin, net in zip(gate.spec.inputs, gate.inputs):
                    index.setdefault(net, []).append((gate.name, pin))
            self.__dict__["_fanout_index"] = index
        return index

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def driver_of(self, net: str) -> str | None:
        """Return the name of the gate driving ``net`` (None for PIs/undriven)."""
        return self._drivers.get(net)

    def fanout_of(self, net: str) -> list[tuple[str, str]]:
        """Return the ``(gate_name, pin_name)`` receivers of ``net``."""
        return list(self._fanouts.get(net, []))

    def is_primary_input(self, net: str) -> bool:
        """Return True when ``net`` is a primary input."""
        return net in self.primary_inputs

    def nets(self) -> list[str]:
        """Return every net name (primary inputs first, then gate outputs)."""
        seen: dict[str, None] = {net: None for net in self.primary_inputs}
        for gate in self.gates.values():
            for net in gate.inputs:
                seen.setdefault(net, None)
            seen.setdefault(gate.output, None)
        return list(seen)

    @property
    def gate_count(self) -> int:
        """Return the number of gate instances."""
        return len(self.gates)

    def gate_type_histogram(self) -> dict[str, int]:
        """Return a mapping of gate-type name to instance count."""
        histogram: dict[str, int] = {}
        for gate in self.gates.values():
            key = gate.gate_type.value
            histogram[key] = histogram.get(key, 0) + 1
        return dict(sorted(histogram.items()))

    def validate(self) -> None:
        """Raise ``ValueError`` if the circuit is structurally inconsistent.

        Checks: every gate input is driven (by a PI or another gate), every
        primary output exists, and no net is both a PI and a gate output.
        """
        drivers = self._drivers
        pi_set = set(self.primary_inputs)
        for gate in self.gates.values():
            for net in gate.inputs:
                if net not in pi_set and net not in drivers:
                    raise ValueError(
                        f"gate {gate.name!r} input net {net!r} has no driver"
                    )
        for net in self.primary_outputs:
            if net not in pi_set and net not in drivers:
                raise ValueError(f"primary output {net!r} has no driver")
        overlap = pi_set.intersection(drivers)
        if overlap:
            raise ValueError(f"nets driven by both a PI and a gate: {sorted(overlap)}")

    def stats(self) -> dict[str, object]:
        """Return summary statistics used by reports and experiments."""
        return {
            "name": self.name,
            "gates": self.gate_count,
            "primary_inputs": len(self.primary_inputs),
            "primary_outputs": len(self.primary_outputs),
            "nets": len(self.nets()),
            "gate_types": self.gate_type_histogram(),
        }

    def copy(self, name: str | None = None) -> "Circuit":
        """Return a structural copy of the circuit (gates are immutable)."""
        clone = Circuit(name=name or self.name)
        clone.primary_inputs = list(self.primary_inputs)
        clone.primary_outputs = list(self.primary_outputs)
        clone.gates = dict(self.gates)
        return clone
