"""ISCAS ``.bench`` netlist reader and writer.

The paper evaluates its algorithm on ISCAS89 benchmark circuits.  The
``.bench`` format is the standard textual exchange format for those circuits:

.. code-block:: text

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = NAND(G0, G1)
    G11 = DFF(G10)

The reader maps ``.bench`` primitives to library gate types, expands
wide gates (more inputs than the library supports) into balanced trees, and
treats D flip-flops the way leakage analysis usually does: the flop output
becomes a pseudo primary input and the flop input a pseudo primary output, so
only the combinational core remains.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.circuit.netlist import Circuit
from repro.gates.library import GateType

#: Mapping from ``.bench`` primitive names to (library family, max fan-in).
_FAMILY_BY_PRIMITIVE = {
    "NOT": "inv",
    "INV": "inv",
    "BUF": "buf",
    "BUFF": "buf",
    "AND": "and",
    "NAND": "nand",
    "OR": "or",
    "NOR": "nor",
    "XOR": "xor",
    "XNOR": "xnor",
}

#: Gate types available per family, indexed by fan-in.
_FAMILY_TYPES: dict[str, dict[int, GateType]] = {
    "inv": {1: GateType.INV},
    "buf": {1: GateType.BUF},
    "and": {2: GateType.AND2, 3: GateType.AND3},
    "nand": {2: GateType.NAND2, 3: GateType.NAND3, 4: GateType.NAND4},
    "or": {2: GateType.OR2, 3: GateType.OR3},
    "nor": {2: GateType.NOR2, 3: GateType.NOR3},
    "xor": {2: GateType.XOR2},
    "xnor": {2: GateType.XNOR2},
}

_LINE_RE = re.compile(
    r"^\s*(?P<output>[\w.\[\]]+)\s*=\s*(?P<prim>[A-Za-z]+)\s*\((?P<inputs>[^)]*)\)\s*$"
)
_IO_RE = re.compile(r"^\s*(?P<kind>INPUT|OUTPUT)\s*\(\s*(?P<net>[\w.\[\]]+)\s*\)\s*$", re.I)


class BenchFormatError(ValueError):
    """Raised when a ``.bench`` file cannot be parsed."""


class BenchParseError(BenchFormatError):
    """A ``.bench`` parse failure that names the offending line.

    Attributes
    ----------
    line_no:
        1-based line number of the offending line (None when the problem is
        not attributable to one line).
    """

    def __init__(self, message: str, line_no: int | None = None) -> None:
        self.line_no = line_no
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)


def _decompose_wide(
    circuit: Circuit,
    family: str,
    output: str,
    inputs: list[str],
    counter: list[int],
) -> None:
    """Instantiate a wide AND/OR/NAND/NOR as a tree of library gates.

    Wide gates are reduced with the non-inverting family (AND/OR) and the
    final stage uses the requested family so the logic function is preserved.
    """
    base_family = {"nand": "and", "nor": "or"}.get(family, family)
    available = _FAMILY_TYPES[base_family]
    max_arity = max(available)

    nets = list(inputs)
    while len(nets) > max_arity:
        grouped: list[str] = []
        for start in range(0, len(nets), max_arity):
            group = nets[start : start + max_arity]
            if len(group) == 1:
                grouped.append(group[0])
                continue
            counter[0] += 1
            intermediate = f"{output}__w{counter[0]}"
            gate_type = available[len(group)]
            circuit.add_gate(
                name=f"{output}__t{counter[0]}",
                gate_type=gate_type,
                inputs=group,
                output=intermediate,
            )
            grouped.append(intermediate)
        nets = grouped

    final_types = _FAMILY_TYPES[family]
    gate_type = final_types.get(len(nets))
    if gate_type is None:
        # The reduced width may not exist in the inverting family (e.g. a
        # 4-input NOR); finish with the non-inverting reduction plus INV.
        counter[0] += 1
        intermediate = f"{output}__w{counter[0]}"
        circuit.add_gate(
            name=f"{output}__t{counter[0]}",
            gate_type=available[len(nets)],
            inputs=nets,
            output=intermediate,
        )
        circuit.add_gate(
            name=f"{output}__inv",
            gate_type=GateType.INV,
            inputs=[intermediate],
            output=output,
        )
        return
    circuit.add_gate(
        name=f"{output}__g", gate_type=gate_type, inputs=nets, output=output
    )


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` text into a :class:`Circuit`.

    D flip-flops are cut: ``Q = DFF(D)`` declares ``Q`` as a pseudo primary
    input and ``D`` as a pseudo primary output.

    Malformed input raises :class:`BenchParseError` naming the offending
    line: unparseable lines, unknown primitives, bad arities, duplicate
    signal definitions (two gates driving one signal, or a driven signal
    also declared ``INPUT``) and undefined signals (a gate input or declared
    ``OUTPUT`` that no line defines) are all caught here rather than
    surfacing later as a bare ``KeyError`` inside logic propagation.
    """
    circuit = Circuit(name=name)
    declared_outputs: list[tuple[str, int]] = []
    gate_lines: list[tuple[str, str, list[str], int]] = []
    #: signal -> line number that defines it (INPUT decl, gate output, or
    #: flop output); the duplicate/undefined checks key on this.
    defined_at: dict[str, int] = {}

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            net = io_match.group("net")
            if io_match.group("kind").upper() == "INPUT":
                if net in defined_at:
                    raise BenchParseError(
                        f"signal {net!r} already defined at line "
                        f"{defined_at[net]}; INPUT would redefine it",
                        line_no=line_no,
                    )
                defined_at[net] = line_no
                circuit.add_input(net)
            else:
                declared_outputs.append((net, line_no))
            continue
        line_match = _LINE_RE.match(line)
        if not line_match:
            raise BenchParseError(
                f"cannot parse line: {raw_line.strip()!r}", line_no=line_no
            )
        output = line_match.group("output")
        primitive = line_match.group("prim").upper()
        inputs = [token.strip() for token in line_match.group("inputs").split(",")]
        inputs = [token for token in inputs if token]
        if output in defined_at:
            raise BenchParseError(
                f"duplicate definition of signal {output!r} "
                f"(first defined at line {defined_at[output]})",
                line_no=line_no,
            )
        defined_at[output] = line_no
        gate_lines.append((output, primitive, inputs, line_no))

    # Every consumed or exported signal must be defined somewhere in the
    # file (definitions may appear after uses, so this runs post-scan).
    for output, primitive, inputs, line_no in gate_lines:
        for token in inputs:
            if token not in defined_at:
                raise BenchParseError(
                    f"gate {output!r} uses undefined signal {token!r}",
                    line_no=line_no,
                )
    for net, line_no in declared_outputs:
        if net not in defined_at:
            raise BenchParseError(
                f"OUTPUT declares undefined signal {net!r}", line_no=line_no
            )

    counter = [0]
    for output, primitive, inputs, line_no in gate_lines:
        if primitive in ("DFF", "DFFSR", "FF"):
            if len(inputs) < 1:
                raise BenchParseError(
                    f"flip-flop {output!r} has no data input", line_no=line_no
                )
            circuit.add_input(output)
            circuit.add_output(inputs[0])
            continue
        family = _FAMILY_BY_PRIMITIVE.get(primitive)
        if family is None:
            raise BenchParseError(
                f"unsupported primitive {primitive!r}", line_no=line_no
            )
        arity = len(inputs)
        if arity == 0:
            raise BenchParseError(
                f"{primitive} gate {output!r} has no inputs", line_no=line_no
            )
        expected_types = _FAMILY_TYPES[family]
        try:
            if arity in expected_types:
                circuit.add_gate(
                    name=f"{output}__g",
                    gate_type=expected_types[arity],
                    inputs=inputs,
                    output=output,
                )
            elif family in ("inv", "buf"):
                raise BenchParseError(
                    f"{primitive} gate {output!r} must have exactly one input",
                    line_no=line_no,
                )
            elif arity == 1:
                # Single-input AND/OR/NAND/NOR degenerate to BUF/INV.
                degenerate = GateType.BUF if family in ("and", "or") else GateType.INV
                circuit.add_gate(
                    name=f"{output}__g",
                    gate_type=degenerate,
                    inputs=inputs,
                    output=output,
                )
            else:
                _decompose_wide(circuit, family, output, inputs, counter)
        except BenchParseError:
            raise
        except ValueError as exc:
            # The pre-scan catches duplicates/undefined signals; anything
            # the Circuit still rejects is surfaced with the line context.
            raise BenchParseError(str(exc), line_no=line_no) from exc

    for net, _ in declared_outputs:
        circuit.add_output(net)
    circuit.validate()
    return circuit


def read_bench(path: str | Path) -> Circuit:
    """Read a ``.bench`` file from disk."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(circuit: Circuit, path: str | Path | None = None) -> str:
    """Render ``circuit`` in ``.bench`` syntax (optionally writing to ``path``).

    Library gate types that have no ``.bench`` primitive (AOI21/OAI21) are
    emitted as their two-primitive equivalents so the output stays readable
    by other tools.
    """
    lines = [f"# {circuit.name} - written by repro.circuit.bench_io"]
    for net in circuit.primary_inputs:
        lines.append(f"INPUT({net})")
    for net in circuit.primary_outputs:
        lines.append(f"OUTPUT({net})")

    primitive_by_type = {
        GateType.INV: "NOT",
        GateType.BUF: "BUFF",
        GateType.NAND2: "NAND",
        GateType.NAND3: "NAND",
        GateType.NAND4: "NAND",
        GateType.NOR2: "NOR",
        GateType.NOR3: "NOR",
        GateType.AND2: "AND",
        GateType.AND3: "AND",
        GateType.OR2: "OR",
        GateType.OR3: "OR",
        GateType.XOR2: "XOR",
        GateType.XNOR2: "XNOR",
    }
    for gate in circuit.gates.values():
        primitive = primitive_by_type.get(gate.gate_type)
        if primitive is not None:
            operands = ", ".join(gate.inputs)
            lines.append(f"{gate.output} = {primitive}({operands})")
            continue
        # Complex gates: AOI21 = NOR(AND(a, b), c); OAI21 = NAND(OR(a, b), c).
        a, b, c = gate.inputs
        helper = f"{gate.output}__{gate.name}_h"
        if gate.gate_type is GateType.AOI21:
            lines.append(f"{helper} = AND({a}, {b})")
            lines.append(f"{gate.output} = NOR({helper}, {c})")
        elif gate.gate_type is GateType.OAI21:
            lines.append(f"{helper} = OR({a}, {b})")
            lines.append(f"{gate.output} = NAND({helper}, {c})")
        else:  # pragma: no cover - library is fully covered above
            raise NotImplementedError(f"cannot export {gate.gate_type}")

    text = "\n".join(lines) + "\n"
    if path is not None:
        Path(path).write_text(text)
    return text
