"""Minimum-leakage input-vector search at scale.

The paper's Sec. 6 observation — the standby vector that minimizes total
leakage can change once loading is considered — is the quantity
input-vector-control (IVC) techniques hunt for.  Exhaustive search dies at
~20 primary inputs (2**n vectors); this module turns the batched campaign
engine into an optimizer that handles the full Fig. 12 suite:

* :func:`greedy_minimize` — random-restart greedy bit-flip hill climbing.
  Every round evaluates the *entire* single-flip neighborhood of every
  active restart as one :class:`~repro.optimize.objective.LeakageObjective`
  batch (one engine array pass), moves each restart to its best strictly
  improving neighbor and retires restarts that reached a local minimum.
* :func:`genetic_minimize` — a population GA (elitism, tournament
  selection, uniform crossover, bit-flip mutation) whose offspring of each
  generation are scored as one batch.
* :func:`exhaustive_minimize` — the streaming oracle over all ``2**n``
  vectors, feasible only for small circuits; the parity bar the heuristics
  are tested against.

Reproducibility contract
------------------------
Randomness derives exclusively from ``SeedSequence``-spawned streams
(:func:`repro.utils.rng.spawn_streams`): greedy restart ``i`` draws its
start vector from stream ``i``, genetic island ``i`` drives its whole GA
from stream ``i`` — never from how many other units exist or where they
run.  Together with the engine's column-independent totals (batch
composition and chunking never change a candidate's score bitwise), this
makes every search bitwise identical whether its islands run serially
in-process or fan out over the :mod:`repro.engine.parallel`-style process
pool — worker count is purely a throughput knob, which the regression
tests and the vector-search benchmark assert.

Budget accounting
-----------------
Every candidate scored is charged to the objective's evaluation ledger and
reported in :class:`OptimizationResult.evaluations`; the
optimizer-vs-best-of-random comparisons give the random baseline exactly
that many draws, so "beats random at equal evaluation budget" is an
apples-to-apples claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.engine.campaign import DEFAULT_CHUNK_SIZE
from repro.engine.compile import CompiledCircuit
from repro.engine.parallel import default_workers, supervised_map
from repro.optimize.objective import LeakageObjective
from repro.resilience import ResilienceOptions
from repro.utils.rng import RngLike, rng_state_token, spawn_streams
from repro.utils.tables import format_table

#: Strategies accepted by :func:`minimize_leakage` (and the
#: ``strategy=`` dispatch of :func:`repro.core.vectors.minimum_leakage_vector`).
SEARCH_STRATEGIES = ("exhaustive", "greedy", "genetic")

#: Widest input count :func:`exhaustive_minimize` accepts before refusing
#: (2**24 candidate evaluations is already ~30 s of engine passes).
MAX_EXHAUSTIVE_INPUTS = 24


@dataclass(frozen=True)
class GreedyOptions:
    """Knobs of the random-restart greedy bit-flip hill climber.

    Attributes
    ----------
    restarts:
        Independent restarts; restart ``i`` starts from a vector drawn from
        spawned stream ``i``, so results never depend on the island split.
    max_rounds:
        Optional cap on improvement rounds per restart (each round costs one
        ``n_inputs``-candidate neighborhood batch per active restart); None
        runs every restart to a local minimum — guaranteed to terminate
        because every accepted move strictly lowers the total.
    """

    restarts: int = 8
    max_rounds: int | None = None

    def __post_init__(self) -> None:
        if self.restarts < 1:
            raise ValueError("restarts must be at least 1")
        if self.max_rounds is not None and self.max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")


@dataclass(frozen=True)
class GeneticOptions:
    """Knobs of the per-island genetic search.

    Attributes
    ----------
    population:
        Individuals per island (every generation scores the non-elite
        offspring as one batch).
    generations:
        Hard cap on generations per island.
    elite:
        Individuals carried over unchanged each generation (never
        re-scored — their totals are already known).
    tournament:
        Tournament size of the parent selection.
    crossover_rate:
        Probability a child is produced by uniform crossover of two parents
        (otherwise it clones the first parent before mutation).
    mutation_rate:
        Per-bit flip probability of every child; None uses ``1/n_inputs``.
    stall_generations:
        Early stop: an island halts after this many consecutive generations
        without improving its best total (None disables).
    """

    population: int = 32
    generations: int = 40
    elite: int = 2
    tournament: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float | None = None
    stall_generations: int | None = 12

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be at least 2")
        if self.generations < 1:
            raise ValueError("generations must be at least 1")
        if not 0 <= self.elite < self.population:
            raise ValueError("elite must be in [0, population)")
        if self.tournament < 1:
            raise ValueError("tournament must be at least 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if self.mutation_rate is not None and not 0.0 < self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in (0, 1]")
        if self.stall_generations is not None and self.stall_generations < 1:
            raise ValueError("stall_generations must be at least 1")


@dataclass(frozen=True)
class IslandDiagnostics:
    """Per-island outcome of one search (picklable: workers return these).

    ``trajectory`` holds the island's best-so-far total after every batch
    pass it charged to the objective — the convergence curve the
    diagnostics tables and plots read.
    """

    index: int
    units: int
    rounds: int
    evaluations: int
    best_total: float
    best_bits: np.ndarray
    stop_reason: str
    trajectory: np.ndarray


@dataclass
class OptimizationResult:
    """Outcome of one minimum-leakage vector search.

    Attributes
    ----------
    strategy:
        ``"exhaustive"`` / ``"greedy"`` / ``"genetic"``.
    circuit_name / n_inputs / include_loading:
        What was searched and under which scoring.
    best_assignment / best_bits / best_total:
        The winning vector (assignment dict, 0/1 row in
        ``primary_inputs`` order) and its total leakage in amperes.
    evaluations:
        Candidate vectors charged to the objective across all islands —
        the budget currency of equal-budget comparisons.
    islands:
        Per-island diagnostics (restart groups for greedy, independent
        populations for genetic, a single pseudo-island for exhaustive).
    converged:
        True when every island stopped on its own convergence signal
        (greedy: all restarts at local minima; genetic: stalled) rather
        than on a round/generation cap.
    """

    strategy: str
    circuit_name: str
    n_inputs: int
    include_loading: bool
    best_assignment: dict[str, int]
    best_bits: np.ndarray
    best_total: float
    evaluations: int
    islands: list[IslandDiagnostics] = field(default_factory=list)
    converged: bool = True
    #: Execution provenance (e.g. the supervised pool's retry ledger under
    #: ``"resilience"``); never feeds back into the search outcome.
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def trajectory(self) -> np.ndarray:
        """Return the running best-so-far total across islands in order.

        Concatenates the island trajectories (island-major, the serial
        execution order) under a running minimum — a single monotone
        convergence curve over the whole evaluation budget.
        """
        parts = [island.trajectory for island in self.islands if island.trajectory.size]
        if not parts:
            return np.empty(0)
        return np.minimum.accumulate(np.concatenate(parts))

    def to_table(self) -> str:
        """Render the search outcome and per-island diagnostics."""
        rows = [
            ["strategy", self.strategy],
            ["circuit", self.circuit_name],
            ["primary inputs", self.n_inputs],
            ["scoring", "loading-aware" if self.include_loading else "no-loading"],
            ["best total [nA]", self.best_total * 1e9],
            ["evaluations", self.evaluations],
            ["islands", len(self.islands)],
            ["converged", self.converged],
        ]
        for island in self.islands:
            rows.append(
                [
                    f"island {island.index}",
                    f"{island.best_total * 1e9:.4f} nA after "
                    f"{island.evaluations} evals, {island.rounds} rounds "
                    f"({island.stop_reason})",
                ]
            )
        return format_table(
            ["quantity", "value"], rows, title="Minimum-leakage vector search"
        )


# --------------------------------------------------------------------------- #
# island execution (shared by the serial loop and the process pool)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class _IslandTask:
    """Everything one island needs; picklable for the process pool.

    The compiled circuit carries only plain arrays and the gate-level
    netlist (no library reference), so shipping it is cheap and workers
    never re-characterize anything.
    """

    compiled: CompiledCircuit
    include_loading: bool
    chunk_size: int
    strategy: str
    options: GreedyOptions | GeneticOptions
    index: int
    streams: list[np.random.Generator]


def _run_island(task: _IslandTask) -> IslandDiagnostics:
    """Run one island in the current process and return its diagnostics."""
    objective = LeakageObjective(
        task.compiled,
        include_loading=task.include_loading,
        chunk_size=task.chunk_size,
    )
    if task.strategy == "greedy":
        return _greedy_island(objective, task)
    return _genetic_island(objective, task)


def _greedy_island(objective: LeakageObjective, task: _IslandTask) -> IslandDiagnostics:
    """Batched greedy bit-flip descent of one island's restart group."""
    options = task.options
    n = objective.n_inputs
    restarts = len(task.streams)
    bits = np.stack(
        [stream.integers(0, 2, size=n, dtype=np.uint8) for stream in task.streams]
    )
    totals = objective.totals(bits)
    trajectory = [float(totals.min())]

    flips = np.eye(n, dtype=np.uint8)
    active = np.ones(restarts, dtype=bool)
    rounds = 0
    while active.any():
        if options.max_rounds is not None and rounds >= options.max_rounds:
            break
        current = np.flatnonzero(active)
        # The whole single-flip neighborhood of every active restart is one
        # objective batch: (n_active * n) candidates, one engine array pass.
        neighbors = bits[current][:, None, :] ^ flips[None, :, :]
        scores = objective.totals(neighbors.reshape(-1, n)).reshape(len(current), n)
        best_flip = np.argmin(scores, axis=1)
        best_score = scores[np.arange(len(current)), best_flip]
        improved = best_score < totals[current]
        movers = current[improved]
        bits[movers] ^= flips[best_flip[improved]]
        totals[movers] = best_score[improved]
        active[current[~improved]] = False
        trajectory.append(float(totals.min()))
        rounds += 1

    best = int(np.argmin(totals))
    return IslandDiagnostics(
        index=task.index,
        units=restarts,
        rounds=rounds,
        evaluations=objective.evaluations,
        best_total=float(totals[best]),
        best_bits=bits[best].copy(),
        stop_reason="local-minima" if not active.any() else "max-rounds",
        trajectory=np.minimum.accumulate(np.array(trajectory)),
    )


def _genetic_island(
    objective: LeakageObjective, task: _IslandTask
) -> IslandDiagnostics:
    """One island's independent genetic search, driven by its own stream."""
    options = task.options
    n = objective.n_inputs
    (rng,) = task.streams
    population = options.population
    elite = options.elite
    mutation_rate = (
        options.mutation_rate if options.mutation_rate is not None else 1.0 / n
    )

    bits = rng.integers(0, 2, size=(population, n), dtype=np.uint8)
    totals = objective.totals(bits)
    trajectory = [float(totals.min())]
    best_total = float(totals.min())
    stall = 0
    stop_reason = "generations"
    generations = 0

    for _ in range(options.generations):
        if (
            options.stall_generations is not None
            and stall >= options.stall_generations
        ):
            stop_reason = "stalled"
            break
        order = np.argsort(totals, kind="stable")
        elites = bits[order[:elite]]
        n_children = population - elite

        # Tournament selection: two parents per child, the lower total wins
        # (stable argmin tie-break keeps the draw order deterministic).
        entrants = rng.integers(
            0, population, size=(2 * n_children, options.tournament)
        )
        winners = entrants[
            np.arange(2 * n_children),
            np.argmin(totals[entrants], axis=1),
        ]
        mothers = bits[winners[:n_children]]
        fathers = bits[winners[n_children:]]

        crossed = rng.random(n_children) < options.crossover_rate
        take_father = rng.random((n_children, n)) < 0.5
        children = np.where(crossed[:, None] & take_father, fathers, mothers)
        mutations = rng.random((n_children, n)) < mutation_rate
        children = (children ^ mutations).astype(np.uint8)

        child_totals = objective.totals(children)
        bits = np.concatenate([elites, children])
        totals = np.concatenate([totals[order[:elite]], child_totals])
        generations += 1

        generation_best = float(totals.min())
        if generation_best < best_total:
            best_total = generation_best
            stall = 0
        else:
            stall += 1
        trajectory.append(generation_best)

    best = int(np.argmin(totals))
    return IslandDiagnostics(
        index=task.index,
        units=population,
        rounds=generations,
        evaluations=objective.evaluations,
        best_total=float(totals[best]),
        best_bits=bits[best].copy(),
        stop_reason=stop_reason,
        trajectory=np.minimum.accumulate(np.array(trajectory)),
    )


def _run_islands(
    tasks: Sequence[_IslandTask],
    max_workers: int | None,
    resilience: ResilienceOptions | None,
    rng_token: object,
) -> tuple[list[IslandDiagnostics], dict[str, object]]:
    """Run islands serially or over a supervised pool — identical results.

    The pool path mirrors :class:`~repro.engine.parallel.ParallelMonteCarlo`:
    an order-preserving supervised map over self-contained tasks whose
    randomness was spawned up front, so completion order, worker count and
    crash-and-retry recovery can never leak into the outcome.  An island is
    the chunk unit of checkpoint/resume: a resumed search skips completed
    islands and re-runs only the rest from their original streams.
    """
    workers = min(default_workers(max_workers), len(tasks))
    if workers == 1 and resilience is None:
        return [_run_island(task) for task in tasks], {}
    first = tasks[0]
    return supervised_map(
        _run_island,
        tasks,
        workers,
        resilience,
        lambda: {
            "kind": "island-search",
            "strategy": first.strategy,
            "circuit": first.compiled.circuit,
            "include_loading": first.include_loading,
            "chunk_size": first.chunk_size,
            "options": first.options,
            "islands": len(tasks),
            "rng": rng_token,
        },
    )


def _merge_result(
    strategy: str,
    compiled: CompiledCircuit,
    include_loading: bool,
    islands: list[IslandDiagnostics],
    converged: bool,
    metadata: dict[str, object] | None = None,
) -> OptimizationResult:
    """Fold island diagnostics into the final result (deterministic ties)."""
    best = min(islands, key=lambda island: (island.best_total, island.index))
    primary_inputs = compiled.circuit.primary_inputs
    return OptimizationResult(
        strategy=strategy,
        circuit_name=compiled.circuit.name,
        n_inputs=len(primary_inputs),
        include_loading=include_loading,
        best_assignment={
            net: int(bit) for net, bit in zip(primary_inputs, best.best_bits)
        },
        best_bits=best.best_bits.copy(),
        best_total=best.best_total,
        evaluations=sum(island.evaluations for island in islands),
        islands=islands,
        converged=converged,
        metadata=metadata or {},
    )


def _split_contiguous(count: int, parts: int) -> list[slice]:
    """Split ``range(count)`` into ``parts`` contiguous, near-even slices."""
    base, extra = divmod(count, parts)
    slices = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices


# --------------------------------------------------------------------------- #
# public entry points
# --------------------------------------------------------------------------- #


def greedy_minimize(
    compiled: CompiledCircuit,
    include_loading: bool = True,
    options: GreedyOptions | None = None,
    rng: RngLike = None,
    islands: int = 1,
    max_workers: int | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    resilience: ResilienceOptions | None = None,
) -> OptimizationResult:
    """Random-restart greedy bit-flip search for the minimum-leakage vector.

    Restart ``i`` draws its start vector from spawned stream ``i`` and then
    descends deterministically, so the outcome is bitwise independent of
    the island split *and* of the worker count: ``islands``/``max_workers``
    only spread the restart groups over processes (supervised via
    ``resilience`` — worker death, deadlines, checkpoint/resume).
    """
    options = options or GreedyOptions()
    if islands < 1:
        raise ValueError("islands must be at least 1")
    rng_token = (
        rng_state_token(rng)
        if resilience is not None and resilience.checkpoint_path is not None
        else "absent"
    )
    streams = spawn_streams(rng, options.restarts)
    parts = min(islands, options.restarts)
    tasks = [
        _IslandTask(
            compiled=compiled,
            include_loading=include_loading,
            chunk_size=chunk_size,
            strategy="greedy",
            options=options,
            index=i,
            streams=streams[piece],
        )
        for i, piece in enumerate(_split_contiguous(options.restarts, parts))
    ]
    results, metadata = _run_islands(tasks, max_workers, resilience, rng_token)
    converged = all(island.stop_reason == "local-minima" for island in results)
    return _merge_result(
        "greedy", compiled, include_loading, results, converged, metadata
    )


def genetic_minimize(
    compiled: CompiledCircuit,
    include_loading: bool = True,
    options: GeneticOptions | None = None,
    rng: RngLike = None,
    islands: int = 1,
    max_workers: int | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    resilience: ResilienceOptions | None = None,
) -> OptimizationResult:
    """Island-model genetic search for the minimum-leakage vector.

    Each island runs an independent GA of ``options.population``
    individuals driven entirely by its own spawned stream; the final
    answer is the best across islands.  Serial execution, the supervised
    pool, and a crash-retried or checkpoint-resumed run all see identical
    streams in identical order, so the result is bitwise identical either
    way (asserted by the regression and resilience tests).
    """
    options = options or GeneticOptions()
    if islands < 1:
        raise ValueError("islands must be at least 1")
    rng_token = (
        rng_state_token(rng)
        if resilience is not None and resilience.checkpoint_path is not None
        else "absent"
    )
    streams = spawn_streams(rng, islands)
    tasks = [
        _IslandTask(
            compiled=compiled,
            include_loading=include_loading,
            chunk_size=chunk_size,
            strategy="genetic",
            options=options,
            index=i,
            streams=[streams[i]],
        )
        for i in range(islands)
    ]
    results, metadata = _run_islands(tasks, max_workers, resilience, rng_token)
    converged = all(island.stop_reason == "stalled" for island in results)
    return _merge_result(
        "genetic", compiled, include_loading, results, converged, metadata
    )


def exhaustive_minimize(
    compiled: CompiledCircuit,
    include_loading: bool = True,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> OptimizationResult:
    """Evaluate every possible input vector and return the true minimum.

    The oracle of the parity tests: streams ``2**n`` candidates through the
    objective in memory-bounded chunks (never materializing the full
    candidate matrix) in the natural binary counting order of
    :func:`repro.circuit.logic.exhaustive_vectors` — the first primary
    input is the most significant bit.  Ties take the lowest code, matching
    the scalar exhaustive loop's first-strictly-better rule.
    """
    objective = LeakageObjective(
        compiled, include_loading=include_loading, chunk_size=chunk_size
    )
    n = objective.n_inputs
    if n > MAX_EXHAUSTIVE_INPUTS:
        raise ValueError(
            f"exhaustive search over {n} inputs would evaluate 2**{n} vectors; "
            "use strategy='greedy' or 'genetic' beyond "
            f"{MAX_EXHAUSTIVE_INPUTS} inputs"
        )
    shifts = np.arange(n - 1, -1, -1, dtype=np.int64)
    best_total = np.inf
    best_code = 0
    trajectory = []
    total_codes = 1 << n
    for lo in range(0, total_codes, chunk_size):
        codes = np.arange(lo, min(lo + chunk_size, total_codes), dtype=np.int64)
        bits = ((codes[:, None] >> shifts[None, :]) & 1).astype(np.uint8)
        totals = objective.totals(bits)
        chunk_best = int(np.argmin(totals))
        if totals[chunk_best] < best_total:
            best_total = float(totals[chunk_best])
            best_code = int(codes[chunk_best])
        trajectory.append(best_total)
    best_bits = ((best_code >> shifts) & 1).astype(np.uint8)
    island = IslandDiagnostics(
        index=0,
        units=total_codes,
        rounds=len(trajectory),
        evaluations=objective.evaluations,
        best_total=best_total,
        best_bits=best_bits,
        stop_reason="exhausted",
        trajectory=np.array(trajectory),
    )
    return _merge_result(
        "exhaustive", compiled, include_loading, [island], converged=True
    )


def minimize_leakage(
    estimator,
    circuit,
    strategy: str = "greedy",
    rng: RngLike = None,
    islands: int = 1,
    max_workers: int | None = None,
    options: GreedyOptions | GeneticOptions | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    session=None,
    resilience: ResilienceOptions | None = None,
) -> OptimizationResult:
    """Search the minimum-leakage vector for a library-backed estimator.

    The front door of the subsystem (and the target of
    ``minimum_leakage_vector(strategy=...)``): compiles ``circuit`` against
    ``estimator.library`` through an estimation session (cached — repeated
    searches reuse the arrays), scores candidates with or without loading
    to match the estimator, and dispatches on ``strategy``.

    Parameters
    ----------
    estimator:
        A library-backed estimator (anything exposing ``library`` and
        ``include_loading``, i.e.
        :class:`~repro.core.estimator.LoadingAwareEstimator` or its
        no-loading wrapper).
    strategy:
        One of :data:`SEARCH_STRATEGIES`.
    options:
        Strategy knobs; must be a :class:`GreedyOptions` for ``"greedy"``,
        a :class:`GeneticOptions` for ``"genetic"``, None for defaults.
        ``"exhaustive"`` rejects options/islands/max_workers (it is a
        deterministic serial stream) and ignores ``rng`` — the oracle has
        no randomness to seed.
    session:
        Optional :class:`repro.service.EstimationSession` owning the
        compile cache (default: the process-default session).
    """
    from repro.service import default_session

    if strategy not in SEARCH_STRATEGIES:
        raise ValueError(
            f"strategy must be one of {SEARCH_STRATEGIES}, got {strategy!r}"
        )
    library = getattr(estimator, "library", None)
    include_loading = getattr(estimator, "include_loading", None)
    if library is None or include_loading is None:
        raise ValueError(
            "vector search requires a library-backed estimator exposing "
            f"'library' and 'include_loading' (got {type(estimator).__name__})"
        )
    compiled = (session or default_session()).compiled(circuit, library)
    if strategy == "exhaustive":
        # The oracle is deterministic and streams one chunk at a time:
        # search knobs have no meaning here, and silently dropping them
        # would mask a caller who meant a heuristic strategy.
        if options is not None:
            raise TypeError("strategy='exhaustive' takes no options")
        if islands != 1 or max_workers is not None:
            raise ValueError(
                "strategy='exhaustive' does not parallelize over islands "
                "or workers"
            )
        if resilience is not None:
            raise ValueError(
                "strategy='exhaustive' runs a serial stream; resilience "
                "supervision applies to the island strategies"
            )
        return exhaustive_minimize(
            compiled, include_loading=include_loading, chunk_size=chunk_size
        )
    if strategy == "greedy":
        if options is not None and not isinstance(options, GreedyOptions):
            raise TypeError("strategy='greedy' takes GreedyOptions")
        return greedy_minimize(
            compiled,
            include_loading=include_loading,
            options=options,
            rng=rng,
            islands=islands,
            max_workers=max_workers,
            chunk_size=chunk_size,
            resilience=resilience,
        )
    if options is not None and not isinstance(options, GeneticOptions):
        raise TypeError("strategy='genetic' takes GeneticOptions")
    return genetic_minimize(
        compiled,
        include_loading=include_loading,
        options=options,
        rng=rng,
        islands=islands,
        max_workers=max_workers,
        chunk_size=chunk_size,
        resilience=resilience,
    )
