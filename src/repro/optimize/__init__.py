"""Input-vector control: minimum-leakage vector search at scale.

The batched campaign engine (:mod:`repro.engine`) made leakage evaluation a
per-*batch* cost; this subsystem spends that budget searching — the workload
the paper's estimator ultimately serves (Sec. 6: the minimum-leakage standby
vector, which can change once loading is considered):

* :mod:`repro.optimize.objective` — whole candidate populations scored as
  single engine array passes, with an exact evaluation ledger
  (:meth:`LeakageObjective.for_circuit` compiles through an
  :class:`repro.service.EstimationSession`);
* :mod:`repro.optimize.search` — batched random-restart greedy bit-flip
  hill climbing, an island-model genetic search, and the streaming
  exhaustive oracle, all bitwise-reproducible from a seed whether islands
  run serially or across a process pool.

``repro.core.vectors.minimum_leakage_vector(strategy=...)`` dispatches
library-backed estimators here; :mod:`repro.experiments.ivc` and
``benchmarks/bench_vector_search.py`` compare the strategies against
best-of-random-N at equal evaluation budget.
"""

from repro.optimize.objective import LeakageObjective
from repro.optimize.search import (
    GeneticOptions,
    GreedyOptions,
    IslandDiagnostics,
    MAX_EXHAUSTIVE_INPUTS,
    OptimizationResult,
    SEARCH_STRATEGIES,
    exhaustive_minimize,
    genetic_minimize,
    greedy_minimize,
    minimize_leakage,
)

__all__ = [
    "GeneticOptions",
    "GreedyOptions",
    "IslandDiagnostics",
    "LeakageObjective",
    "MAX_EXHAUSTIVE_INPUTS",
    "OptimizationResult",
    "SEARCH_STRATEGIES",
    "exhaustive_minimize",
    "genetic_minimize",
    "greedy_minimize",
    "minimize_leakage",
]
