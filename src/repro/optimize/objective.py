"""Batched leakage objective for the vector-search optimizers.

The optimizers of :mod:`repro.optimize.search` never look at individual
reports — they only need the circuit total of whole candidate *populations*.
:class:`LeakageObjective` wraps a :class:`~repro.engine.compile.CompiledCircuit`
behind exactly that interface: candidates are 0/1 bit rows (one row per
candidate, columns in ``circuit.primary_inputs`` order) and one call answers
the entire population through :func:`repro.engine.campaign.run_totals` — one
leakage evaluation per batch, not per vector.

The objective also owns the evaluation ledger.  Every optimizer result
reports how many candidate vectors it charged to the objective, which is the
budget currency the optimizer-vs-random benchmarks compare at ("equal
evaluation budget" means equal ledger totals, nothing hidden).
"""

from __future__ import annotations

import numpy as np

from repro.engine.campaign import DEFAULT_CHUNK_SIZE, run_totals
from repro.engine.compile import CompiledCircuit


class LeakageObjective:
    """Total circuit leakage of candidate input vectors, answered in batches.

    Parameters
    ----------
    compiled:
        The compiled circuit (carries the characterized LUT arrays; no
        library reference, so instances ship cleanly to worker processes).
    include_loading:
        Whether candidates are scored with the loading-aware totals
        (default) or the traditional no-loading accumulation.
    chunk_size:
        Peak-memory bound forwarded to :func:`run_totals`; never changes
        results (totals are bitwise chunking-independent).
    lint:
        Netlist pre-flight policy (:func:`repro.analysis.preflight_circuit`)
        applied to the compiled circuit at construction.  Compiled circuits
        are normally linted at compile time already; the knob exists so an
        objective built around a hand-assembled or cache-restored
        :class:`CompiledCircuit` gets the same edge check (``"off"`` skips).
    """

    def __init__(
        self,
        compiled: CompiledCircuit,
        include_loading: bool = True,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        lint: str = "raise",
    ) -> None:
        from repro.analysis import preflight_circuit

        preflight_circuit(compiled.circuit, lint=lint)
        self.compiled = compiled
        self.include_loading = include_loading
        self.chunk_size = chunk_size
        self.evaluations = 0

    @classmethod
    def for_circuit(
        cls,
        circuit,
        library,
        include_loading: bool = True,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        session=None,
    ) -> "LeakageObjective":
        """Build an objective by compiling through an estimation session.

        The session-first constructor: compiles ``circuit`` against
        ``library`` through ``session`` (default: the process-default
        :func:`repro.service.default_session`), so repeated objectives over
        the same circuit hit the session's compile cache instead of paying
        a fresh compile each.  Linting already happened at compile time, so
        the construction-time re-lint is skipped.
        """
        from repro.service import default_session

        compiled = (session or default_session()).compiled(circuit, library)
        return cls(
            compiled,
            include_loading=include_loading,
            chunk_size=chunk_size,
            lint="off",
        )

    @property
    def n_inputs(self) -> int:
        """Return the number of primary inputs (candidate bit width)."""
        return len(self.compiled.circuit.primary_inputs)

    def totals(self, bits: np.ndarray) -> np.ndarray:
        """Return the total leakage (A) of each candidate row of ``bits``.

        ``bits`` is ``(n_candidates, n_inputs)`` with 0/1 entries; the whole
        population is one :func:`run_totals` array pass.  The call charges
        ``n_candidates`` to :attr:`evaluations`.
        """
        bits = np.asarray(bits)
        if bits.ndim != 2 or bits.shape[1] != self.n_inputs:
            raise ValueError(
                f"bits must have shape (n_candidates, {self.n_inputs}), "
                f"got {bits.shape}"
            )
        # Validate before the uint8 cast: casting would silently truncate
        # e.g. a float 0.9 to 0 and score a different vector than asked.
        if bits.size and np.any((bits != 0) & (bits != 1)):
            raise ValueError("candidate bits must be exactly 0 or 1")
        bits = bits.astype(np.uint8)
        self.evaluations += bits.shape[0]
        return run_totals(
            self.compiled,
            bits.T,
            include_loading=self.include_loading,
            chunk_size=self.chunk_size,
        )

    def assignment(self, bits: np.ndarray) -> dict[str, int]:
        """Return the primary-input assignment dict of one candidate row."""
        bits = np.asarray(bits).reshape(-1)
        if bits.size != self.n_inputs:
            raise ValueError(
                f"candidate has {bits.size} bits, circuit has {self.n_inputs} inputs"
            )
        return {
            net: int(bit)
            for net, bit in zip(self.compiled.circuit.primary_inputs, bits)
        }
