"""Process-variation analysis (Sec. 5.3 of the paper).

Random variation of channel length, oxide thickness, threshold voltage and
supply voltage spreads the leakage of every gate; the paper shows (Figs. 10
and 11) that considering the loading effect visibly reshapes those
distributions — most strongly for the subthreshold component — and inflates
the standard deviation of the total leakage.

* :mod:`repro.variation.spec` — the variation magnitudes (inter-die and
  intra-die) and the sampling of per-die / per-transistor parameter shifts;
* :mod:`repro.variation.montecarlo` — the Monte-Carlo driver that re-solves
  the loaded and unloaded inverter structures of Fig. 10 for every sample
  (``sampler="mc"|"qmc"``, ``on_nonconverged="warn"|"raise"|"drop"``);
* :mod:`repro.variation.qmc` — the scrambled-Sobol parameter sampler behind
  ``sampler="qmc"`` (variance-reduced, bitwise serial-vs-pool reproducible);
* :mod:`repro.variation.moments` — analytic moment propagation through a
  characterized log-leakage response surface (the sampling-free fast path);
* :mod:`repro.variation.statistics` — distribution summaries, the
  loading-induced shift of the mean and standard deviation (Fig. 11), and
  the bootstrap percentile / yield / equivalent-sample-count estimators.
"""

from repro.variation.spec import InterDieSample, VariationSpec, apply_inter_die
from repro.variation.montecarlo import (
    NONCONVERGED_POLICIES,
    SAMPLERS,
    MonteCarloConvergenceWarning,
    MonteCarloResult,
    MonteCarloSample,
    run_loaded_inverter_monte_carlo,
)
from repro.variation.moments import (
    MomentEstimate,
    MomentsResult,
    propagate_loaded_inverter_moments,
)
from repro.variation.qmc import (
    ParameterDraws,
    SobolBalanceWarning,
    draw_qmc_parameters,
    sobol_standard_normal,
)
from repro.variation.statistics import (
    DistributionSummary,
    PercentileEstimate,
    YieldEstimate,
    equivalent_mc_samples,
    histogram,
    loading_shift_of_mean,
    loading_shift_of_std,
    lognormal_mean,
    lognormal_shift_of_mean,
    lognormal_shift_of_std,
    lognormal_std,
    percentile_leakage,
    summarize,
    yield_fraction,
)

__all__ = [
    "InterDieSample",
    "VariationSpec",
    "apply_inter_die",
    "NONCONVERGED_POLICIES",
    "SAMPLERS",
    "MonteCarloConvergenceWarning",
    "MonteCarloResult",
    "MonteCarloSample",
    "run_loaded_inverter_monte_carlo",
    "MomentEstimate",
    "MomentsResult",
    "propagate_loaded_inverter_moments",
    "ParameterDraws",
    "SobolBalanceWarning",
    "draw_qmc_parameters",
    "sobol_standard_normal",
    "DistributionSummary",
    "PercentileEstimate",
    "YieldEstimate",
    "equivalent_mc_samples",
    "histogram",
    "loading_shift_of_mean",
    "loading_shift_of_std",
    "lognormal_mean",
    "lognormal_shift_of_mean",
    "lognormal_shift_of_std",
    "lognormal_std",
    "percentile_leakage",
    "summarize",
    "yield_fraction",
]
