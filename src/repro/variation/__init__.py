"""Process-variation analysis (Sec. 5.3 of the paper).

Random variation of channel length, oxide thickness, threshold voltage and
supply voltage spreads the leakage of every gate; the paper shows (Figs. 10
and 11) that considering the loading effect visibly reshapes those
distributions — most strongly for the subthreshold component — and inflates
the standard deviation of the total leakage.

* :mod:`repro.variation.spec` — the variation magnitudes (inter-die and
  intra-die) and the sampling of per-die / per-transistor parameter shifts;
* :mod:`repro.variation.montecarlo` — the Monte-Carlo driver that re-solves
  the loaded and unloaded inverter structures of Fig. 10 for every sample;
* :mod:`repro.variation.statistics` — distribution summaries and the
  loading-induced shift of the mean and standard deviation (Fig. 11).
"""

from repro.variation.spec import InterDieSample, VariationSpec, apply_inter_die
from repro.variation.montecarlo import (
    MonteCarloResult,
    MonteCarloSample,
    run_loaded_inverter_monte_carlo,
)
from repro.variation.statistics import (
    DistributionSummary,
    histogram,
    loading_shift_of_mean,
    loading_shift_of_std,
    summarize,
)

__all__ = [
    "InterDieSample",
    "VariationSpec",
    "apply_inter_die",
    "MonteCarloResult",
    "MonteCarloSample",
    "run_loaded_inverter_monte_carlo",
    "DistributionSummary",
    "histogram",
    "loading_shift_of_mean",
    "loading_shift_of_std",
    "summarize",
]
