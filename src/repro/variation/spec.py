"""Process-variation specification and parameter sampling.

The paper's Monte-Carlo study (Fig. 10/11 captions) varies channel length,
oxide thickness, threshold voltage and supply voltage, splitting the
threshold variation into an inter-die part (shared by every transistor of a
die) and an intra-die part (independent per transistor).  The defaults below
follow the Fig. 11 caption: sigma_L = 2 nm, sigma_Tox = 0.67 A,
sigma_Vt(inter) = 30 mV, sigma_Vt(intra) = 30 mV, and a supply-voltage sigma
of 33 mV (the caption prints "333 mV", which would exceed a third of VDD and
is read here as a typesetting slip for 33.3 mV; the spec is a parameter, so
either choice can be run).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.params import DeviceParams, TechnologyParams


@dataclass(frozen=True)
class VariationSpec:
    """Standard deviations of the varied process parameters.

    All values are one-sigma magnitudes; sampling is Gaussian and truncated
    at +/- ``truncation`` sigmas to keep single samples physical.
    """

    sigma_length_nm: float = 2.0
    sigma_tox_nm: float = 0.067
    sigma_vth_inter_v: float = 0.030
    sigma_vth_intra_v: float = 0.030
    sigma_vdd_v: float = 0.0333
    truncation: float = 3.0

    def __post_init__(self) -> None:
        for name in (
            "sigma_length_nm",
            "sigma_tox_nm",
            "sigma_vth_inter_v",
            "sigma_vth_intra_v",
            "sigma_vdd_v",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.truncation <= 0:
            raise ValueError("truncation must be positive")

    def with_vth_inter_sigma(self, sigma_v: float) -> "VariationSpec":
        """Return a copy with a different inter-die Vth sigma (Fig. 11 sweep)."""
        return VariationSpec(
            sigma_length_nm=self.sigma_length_nm,
            sigma_tox_nm=self.sigma_tox_nm,
            sigma_vth_inter_v=sigma_v,
            sigma_vth_intra_v=self.sigma_vth_intra_v,
            sigma_vdd_v=self.sigma_vdd_v,
            truncation=self.truncation,
        )


@dataclass(frozen=True)
class InterDieSample:
    """One die's shared parameter shifts."""

    delta_length_nm: float
    delta_tox_nm: float
    delta_vth_v: float
    delta_vdd_v: float


def _truncated_normal(rng: np.random.Generator, sigma: float, truncation: float) -> float:
    """Draw one truncated Gaussian value with the given sigma."""
    if sigma == 0.0:
        return 0.0
    value = float(rng.normal(0.0, sigma))
    limit = truncation * sigma
    return float(np.clip(value, -limit, limit))


def sample_inter_die(spec: VariationSpec, rng: np.random.Generator) -> InterDieSample:
    """Draw the shared (inter-die) parameter shifts for one Monte-Carlo sample."""
    return InterDieSample(
        delta_length_nm=_truncated_normal(rng, spec.sigma_length_nm, spec.truncation),
        delta_tox_nm=_truncated_normal(rng, spec.sigma_tox_nm, spec.truncation),
        delta_vth_v=_truncated_normal(rng, spec.sigma_vth_inter_v, spec.truncation),
        delta_vdd_v=_truncated_normal(rng, spec.sigma_vdd_v, spec.truncation),
    )


def sample_intra_die_vth(
    spec: VariationSpec, rng: np.random.Generator, count: int
) -> np.ndarray:
    """Draw ``count`` independent per-transistor Vth shifts (V)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if spec.sigma_vth_intra_v == 0.0:
        return np.zeros(count)
    limit = spec.truncation * spec.sigma_vth_intra_v
    values = rng.normal(0.0, spec.sigma_vth_intra_v, size=count)
    return np.clip(values, -limit, limit)


def _shift_device(device: DeviceParams, sample: InterDieSample) -> DeviceParams:
    """Apply the inter-die geometry/threshold shifts to one device flavour."""
    shifted = device.replace(
        length_nm=max(device.length_nm + sample.delta_length_nm, 1.0),
        tox_nm=max(device.tox_nm + sample.delta_tox_nm, 0.3),
    )
    return shifted.replace_subthreshold(
        vth0=shifted.subthreshold.vth0 + sample.delta_vth_v
    )


def apply_inter_die(
    technology: TechnologyParams, sample: InterDieSample
) -> TechnologyParams:
    """Return a technology with one die's shared parameter shifts applied.

    The supply shift is clamped so VDD never drops below half its nominal
    value (a die that far off would fail functionally, not just leak).
    """
    new_vdd = max(technology.vdd + sample.delta_vdd_v, 0.5 * technology.vdd)
    return technology.replace(
        vdd=new_vdd,
        nmos=_shift_device(technology.nmos, sample),
        pmos=_shift_device(technology.pmos, sample),
    )
