"""Scrambled-Sobol quasi-Monte-Carlo sampling for the variation study.

Plain Monte-Carlo converges at O(1/sqrt(N)); the Fig. 10/11 integrands
(leakage of the loaded-inverter cluster as a function of the process
parameters) are smooth and dominated by a handful of dimensions, which is
exactly the regime where a low-discrepancy sequence converges near O(1/N).
This module maps an Owen-scrambled Sobol sequence (``scipy.stats.qmc``)
through the *same* parameter distributions the Monte-Carlo path draws:

* each Sobol coordinate ``u`` becomes a standard-normal variate via the
  inverse CDF (``scipy.special.ndtri``),
* scaled by the :class:`~repro.variation.spec.VariationSpec` sigma of its
  axis and clipped at ``truncation * sigma`` — bit-for-bit the same
  *distribution* as :func:`~repro.variation.spec.sample_inter_die` /
  :func:`~repro.variation.spec.sample_intra_die_vth` (a clipped Gaussian),
  just visited in low-discrepancy order.

Dimension layout: the four inter-die axes (L, Tox, Vth, VDD — the order of
:data:`INTER_DIE_AXES`) first, then one intra-die Vth axis per transistor
of the loaded structure.  A zero-sigma axis still owns its Sobol dimension
(its shifts are exactly 0.0), so the points assigned to the *other* axes do
not depend on which sigmas are active.

Reproducibility contract: the scramble seed is stream 0 of
:func:`repro.utils.rng.spawn_streams` on the caller's root rng — an
explicit seeded stream, never global state (RC102-clean) — and the whole
``(samples, dimension)`` block is drawn once up front.  Work distribution
then *slices* the pre-drawn block (:meth:`ParameterDraws.slice`), so
serial and process-pool runs consume byte-identical parameters and, with
the batched solver's batch-composition invariance, produce bitwise
identical results.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np
from scipy.special import ndtri
from scipy.stats import qmc as scipy_qmc

from repro.utils.rng import RngLike, spawn_streams
from repro.variation.spec import InterDieSample, VariationSpec

#: Inter-die axes in Sobol-dimension order (dimensions 0-3).
INTER_DIE_AXES = ("length_nm", "tox_nm", "vth_inter_v", "vdd_v")


class SobolBalanceWarning(UserWarning):
    """A Sobol block was drawn with a non-power-of-two sample count.

    Sobol points balance (and reach their best discrepancy) in blocks of
    ``2**m`` samples; other counts still integrate correctly but converge
    closer to plain Monte-Carlo.  Prefer power-of-two budgets.
    """


def sobol_standard_normal(
    samples: int, dimension: int, rng: RngLike
) -> np.ndarray:
    """Return a ``(samples, dimension)`` scrambled-Sobol standard-normal block.

    Owen-scrambled Sobol points in the unit cube, mapped through the
    inverse normal CDF.  ``rng`` seeds the scramble via
    :func:`repro.utils.rng.spawn_streams` (stream 0), so the block is a
    pure function of the root seed — independent scrambles (fresh seeds)
    give independent randomized-QMC replicates.
    """
    if samples < 1:
        raise ValueError("samples must be at least 1")
    if dimension < 1:
        raise ValueError("dimension must be at least 1")
    seed = spawn_streams(rng, 1)[0]
    sampler = scipy_qmc.Sobol(d=dimension, scramble=True, seed=seed)
    if samples & (samples - 1):
        warnings.warn(
            f"Sobol sample count {samples} is not a power of two; the "
            "block loses its balance properties (prefer 2**m budgets)",
            SobolBalanceWarning,
            stacklevel=2,
        )
    with warnings.catch_warnings():
        # scipy emits its own UserWarning for non-power-of-two counts; the
        # SobolBalanceWarning above already names the condition once.
        warnings.filterwarnings(
            "ignore", message=".*balance properties.*", category=UserWarning
        )
        unit = sampler.random(samples)
    # Owen scrambling makes each coordinate uniform on (0, 1) almost
    # surely, but guard the open interval anyway: ndtri(0) is -inf.
    tiny = np.finfo(float).tiny
    unit = np.clip(unit, tiny, 1.0 - np.finfo(float).epsneg)
    return np.asarray(ndtri(unit), dtype=float)


def _scaled_axis(z: np.ndarray, sigma: float, truncation: float) -> np.ndarray:
    """Scale one standard-normal axis by ``sigma`` and clip at truncation.

    Matches :func:`repro.variation.spec._truncated_normal`: a *clipped*
    Gaussian (mass accumulates on the +/- ``truncation * sigma`` boundary),
    and a zero sigma yields exactly 0.0 everywhere.
    """
    if sigma == 0.0:
        return np.zeros_like(z)
    limit = truncation * sigma
    return np.clip(sigma * z, -limit, limit)


@dataclass(frozen=True)
class ParameterDraws:
    """Pre-drawn variation parameters for a block of samples.

    One row per sample: the four inter-die shifts plus one intra-die Vth
    shift per transistor of the loaded structure.  Picklable plain arrays,
    so a process pool ships slices to workers unchanged.
    """

    spec: VariationSpec
    delta_length_nm: np.ndarray
    delta_tox_nm: np.ndarray
    delta_vth_v: np.ndarray
    delta_vdd_v: np.ndarray
    intra_vth_v: np.ndarray

    def __post_init__(self) -> None:
        count = self.delta_length_nm.shape[0]
        for name in ("delta_tox_nm", "delta_vth_v", "delta_vdd_v"):
            if getattr(self, name).shape != (count,):
                raise ValueError(f"{name} must have shape ({count},)")
        if self.intra_vth_v.ndim != 2 or self.intra_vth_v.shape[0] != count:
            raise ValueError(
                f"intra_vth_v must have shape ({count}, transistors)"
            )

    @property
    def sample_count(self) -> int:
        """Return the number of pre-drawn samples."""
        return int(self.delta_length_nm.shape[0])

    @property
    def transistor_count(self) -> int:
        """Return the number of intra-die axes (transistors)."""
        return int(self.intra_vth_v.shape[1])

    def inter_die(self, index: int) -> InterDieSample:
        """Return sample ``index``'s shared inter-die shifts."""
        return InterDieSample(
            delta_length_nm=float(self.delta_length_nm[index]),
            delta_tox_nm=float(self.delta_tox_nm[index]),
            delta_vth_v=float(self.delta_vth_v[index]),
            delta_vdd_v=float(self.delta_vdd_v[index]),
        )

    def intra_vth(self, index: int) -> np.ndarray:
        """Return sample ``index``'s per-transistor Vth shifts (V)."""
        return self.intra_vth_v[index]

    def slice(self, lo: int, hi: int) -> "ParameterDraws":
        """Return samples ``[lo, hi)`` as a standalone block.

        Slicing pre-drawn parameters is what keeps pool distribution
        bitwise identical to the serial run: chunk boundaries only choose
        *who* solves a sample, never *which* parameters it gets.
        """
        return ParameterDraws(
            spec=self.spec,
            delta_length_nm=self.delta_length_nm[lo:hi],
            delta_tox_nm=self.delta_tox_nm[lo:hi],
            delta_vth_v=self.delta_vth_v[lo:hi],
            delta_vdd_v=self.delta_vdd_v[lo:hi],
            intra_vth_v=self.intra_vth_v[lo:hi],
        )


def draw_qmc_parameters(
    spec: VariationSpec,
    samples: int,
    transistor_count: int,
    rng: RngLike,
) -> ParameterDraws:
    """Draw a scrambled-Sobol :class:`ParameterDraws` block.

    ``transistor_count`` is the number of intra-die Vth axes — the
    flattened transistor count of the *loaded* structure (the unloaded
    twin reuses its gates' shifts, exactly like the MC path).
    """
    if transistor_count < 0:
        raise ValueError("transistor_count must be non-negative")
    z = sobol_standard_normal(samples, len(INTER_DIE_AXES) + transistor_count, rng)
    truncation = spec.truncation
    return ParameterDraws(
        spec=spec,
        delta_length_nm=_scaled_axis(z[:, 0], spec.sigma_length_nm, truncation),
        delta_tox_nm=_scaled_axis(z[:, 1], spec.sigma_tox_nm, truncation),
        delta_vth_v=_scaled_axis(z[:, 2], spec.sigma_vth_inter_v, truncation),
        delta_vdd_v=_scaled_axis(z[:, 3], spec.sigma_vdd_v, truncation),
        intra_vth_v=_scaled_axis(
            z[:, len(INTER_DIE_AXES) :], spec.sigma_vth_intra_v, truncation
        ),
    )
