"""Distribution statistics for the Monte-Carlo variation study.

Fig. 10 of the paper shows the leakage-component histograms with and without
loading; Fig. 11 shows how the loading effect shifts the *mean* and the
*standard deviation* of the total leakage as the inter-die threshold
variation grows.  These helpers compute exactly those quantities from a
:class:`~repro.variation.montecarlo.MonteCarloResult` (or from any pair of
sample arrays), plus the yield/percentile estimators the statistical-leakage
service query is built on:

* :func:`percentile_leakage` — a population percentile (e.g. the
  99.9th-percentile leakage across process corners) with a bootstrap
  confidence interval;
* :func:`yield_fraction` — the fraction of samples at or below a leakage
  limit, with a bootstrap confidence interval;
* :func:`equivalent_mc_samples` — how many *plain Monte-Carlo* samples a
  variance-reduced (e.g. scrambled-Sobol) population is worth, measured
  from replicate scatter against a bootstrap proxy of the MC error at the
  same budget;
* :func:`lognormal_shift_of_mean` / :func:`lognormal_shift_of_std` — the
  variance-reduced plug-in versions of the Fig. 11 shift statistics
  (moment-matched lognormal estimates built from light-tailed log-domain
  averages, which is also where scrambled-Sobol sampling pays off most).

Every bootstrap draw goes through :func:`repro.utils.rng.ensure_rng`
(explicit seed or generator, never global state), so estimates are
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class DistributionSummary:
    """Summary statistics of one sampled leakage population."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p05: float
    p95: float

    def as_dict(self) -> dict[str, float]:
        """Return the summary as a plain dictionary."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "p05": self.p05,
            "p95": self.p95,
        }


def summarize(values: np.ndarray) -> DistributionSummary:
    """Return the :class:`DistributionSummary` of ``values``."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot summarize an empty sample set")
    return DistributionSummary(
        count=int(values.size),
        mean=float(values.mean()),
        std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
        minimum=float(values.min()),
        maximum=float(values.max()),
        p05=float(np.percentile(values, 5)),
        p95=float(np.percentile(values, 95)),
    )


def histogram(
    values: np.ndarray, bins: int = 20, value_range: tuple[float, float] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Return (counts, bin_edges) of ``values`` — the Fig. 10 histogram data."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot histogram an empty sample set")
    if bins < 1:
        raise ValueError("bins must be at least 1")
    counts, edges = np.histogram(values, bins=bins, range=value_range)
    return counts, edges


def _percent_change(loaded: float, unloaded: float, statistic: str) -> float:
    """Return the percent change of ``loaded`` vs ``unloaded`` — guarded.

    A zero (or effectively-zero) unloaded statistic has no defined percent
    change.  Two cases are distinguished instead of silently returning 0 %
    or letting ``inf``/``nan`` flow into :class:`Fig11Result` (the
    ``core/loading._percent`` idiom):

    * both zero — the statistic does not exist in this configuration; the
      shift is reported as exactly ``0.0``;
    * nonzero over (near-)zero — the percent change is genuinely
      undefined (the division is infinite or non-finite); raise, naming
      the statistic.
    """
    if unloaded == 0.0:
        if loaded == 0.0:
            return 0.0
        raise ValueError(
            f"loading shift of the {statistic} is undefined: the "
            f"unloaded-population {statistic} is zero while the loaded "
            f"{statistic} is {loaded:.3e}"
        )
    shift = 100.0 * (loaded - unloaded) / unloaded
    if not np.isfinite(shift):
        raise ValueError(
            f"loading shift of the {statistic} is not finite: loaded "
            f"{statistic} {loaded:.3e} over unloaded {statistic} "
            f"{unloaded:.3e}"
        )
    return shift


def _checked_populations(
    loaded: np.ndarray, unloaded: np.ndarray, statistic: str
) -> tuple[np.ndarray, np.ndarray]:
    loaded = np.asarray(loaded, dtype=float)
    unloaded = np.asarray(unloaded, dtype=float)
    if loaded.size == 0 or unloaded.size == 0:
        raise ValueError(
            f"cannot compute the loading shift of the {statistic} of an "
            f"empty population ({loaded.size} loaded / {unloaded.size} "
            f"unloaded samples)"
        )
    return loaded, unloaded


def loading_shift_of_mean(loaded: np.ndarray, unloaded: np.ndarray) -> float:
    """Return the loading-induced change of the distribution mean, in percent.

    This is the left panel of Fig. 11 ("LDALL - Mean of Leakage").  Raises
    ``ValueError`` for empty populations and for a zero unloaded mean under
    a nonzero loaded one (see :func:`_percent_change`).
    """
    loaded, unloaded = _checked_populations(loaded, unloaded, "mean")
    return _percent_change(float(np.mean(loaded)), float(np.mean(unloaded)), "mean")


def loading_shift_of_std(loaded: np.ndarray, unloaded: np.ndarray) -> float:
    """Return the loading-induced change of the standard deviation, in percent.

    This is the right panel of Fig. 11 ("LDALL - STD of Leakage"); the paper
    reports increases above 40 % at sigma_Vt(inter) = 50 mV.  Raises
    ``ValueError`` for empty populations and for a zero unloaded std under a
    nonzero loaded one (a single-sample or constant unloaded population has
    std 0.0, which used to silently report a 0 % shift).
    """
    loaded, unloaded = _checked_populations(loaded, unloaded, "std")
    std_loaded = float(loaded.std(ddof=1)) if loaded.size > 1 else 0.0
    std_unloaded = float(unloaded.std(ddof=1)) if unloaded.size > 1 else 0.0
    return _percent_change(std_loaded, std_unloaded, "std")


# --------------------------------------------------------------------- #
# lognormal moment-matched (plug-in) estimators
# --------------------------------------------------------------------- #
def _log_moments(values: np.ndarray, statistic: str) -> tuple[float, float]:
    if np.any(values <= 0.0):
        raise ValueError(
            f"lognormal {statistic} estimator needs strictly positive "
            "samples (leakage currents); got a non-positive value"
        )
    logs = np.log(values)
    sigma = float(logs.std(ddof=1)) if logs.size > 1 else 0.0
    return float(logs.mean()), sigma


def lognormal_mean(values: np.ndarray) -> float:
    """Return the moment-matched lognormal estimate of the mean.

    Fits ``(mu, sigma)`` to the log-samples and returns the implied
    lognormal mean ``exp(mu + sigma**2 / 2)``.  For the heavy-tailed
    leakage populations of the variation study, the log-moments are
    light-tailed averages — both far less noisy than the direct sample
    mean at small budgets and far better suited to scrambled-Sobol
    sampling, which is what makes this the variance-reduced estimator
    behind :func:`lognormal_shift_of_mean` / :func:`lognormal_shift_of_std`.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot estimate the lognormal mean of an empty sample set")
    mu, sigma = _log_moments(values, "mean")
    return float(np.exp(mu + sigma**2 / 2.0))


def lognormal_std(values: np.ndarray) -> float:
    """Return the moment-matched lognormal estimate of the standard deviation.

    ``exp(mu + sigma**2/2) * sqrt(expm1(sigma**2))`` with ``(mu, sigma)``
    fitted to the log-samples.  Unlike the empirical ``std`` — whose error
    is dominated by the handful of extreme corners a small sample happens
    to contain — this plug-in estimate is a smooth function of two
    light-tailed averages, so its sampling error shrinks dramatically and
    scrambled-Sobol sampling reduces it further (see
    ``benchmarks/bench_statistical_leakage.py`` for the measured factors).
    The price is a model-bias floor when the population is not exactly
    lognormal; the benchmark records that bias against a large-sample
    empirical reference.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot estimate the lognormal std of an empty sample set")
    mu, sigma = _log_moments(values, "std")
    return float(np.exp(mu + sigma**2 / 2.0) * np.sqrt(np.expm1(sigma**2)))


def lognormal_shift_of_mean(loaded: np.ndarray, unloaded: np.ndarray) -> float:
    """Variance-reduced Fig. 11 mean shift via lognormal moment matching."""
    loaded, unloaded = _checked_populations(loaded, unloaded, "mean")
    return _percent_change(lognormal_mean(loaded), lognormal_mean(unloaded), "mean")


def lognormal_shift_of_std(loaded: np.ndarray, unloaded: np.ndarray) -> float:
    """Variance-reduced Fig. 11 std shift via lognormal moment matching.

    The percent change of :func:`lognormal_std` between the loaded and
    unloaded populations.  Because both plug-in stds are smooth functions
    of log-domain averages evaluated on the *same* parameter draws, their
    errors are strongly correlated and largely cancel in the ratio —
    replicate scatter several times below the empirical
    :func:`loading_shift_of_std` at equal sample budget, and QMC-friendly.
    """
    loaded, unloaded = _checked_populations(loaded, unloaded, "std")
    return _percent_change(lognormal_std(loaded), lognormal_std(unloaded), "std")


# --------------------------------------------------------------------- #
# yield / percentile estimators
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class PercentileEstimate:
    """A population percentile with its bootstrap confidence interval."""

    percentile: float
    value: float
    ci_low: float
    ci_high: float
    confidence: float
    sample_count: int
    bootstrap_count: int

    def as_dict(self) -> dict[str, float]:
        """Return the estimate as a plain dictionary."""
        return {
            "percentile": self.percentile,
            "value": self.value,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "confidence": self.confidence,
            "sample_count": float(self.sample_count),
            "bootstrap_count": float(self.bootstrap_count),
        }


@dataclass(frozen=True)
class YieldEstimate:
    """The fraction of samples at or below a limit, with a bootstrap CI."""

    limit: float
    fraction: float
    ci_low: float
    ci_high: float
    confidence: float
    sample_count: int
    bootstrap_count: int


def _bootstrap_interval(
    statistics: np.ndarray, confidence: float
) -> tuple[float, float]:
    """Return the percentile-method CI from a bootstrap statistic sample."""
    alpha = 100.0 * (1.0 - confidence) / 2.0
    return (
        float(np.percentile(statistics, alpha)),
        float(np.percentile(statistics, 100.0 - alpha)),
    )


def _validate_bootstrap(values: np.ndarray, confidence: float, bootstrap: int):
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot estimate from an empty sample set")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if bootstrap < 1:
        raise ValueError("bootstrap must be at least 1")
    return values


def percentile_leakage(
    values: np.ndarray,
    percentile: float,
    confidence: float = 0.95,
    bootstrap: int = 500,
    rng: RngLike = 0,
) -> PercentileEstimate:
    """Estimate a leakage percentile with a bootstrap confidence interval.

    ``percentile`` is in percent (99.9 = the 99.9th percentile).  The CI is
    the percentile-method interval over ``bootstrap`` iid resamples of the
    population; ``rng`` seeds the resampling (default 0, reproducible).
    """
    values = _validate_bootstrap(values, confidence, bootstrap)
    if not 0.0 <= percentile <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    generator = ensure_rng(rng)
    indices = generator.integers(0, values.size, size=(bootstrap, values.size))
    resampled = np.percentile(values[indices], percentile, axis=1)
    low, high = _bootstrap_interval(resampled, confidence)
    return PercentileEstimate(
        percentile=float(percentile),
        value=float(np.percentile(values, percentile)),
        ci_low=low,
        ci_high=high,
        confidence=float(confidence),
        sample_count=int(values.size),
        bootstrap_count=int(bootstrap),
    )


def yield_fraction(
    values: np.ndarray,
    limit: float,
    confidence: float = 0.95,
    bootstrap: int = 500,
    rng: RngLike = 0,
) -> YieldEstimate:
    """Estimate the fraction of samples at or below ``limit`` (the yield).

    The yield of a leakage-constrained design point: samples with total
    leakage at or below the budget pass.  The CI is the percentile-method
    bootstrap interval, like :func:`percentile_leakage`.
    """
    values = _validate_bootstrap(values, confidence, bootstrap)
    generator = ensure_rng(rng)
    passing = (values <= float(limit)).astype(float)
    indices = generator.integers(0, values.size, size=(bootstrap, values.size))
    resampled = passing[indices].mean(axis=1)
    low, high = _bootstrap_interval(resampled, confidence)
    return YieldEstimate(
        limit=float(limit),
        fraction=float(passing.mean()),
        ci_low=low,
        ci_high=high,
        confidence=float(confidence),
        sample_count=int(values.size),
        bootstrap_count=int(bootstrap),
    )


def equivalent_mc_samples(
    pooled: np.ndarray,
    replicate_statistics: np.ndarray,
    statistic=np.mean,
    bootstrap: int = 200,
    rng: RngLike = 0,
) -> float:
    """Return the plain-MC sample count a variance-reduced population is worth.

    ``pooled`` is the full variance-reduced population (all replicates
    concatenated, total budget ``N``); ``replicate_statistics`` holds the
    statistic evaluated on each of the ``K`` independent replicates (e.g.
    independently scrambled Sobol blocks of ``N/K`` samples each).  Two
    error estimates at the same total budget are compared:

    * the *replicate* standard error of the pooled estimate,
      ``std(replicate_statistics, ddof=1) / sqrt(K)`` — the standard
      randomized-QMC error estimate;
    * the *bootstrap* standard error of a plain-MC run of size ``N``,
      estimated by iid resampling of the pooled population.

    The equivalent sample count is ``N * (se_mc / se_replicate)**2`` — the
    plain-MC budget that would match the variance-reduced error.  For a
    plain-MC population the ratio is ~1 and the function returns ~``N``.
    Returns ``inf`` when the replicate scatter is exactly zero (a constant
    statistic).
    """
    pooled = np.asarray(pooled, dtype=float)
    replicate_statistics = np.asarray(replicate_statistics, dtype=float)
    if pooled.size == 0:
        raise ValueError("cannot estimate from an empty pooled population")
    if replicate_statistics.size < 2:
        raise ValueError("need at least two replicates to estimate the error")
    replicates = replicate_statistics.size
    se_replicate = float(replicate_statistics.std(ddof=1)) / np.sqrt(replicates)
    generator = ensure_rng(rng)
    indices = generator.integers(0, pooled.size, size=(bootstrap, pooled.size))
    se_mc = float(np.std(statistic(pooled[indices], axis=1), ddof=1))
    if se_replicate == 0.0:
        return float("inf")
    return float(pooled.size * (se_mc / se_replicate) ** 2)
