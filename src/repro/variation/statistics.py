"""Distribution statistics for the Monte-Carlo variation study.

Fig. 10 of the paper shows the leakage-component histograms with and without
loading; Fig. 11 shows how the loading effect shifts the *mean* and the
*standard deviation* of the total leakage as the inter-die threshold
variation grows.  These helpers compute exactly those quantities from a
:class:`~repro.variation.montecarlo.MonteCarloResult` (or from any pair of
sample arrays).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DistributionSummary:
    """Summary statistics of one sampled leakage population."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p05: float
    p95: float

    def as_dict(self) -> dict[str, float]:
        """Return the summary as a plain dictionary."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "p05": self.p05,
            "p95": self.p95,
        }


def summarize(values: np.ndarray) -> DistributionSummary:
    """Return the :class:`DistributionSummary` of ``values``."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot summarize an empty sample set")
    return DistributionSummary(
        count=int(values.size),
        mean=float(values.mean()),
        std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
        minimum=float(values.min()),
        maximum=float(values.max()),
        p05=float(np.percentile(values, 5)),
        p95=float(np.percentile(values, 95)),
    )


def histogram(
    values: np.ndarray, bins: int = 20, value_range: tuple[float, float] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Return (counts, bin_edges) of ``values`` — the Fig. 10 histogram data."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot histogram an empty sample set")
    if bins < 1:
        raise ValueError("bins must be at least 1")
    counts, edges = np.histogram(values, bins=bins, range=value_range)
    return counts, edges


def _percent_change(loaded: float, unloaded: float) -> float:
    if unloaded == 0.0:
        return 0.0
    return 100.0 * (loaded - unloaded) / unloaded


def loading_shift_of_mean(loaded: np.ndarray, unloaded: np.ndarray) -> float:
    """Return the loading-induced change of the distribution mean, in percent.

    This is the left panel of Fig. 11 ("LDALL - Mean of Leakage").
    """
    return _percent_change(float(np.mean(loaded)), float(np.mean(unloaded)))


def loading_shift_of_std(loaded: np.ndarray, unloaded: np.ndarray) -> float:
    """Return the loading-induced change of the standard deviation, in percent.

    This is the right panel of Fig. 11 ("LDALL - STD of Leakage"); the paper
    reports increases above 40 % at sigma_Vt(inter) = 50 mV.
    """
    loaded = np.asarray(loaded, dtype=float)
    unloaded = np.asarray(unloaded, dtype=float)
    std_loaded = float(loaded.std(ddof=1)) if loaded.size > 1 else 0.0
    std_unloaded = float(unloaded.std(ddof=1)) if unloaded.size > 1 else 0.0
    return _percent_change(std_loaded, std_unloaded)
