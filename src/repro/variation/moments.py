"""Analytic moment propagation for the loaded-inverter variation study.

The Monte-Carlo path answers "what are the mean and std of the leakage
under process variation" by brute force: thousands of paired DC solves.
This module gets the same first and second moments from a few hundred
solves by *characterizing* the leakage response once and propagating the
parameter distributions through it:

1. **Characterize** — for every variation axis (the four inter-die shifts
   plus one intra-die Vth shift per transistor of the structure), solve the
   loaded and unloaded structures on a small stencil of parameter points
   (``0, +/-sigma, +/-2 sigma`` by default).  All stencil columns of a
   structure solve as ONE :class:`~repro.spice.batched.BatchedDcSolver`
   batch — the same batching the MC path uses, just pointed at a
   deterministic grid instead of random samples.  The per-axis stencil
   values are exactly small response curves: leakage versus one parameter,
   the parameter-domain analogue of the library's loading-current LUTs.

2. **Fit** — per axis, *per leakage component* and per structure, fit a
   quadratic to the log leakage over the stencil (the leakage mechanisms
   are near-exponential in their parameters, so log space is where a
   low-order polynomial is accurate): ``log I(t) ~ l0 + c1 t + c2 t**2``
   with ``t`` the shift in sigma units.  Components are fitted separately
   because each is individually close to log-linear (subthreshold in Vth,
   gate tunneling in Tox) while their *sum* is not — the mixture is what
   makes ``log(total)`` curved, and the total is therefore assembled from
   the component surrogates rather than fitted directly.  With
   ``interaction_axes > 0`` (default 6) the strongest axes additionally
   get pairwise cross terms ``c_ij t_i t_j`` from four-point 2-D probes —
   the loading feedback (a leakier cluster droops the shared input net,
   compressing joint extremes) shows up exactly there.

3. **Propagate** — every axis draw is a *clipped* standard Gaussian
   (clipped at the spec's truncation — exactly the distribution
   :func:`~repro.variation.spec._truncated_normal` produces).  Without
   cross terms the moment integrals factor per axis and are evaluated in
   closed form (:func:`clipped_gaussian_exp_moment`); component
   cross-moments (for the variance of the total) stay in the same family
   because products of log-additive surrogates are log-additive.  With
   cross terms the surrogate is integrated by deterministic unscrambled
   Sobol quadrature — a pure numpy evaluation of the fitted polynomial,
   no further circuit solves and no randomness.

``order=2`` (default) uses the quadratic fits as-is; ``order=1`` keeps
only the linear terms, which reduces to the classic lognormal
linearization ``E[I] = exp(l0 + var/2)``.

Validity envelope (documented, asserted where checkable):

* per-axis quadratic-in-log response — accurate while the stencil span
  covers the bulk of the distribution; for the closed-form factors the
  curvature must satisfy ``1 - 2 c2 > 0`` per doubled coefficient
  (violations raise a ``ValueError`` naming the axis);
* cross-axis terms are truncated at pairwise interactions among the
  ``interaction_axes`` strongest axes — higher-order feedback is the
  dominant residual (the benchmark records std agreement near ~15 % at
  the paper's sigmas, while means land within a few percent);
* clipped-Gaussian inputs are handled exactly (boundary point masses
  included), so truncation is not a source of error;
* every stencil leakage must be positive (log space); a component that is
  identically zero on the whole stencil propagates as exactly zero.

The benchmark (``benchmarks/bench_statistical_leakage.py``) records the
agreement against the MC oracle at a fixed tolerance bar.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np
from scipy.special import ndtr, ndtri
from scipy.stats import qmc as scipy_qmc

from repro.device.params import TechnologyParams
from repro.spice.solver import SolverOptions
from repro.utils.tables import format_table
from repro.variation.montecarlo import (
    MonteCarloSample,
    SampleTask,
    _solve_parameter_sets,
    _study_circuits,
    build_sample_task,
)
from repro.variation.spec import InterDieSample, VariationSpec, apply_inter_die
from repro.variation.statistics import _percent_change

#: Leakage mechanisms fitted separately; ``total`` is assembled from them.
MOMENT_COMPONENTS = ("subthreshold", "gate", "btbt", "total")
_MECHANISMS = ("subthreshold", "gate", "btbt")

#: Default stencil extent in sigma units (points at +/-1, +/-2 sigma).
DEFAULT_STENCIL_SIGMA = 2.0

#: Default number of strongest axes given pairwise cross terms.
DEFAULT_INTERACTION_AXES = 6

#: Default node count of the deterministic Sobol quadrature.
DEFAULT_QUADRATURE_POINTS = 2**14


@dataclass(frozen=True)
class MomentEstimate:
    """Mean and standard deviation of one leakage component (amperes)."""

    mean: float
    std: float


@dataclass(frozen=True)
class _Axis:
    """One variation axis: an inter-die parameter or one transistor's Vth."""

    name: str
    kind: str  # "inter" | "intra"
    sigma: float
    inter_field: str = ""
    transistor: str = ""


@dataclass
class _Surrogate:
    """Fitted log-leakage model of one component on one structure.

    ``log I(t) = l0 + linear . t + quadratic . t**2 + sum c_ij t_i t_j``
    over the sigma-unit axis coordinates ``t``; ``zero`` marks a component
    that is identically zero on the stencil (it propagates as 0.0).
    """

    l0: float
    linear: np.ndarray
    quadratic: np.ndarray
    interactions: dict[tuple[int, int], float] = field(default_factory=dict)
    zero: bool = False


@dataclass
class MomentsResult:
    """Propagated moments of the Fig. 10 populations plus provenance."""

    spec: VariationSpec
    input_value: int
    input_loads: int
    output_loads: int
    order: int
    stencil_sigma: float
    loaded: dict[str, MomentEstimate] = field(default_factory=dict)
    unloaded: dict[str, MomentEstimate] = field(default_factory=dict)
    #: Number of DC operating points solved (both structures).
    solve_count: int = 0
    #: Number of variation axes with nonzero sigma.
    axis_count: int = 0
    #: Number of axis pairs carrying fitted cross terms.
    interaction_pairs: int = 0
    #: ``closed-form`` or ``sobol-quadrature`` (cross terms present).
    method: str = "closed-form"

    def estimate(self, component: str, loaded: bool = True) -> MomentEstimate:
        """Return one component's propagated moments."""
        table = self.loaded if loaded else self.unloaded
        if component not in table:
            raise KeyError(f"unknown leakage component {component!r}")
        return table[component]

    def mean_shift_percent(self, component: str = "total") -> float:
        """Return the Fig. 11 loading-induced mean shift, in percent."""
        return _percent_change(
            self.estimate(component, True).mean,
            self.estimate(component, False).mean,
            "mean",
        )

    def std_shift_percent(self, component: str = "total") -> float:
        """Return the Fig. 11 loading-induced std shift, in percent."""
        return _percent_change(
            self.estimate(component, True).std,
            self.estimate(component, False).std,
            "std",
        )

    def to_table(self) -> str:
        """Render the propagated moments per component (nA)."""
        rows = [
            [
                component,
                self.unloaded[component].mean * 1e9,
                self.loaded[component].mean * 1e9,
                self.unloaded[component].std * 1e9,
                self.loaded[component].std * 1e9,
            ]
            for component in MOMENT_COMPONENTS
        ]
        return format_table(
            [
                "component",
                "mean no-load [nA]",
                "mean loaded [nA]",
                "std no-load [nA]",
                "std loaded [nA]",
            ],
            rows,
            title=(
                f"Moment propagation (order {self.order}, {self.method}, "
                f"{self.axis_count} axes, {self.solve_count} solves)"
            ),
        )


def clipped_gaussian_exp_moment(c1: float, c2: float, truncation: float) -> float:
    """Return ``E[exp(c1 t + c2 t**2)]`` for clipped standard Gaussian ``t``.

    ``t = clip(z, -truncation, truncation)`` with ``z`` standard normal —
    the distribution every variation axis is drawn from.  The expectation
    splits into the interior integral (the unclipped Gaussian moment
    ``exp(c1**2 / (2 s)) / sqrt(s)`` with ``s = 1 - 2 c2``, windowed by two
    normal CDFs) and the point masses the clip accumulates on the two
    boundaries.  Honouring the clip matters: the leakage is lognormal-like,
    and for the strongest Vth axes the 3-sigma clip removes several percent
    of the *second* moment per axis.
    """
    if c2 >= 0.5:
        raise ValueError(
            f"log-leakage curvature {c2:.3f} is outside the moment-"
            "propagation validity envelope (needs 1 - 2 c2 > 0 per doubled "
            "coefficient); use the Monte-Carlo path for this spec"
        )
    s = 1.0 - 2.0 * c2
    root_s = np.sqrt(s)
    interior = (
        np.exp(c1**2 / (2.0 * s))
        / root_s
        * (
            ndtr((truncation * s - c1) / root_s)
            - ndtr((-truncation * s - c1) / root_s)
        )
    )
    boundary = ndtr(-truncation) * (
        np.exp(-c1 * truncation + c2 * truncation**2)
        + np.exp(c1 * truncation + c2 * truncation**2)
    )
    return float(interior + boundary)


def _axes(task: SampleTask, transistor_names: list[str]) -> list[_Axis]:
    """Return every variation axis with a nonzero sigma."""
    spec = task.spec
    inter = [
        _Axis("sigma_length_nm", "inter", spec.sigma_length_nm, "delta_length_nm"),
        _Axis("sigma_tox_nm", "inter", spec.sigma_tox_nm, "delta_tox_nm"),
        _Axis("sigma_vth_inter_v", "inter", spec.sigma_vth_inter_v, "delta_vth_v"),
        _Axis("sigma_vdd_v", "inter", spec.sigma_vdd_v, "delta_vdd_v"),
    ]
    intra = [
        _Axis(f"vth_intra:{name}", "intra", spec.sigma_vth_intra_v, transistor=name)
        for name in transistor_names
    ]
    return [axis for axis in inter + intra if axis.sigma > 0.0]


def _shift_parameters(
    task: SampleTask, shifts: list[tuple[_Axis, float]]
) -> tuple[TechnologyParams, dict[str, float]]:
    """Return the (technology, intra-Vth map) of one characterization column.

    ``shifts`` lists (axis, offset in sigma units) pairs — one entry for a
    stencil column, two for a pairwise-interaction probe.
    """
    inter = InterDieSample(
        delta_length_nm=0.0, delta_tox_nm=0.0, delta_vth_v=0.0, delta_vdd_v=0.0
    )
    intra: dict[str, float] = {}
    for axis, offset in shifts:
        value = offset * axis.sigma
        if axis.kind == "inter":
            inter = replace(
                inter, **{axis.inter_field: getattr(inter, axis.inter_field) + value}
            )
        else:
            intra[axis.transistor] = intra.get(axis.transistor, 0.0) + value
    return apply_inter_die(task.technology, inter), intra


def _component_values(samples: list[MonteCarloSample], loaded: bool) -> np.ndarray:
    """Return a ``(mechanism, column)`` value matrix from solved columns."""
    return np.array(
        [
            [
                (s.with_loading if loaded else s.without_loading).component(name)
                for s in samples
            ]
            for name in _MECHANISMS
        ]
    )


def _fit_axis(ts: np.ndarray, deltas: np.ndarray) -> tuple[float, float]:
    """Fit ``delta_log_leakage ~ c1 t + c2 t**2`` (intercept pinned at 0)."""
    design = np.stack([ts, ts**2], axis=1)
    coeffs, *_ = np.linalg.lstsq(design, deltas, rcond=None)
    return float(coeffs[0]), float(coeffs[1])


def _fit_surrogate(
    center: float, stencil: np.ndarray, ts: np.ndarray, label: str
) -> _Surrogate:
    """Fit one component's diagonal surrogate from its solved stencil.

    ``stencil`` has shape ``(axes, stencil_points)``; ``ts`` holds the
    sigma-unit offsets of the stencil points (center excluded).
    """
    if center == 0.0 and not stencil.any():
        axes = stencil.shape[0]
        return _Surrogate(
            l0=-np.inf, linear=np.zeros(axes), quadratic=np.zeros(axes), zero=True
        )
    if center <= 0.0 or np.any(stencil <= 0.0):
        raise ValueError(
            f"cannot propagate moments of {label}: non-positive leakage on "
            "the characterization stencil (log-domain fit undefined)"
        )
    l0 = float(np.log(center))
    linear, quadratic = [], []
    for axis_row in stencil:
        c1, c2 = _fit_axis(ts, np.log(axis_row) - l0)
        linear.append(c1)
        quadratic.append(c2)
    return _Surrogate(l0=l0, linear=np.array(linear), quadratic=np.array(quadratic))


def _closed_form_moments(
    surrogates: dict[str, _Surrogate], truncation: float
) -> dict[str, MomentEstimate]:
    """Propagate component + total moments through the factorized integrals.

    ``E[C_i C_j]`` of two log-additive surrogates is again a product of
    per-axis :func:`clipped_gaussian_exp_moment` factors (with summed
    coefficients), which is what makes the variance of the total — the sum
    of the mechanisms — available in closed form too.
    """

    def cross(a: _Surrogate, b: _Surrogate) -> float:
        if a.zero or b.zero:
            return 0.0
        product = np.exp(a.l0 + b.l0)
        for c1, c2 in zip(a.linear + b.linear, a.quadratic + b.quadratic):
            product *= clipped_gaussian_exp_moment(float(c1), float(c2), truncation)
        return float(product)

    means = {
        name: 0.0
        if surrogate.zero
        else float(
            np.exp(surrogate.l0)
            * np.prod(
                [
                    clipped_gaussian_exp_moment(float(c1), float(c2), truncation)
                    for c1, c2 in zip(surrogate.linear, surrogate.quadratic)
                ]
            )
        )
        for name, surrogate in surrogates.items()
    }
    estimates = {}
    for name, surrogate in surrogates.items():
        second = cross(surrogate, surrogate)
        estimates[name] = MomentEstimate(
            mean=means[name],
            std=float(np.sqrt(max(second - means[name] ** 2, 0.0))),
        )
    total_mean = sum(means.values())
    total_second = sum(
        cross(surrogates[a], surrogates[b]) for a in surrogates for b in surrogates
    )
    estimates["total"] = MomentEstimate(
        mean=float(total_mean),
        std=float(np.sqrt(max(total_second - total_mean**2, 0.0))),
    )
    return estimates


def _quadrature_nodes(dimension: int, points: int, truncation: float) -> np.ndarray:
    """Return clipped-standard-normal Sobol quadrature nodes.

    Unscrambled Sobol points — fully deterministic, no random state — mapped
    through the inverse normal CDF and clipped like every variation draw.
    """
    sampler = scipy_qmc.Sobol(d=dimension, scramble=False)
    unit = sampler.random(points)
    unit = np.clip(unit, np.finfo(float).tiny, 1.0 - np.finfo(float).epsneg)
    return np.clip(ndtri(unit), -truncation, truncation)


def _quadrature_moments(
    surrogates: dict[str, _Surrogate], nodes: np.ndarray
) -> dict[str, MomentEstimate]:
    """Integrate the surrogates (cross terms included) over the node set."""
    values = {}
    for name, surrogate in surrogates.items():
        if surrogate.zero:
            values[name] = np.zeros(nodes.shape[0])
            continue
        log_leakage = (
            surrogate.l0 + nodes @ surrogate.linear + nodes**2 @ surrogate.quadratic
        )
        for (i, j), coefficient in surrogate.interactions.items():
            log_leakage = log_leakage + coefficient * nodes[:, i] * nodes[:, j]
        values[name] = np.exp(log_leakage)
    values["total"] = sum(values[name] for name in surrogates)
    return {
        name: MomentEstimate(mean=float(sample.mean()), std=float(sample.std()))
        for name, sample in values.items()
    }


def propagate_loaded_inverter_moments(
    technology: TechnologyParams,
    spec: VariationSpec | None = None,
    input_value: int = 0,
    input_loads: int = 6,
    output_loads: int = 6,
    temperature_k: float | None = None,
    solver_options: SolverOptions | None = None,
    order: int = 2,
    stencil_sigma: float = DEFAULT_STENCIL_SIGMA,
    interaction_axes: int = DEFAULT_INTERACTION_AXES,
    quadrature_points: int = DEFAULT_QUADRATURE_POINTS,
) -> MomentsResult:
    """Propagate Fig. 10 population moments from a characterized response.

    Parameters mirror
    :func:`repro.variation.montecarlo.run_loaded_inverter_monte_carlo`;
    ``order`` selects first- (linearized lognormal) or second-order
    (quadratic-in-log, default) propagation, ``stencil_sigma`` the
    characterization stencil extent in sigma units (capped at the spec's
    truncation), ``interaction_axes`` how many of the strongest axes get
    pairwise cross terms (0 disables them and keeps the propagation in
    closed form), and ``quadrature_points`` the deterministic Sobol node
    count used when cross terms are present.  Every characterization solve
    must converge — a stalled point would poison the fit, so the solves run
    under ``on_nonconverged="raise"``.
    """
    if order not in (1, 2):
        raise ValueError("order must be 1 or 2")
    if stencil_sigma <= 0.0:
        raise ValueError("stencil_sigma must be positive")
    if interaction_axes < 0:
        raise ValueError("interaction_axes must be non-negative")
    if quadrature_points < 2:
        raise ValueError("quadrature_points must be at least 2")
    task = build_sample_task(
        technology,
        spec=spec,
        input_value=input_value,
        input_loads=input_loads,
        output_loads=output_loads,
        temperature_k=temperature_k,
        solver_options=solver_options,
        on_nonconverged="raise",
    )
    transistor_names = _study_circuits(task)[3]
    axes = _axes(task, transistor_names)
    t_max = min(float(stencil_sigma), task.spec.truncation)
    ts = np.array([-t_max, -t_max / 2.0, t_max / 2.0, t_max])

    # Column 0 is the shared center; then one column per (axis, offset).
    columns = [_shift_parameters(task, [])]
    for axis in axes:
        for t in ts:
            columns.append(_shift_parameters(task, [(axis, float(t))]))
    solved = _solve_parameter_sets(task, columns)

    surrogates: dict[bool, dict[str, _Surrogate]] = {}
    for loaded in (True, False):
        values = _component_values(solved, loaded)
        stencils = values[:, 1:].reshape(len(_MECHANISMS), len(axes), ts.size)
        surrogates[loaded] = {}
        for index, component in enumerate(_MECHANISMS):
            surrogate = _fit_surrogate(
                float(values[index, 0]),
                stencils[index],
                ts,
                f"{component} ({'loaded' if loaded else 'unloaded'} structure)",
            )
            if order == 1:
                surrogate.quadratic = np.zeros_like(surrogate.quadratic)
            surrogates[loaded][component] = surrogate

    # Pairwise cross terms among the strongest axes (order 2 only): a
    # four-point 2-D probe per pair isolates the mixed second derivative
    # c_ij = (f++ - f+- - f-+ + f--) / (4 s^2) of each component's log
    # leakage.  Both structures reuse the same probe solves.
    pairs: list[tuple[int, int]] = []
    solve_columns = len(columns)
    if order == 2 and interaction_axes >= 2 and len(axes) >= 2:
        strength = np.max(
            [
                np.abs(table[component].linear)
                for table in surrogates.values()
                for component in _MECHANISMS
                if not table[component].zero
            ],
            axis=0,
        )
        top = np.argsort(-strength)[: min(interaction_axes, len(axes))]
        pairs = [(int(i), int(j)) for n, i in enumerate(top) for j in top[n + 1 :]]
        probes = []
        for i, j in pairs:
            for si, sj in ((t_max, t_max), (t_max, -t_max), (-t_max, t_max), (-t_max, -t_max)):
                probes.append(
                    _shift_parameters(task, [(axes[i], si), (axes[j], sj)])
                )
        solve_columns += len(probes)
        probe_values = {
            loaded: _component_values(_solve_parameter_sets(task, probes), loaded)
            for loaded in (True, False)
        }
        for loaded in (True, False):
            for index, component in enumerate(_MECHANISMS):
                surrogate = surrogates[loaded][component]
                if surrogate.zero:
                    continue
                for n, (i, j) in enumerate(pairs):
                    quad = probe_values[loaded][index, 4 * n : 4 * n + 4]
                    if np.any(quad <= 0.0):
                        raise ValueError(
                            f"cannot fit the ({axes[i].name}, {axes[j].name}) "
                            f"cross term of {component}: non-positive leakage "
                            "on the interaction probe"
                        )
                    fpp, fpm, fmp, fmm = np.log(quad) - surrogate.l0
                    surrogate.interactions[(i, j)] = float(
                        (fpp - fpm - fmp + fmm) / (4.0 * t_max * t_max)
                    )

    result = MomentsResult(
        spec=task.spec,
        input_value=input_value,
        input_loads=input_loads,
        output_loads=output_loads,
        order=order,
        stencil_sigma=t_max,
        solve_count=2 * solve_columns,
        axis_count=len(axes),
        interaction_pairs=len(pairs),
        method="sobol-quadrature" if pairs else "closed-form",
    )
    nodes = (
        _quadrature_nodes(len(axes), quadrature_points, task.spec.truncation)
        if pairs
        else None
    )
    for loaded in (True, False):
        table = result.loaded if loaded else result.unloaded
        if nodes is not None:
            table.update(_quadrature_moments(surrogates[loaded], nodes))
        else:
            table.update(
                _closed_form_moments(surrogates[loaded], task.spec.truncation)
            )
    return result
