"""Monte-Carlo driver for the loaded-inverter variation study (Figs. 10-11).

For every sample the driver

1. draws the inter-die shifts (L, Tox, Vth, VDD) and applies them to the
   technology,
2. flattens two structures built from that shifted technology:

   * the *loaded* inverter of Fig. 10 — an inverter ``g`` whose input net is
     shared with ``input_loads`` other inverters and whose output net feeds
     ``output_loads`` inverters, and
   * the *unloaded* twin — the same driver + inverter with no neighbours,

3. draws per-transistor intra-die Vth shifts (the shift of a transistor in
   the loaded structure is reused for its counterpart in the unloaded one,
   so the two solves differ only by the presence of loading),
4. solves both and records the leakage components of the inverter under
   study.

Two solver engines are available: ``"batched"`` (default) flattens every
sample and solves all loaded structures as one
:class:`~repro.spice.batched.BatchedDcSolver` batch (and all unloaded twins
as a second batch); ``"scalar"`` runs the original one-sample-at-a-time
reference path.  Both consume identical random streams, so they simulate
identical parameter draws and differ only at the solver-tolerance level.

The resulting paired samples are exactly what Fig. 10 histograms ("No
Loading" vs "with Loading") and Fig. 11 statistics (loading-induced change of
the mean and standard deviation) are computed from.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.circuit.flatten import flatten
from repro.circuit.generators import loaded_inverter_cluster
from repro.device.params import TechnologyParams
from repro.spice.analysis import ComponentBreakdown, leakage_by_owner
from repro.spice.batched import BatchedDcSolver
from repro.spice.solver import DcSolver, SolverOptions
from repro.utils.rng import RngLike, spawn_streams
from repro.variation.spec import (
    VariationSpec,
    apply_inter_die,
    sample_inter_die,
    sample_intra_die_vth,
)

#: Name of the inverter under study inside the generated cluster.
_TARGET_GATE = "g"


class MonteCarloConvergenceWarning(UserWarning):
    """A Monte-Carlo sample's DC solve ended without converging.

    A sample recorded from a non-converged operating point can bias the
    Fig. 10/11 statistics; the warning names the structure and the worst
    final voltage update so the offending configuration is identifiable.
    """


@dataclass(frozen=True)
class MonteCarloSample:
    """Leakage of the studied inverter for one parameter sample."""

    with_loading: ComponentBreakdown
    without_loading: ComponentBreakdown


@dataclass
class MonteCarloResult:
    """All samples of one Monte-Carlo run plus the configuration used."""

    spec: VariationSpec
    input_value: int
    input_loads: int
    output_loads: int
    samples: list[MonteCarloSample] = field(default_factory=list)
    #: Execution provenance (e.g. the supervised pool's retry ledger under
    #: ``"resilience"``); never feeds back into the sample values.
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def sample_count(self) -> int:
        """Return the number of Monte-Carlo samples."""
        return len(self.samples)

    def values(self, component: str, loaded: bool = True) -> np.ndarray:
        """Return one component's samples in amperes.

        Parameters
        ----------
        component:
            ``subthreshold`` / ``gate`` / ``btbt`` / ``total``.
        loaded:
            True for the with-loading population, False for the unloaded one.
        """
        return np.array(
            [
                (s.with_loading if loaded else s.without_loading).component(component)
                for s in self.samples
            ]
        )


def _solve_target_leakage(
    circuit,
    technology: TechnologyParams,
    input_assignment: dict[str, int],
    intra_vth: dict[str, float],
    temperature_k: float,
    solver_options: SolverOptions,
) -> ComponentBreakdown:
    """Flatten, apply per-transistor Vth shifts, solve, return gate ``g``'s leakage."""
    flattened = flatten(circuit, technology, input_assignment)
    for transistor in flattened.netlist.transistors:
        shift = intra_vth.get(transistor.name)
        if shift is not None:
            transistor.mosfet.vth_shift = shift
    solver = DcSolver(flattened.netlist, temperature_k, solver_options)
    op = solver.solve(initial_voltages=flattened.initial_voltages())
    if not op.converged:
        warnings.warn(
            f"Monte-Carlo solve of {circuit.name!r} did not converge within "
            f"{solver_options.max_sweeps} sweeps; largest final voltage "
            f"update {op.max_update:.3e} V",
            MonteCarloConvergenceWarning,
            stacklevel=3,
        )
    return leakage_by_owner(flattened.netlist, op)[_TARGET_GATE]


@dataclass(frozen=True)
class SampleTask:
    """Everything one Monte-Carlo sample needs, minus its random stream.

    The task is picklable (technology, spec and solver options are plain
    dataclasses), which is what lets :class:`repro.engine.parallel.ParallelMonteCarlo`
    ship it to process-pool workers unchanged.
    """

    technology: TechnologyParams
    spec: VariationSpec
    input_value: int
    input_loads: int
    output_loads: int
    temperature_k: float
    solver_options: SolverOptions


def _draw_sample_parameters(
    task: SampleTask,
    rng: np.random.Generator,
    loaded_flat_names: list[str],
) -> tuple[TechnologyParams, dict[str, float]]:
    """Draw one sample's shifted technology and intra-die Vth shifts.

    Shared by the scalar and batched engines so both consume a stream in
    exactly the same order (inter-die draws first, then one intra-die shift
    per transistor of the loaded structure).
    """
    inter = sample_inter_die(task.spec, rng)
    shifted = apply_inter_die(task.technology, inter)
    # The unloaded twin shares the shifts of its two gates (driver and 'g')
    # so that the only difference between the two solves is the loading.
    shifts = sample_intra_die_vth(task.spec, rng, len(loaded_flat_names))
    return shifted, dict(zip(loaded_flat_names, shifts))


def _loaded_flat_names(loaded_circuit) -> list[str]:
    """Return the flattened transistor names of the loaded structure."""
    return [
        f"{gate}.{suffix}"
        for gate in loaded_circuit.gates
        for suffix in ("mn1", "mp2")
    ]


def simulate_sample(task: SampleTask, rng: np.random.Generator) -> MonteCarloSample:
    """Run one Monte-Carlo sample, drawing everything from ``rng``.

    Sample ``i`` of a run consumes exactly stream ``i`` of
    :func:`repro.utils.rng.spawn_streams`, so the serial and parallel
    drivers produce bitwise-identical results for the same root seed.
    """
    loaded_circuit = loaded_inverter_cluster(task.input_loads, task.output_loads)
    unloaded_circuit = loaded_inverter_cluster(0, 0, name="unloaded_inverter")
    # The driver input is the complement of the studied inverter's input.
    assignment = {"in": 1 - task.input_value}

    shifted, intra = _draw_sample_parameters(
        task, rng, _loaded_flat_names(loaded_circuit)
    )

    with_loading = _solve_target_leakage(
        loaded_circuit, shifted, assignment, intra, task.temperature_k,
        task.solver_options,
    )
    without_loading = _solve_target_leakage(
        unloaded_circuit, shifted, assignment, intra, task.temperature_k,
        task.solver_options,
    )
    return MonteCarloSample(
        with_loading=with_loading, without_loading=without_loading
    )


def simulate_batch(
    task: SampleTask, streams: Sequence[np.random.Generator]
) -> list[MonteCarloSample]:
    """Run one Monte-Carlo sample per stream, solving them as two batches.

    Stream ``i`` is consumed exactly like :func:`simulate_sample` would, so
    the parameter draws are bitwise-identical to the scalar engine's; the
    flattened loaded structures of *all* samples then solve as one
    :class:`~repro.spice.batched.BatchedDcSolver` batch (the unloaded twins
    as a second one).  Because every per-column update of the batched solver
    is independent of the other columns, the result is also bitwise-identical
    however the streams are chunked — which is what lets
    :class:`repro.engine.parallel.ParallelMonteCarlo` distribute contiguous
    batches across workers without changing the answer.
    """
    loaded_circuit = loaded_inverter_cluster(task.input_loads, task.output_loads)
    unloaded_circuit = loaded_inverter_cluster(0, 0, name="unloaded_inverter")
    assignment = {"in": 1 - task.input_value}
    names = _loaded_flat_names(loaded_circuit)

    loaded_flat, unloaded_flat = [], []
    for rng in streams:
        shifted, intra = _draw_sample_parameters(task, rng, names)
        for circuit, flats in (
            (loaded_circuit, loaded_flat),
            (unloaded_circuit, unloaded_flat),
        ):
            flattened = flatten(circuit, shifted, assignment)
            for transistor in flattened.netlist.transistors:
                shift = intra.get(transistor.name)
                if shift is not None:
                    transistor.mosfet.vth_shift = shift
            flats.append(flattened)

    def solve_batch(flats, label):
        solver = BatchedDcSolver(
            [f.netlist for f in flats], task.temperature_k, task.solver_options
        )
        op = solver.solve(
            initial_voltages=[f.initial_voltages() for f in flats]
        )
        if not op.all_converged:
            bad = np.flatnonzero(~op.converged)
            warnings.warn(
                f"{bad.size} of {op.batch} Monte-Carlo {label} solves did "
                f"not converge (worst final voltage update "
                f"{float(op.max_update[bad].max()):.3e} V)",
                MonteCarloConvergenceWarning,
                stacklevel=3,
            )
        return solver.leakage_by_owner(op)[_TARGET_GATE]

    loaded_leakage = solve_batch(loaded_flat, "loaded-structure")
    unloaded_leakage = solve_batch(unloaded_flat, "unloaded-structure")
    return [
        MonteCarloSample(
            with_loading=loaded_leakage.at(index),
            without_loading=unloaded_leakage.at(index),
        )
        for index in range(len(loaded_flat))
    ]


def _simulate_batch_star(
    args: tuple[SampleTask, Sequence[np.random.Generator]]
) -> list[MonteCarloSample]:
    """Process-pool adapter: unpack the (task, stream-chunk) pair."""
    return simulate_batch(*args)


def build_sample_task(
    technology: TechnologyParams,
    spec: VariationSpec | None = None,
    input_value: int = 0,
    input_loads: int = 6,
    output_loads: int = 6,
    temperature_k: float | None = None,
    solver_options: SolverOptions | None = None,
) -> SampleTask:
    """Validate the study parameters and return the shared :class:`SampleTask`."""
    if input_value not in (0, 1):
        raise ValueError("input_value must be 0 or 1")
    if input_loads < 0 or output_loads < 0:
        raise ValueError("load counts must be non-negative")
    return SampleTask(
        technology=technology,
        spec=spec or VariationSpec(),
        input_value=input_value,
        input_loads=input_loads,
        output_loads=output_loads,
        temperature_k=(
            technology.temperature_k if temperature_k is None else float(temperature_k)
        ),
        solver_options=solver_options or SolverOptions(),
    )


def run_loaded_inverter_monte_carlo(
    technology: TechnologyParams,
    spec: VariationSpec | None = None,
    samples: int = 200,
    rng: RngLike = None,
    input_value: int = 0,
    input_loads: int = 6,
    output_loads: int = 6,
    temperature_k: float | None = None,
    solver_options: SolverOptions | None = None,
    engine: str = "batched",
) -> MonteCarloResult:
    """Run the Fig. 10 Monte-Carlo study and return the paired samples.

    Parameters
    ----------
    technology:
        Nominal technology; each sample perturbs a copy of it.
    spec:
        Variation magnitudes (defaults to the paper's Fig. 11 values).
    samples:
        Number of Monte-Carlo samples (the paper uses 10,000; the default is
        sized for interactive runs and is a parameter precisely so the full
        count can be reproduced when time allows).
    input_value:
        Logic value applied to the studied inverter's input (the paper uses
        input '0', output '1').
    input_loads / output_loads:
        Number of inverters loading the input and output nets (6 and 6 in
        Fig. 10).
    engine:
        ``"batched"`` (default) solves all samples as two batched DC solves;
        ``"scalar"`` runs the original per-sample reference path.

    Each sample draws from its own ``SeedSequence.spawn``-derived stream
    (sample ``i`` uses stream ``i``), so the result is bitwise-identical to
    :class:`repro.engine.parallel.ParallelMonteCarlo` for the same seed and
    engine.
    """
    if samples < 1:
        raise ValueError("samples must be at least 1")
    if engine not in ("batched", "scalar"):
        raise ValueError(f"unknown Monte-Carlo engine {engine!r}")
    task = build_sample_task(
        technology,
        spec=spec,
        input_value=input_value,
        input_loads=input_loads,
        output_loads=output_loads,
        temperature_k=temperature_k,
        solver_options=solver_options,
    )
    result = MonteCarloResult(
        spec=task.spec,
        input_value=input_value,
        input_loads=input_loads,
        output_loads=output_loads,
    )
    streams = spawn_streams(rng, samples)
    if engine == "batched":
        result.samples.extend(simulate_batch(task, streams))
    else:
        for stream in streams:
            result.samples.append(simulate_sample(task, stream))
    return result
