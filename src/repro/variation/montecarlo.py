"""Monte-Carlo driver for the loaded-inverter variation study (Figs. 10-11).

For every sample the driver

1. draws the inter-die shifts (L, Tox, Vth, VDD) and applies them to the
   technology,
2. flattens two structures built from that shifted technology:

   * the *loaded* inverter of Fig. 10 — an inverter ``g`` whose input net is
     shared with ``input_loads`` other inverters and whose output net feeds
     ``output_loads`` inverters, and
   * the *unloaded* twin — the same driver + inverter with no neighbours,

3. draws per-transistor intra-die Vth shifts (the shift of a transistor in
   the loaded structure is reused for its counterpart in the unloaded one,
   so the two solves differ only by the presence of loading),
4. solves both and records the leakage components of the inverter under
   study.

Two solver engines are available: ``"batched"`` (default) flattens every
sample and solves all loaded structures as one
:class:`~repro.spice.batched.BatchedDcSolver` batch (and all unloaded twins
as a second batch); ``"scalar"`` runs the original one-sample-at-a-time
reference path.  Both consume identical random streams, so they simulate
identical parameter draws and differ only at the solver-tolerance level.

Two *samplers* are available on top: ``"mc"`` (default) draws pseudo-random
parameters from per-sample ``SeedSequence.spawn`` streams; ``"qmc"`` draws
the whole parameter block from a scrambled Sobol sequence
(:mod:`repro.variation.qmc`) with the same marginal distributions — the
variance-reduced path that reaches a given Fig. 10/11 accuracy at a
fraction of the sample budget.

Sample convergence is governed by ``on_nonconverged``: ``"warn"`` (default)
records the sample and emits a :class:`MonteCarloConvergenceWarning`,
``"raise"`` turns a stalled solve into a hard ``RuntimeError``, and
``"drop"`` excludes the sample from the recorded populations (the dropped
count is reported in ``MonteCarloResult.metadata``) — so a non-converged
operating point can never silently bias the Fig. 10/11 statistics.

The resulting paired samples are exactly what Fig. 10 histograms ("No
Loading" vs "with Loading") and Fig. 11 statistics (loading-induced change of
the mean and standard deviation) are computed from.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.circuit.flatten import flatten
from repro.circuit.generators import loaded_inverter_cluster
from repro.device.params import TechnologyParams
from repro.spice.analysis import ComponentBreakdown, leakage_by_owner
from repro.spice.batched import BatchedDcSolver
from repro.spice.solver import DcSolver, SolverOptions
from repro.utils.rng import RngLike, spawn_streams
from repro.variation.qmc import ParameterDraws, draw_qmc_parameters
from repro.variation.spec import (
    VariationSpec,
    apply_inter_die,
    sample_inter_die,
    sample_intra_die_vth,
)

#: Name of the inverter under study inside the generated cluster.
_TARGET_GATE = "g"

#: Valid parameter samplers.
SAMPLERS = ("mc", "qmc")

#: Valid non-convergence policies.
NONCONVERGED_POLICIES = ("warn", "raise", "drop")


class MonteCarloConvergenceWarning(UserWarning):
    """A Monte-Carlo sample's DC solve ended without converging.

    A sample recorded from a non-converged operating point can bias the
    Fig. 10/11 statistics; the warning names the structure and the worst
    final voltage update so the offending configuration is identifiable.
    Emitted under ``on_nonconverged="warn"`` (the default); ``"raise"``
    turns the condition into a ``RuntimeError`` and ``"drop"`` excludes the
    affected samples instead.
    """


@dataclass(frozen=True)
class MonteCarloSample:
    """Leakage of the studied inverter for one parameter sample."""

    with_loading: ComponentBreakdown
    without_loading: ComponentBreakdown
    #: True when both structure solves of this sample converged.
    converged: bool = True


@dataclass
class MonteCarloResult:
    """All samples of one Monte-Carlo run plus the configuration used."""

    spec: VariationSpec
    input_value: int
    input_loads: int
    output_loads: int
    samples: list[MonteCarloSample] = field(default_factory=list)
    #: Execution provenance (e.g. the sampler used, the count of samples
    #: dropped as non-converged, the supervised pool's retry ledger under
    #: ``"resilience"``); never feeds back into the sample values.
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def sample_count(self) -> int:
        """Return the number of recorded Monte-Carlo samples."""
        return len(self.samples)

    @property
    def converged_mask(self) -> np.ndarray:
        """Return the per-sample converged flags as a boolean array.

        Under ``on_nonconverged="drop"`` non-converged samples are never
        recorded, so the mask is all-True and
        ``metadata["dropped_nonconverged"]`` carries the dropped count;
        under ``"warn"`` the mask marks the suspect samples in place.
        """
        return np.array([s.converged for s in self.samples], dtype=bool)

    def values(self, component: str, loaded: bool = True) -> np.ndarray:
        """Return one component's samples in amperes.

        Parameters
        ----------
        component:
            ``subthreshold`` / ``gate`` / ``btbt`` / ``total``.
        loaded:
            True for the with-loading population, False for the unloaded one.
        """
        return np.array(
            [
                (s.with_loading if loaded else s.without_loading).component(component)
                for s in self.samples
            ]
        )


def _check_policy(on_nonconverged: str) -> str:
    if on_nonconverged not in NONCONVERGED_POLICIES:
        raise ValueError(
            f"on_nonconverged must be one of {NONCONVERGED_POLICIES}, "
            f"got {on_nonconverged!r}"
        )
    return on_nonconverged


def _handle_nonconvergence(policy: str, message: str, stacklevel: int) -> None:
    """Apply the non-convergence policy for one solve (or batch of solves)."""
    if policy == "raise":
        raise RuntimeError(message)
    if policy == "warn":
        warnings.warn(message, MonteCarloConvergenceWarning, stacklevel=stacklevel)
    # "drop": the caller excludes the affected samples; nothing to emit.


def _solve_target_leakage(
    circuit,
    technology: TechnologyParams,
    input_assignment: dict[str, int],
    intra_vth: dict[str, float],
    temperature_k: float,
    solver_options: SolverOptions,
    on_nonconverged: str = "warn",
) -> tuple[ComponentBreakdown, bool]:
    """Flatten, apply per-transistor Vth shifts, solve, return gate ``g``'s leakage.

    Returns ``(breakdown, converged)``; the non-convergence policy is
    applied here for ``"warn"``/``"raise"`` (the caller drops).
    """
    flattened = flatten(circuit, technology, input_assignment)
    for transistor in flattened.netlist.transistors:
        shift = intra_vth.get(transistor.name)
        if shift is not None:
            transistor.mosfet.vth_shift = shift
    solver = DcSolver(flattened.netlist, temperature_k, solver_options)
    op = solver.solve(initial_voltages=flattened.initial_voltages())
    if not op.converged:
        _handle_nonconvergence(
            on_nonconverged,
            f"Monte-Carlo solve of {circuit.name!r} did not converge within "
            f"{solver_options.max_sweeps} sweeps; largest final voltage "
            f"update {op.max_update:.3e} V",
            stacklevel=4,
        )
    return leakage_by_owner(flattened.netlist, op)[_TARGET_GATE], bool(op.converged)


@dataclass(frozen=True)
class SampleTask:
    """Everything one Monte-Carlo sample needs, minus its random stream.

    The task is picklable (technology, spec and solver options are plain
    dataclasses), which is what lets :class:`repro.engine.parallel.ParallelMonteCarlo`
    ship it to process-pool workers unchanged.
    """

    technology: TechnologyParams
    spec: VariationSpec
    input_value: int
    input_loads: int
    output_loads: int
    temperature_k: float
    solver_options: SolverOptions
    on_nonconverged: str = "warn"


def _draw_sample_parameters(
    task: SampleTask,
    rng: np.random.Generator,
    loaded_flat_names: list[str],
) -> tuple[TechnologyParams, dict[str, float]]:
    """Draw one sample's shifted technology and intra-die Vth shifts.

    Shared by the scalar and batched engines so both consume a stream in
    exactly the same order (inter-die draws first, then one intra-die shift
    per transistor of the loaded structure).
    """
    inter = sample_inter_die(task.spec, rng)
    shifted = apply_inter_die(task.technology, inter)
    # The unloaded twin shares the shifts of its two gates (driver and 'g')
    # so that the only difference between the two solves is the loading.
    shifts = sample_intra_die_vth(task.spec, rng, len(loaded_flat_names))
    return shifted, dict(zip(loaded_flat_names, shifts))


def _draws_sample_parameters(
    task: SampleTask,
    draws: ParameterDraws,
    index: int,
    loaded_flat_names: list[str],
) -> tuple[TechnologyParams, dict[str, float]]:
    """Return sample ``index``'s pre-drawn shifted technology and Vth shifts."""
    shifted = apply_inter_die(task.technology, draws.inter_die(index))
    return shifted, dict(zip(loaded_flat_names, draws.intra_vth(index)))


def _loaded_flat_names(loaded_circuit) -> list[str]:
    """Return the flattened transistor names of the loaded structure."""
    return [
        f"{gate}.{suffix}"
        for gate in loaded_circuit.gates
        for suffix in ("mn1", "mp2")
    ]


def loaded_transistor_count(input_loads: int, output_loads: int) -> int:
    """Return the intra-die axis count of the Fig. 10 loaded structure.

    One Vth shift per flattened transistor — the Sobol dimension budget of
    the QMC sampler beyond the four inter-die axes.
    """
    return len(_loaded_flat_names(loaded_inverter_cluster(input_loads, output_loads)))


def _study_circuits(task: SampleTask):
    """Return (loaded circuit, unloaded twin, input assignment, flat names)."""
    loaded_circuit = loaded_inverter_cluster(task.input_loads, task.output_loads)
    unloaded_circuit = loaded_inverter_cluster(0, 0, name="unloaded_inverter")
    # The driver input is the complement of the studied inverter's input.
    assignment = {"in": 1 - task.input_value}
    return loaded_circuit, unloaded_circuit, assignment, _loaded_flat_names(loaded_circuit)


def _simulate_one(
    task: SampleTask,
    shifted: TechnologyParams,
    intra: dict[str, float],
    circuits,
) -> MonteCarloSample:
    """Solve one sample's loaded and unloaded structures through the scalar path."""
    loaded_circuit, unloaded_circuit, assignment, _ = circuits
    with_loading, loaded_ok = _solve_target_leakage(
        loaded_circuit, shifted, assignment, intra, task.temperature_k,
        task.solver_options, task.on_nonconverged,
    )
    without_loading, unloaded_ok = _solve_target_leakage(
        unloaded_circuit, shifted, assignment, intra, task.temperature_k,
        task.solver_options, task.on_nonconverged,
    )
    return MonteCarloSample(
        with_loading=with_loading,
        without_loading=without_loading,
        converged=loaded_ok and unloaded_ok,
    )


def simulate_sample(task: SampleTask, rng: np.random.Generator) -> MonteCarloSample:
    """Run one Monte-Carlo sample, drawing everything from ``rng``.

    Sample ``i`` of a run consumes exactly stream ``i`` of
    :func:`repro.utils.rng.spawn_streams`, so the serial and parallel
    drivers produce bitwise-identical results for the same root seed.
    """
    circuits = _study_circuits(task)
    shifted, intra = _draw_sample_parameters(task, rng, circuits[3])
    return _simulate_one(task, shifted, intra, circuits)


def _solve_parameter_sets(
    task: SampleTask,
    parameter_sets: list[tuple[TechnologyParams, dict[str, float]]],
) -> list[MonteCarloSample]:
    """Solve a block of pre-drawn parameter sets as two batched DC solves.

    The shared engine of :func:`simulate_batch` (stream-drawn parameters)
    and :func:`simulate_batch_from_draws` (Sobol-drawn parameters): every
    per-column update of the batched solver is independent of the other
    columns, so the result is bitwise-identical however the parameter sets
    are chunked across workers.
    """
    loaded_circuit, unloaded_circuit, assignment, _ = _study_circuits(task)

    loaded_flat, unloaded_flat = [], []
    for shifted, intra in parameter_sets:
        for circuit, flats in (
            (loaded_circuit, loaded_flat),
            (unloaded_circuit, unloaded_flat),
        ):
            flattened = flatten(circuit, shifted, assignment)
            for transistor in flattened.netlist.transistors:
                shift = intra.get(transistor.name)
                if shift is not None:
                    transistor.mosfet.vth_shift = shift
            flats.append(flattened)

    def solve_batch(flats, label):
        solver = BatchedDcSolver(
            [f.netlist for f in flats], task.temperature_k, task.solver_options
        )
        op = solver.solve(
            initial_voltages=[f.initial_voltages() for f in flats]
        )
        if not op.all_converged:
            bad = np.flatnonzero(~op.converged)
            _handle_nonconvergence(
                task.on_nonconverged,
                f"{bad.size} of {op.batch} Monte-Carlo {label} solves did "
                f"not converge (worst final voltage update "
                f"{float(op.max_update[bad].max()):.3e} V)",
                stacklevel=5,
            )
        return solver.leakage_by_owner(op)[_TARGET_GATE], np.asarray(op.converged, bool)

    loaded_leakage, loaded_ok = solve_batch(loaded_flat, "loaded-structure")
    unloaded_leakage, unloaded_ok = solve_batch(unloaded_flat, "unloaded-structure")
    return [
        MonteCarloSample(
            with_loading=loaded_leakage.at(index),
            without_loading=unloaded_leakage.at(index),
            converged=bool(loaded_ok[index] and unloaded_ok[index]),
        )
        for index in range(len(loaded_flat))
    ]


def _keep_converged(
    task: SampleTask, samples: list[MonteCarloSample]
) -> list[MonteCarloSample]:
    """Apply the ``"drop"`` policy: exclude non-converged samples."""
    if task.on_nonconverged != "drop":
        return samples
    return [sample for sample in samples if sample.converged]


def simulate_batch(
    task: SampleTask, streams: Sequence[np.random.Generator]
) -> list[MonteCarloSample]:
    """Run one Monte-Carlo sample per stream, solving them as two batches.

    Stream ``i`` is consumed exactly like :func:`simulate_sample` would, so
    the parameter draws are bitwise-identical to the scalar engine's; the
    flattened loaded structures of *all* samples then solve as one
    :class:`~repro.spice.batched.BatchedDcSolver` batch (the unloaded twins
    as a second one).  Because every per-column update of the batched solver
    is independent of the other columns, the result is also bitwise-identical
    however the streams are chunked — which is what lets
    :class:`repro.engine.parallel.ParallelMonteCarlo` distribute contiguous
    batches across workers without changing the answer.
    """
    names = _loaded_flat_names(loaded_inverter_cluster(task.input_loads, task.output_loads))
    parameter_sets = [
        _draw_sample_parameters(task, rng, names) for rng in streams
    ]
    return _keep_converged(task, _solve_parameter_sets(task, parameter_sets))


def simulate_batch_from_draws(
    task: SampleTask, draws: ParameterDraws
) -> list[MonteCarloSample]:
    """Run one sample per pre-drawn parameter row, solving them as two batches.

    The quasi-Monte-Carlo twin of :func:`simulate_batch`: the parameters
    were drawn up front (:func:`repro.variation.qmc.draw_qmc_parameters`),
    so workers receive :meth:`~repro.variation.qmc.ParameterDraws.slice`
    blocks and chunking can never change which parameters a sample gets.
    """
    names = _loaded_flat_names(loaded_inverter_cluster(task.input_loads, task.output_loads))
    if draws.transistor_count != len(names):
        raise ValueError(
            f"draws carry {draws.transistor_count} intra-die axes but the "
            f"loaded structure has {len(names)} transistors"
        )
    parameter_sets = [
        _draws_sample_parameters(task, draws, index, names)
        for index in range(draws.sample_count)
    ]
    return _keep_converged(task, _solve_parameter_sets(task, parameter_sets))


def simulate_samples_from_draws(
    task: SampleTask, draws: ParameterDraws
) -> list[MonteCarloSample]:
    """Scalar-engine twin of :func:`simulate_batch_from_draws` (one solve each)."""
    circuits = _study_circuits(task)
    names = circuits[3]
    if draws.transistor_count != len(names):
        raise ValueError(
            f"draws carry {draws.transistor_count} intra-die axes but the "
            f"loaded structure has {len(names)} transistors"
        )
    samples = []
    for index in range(draws.sample_count):
        shifted, intra = _draws_sample_parameters(task, draws, index, names)
        samples.append(_simulate_one(task, shifted, intra, circuits))
    return _keep_converged(task, samples)


def _simulate_batch_star(
    args: tuple[SampleTask, Sequence[np.random.Generator]]
) -> list[MonteCarloSample]:
    """Process-pool adapter: unpack the (task, stream-chunk) pair."""
    return simulate_batch(*args)


def _simulate_draws_batch_star(
    args: tuple[SampleTask, ParameterDraws]
) -> list[MonteCarloSample]:
    """Process-pool adapter: solve one pre-drawn parameter block as a batch."""
    return simulate_batch_from_draws(*args)


def _simulate_draws_scalar_star(
    args: tuple[SampleTask, ParameterDraws]
) -> list[MonteCarloSample]:
    """Process-pool adapter: solve one pre-drawn block sample by sample."""
    return simulate_samples_from_draws(*args)


def build_sample_task(
    technology: TechnologyParams,
    spec: VariationSpec | None = None,
    input_value: int = 0,
    input_loads: int = 6,
    output_loads: int = 6,
    temperature_k: float | None = None,
    solver_options: SolverOptions | None = None,
    on_nonconverged: str = "warn",
) -> SampleTask:
    """Validate the study parameters and return the shared :class:`SampleTask`."""
    if input_value not in (0, 1):
        raise ValueError("input_value must be 0 or 1")
    if input_loads < 0 or output_loads < 0:
        raise ValueError("load counts must be non-negative")
    return SampleTask(
        technology=technology,
        spec=spec or VariationSpec(),
        input_value=input_value,
        input_loads=input_loads,
        output_loads=output_loads,
        temperature_k=(
            technology.temperature_k if temperature_k is None else float(temperature_k)
        ),
        solver_options=solver_options or SolverOptions(),
        on_nonconverged=_check_policy(on_nonconverged),
    )


def _result_metadata(
    sampler: str, task: SampleTask, requested: int, recorded: int
) -> dict[str, object]:
    """Return the provenance metadata of one run (sampler, dropped count)."""
    metadata: dict[str, object] = {"sampler": sampler}
    if task.on_nonconverged == "drop":
        metadata["dropped_nonconverged"] = requested - recorded
    return metadata


def run_loaded_inverter_monte_carlo(
    technology: TechnologyParams,
    spec: VariationSpec | None = None,
    samples: int = 200,
    rng: RngLike = None,
    input_value: int = 0,
    input_loads: int = 6,
    output_loads: int = 6,
    temperature_k: float | None = None,
    solver_options: SolverOptions | None = None,
    engine: str = "batched",
    sampler: str = "mc",
    on_nonconverged: str = "warn",
) -> MonteCarloResult:
    """Run the Fig. 10 Monte-Carlo study and return the paired samples.

    Parameters
    ----------
    technology:
        Nominal technology; each sample perturbs a copy of it.
    spec:
        Variation magnitudes (defaults to the paper's Fig. 11 values).
    samples:
        Number of Monte-Carlo samples (the paper uses 10,000; the default is
        sized for interactive runs and is a parameter precisely so the full
        count can be reproduced when time allows).  With ``sampler="qmc"``
        prefer powers of two (Sobol balance).
    input_value:
        Logic value applied to the studied inverter's input (the paper uses
        input '0', output '1').
    input_loads / output_loads:
        Number of inverters loading the input and output nets (6 and 6 in
        Fig. 10).
    engine:
        ``"batched"`` (default) solves all samples as two batched DC solves;
        ``"scalar"`` runs the original per-sample reference path.
    sampler:
        ``"mc"`` (default) draws pseudo-random parameters from per-sample
        spawned streams; ``"qmc"`` draws the whole block from a scrambled
        Sobol sequence seeded through the same root rng (variance-reduced,
        same marginal distributions).
    on_nonconverged:
        ``"warn"`` (default) records non-converged samples and warns;
        ``"raise"`` errors out; ``"drop"`` excludes them (count reported in
        ``metadata["dropped_nonconverged"]``).

    With ``sampler="mc"`` each sample draws from its own
    ``SeedSequence.spawn``-derived stream (sample ``i`` uses stream ``i``);
    with ``sampler="qmc"`` the whole parameter block is drawn up front and
    sliced.  Either way the result is bitwise-identical to
    :class:`repro.engine.parallel.ParallelMonteCarlo` for the same seed,
    engine and sampler.
    """
    if samples < 1:
        raise ValueError("samples must be at least 1")
    if engine not in ("batched", "scalar"):
        raise ValueError(f"unknown Monte-Carlo engine {engine!r}")
    if sampler not in SAMPLERS:
        raise ValueError(f"unknown sampler {sampler!r}; expected one of {SAMPLERS}")
    task = build_sample_task(
        technology,
        spec=spec,
        input_value=input_value,
        input_loads=input_loads,
        output_loads=output_loads,
        temperature_k=temperature_k,
        solver_options=solver_options,
        on_nonconverged=on_nonconverged,
    )
    if sampler == "qmc":
        draws = draw_qmc_parameters(
            task.spec, samples, loaded_transistor_count(input_loads, output_loads), rng
        )
        if engine == "batched":
            collected = simulate_batch_from_draws(task, draws)
        else:
            collected = simulate_samples_from_draws(task, draws)
    else:
        streams = spawn_streams(rng, samples)
        if engine == "batched":
            collected = simulate_batch(task, streams)
        else:
            collected = _keep_converged(
                task, [simulate_sample(task, stream) for stream in streams]
            )
    return MonteCarloResult(
        spec=task.spec,
        input_value=input_value,
        input_loads=input_loads,
        output_loads=output_loads,
        samples=collected,
        metadata=_result_metadata(sampler, task, samples, len(collected)),
    )
