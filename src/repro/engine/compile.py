"""Circuit + library compilation for the batched campaign engine.

The scalar :class:`~repro.core.estimator.LoadingAwareEstimator` re-walks the
gate-level netlist and re-queries the characterized library for every single
input vector.  For campaign workloads (Fig. 12 runs 100 vectors per circuit,
minimum-leakage-vector search evaluates hundreds to thousands) nearly all of
that work is vector-independent: the topological order, the pin wiring, and
the characterized LUT grids never change.  Compilation hoists it out:

* every gate type present in the circuit is flattened into a
  :class:`GateTypeTable` — truth table, nominal components, per-pin
  injections and per-pin response curves as dense NumPy arrays indexed by the
  packed input vector;
* the circuit is levelized and grouped by (level, gate type) so logic values
  propagate for a whole campaign at once as bit-matrix gathers;
* all receiver pins are laid out as flat arrays so per-net loading currents
  accumulate with one ``np.add.at`` instead of a Python dict walk per vector.

The resulting :class:`CompiledCircuit` answers an entire vector set in a few
array passes (see :mod:`repro.engine.campaign`) and is cached per
(circuit structure, library) by :func:`compile_circuit`.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.circuit.graph import levelize
from repro.circuit.netlist import Circuit
from repro.gates.characterize import GateLibrary
from repro.gates.lut import COMPONENT_NAMES

#: Number of leakage components tracked per gate (sub, gate, btbt).
N_COMPONENTS = len(COMPONENT_NAMES)


@dataclass(frozen=True)
class GateTypeTable:
    """Flattened characterization of one gate type (all input vectors).

    Attributes
    ----------
    name:
        Lowercase gate-type name.
    num_inputs:
        Number of input pins ``k``; tables are indexed by the packed vector
        ``sum(bit[i] << (k - 1 - i))`` (first pin is the most significant
        bit, matching :meth:`GateSpec.all_vectors` order).
    truth:
        ``(2**k,)`` output bit per packed vector.
    nominal:
        ``(2**k, 3)`` unloaded leakage components.
    pin_injection:
        ``(2**k, k)`` signed current each input pin injects into its net (A).
    grid:
        ``(G,)`` shared signed injection grid of the response curves.
    response:
        ``(2**k, k + 1, G, 3)`` leakage components versus injected current,
        per packed vector and per pin (input pins first, output pin last).
        Rows without a characterized response are zero-filled and flagged in
        ``has_response``.
    has_response:
        ``(2**k, k + 1)`` mask of characterized (vector, pin) responses.
    """

    name: str
    num_inputs: int
    truth: np.ndarray
    nominal: np.ndarray
    pin_injection: np.ndarray
    grid: np.ndarray
    response: np.ndarray
    has_response: np.ndarray

    @property
    def num_pins(self) -> int:
        """Return the number of characterizable pins (inputs plus output)."""
        return self.num_inputs + 1


def _build_type_table(library: GateLibrary, gate_type_name: str) -> GateTypeTable:
    """Flatten every vector of one gate type into a :class:`GateTypeTable`."""
    spec = library.spec(gate_type_name)
    k = spec.num_inputs
    vectors = spec.all_vectors()
    n_vectors = len(vectors)
    pins = list(spec.inputs) + [spec.output]

    truth = np.zeros(n_vectors, dtype=np.uint8)
    nominal = np.zeros((n_vectors, N_COMPONENTS))
    pin_injection = np.zeros((n_vectors, k))
    has_response = np.zeros((n_vectors, len(pins)), dtype=bool)

    grid: np.ndarray | None = None
    curves: dict[tuple[int, int], np.ndarray] = {}
    for index, vector in enumerate(vectors):
        record = library.characterization(spec.gate_type, vector)
        truth[index] = spec.evaluate(vector)
        nominal[index] = record.nominal_array()
        for j, pin in enumerate(spec.inputs):
            pin_injection[index, j] = record.pin_injection[pin]
        for p, pin in enumerate(pins):
            curve = record.responses.get(pin)
            if curve is None:
                continue
            if grid is None:
                grid = curve.injections
            elif not np.array_equal(grid, curve.injections):
                raise ValueError(
                    f"engine requires a shared injection grid per gate type; "
                    f"{spec.name} vector {record.vector_label} pin {pin!r} differs"
                )
            curves[(index, p)] = curve.component_matrix()
            has_response[index, p] = True

    if grid is None:
        # No characterized responses at all (only possible with exotic
        # characterization options); keep a valid 2-point dummy grid.
        grid = np.array([-1.0, 1.0])
    response = np.zeros((n_vectors, len(pins), grid.size, N_COMPONENTS))
    for (index, p), matrix in curves.items():
        response[index, p] = matrix

    return GateTypeTable(
        name=spec.name,
        num_inputs=k,
        truth=truth,
        nominal=nominal,
        pin_injection=pin_injection,
        grid=np.asarray(grid, dtype=float),
        response=response,
        has_response=has_response,
    )


@dataclass(frozen=True)
class _GateGroup:
    """Gates of one type processed together (one gather per array pass).

    ``pin_slice`` addresses the group's input pins inside the compiled
    flat pin arrays (all ``len(gates) * k`` of them, gate-major).
    """

    type_index: int
    gate_indices: np.ndarray
    input_nets: np.ndarray
    output_nets: np.ndarray
    pin_slice: slice


class CompiledCircuit:
    """A circuit + characterized library flattened for batched evaluation.

    Instances are built by :func:`compile_circuit`; the heavy lifting of a
    campaign run lives in :meth:`repro.engine.campaign.run_compiled`, which
    consumes the arrays assembled here.
    """

    def __init__(
        self, circuit: Circuit, library: GateLibrary, lint: str = "raise"
    ) -> None:
        # Pre-flight: reject a malformed circuit (floating nets, cycles,
        # arity mismatches, ...) with the full structured finding list
        # before any table is built or solver touched.  ``lint="warn"``
        # downgrades to warnings, ``lint="off"`` restores the bare
        # ``validate()`` behavior.
        from repro.analysis import preflight_circuit

        preflight_circuit(circuit, lint=lint)
        circuit.validate()
        self.circuit = circuit
        self.vdd = library.vdd
        self.temperature_k = library.temperature_k

        # --- net numbering ------------------------------------------------ #
        self.net_names: list[str] = circuit.nets()
        self.net_index: dict[str, int] = {
            name: i for i, name in enumerate(self.net_names)
        }
        self.n_nets = len(self.net_names)
        self.pi_indices = np.array(
            [self.net_index[net] for net in circuit.primary_inputs], dtype=np.intp
        )
        self.pi_mask = np.zeros(self.n_nets, dtype=bool)
        self.pi_mask[self.pi_indices] = True

        # --- gate numbering (levelized order) ----------------------------- #
        levels = levelize(circuit)
        self.gate_names: list[str] = sorted(
            circuit.gates, key=lambda name: (levels[name], name)
        )
        gate_order = {name: g for g, name in enumerate(self.gate_names)}
        self.n_gates = len(self.gate_names)

        # --- per-type LUT tables ------------------------------------------ #
        type_names = sorted(
            {gate.gate_type.value for gate in circuit.gates.values()}
        )
        self.tables: list[GateTypeTable] = [
            _build_type_table(library, name) for name in type_names
        ]
        type_of = {table.name: t for t, table in enumerate(self.tables)}

        self.gate_type_index = np.zeros(self.n_gates, dtype=np.intp)
        self.gate_output_net = np.zeros(self.n_gates, dtype=np.intp)
        for name, gate in circuit.gates.items():
            g = gate_order[name]
            self.gate_type_index[g] = type_of[gate.gate_type.value]
            self.gate_output_net[g] = self.net_index[gate.output]

        # --- (level, type) groups for propagation, type groups for LUTs -- #
        def _group(names: list[str], pin_base: int) -> tuple[_GateGroup, int]:
            indices = np.array([gate_order[n] for n in names], dtype=np.intp)
            first = circuit.gates[names[0]]
            k = first.spec.num_inputs
            inputs = np.array(
                [
                    [self.net_index[net] for net in circuit.gates[n].inputs]
                    for n in names
                ],
                dtype=np.intp,
            ).reshape(len(names), k)
            outputs = np.array(
                [self.net_index[circuit.gates[n].output] for n in names],
                dtype=np.intp,
            )
            count = len(names) * k
            group = _GateGroup(
                type_index=type_of[first.gate_type.value],
                gate_indices=indices,
                input_nets=inputs,
                output_nets=outputs,
                pin_slice=slice(pin_base, pin_base + count),
            )
            return group, pin_base + count

        by_level_type: dict[tuple[int, int], list[str]] = {}
        for name in self.gate_names:
            key = (levels[name], type_of[circuit.gates[name].gate_type.value])
            by_level_type.setdefault(key, []).append(name)
        self.level_groups: list[_GateGroup] = []
        for key in sorted(by_level_type):
            group, _ = _group(by_level_type[key], 0)
            self.level_groups.append(group)

        by_type: dict[int, list[str]] = {}
        for name in self.gate_names:
            by_type.setdefault(type_of[circuit.gates[name].gate_type.value], []).append(
                name
            )
        self.type_groups: list[_GateGroup] = []
        pin_base = 0
        for t in sorted(by_type):
            group, pin_base = _group(by_type[t], pin_base)
            self.type_groups.append(group)
        self.n_pins = pin_base

        #: Net index of every flat input pin (gate-major inside each group).
        self.pin_net = np.zeros(self.n_pins, dtype=np.intp)
        #: Gate index of every flat input pin.
        self.pin_gate = np.zeros(self.n_pins, dtype=np.intp)
        for group in self.type_groups:
            self.pin_net[group.pin_slice] = group.input_nets.reshape(-1)
            k = self.tables[group.type_index].num_inputs
            self.pin_gate[group.pin_slice] = np.repeat(group.gate_indices, k)
        #: Flat pins sitting on primary-input nets carry no loading.
        self.pin_on_pi = self.pi_mask[self.pin_net]
        #: Dense (gate, net) group id per flat pin: pins of one gate tied to
        #: one net share a group, so the loading computation can subtract a
        #: gate's *whole* own injection on the net (a gate must never appear
        #: as loading on itself, even with tied inputs).
        _, self.pin_group = np.unique(
            self.pin_gate * np.intp(self.n_nets) + self.pin_net, return_inverse=True
        )
        self.n_pin_groups = int(self.pin_group.max()) + 1 if self.n_pins else 0
        #: With no tied inputs every group holds exactly one pin and the
        #: campaign keeps the cheaper per-pin subtraction.
        self.has_tied_inputs = self.n_pin_groups != self.n_pins

    # ------------------------------------------------------------------ #
    # queries used by campaign running and report materialization
    # ------------------------------------------------------------------ #
    def table_of_gate(self, g: int) -> GateTypeTable:
        """Return the LUT table of gate index ``g``."""
        return self.tables[self.gate_type_index[g]]

    def unpack_vector(self, g: int, packed: int) -> tuple[int, ...]:
        """Return the input-bit tuple of gate ``g`` for a packed vector."""
        k = self.table_of_gate(g).num_inputs
        return tuple((int(packed) >> (k - 1 - j)) & 1 for j in range(k))

    def validate_assignments(
        self, assignments: list[dict[str, int]]
    ) -> np.ndarray:
        """Return the primary-input bit matrix ``(n_pi, n_vectors)``.

        Mirrors the checks of :func:`repro.circuit.logic.propagate`: every
        primary input must be assigned and no extra nets may appear.
        """
        pi_set = set(self.circuit.primary_inputs)
        bits = np.zeros((len(pi_set), len(assignments)), dtype=np.uint8)
        for v, assignment in enumerate(assignments):
            missing = [pi for pi in self.circuit.primary_inputs if pi not in assignment]
            if missing:
                raise KeyError(f"unassigned primary inputs: {missing[:10]}")
            extra = [net for net in assignment if net not in pi_set]
            if extra:
                raise KeyError(f"assignment names non-primary-input nets: {extra[:10]}")
            for i, pi in enumerate(self.circuit.primary_inputs):
                bits[i, v] = 1 if assignment[pi] else 0
        return bits


def _fingerprint(circuit: Circuit) -> tuple:
    """Return a structural key of ``circuit`` (stable across copies)."""
    return (
        circuit.name,
        tuple(circuit.primary_inputs),
        tuple(
            (gate.name, gate.gate_type.value, gate.inputs, gate.output)
            for gate in circuit.gates.values()
        ),
    )


#: Default entry bound of a :class:`CompileCache`.  Compiled circuits carry
#: dense response tensors (every gate type's full (vector, pin, grid, 3)
#: table), so the bound exists to keep a long-lived session from growing
#: without limit — 128 distinct (circuit, library) pairs is far beyond any
#: current workload while still capping worst-case memory.
DEFAULT_COMPILE_CACHE_SIZE = 128


@dataclass(frozen=True)
class CompileCacheInfo:
    """Counters of one :class:`CompileCache` (``functools.cache_info`` style).

    ``hits``/``misses`` count lookups, ``evictions`` counts entries dropped
    — by the LRU bound or because their library was garbage-collected — and
    ``entries``/``maxsize`` describe the current occupancy.
    """

    hits: int
    misses: int
    evictions: int
    entries: int
    maxsize: int

    def as_dict(self) -> dict[str, int]:
        """Return the counters as a plain dict (stats/JSON surfaces)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "maxsize": self.maxsize,
        }


class CompileCache:
    """Bounded LRU of :class:`CompiledCircuit` keyed by (library, structure).

    The cache the sessions of :mod:`repro.service` are built around: a
    long-lived object owning the compiled-circuit store that used to be a
    module-level detail, with ``cache_info()`` counters so its behavior is
    observable.  Keys pair the *identity* of a :class:`GateLibrary` (held
    weakly — dropping a library frees its compiled circuits) with the
    structural circuit fingerprint, so structural copies share one entry.

    All operations are serialized by an internal lock, including the
    compile itself: concurrent lookups of the same key must not
    characterize the same (gate type, vector) twice through
    ``GateLibrary``'s non-thread-safe lazy cache, and a compile is far too
    expensive to risk duplicating.  This is what lets the coalescing
    front-end of :class:`repro.service.EstimationSession` accept requests
    from many threads.
    """

    def __init__(self, maxsize: int = DEFAULT_COMPILE_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self._maxsize = int(maxsize)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[int, tuple], CompiledCircuit] = OrderedDict()
        #: Keep one weak reference per live library so its entries are
        #: purged when the library is collected (the old WeakKeyDictionary
        #: semantics, preserved under the flat LRU keying).
        self._library_refs: dict[int, weakref.ref] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def maxsize(self) -> int:
        """Return the LRU entry bound."""
        return self._maxsize

    def cache_info(self) -> CompileCacheInfo:
        """Return a snapshot of the hit/miss/eviction/occupancy counters."""
        with self._lock:
            return CompileCacheInfo(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                maxsize=self._maxsize,
            )

    def get_or_compile(
        self, circuit: Circuit, library: GateLibrary, lint: str = "raise"
    ) -> CompiledCircuit:
        """Return the cached compile of ``(circuit, library)``, building it once.

        A hit returns the previously linted instance as-is; a miss compiles
        under the cache lock (see the class docstring for why) and may
        evict the least-recently-used entry once the bound is reached.
        """
        key = (id(library), _fingerprint(circuit))
        with self._lock:
            compiled = self._entries.get(key)
            if compiled is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return compiled
            self._misses += 1
            compiled = CompiledCircuit(circuit, library, lint=lint)
            self._remember_library(library)
            self._entries[key] = compiled
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
            return compiled

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._library_refs.clear()
            self._hits = self._misses = self._evictions = 0

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _remember_library(self, library: GateLibrary) -> None:
        """Register a purge-on-collect weak reference for ``library``."""
        library_id = id(library)
        if library_id in self._library_refs:
            return

        def _purge(_ref: weakref.ref, cache: "CompileCache" = self) -> None:
            with cache._lock:
                cache._library_refs.pop(library_id, None)
                stale = [k for k in cache._entries if k[0] == library_id]
                for k in stale:
                    del cache._entries[k]
                    cache._evictions += 1

        self._library_refs[library_id] = weakref.ref(library, _purge)


#: Process-default compile cache shared by :func:`compile_circuit` callers
#: and :func:`repro.service.default_session`, so legacy direct compiles and
#: session-routed estimation hit the same warm entries.
_DEFAULT_CACHE = CompileCache()


def default_compile_cache() -> CompileCache:
    """Return the process-default :class:`CompileCache`."""
    return _DEFAULT_CACHE


def compile_cache_info() -> CompileCacheInfo:
    """Return the default cache's :meth:`CompileCache.cache_info`."""
    return _DEFAULT_CACHE.cache_info()


def compile_circuit(
    circuit: Circuit,
    library: GateLibrary,
    cache: bool = True,
    lint: str = "raise",
    store: CompileCache | None = None,
) -> CompiledCircuit:
    """Return the (cached) :class:`CompiledCircuit` for ``(circuit, library)``.

    The cache key is the circuit *structure* (name, primary inputs, gate
    list), so structural copies reuse the same compiled arrays.  Compiling
    characterizes every input vector of every gate type present in the
    circuit — the one-time "characterize once, answer campaigns as lookups"
    cost.  Pass ``cache=False`` to force a fresh compile (e.g. after
    mutating a library's records in place); ``store`` selects which
    :class:`CompileCache` answers the lookup (default: the shared
    process-default cache — long-lived :class:`repro.service.EstimationSession`
    objects pass their own).

    ``lint`` is the netlist pre-flight policy
    (:func:`repro.analysis.preflight_circuit`): ``"raise"`` (default)
    rejects malformed circuits with a structured
    :class:`~repro.analysis.NetlistLintError` before any compilation work,
    ``"warn"`` downgrades findings to warnings, ``"off"`` skips linting.
    The pre-flight runs when a circuit is actually compiled; a cache hit
    returns the previously linted instance as-is.
    """
    if not cache:
        return CompiledCircuit(circuit, library, lint=lint)
    return (store or _DEFAULT_CACHE).get_or_compile(circuit, library, lint=lint)


def clear_compile_cache() -> None:
    """Drop every entry of the default cache and reset its counters."""
    _DEFAULT_CACHE.clear()
