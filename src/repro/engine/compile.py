"""Circuit + library compilation for the batched campaign engine.

The scalar :class:`~repro.core.estimator.LoadingAwareEstimator` re-walks the
gate-level netlist and re-queries the characterized library for every single
input vector.  For campaign workloads (Fig. 12 runs 100 vectors per circuit,
minimum-leakage-vector search evaluates hundreds to thousands) nearly all of
that work is vector-independent: the topological order, the pin wiring, and
the characterized LUT grids never change.  Compilation hoists it out:

* every gate type present in the circuit is flattened into a
  :class:`GateTypeTable` — truth table, nominal components, per-pin
  injections and per-pin response curves as dense NumPy arrays indexed by the
  packed input vector;
* the circuit is levelized and grouped by (level, gate type) so logic values
  propagate for a whole campaign at once as bit-matrix gathers;
* all receiver pins are laid out as flat arrays so per-net loading currents
  accumulate with one ``np.add.at`` instead of a Python dict walk per vector.

The resulting :class:`CompiledCircuit` answers an entire vector set in a few
array passes (see :mod:`repro.engine.campaign`) and is cached per
(circuit structure, library) by :func:`compile_circuit`.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from repro.circuit.graph import levelize
from repro.circuit.netlist import Circuit
from repro.gates.characterize import GateLibrary
from repro.gates.lut import COMPONENT_NAMES

#: Number of leakage components tracked per gate (sub, gate, btbt).
N_COMPONENTS = len(COMPONENT_NAMES)


@dataclass(frozen=True)
class GateTypeTable:
    """Flattened characterization of one gate type (all input vectors).

    Attributes
    ----------
    name:
        Lowercase gate-type name.
    num_inputs:
        Number of input pins ``k``; tables are indexed by the packed vector
        ``sum(bit[i] << (k - 1 - i))`` (first pin is the most significant
        bit, matching :meth:`GateSpec.all_vectors` order).
    truth:
        ``(2**k,)`` output bit per packed vector.
    nominal:
        ``(2**k, 3)`` unloaded leakage components.
    pin_injection:
        ``(2**k, k)`` signed current each input pin injects into its net (A).
    grid:
        ``(G,)`` shared signed injection grid of the response curves.
    response:
        ``(2**k, k + 1, G, 3)`` leakage components versus injected current,
        per packed vector and per pin (input pins first, output pin last).
        Rows without a characterized response are zero-filled and flagged in
        ``has_response``.
    has_response:
        ``(2**k, k + 1)`` mask of characterized (vector, pin) responses.
    """

    name: str
    num_inputs: int
    truth: np.ndarray
    nominal: np.ndarray
    pin_injection: np.ndarray
    grid: np.ndarray
    response: np.ndarray
    has_response: np.ndarray

    @property
    def num_pins(self) -> int:
        """Return the number of characterizable pins (inputs plus output)."""
        return self.num_inputs + 1


def _build_type_table(library: GateLibrary, gate_type_name: str) -> GateTypeTable:
    """Flatten every vector of one gate type into a :class:`GateTypeTable`."""
    spec = library.spec(gate_type_name)
    k = spec.num_inputs
    vectors = spec.all_vectors()
    n_vectors = len(vectors)
    pins = list(spec.inputs) + [spec.output]

    truth = np.zeros(n_vectors, dtype=np.uint8)
    nominal = np.zeros((n_vectors, N_COMPONENTS))
    pin_injection = np.zeros((n_vectors, k))
    has_response = np.zeros((n_vectors, len(pins)), dtype=bool)

    grid: np.ndarray | None = None
    curves: dict[tuple[int, int], np.ndarray] = {}
    for index, vector in enumerate(vectors):
        record = library.characterization(spec.gate_type, vector)
        truth[index] = spec.evaluate(vector)
        nominal[index] = record.nominal_array()
        for j, pin in enumerate(spec.inputs):
            pin_injection[index, j] = record.pin_injection[pin]
        for p, pin in enumerate(pins):
            curve = record.responses.get(pin)
            if curve is None:
                continue
            if grid is None:
                grid = curve.injections
            elif not np.array_equal(grid, curve.injections):
                raise ValueError(
                    f"engine requires a shared injection grid per gate type; "
                    f"{spec.name} vector {record.vector_label} pin {pin!r} differs"
                )
            curves[(index, p)] = curve.component_matrix()
            has_response[index, p] = True

    if grid is None:
        # No characterized responses at all (only possible with exotic
        # characterization options); keep a valid 2-point dummy grid.
        grid = np.array([-1.0, 1.0])
    response = np.zeros((n_vectors, len(pins), grid.size, N_COMPONENTS))
    for (index, p), matrix in curves.items():
        response[index, p] = matrix

    return GateTypeTable(
        name=spec.name,
        num_inputs=k,
        truth=truth,
        nominal=nominal,
        pin_injection=pin_injection,
        grid=np.asarray(grid, dtype=float),
        response=response,
        has_response=has_response,
    )


@dataclass(frozen=True)
class _GateGroup:
    """Gates of one type processed together (one gather per array pass).

    ``pin_slice`` addresses the group's input pins inside the compiled
    flat pin arrays (all ``len(gates) * k`` of them, gate-major).
    """

    type_index: int
    gate_indices: np.ndarray
    input_nets: np.ndarray
    output_nets: np.ndarray
    pin_slice: slice


class CompiledCircuit:
    """A circuit + characterized library flattened for batched evaluation.

    Instances are built by :func:`compile_circuit`; the heavy lifting of a
    campaign run lives in :meth:`repro.engine.campaign.run_compiled`, which
    consumes the arrays assembled here.
    """

    def __init__(
        self, circuit: Circuit, library: GateLibrary, lint: str = "raise"
    ) -> None:
        # Pre-flight: reject a malformed circuit (floating nets, cycles,
        # arity mismatches, ...) with the full structured finding list
        # before any table is built or solver touched.  ``lint="warn"``
        # downgrades to warnings, ``lint="off"`` restores the bare
        # ``validate()`` behavior.
        from repro.analysis import preflight_circuit

        preflight_circuit(circuit, lint=lint)
        circuit.validate()
        self.circuit = circuit
        self.vdd = library.vdd
        self.temperature_k = library.temperature_k

        # --- net numbering ------------------------------------------------ #
        self.net_names: list[str] = circuit.nets()
        self.net_index: dict[str, int] = {
            name: i for i, name in enumerate(self.net_names)
        }
        self.n_nets = len(self.net_names)
        self.pi_indices = np.array(
            [self.net_index[net] for net in circuit.primary_inputs], dtype=np.intp
        )
        self.pi_mask = np.zeros(self.n_nets, dtype=bool)
        self.pi_mask[self.pi_indices] = True

        # --- gate numbering (levelized order) ----------------------------- #
        levels = levelize(circuit)
        self.gate_names: list[str] = sorted(
            circuit.gates, key=lambda name: (levels[name], name)
        )
        gate_order = {name: g for g, name in enumerate(self.gate_names)}
        self.n_gates = len(self.gate_names)

        # --- per-type LUT tables ------------------------------------------ #
        type_names = sorted(
            {gate.gate_type.value for gate in circuit.gates.values()}
        )
        self.tables: list[GateTypeTable] = [
            _build_type_table(library, name) for name in type_names
        ]
        type_of = {table.name: t for t, table in enumerate(self.tables)}

        self.gate_type_index = np.zeros(self.n_gates, dtype=np.intp)
        self.gate_output_net = np.zeros(self.n_gates, dtype=np.intp)
        for name, gate in circuit.gates.items():
            g = gate_order[name]
            self.gate_type_index[g] = type_of[gate.gate_type.value]
            self.gate_output_net[g] = self.net_index[gate.output]

        # --- (level, type) groups for propagation, type groups for LUTs -- #
        def _group(names: list[str], pin_base: int) -> tuple[_GateGroup, int]:
            indices = np.array([gate_order[n] for n in names], dtype=np.intp)
            first = circuit.gates[names[0]]
            k = first.spec.num_inputs
            inputs = np.array(
                [
                    [self.net_index[net] for net in circuit.gates[n].inputs]
                    for n in names
                ],
                dtype=np.intp,
            ).reshape(len(names), k)
            outputs = np.array(
                [self.net_index[circuit.gates[n].output] for n in names],
                dtype=np.intp,
            )
            count = len(names) * k
            group = _GateGroup(
                type_index=type_of[first.gate_type.value],
                gate_indices=indices,
                input_nets=inputs,
                output_nets=outputs,
                pin_slice=slice(pin_base, pin_base + count),
            )
            return group, pin_base + count

        by_level_type: dict[tuple[int, int], list[str]] = {}
        for name in self.gate_names:
            key = (levels[name], type_of[circuit.gates[name].gate_type.value])
            by_level_type.setdefault(key, []).append(name)
        self.level_groups: list[_GateGroup] = []
        for key in sorted(by_level_type):
            group, _ = _group(by_level_type[key], 0)
            self.level_groups.append(group)

        by_type: dict[int, list[str]] = {}
        for name in self.gate_names:
            by_type.setdefault(type_of[circuit.gates[name].gate_type.value], []).append(
                name
            )
        self.type_groups: list[_GateGroup] = []
        pin_base = 0
        for t in sorted(by_type):
            group, pin_base = _group(by_type[t], pin_base)
            self.type_groups.append(group)
        self.n_pins = pin_base

        #: Net index of every flat input pin (gate-major inside each group).
        self.pin_net = np.zeros(self.n_pins, dtype=np.intp)
        #: Gate index of every flat input pin.
        self.pin_gate = np.zeros(self.n_pins, dtype=np.intp)
        for group in self.type_groups:
            self.pin_net[group.pin_slice] = group.input_nets.reshape(-1)
            k = self.tables[group.type_index].num_inputs
            self.pin_gate[group.pin_slice] = np.repeat(group.gate_indices, k)
        #: Flat pins sitting on primary-input nets carry no loading.
        self.pin_on_pi = self.pi_mask[self.pin_net]
        #: Dense (gate, net) group id per flat pin: pins of one gate tied to
        #: one net share a group, so the loading computation can subtract a
        #: gate's *whole* own injection on the net (a gate must never appear
        #: as loading on itself, even with tied inputs).
        _, self.pin_group = np.unique(
            self.pin_gate * np.intp(self.n_nets) + self.pin_net, return_inverse=True
        )
        self.n_pin_groups = int(self.pin_group.max()) + 1 if self.n_pins else 0
        #: With no tied inputs every group holds exactly one pin and the
        #: campaign keeps the cheaper per-pin subtraction.
        self.has_tied_inputs = self.n_pin_groups != self.n_pins

    # ------------------------------------------------------------------ #
    # queries used by campaign running and report materialization
    # ------------------------------------------------------------------ #
    def table_of_gate(self, g: int) -> GateTypeTable:
        """Return the LUT table of gate index ``g``."""
        return self.tables[self.gate_type_index[g]]

    def unpack_vector(self, g: int, packed: int) -> tuple[int, ...]:
        """Return the input-bit tuple of gate ``g`` for a packed vector."""
        k = self.table_of_gate(g).num_inputs
        return tuple((int(packed) >> (k - 1 - j)) & 1 for j in range(k))

    def validate_assignments(
        self, assignments: list[dict[str, int]]
    ) -> np.ndarray:
        """Return the primary-input bit matrix ``(n_pi, n_vectors)``.

        Mirrors the checks of :func:`repro.circuit.logic.propagate`: every
        primary input must be assigned and no extra nets may appear.
        """
        pi_set = set(self.circuit.primary_inputs)
        bits = np.zeros((len(pi_set), len(assignments)), dtype=np.uint8)
        for v, assignment in enumerate(assignments):
            missing = [pi for pi in self.circuit.primary_inputs if pi not in assignment]
            if missing:
                raise KeyError(f"unassigned primary inputs: {missing[:10]}")
            extra = [net for net in assignment if net not in pi_set]
            if extra:
                raise KeyError(f"assignment names non-primary-input nets: {extra[:10]}")
            for i, pi in enumerate(self.circuit.primary_inputs):
                bits[i, v] = 1 if assignment[pi] else 0
        return bits


def _fingerprint(circuit: Circuit) -> tuple:
    """Return a structural key of ``circuit`` (stable across copies)."""
    return (
        circuit.name,
        tuple(circuit.primary_inputs),
        tuple(
            (gate.name, gate.gate_type.value, gate.inputs, gate.output)
            for gate in circuit.gates.values()
        ),
    )


#: Per-library compile cache; the library key is weak so dropping a library
#: frees its compiled circuits, while values keep their circuit alive.
_COMPILE_CACHE: "weakref.WeakKeyDictionary[GateLibrary, dict[tuple, CompiledCircuit]]"
_COMPILE_CACHE = weakref.WeakKeyDictionary()


def compile_circuit(
    circuit: Circuit, library: GateLibrary, cache: bool = True, lint: str = "raise"
) -> CompiledCircuit:
    """Return the (cached) :class:`CompiledCircuit` for ``(circuit, library)``.

    The cache key is the circuit *structure* (name, primary inputs, gate
    list), so structural copies reuse the same compiled arrays.  Compiling
    characterizes every input vector of every gate type present in the
    circuit — the one-time "characterize once, answer campaigns as lookups"
    cost.  Pass ``cache=False`` to force a fresh compile (e.g. after
    mutating a library's records in place).

    ``lint`` is the netlist pre-flight policy
    (:func:`repro.analysis.preflight_circuit`): ``"raise"`` (default)
    rejects malformed circuits with a structured
    :class:`~repro.analysis.NetlistLintError` before any compilation work,
    ``"warn"`` downgrades findings to warnings, ``"off"`` skips linting.
    The pre-flight runs when a circuit is actually compiled; a cache hit
    returns the previously linted instance as-is.
    """
    if not cache:
        return CompiledCircuit(circuit, library, lint=lint)
    per_library = _COMPILE_CACHE.get(library)
    if per_library is None:
        per_library = {}
        _COMPILE_CACHE[library] = per_library
    key = _fingerprint(circuit)
    compiled = per_library.get(key)
    if compiled is None:
        compiled = CompiledCircuit(circuit, library, lint=lint)
        per_library[key] = compiled
    return compiled


def clear_compile_cache() -> None:
    """Drop every cached :class:`CompiledCircuit`."""
    _COMPILE_CACHE.clear()
