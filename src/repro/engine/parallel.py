"""Process-pool Monte-Carlo driver for the variation study.

Every Monte-Carlo sample of :mod:`repro.variation.montecarlo` is an
independent pair of transistor-level DC solves — embarrassingly parallel and
CPU-bound, i.e. exactly the workload a process pool (not threads: the solves
are pure Python/NumPy) speeds up.

With the default ``engine="batched"`` the unit of distribution is a
*contiguous batch* of samples, not a single sample: each worker flattens its
chunk and runs two :class:`~repro.spice.batched.BatchedDcSolver` solves, so
process-level parallelism multiplies the batched solver's vectorization
instead of replacing it.  ``engine="scalar"`` distributes one sample per
pool task through the original reference path.

Reproducibility is the design constraint: both the serial driver and this
parallel one derive sample ``i``'s generator from the same
``SeedSequence.spawn`` tree (:func:`repro.utils.rng.spawn_streams`), and the
batched solver's per-column updates are independent of batch composition, so
a run is bitwise-identical for a given root seed and engine regardless of
worker count, chunking, or completion order.  The regression tests pin the
parallel samples against the serial driver's.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

from repro.device.params import TechnologyParams
from repro.spice.solver import SolverOptions
from repro.utils.rng import RngLike, spawn_streams
from repro.variation.montecarlo import (
    MonteCarloResult,
    _simulate_batch_star,
    _simulate_sample_star,
    build_sample_task,
    simulate_batch,
    simulate_sample,
)
from repro.variation.spec import VariationSpec


class ParallelMonteCarlo:
    """Fans Monte-Carlo samples of the Fig. 10 study across worker processes.

    Parameters
    ----------
    technology:
        Nominal technology; each sample perturbs a copy of it.
    spec / input_value / input_loads / output_loads / temperature_k /
    solver_options:
        Study configuration, identical in meaning to
        :func:`repro.variation.montecarlo.run_loaded_inverter_monte_carlo`.
    max_workers:
        Worker-process count; ``None`` uses the CPU count (capped at 8 —
        beyond that pool startup dominates for typical sample counts) and
        ``1`` runs in-process with no pool at all.
    engine:
        ``"batched"`` (default) ships contiguous stream chunks to workers,
        each solved as one batch; ``"scalar"`` ships single samples through
        the reference path.
    """

    def __init__(
        self,
        technology: TechnologyParams,
        spec: VariationSpec | None = None,
        input_value: int = 0,
        input_loads: int = 6,
        output_loads: int = 6,
        temperature_k: float | None = None,
        solver_options: SolverOptions | None = None,
        max_workers: int | None = None,
        engine: str = "batched",
    ) -> None:
        self.task = build_sample_task(
            technology,
            spec=spec,
            input_value=input_value,
            input_loads=input_loads,
            output_loads=output_loads,
            temperature_k=temperature_k,
            solver_options=solver_options,
        )
        if max_workers is None:
            max_workers = min(os.cpu_count() or 1, 8)
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if engine not in ("batched", "scalar"):
            raise ValueError(f"unknown Monte-Carlo engine {engine!r}")
        self.max_workers = max_workers
        self.engine = engine

    def run(self, samples: int, rng: RngLike = None) -> MonteCarloResult:
        """Run ``samples`` Monte-Carlo samples and return the paired results.

        Samples keep their stream order in the result (worker completion
        order never matters), so ``run(n, seed)`` equals the serial
        ``run_loaded_inverter_monte_carlo(..., samples=n, rng=seed,
        engine=...)`` sample for sample — bitwise, for either engine.
        """
        if samples < 1:
            raise ValueError("samples must be at least 1")
        task = self.task
        streams = spawn_streams(rng, samples)
        workers = min(self.max_workers, samples)
        if self.engine == "batched":
            if workers == 1:
                results = simulate_batch(task, streams)
            else:
                # Contiguous chunks, one batch per pool task; order-preserving
                # map + per-column solver independence keep results identical
                # to the serial batch whatever the chunk boundaries are.
                chunk = -(-samples // workers)
                chunks = [
                    streams[start : start + chunk]
                    for start in range(0, samples, chunk)
                ]
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    results = [
                        sample
                        for batch in pool.map(
                            _simulate_batch_star,
                            [(task, chunk_streams) for chunk_streams in chunks],
                        )
                        for sample in batch
                    ]
        elif workers == 1:
            results = [simulate_sample(task, stream) for stream in streams]
        else:
            chunksize = max(1, samples // (workers * 4))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                results = list(
                    pool.map(
                        _simulate_sample_star,
                        [(task, stream) for stream in streams],
                        chunksize=chunksize,
                    )
                )
        return MonteCarloResult(
            spec=task.spec,
            input_value=task.input_value,
            input_loads=task.input_loads,
            output_loads=task.output_loads,
            samples=results,
        )
