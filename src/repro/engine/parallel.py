"""Process-pool drivers for the transistor-level batch workloads.

Two campaign types distribute here:

* :class:`ParallelMonteCarlo` — the Fig. 10/11 Monte-Carlo variation study;
* :class:`ParallelReferenceCampaign` — transistor-level reference solves of
  whole vector sets (the Fig. 12a "SPICE" column), chunked into
  memory-bounded same-topology batches.

Every unit of work is an independent set of transistor-level DC solves —
embarrassingly parallel and CPU-bound, i.e. exactly the workload a process
pool (not threads: the solves are pure Python/NumPy) speeds up.

With the default ``engine="batched"`` the unit of distribution is a
*contiguous batch* of samples, not a single sample: each worker flattens its
chunk and runs two :class:`~repro.spice.batched.BatchedDcSolver` solves, so
process-level parallelism multiplies the batched solver's vectorization
instead of replacing it.  ``engine="scalar"`` distributes one sample per
pool task through the original reference path.

Reproducibility is the design constraint: both the serial driver and this
parallel one derive sample ``i``'s generator from the same
``SeedSequence.spawn`` tree (:func:`repro.utils.rng.spawn_streams`), and the
batched solver's per-column updates are independent of batch composition, so
a run is bitwise-identical for a given root seed and engine regardless of
worker count, chunking, or completion order.  The regression tests pin the
parallel samples against the serial driver's.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.circuit.netlist import Circuit
from repro.core.reference import (
    DEFAULT_REFERENCE_CHUNK_SIZE,
    REFERENCE_ENGINES,
    ReferenceSimulator,
)
from repro.core.vectors import VectorCampaignResult
from repro.device.params import TechnologyParams
from repro.resilience import ResilienceOptions, checkpoint_fingerprint
from repro.spice.solver import SolverOptions
from repro.utils.rng import RngLike, rng_state_token, spawn_streams
from repro.variation.montecarlo import (
    SAMPLERS,
    MonteCarloResult,
    _keep_converged,
    _result_metadata,
    _simulate_batch_star,
    _simulate_draws_batch_star,
    _simulate_draws_scalar_star,
    build_sample_task,
    loaded_transistor_count,
    simulate_batch,
    simulate_batch_from_draws,
    simulate_sample,
    simulate_samples_from_draws,
)
from repro.variation.qmc import draw_qmc_parameters
from repro.variation.spec import VariationSpec


def default_workers(max_workers: int | None) -> int:
    """Resolve the worker count shared by both drivers (CPU count, capped)."""
    if max_workers is None:
        max_workers = min(os.cpu_count() or 1, 8)
    if max_workers < 1:
        raise ValueError("max_workers must be at least 1")
    return max_workers


def supervised_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: int,
    resilience: ResilienceOptions | None,
    fingerprint_payload: Callable[[], dict[str, Any]],
) -> tuple[list[Any], dict[str, object]]:
    """Run a chunked pool map under resilience supervision.

    The shared pooled path of every chunked driver (both campaign classes
    here and the island fan-out of :mod:`repro.optimize.search`): builds
    the supervised executor from ``resilience`` (defaults apply when the
    caller passed ``None``), wires up the fingerprinted checkpoint and the
    resume set when configured, and returns ``(results, metadata)`` with
    the retry ledger under ``metadata["resilience"]``.

    ``fingerprint_payload`` is only called when a checkpoint is configured;
    it must return everything that can change a chunk result or the chunk
    layout (task definition, options, RNG state token, chunk count).
    """
    opts = resilience or ResilienceOptions()
    checkpoint = None
    completed = None
    if opts.checkpoint_path is not None:
        payload = fingerprint_payload()
        if payload.get("rng", "absent") is None:
            raise ValueError(
                "checkpointing requires a reproducible rng (an explicit seed "
                "or Generator); rng=None runs cannot be resumed bitwise"
            )
        checkpoint = opts.checkpoint(checkpoint_fingerprint(payload))
        if opts.resume:
            completed = checkpoint.load()
    results, ledger = opts.executor(workers).map(
        fn, items, checkpoint=checkpoint, completed=completed
    )
    resilience_meta = ledger.as_dict()
    if checkpoint is not None:
        resilience_meta["checkpoint_publishes"] = checkpoint.publishes
        if not opts.keep_checkpoint:
            checkpoint.complete()
    return results, {"resilience": resilience_meta}


def _simulate_scalar_chunk_star(args):
    """Process-pool adapter: run one contiguous chunk of scalar samples."""
    task, streams = args
    return _keep_converged(
        task, [simulate_sample(task, stream) for stream in streams]
    )


class ParallelMonteCarlo:
    """Fans Monte-Carlo samples of the Fig. 10 study across worker processes.

    Parameters
    ----------
    technology:
        Nominal technology; each sample perturbs a copy of it.
    spec / input_value / input_loads / output_loads / temperature_k /
    solver_options:
        Study configuration, identical in meaning to
        :func:`repro.variation.montecarlo.run_loaded_inverter_monte_carlo`.
    max_workers:
        Worker-process count; ``None`` uses the CPU count (capped at 8 —
        beyond that pool startup dominates for typical sample counts) and
        ``1`` runs in-process with no pool at all.
    engine:
        ``"batched"`` (default) ships contiguous stream chunks to workers,
        each solved as one batch; ``"scalar"`` ships contiguous sample
        chunks through the reference path one sample at a time.
    sampler:
        ``"mc"`` (default) spawns one pseudo-random stream per sample;
        ``"qmc"`` draws the whole scrambled-Sobol parameter block up front
        and ships :meth:`~repro.variation.qmc.ParameterDraws.slice` chunks
        — chunk boundaries choose *who* solves a sample, never *which*
        parameters it gets, so pooled runs stay bitwise serial-identical.
    on_nonconverged:
        Non-convergence policy forwarded to every sample solve (``"warn"``
        / ``"raise"`` / ``"drop"``); under ``"drop"`` the pooled result
        reports the dropped count in ``metadata["dropped_nonconverged"]``
        exactly like the serial driver.
    resilience:
        Optional :class:`~repro.resilience.ResilienceOptions` — retry
        policy, per-chunk deadline, checkpoint/resume, fault injection.
        Providing it forces the supervised pool path even at one worker;
        pooled runs without it still get the default supervision
        (worker-death recovery with the stock retry policy).
    """

    def __init__(
        self,
        technology: TechnologyParams,
        spec: VariationSpec | None = None,
        input_value: int = 0,
        input_loads: int = 6,
        output_loads: int = 6,
        temperature_k: float | None = None,
        solver_options: SolverOptions | None = None,
        max_workers: int | None = None,
        engine: str = "batched",
        sampler: str = "mc",
        on_nonconverged: str = "warn",
        resilience: ResilienceOptions | None = None,
    ) -> None:
        self.task = build_sample_task(
            technology,
            spec=spec,
            input_value=input_value,
            input_loads=input_loads,
            output_loads=output_loads,
            temperature_k=temperature_k,
            solver_options=solver_options,
            on_nonconverged=on_nonconverged,
        )
        if engine not in ("batched", "scalar"):
            raise ValueError(f"unknown Monte-Carlo engine {engine!r}")
        if sampler not in SAMPLERS:
            raise ValueError(
                f"unknown sampler {sampler!r}; expected one of {SAMPLERS}"
            )
        self.max_workers = default_workers(max_workers)
        self.engine = engine
        self.sampler = sampler
        self.resilience = resilience

    def run(self, samples: int, rng: RngLike = None) -> MonteCarloResult:
        """Run ``samples`` Monte-Carlo samples and return the paired results.

        Samples keep their stream order in the result (worker completion
        order never matters), so ``run(n, seed)`` equals the serial
        ``run_loaded_inverter_monte_carlo(..., samples=n, rng=seed,
        engine=..., sampler=...)`` sample for sample — bitwise, for either
        engine and either sampler, and still under injected faults: a
        retried chunk re-runs from its original spawned streams (``"mc"``)
        or its pre-drawn parameter slice (``"qmc"``), which live untouched
        in this process.
        """
        if samples < 1:
            raise ValueError("samples must be at least 1")
        task = self.task
        rng_token = (
            rng_state_token(rng)
            if self.resilience is not None
            and self.resilience.checkpoint_path is not None
            else "absent"
        )
        draws = streams = None
        if self.sampler == "qmc":
            draws = draw_qmc_parameters(
                task.spec,
                samples,
                loaded_transistor_count(task.input_loads, task.output_loads),
                rng,
            )
        else:
            streams = spawn_streams(rng, samples)
        workers = min(self.max_workers, samples)
        metadata: dict[str, object] = {}
        if workers == 1 and self.resilience is None:
            if self.sampler == "qmc":
                simulate_draws = (
                    simulate_batch_from_draws
                    if self.engine == "batched"
                    else simulate_samples_from_draws
                )
                results = simulate_draws(task, draws)
            elif self.engine == "batched":
                results = simulate_batch(task, streams)
            else:
                results = _keep_converged(
                    task, [simulate_sample(task, stream) for stream in streams]
                )
        else:
            # Contiguous chunks, one pool task per chunk; order-preserving
            # supervised map + per-column solver independence keep results
            # identical to the serial run whatever the chunk boundaries,
            # worker count, or injected faults.
            if self.engine == "batched":
                chunk = -(-samples // workers)
                fn: Callable[[Any], Any] = (
                    _simulate_draws_batch_star
                    if self.sampler == "qmc"
                    else _simulate_batch_star
                )
            else:
                chunk = max(1, samples // (workers * 4))
                fn = (
                    _simulate_draws_scalar_star
                    if self.sampler == "qmc"
                    else _simulate_scalar_chunk_star
                )
            starts = range(0, samples, chunk)
            if self.sampler == "qmc":
                items = [(task, draws.slice(start, start + chunk)) for start in starts]
            else:
                items = [(task, streams[start : start + chunk]) for start in starts]
            batches, metadata = supervised_map(
                fn,
                items,
                workers,
                self.resilience,
                lambda: {
                    "kind": "monte-carlo",
                    "engine": self.engine,
                    "sampler": self.sampler,
                    "task": task,
                    "samples": samples,
                    "chunks": len(items),
                    "rng": rng_token,
                },
            )
            results = [sample for batch in batches for sample in batch]
        metadata = {
            **_result_metadata(self.sampler, task, samples, len(results)),
            **metadata,
        }
        return MonteCarloResult(
            spec=task.spec,
            input_value=task.input_value,
            input_loads=task.input_loads,
            output_loads=task.output_loads,
            samples=results,
            metadata=metadata,
        )


@dataclass(frozen=True)
class _ReferenceChunkTask:
    """Everything a reference-campaign chunk needs, minus its vectors.

    Picklable (circuit, technology and solver options are plain
    dataclasses) so a process pool can ship one copy per worker.
    """

    circuit: Circuit
    technology: TechnologyParams
    temperature_k: float | None
    solver_options: SolverOptions | None
    engine: str


def _reference_chunk_star(args: tuple[_ReferenceChunkTask, list[dict[str, int]]]):
    """Process-pool adapter: solve one chunk of reference vectors."""
    task, chunk = args
    simulator = ReferenceSimulator(
        task.technology, task.temperature_k, task.solver_options
    )
    if task.engine == "batched":
        # The chunk already is the memory bound; solve it as one batch.
        return simulator.estimate_batch(task.circuit, chunk, chunk_size=len(chunk))
    return [simulator.estimate(task.circuit, vector) for vector in chunk]


class ParallelReferenceCampaign:
    """Fans transistor-level reference solves across worker processes.

    The reference twin of :class:`ParallelMonteCarlo`: a vector set splits
    into contiguous ``chunk_size`` batches, each worker flattens the circuit
    once and solves its chunk as one
    :class:`~repro.spice.batched.BatchedDcSolver` batch, and the reports are
    reassembled in vector order.  Because every per-column update of the
    batched solver is independent of its batch neighbours, the result is
    bitwise identical to the serial
    :func:`repro.core.reference.run_reference_campaign` whatever the chunk
    boundaries or worker count — chunking bounds peak memory, nothing else.

    Parameters
    ----------
    technology / temperature_k / solver_options:
        Reference-solve configuration, identical in meaning to
        :class:`~repro.core.reference.ReferenceSimulator`.
    max_workers:
        Worker-process count; ``None`` uses the CPU count (capped at 8) and
        ``1`` runs in-process with no pool at all.
    chunk_size:
        Vectors per batch (the per-worker memory bound).
    engine:
        ``"batched"`` (default) solves each chunk as one batch;
        ``"scalar"`` runs the oracle path vector by vector inside each
        chunk.
    resilience:
        Optional :class:`~repro.resilience.ResilienceOptions` — retry
        policy, per-chunk deadline, checkpoint/resume, fault injection.
        Providing it forces the supervised pool path even at one worker;
        pooled runs without it still get the default supervision.
    """

    def __init__(
        self,
        technology: TechnologyParams,
        temperature_k: float | None = None,
        solver_options: SolverOptions | None = None,
        max_workers: int | None = None,
        chunk_size: int = DEFAULT_REFERENCE_CHUNK_SIZE,
        engine: str = "batched",
        resilience: ResilienceOptions | None = None,
    ) -> None:
        if engine not in REFERENCE_ENGINES:
            raise ValueError(
                f"engine must be one of {REFERENCE_ENGINES}, got {engine!r}"
            )
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.technology = technology
        self.temperature_k = temperature_k
        self.solver_options = solver_options
        self.max_workers = default_workers(max_workers)
        self.chunk_size = chunk_size
        self.engine = engine
        self.resilience = resilience

    def run(
        self, circuit: Circuit, vectors: Iterable[dict[str, int]]
    ) -> VectorCampaignResult:
        """Solve every vector and return the campaign result in input order."""
        vectors = list(vectors)
        if not vectors:
            raise ValueError("no vectors to evaluate")
        task = _ReferenceChunkTask(
            circuit=circuit,
            technology=self.technology,
            temperature_k=self.temperature_k,
            solver_options=self.solver_options,
            engine=self.engine,
        )
        chunks = [
            vectors[start : start + self.chunk_size]
            for start in range(0, len(vectors), self.chunk_size)
        ]
        workers = min(self.max_workers, len(chunks))
        metadata: dict[str, object] = {}
        if workers == 1 and self.resilience is None:
            chunk_reports = [_reference_chunk_star((task, chunk)) for chunk in chunks]
        else:
            chunk_reports, metadata = supervised_map(
                _reference_chunk_star,
                [(task, chunk) for chunk in chunks],
                workers,
                self.resilience,
                lambda: {
                    "kind": "reference-campaign",
                    "task": task,
                    "vectors": vectors,
                    "chunk_size": self.chunk_size,
                },
            )
        return VectorCampaignResult(
            circuit_name=circuit.name,
            method=ReferenceSimulator.method_name,
            reports=[report for chunk in chunk_reports for report in chunk],
            metadata=metadata,
        )
