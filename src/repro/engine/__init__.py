"""Batched campaign engine: compile once, answer whole workloads as lookups.

The paper's headline result is the ~1000x speed advantage of the Fig. 13
LUT algorithm over transistor-level solving.  This subsystem carries that
idea one level up, to *campaign* workloads (many vectors, many samples):

* :mod:`repro.engine.compile` — flattens a circuit + characterized library
  into dense NumPy arrays (per-type LUT grids, levelized gate groups, flat
  pin wiring), cached per (circuit structure, library);
* :mod:`repro.engine.campaign` — evaluates an entire vector set in a few
  array passes: bit-matrix logic propagation, one-shot per-net loading
  accumulation and batched LUT interpolation;
* :mod:`repro.engine.parallel` — fans Monte-Carlo variation samples and
  transistor-level reference campaigns across a process pool
  (``SeedSequence.spawn``-derived per-sample streams, memory-bounded
  same-topology vector chunks), bitwise-reproducible against the serial
  drivers.

The scalar :class:`~repro.core.estimator.LoadingAwareEstimator` stays the
reference oracle; regression tests pin the engine against it component by
component.
"""

from repro.engine.campaign import (
    BatchedCampaignRun,
    LazyReports,
    run_compiled,
    run_totals,
)
from repro.engine.compile import (
    CompileCache,
    CompileCacheInfo,
    CompiledCircuit,
    GateTypeTable,
    clear_compile_cache,
    compile_cache_info,
    compile_circuit,
    default_compile_cache,
)
from repro.engine.parallel import ParallelMonteCarlo, ParallelReferenceCampaign

__all__ = [
    "BatchedCampaignRun",
    "CompileCache",
    "CompileCacheInfo",
    "CompiledCircuit",
    "GateTypeTable",
    "LazyReports",
    "ParallelMonteCarlo",
    "ParallelReferenceCampaign",
    "clear_compile_cache",
    "compile_cache_info",
    "compile_circuit",
    "default_compile_cache",
    "run_compiled",
    "run_totals",
]
