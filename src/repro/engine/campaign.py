"""Batched campaign evaluation over a :class:`CompiledCircuit`.

One call of :func:`run_compiled` answers an entire vector set:

1. logic values propagate for all vectors at once — per (level, gate type)
   group one gather + truth-table lookup updates a ``(net, vector)`` bit
   matrix;
2. per-pin injections are gathered from the compiled LUT arrays and
   accumulated per net with a single ``np.add.at``;
3. per-pin loading currents (input loading excludes the injection of *all*
   of the gate's own pins on the net — a gate never loads itself, even with
   tied inputs — and primary-input nets are ideal) feed a batched piecewise-linear
   interpolation over the characterized response curves — the vectorized
   equivalent of the scalar per-pin ``np.interp`` calls;
4. per-gate components are clamped at zero and summed into circuit totals.

The arithmetic matches the scalar estimator's lookup path step for step
(zero loading contributes an exactly-zero delta, per-gate clamping happens
before circuit accumulation), so batched totals agree with
:class:`~repro.core.estimator.LoadingAwareEstimator` to rounding error —
the regression tests pin the two paths against each other.

Vectors are processed in bounded chunks so peak *temporary* memory stays
flat; the per-gate output arrays still scale with the vector count, which is
why :func:`repro.core.vectors.minimum_leakage_vector` feeds exhaustive
sweeps through :func:`run_compiled` one chunk at a time and keeps only the
running minimum.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.report import CircuitLeakageReport, GateLeakage
from repro.engine.compile import CompiledCircuit
from repro.gates.lut import enforce_injection_range
from repro.spice.analysis import ComponentBreakdown

#: Vector-chunk size bounding the engine's peak memory (the widest per-chunk
#: temporary is the gathered response tensor: gates x chunk x pins x grid x 3).
DEFAULT_CHUNK_SIZE = 512


def _interp_batch(grid: np.ndarray, curves: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Piecewise-linear interpolation of per-row curves at per-row queries.

    Parameters
    ----------
    grid:
        ``(G,)`` strictly increasing sample positions shared by all rows.
    curves:
        ``(..., G, C)`` sampled values (one curve of ``C`` components per row).
    queries:
        ``(...)`` query positions, one per row.

    Returns ``(..., C)`` values with flat extrapolation outside the grid,
    matching ``np.interp``'s clamping semantics (and returning the exact
    sample when a query hits a grid point, which is what makes a zero
    loading current contribute an exactly-zero delta).
    """
    left = np.searchsorted(grid, queries, side="right") - 1
    left = np.clip(left, 0, grid.size - 2)
    x0 = grid[left]
    x1 = grid[left + 1]
    t = np.clip((queries - x0) / (x1 - x0), 0.0, 1.0)
    v0 = np.take_along_axis(curves, left[..., None, None], axis=-2)[..., 0, :]
    v1 = np.take_along_axis(curves, (left + 1)[..., None, None], axis=-2)[..., 0, :]
    return v0 + t[..., None] * (v1 - v0)


@dataclass
class BatchedCampaignRun:
    """Raw arrays of one batched campaign over a compiled circuit.

    Attributes
    ----------
    compiled:
        The compiled circuit the run was evaluated on.
    method:
        Estimation method label (``loading-aware`` / ``no-loading``).
    assignments:
        The evaluated primary-input assignments, in order.
    per_gate:
        ``(n_gates, n_vectors, 3)`` clamped leakage components (A).
    vec_index:
        ``(n_gates, n_vectors)`` packed input vector of every gate.
    input_loading / output_loading:
        ``(n_gates, n_vectors)`` summed loading currents attributed to each
        gate's input pins / output net (zero for no-loading runs).
    runtime_s:
        Wall-clock of the batched evaluation (compile time excluded).
    """

    compiled: CompiledCircuit
    method: str
    assignments: list[dict[str, int]]
    per_gate: np.ndarray
    vec_index: np.ndarray
    input_loading: np.ndarray
    output_loading: np.ndarray
    runtime_s: float

    @property
    def vector_count(self) -> int:
        """Return the number of evaluated vectors."""
        return len(self.assignments)

    def component_totals(self) -> dict[str, np.ndarray]:
        """Return circuit totals per vector for every report component."""
        sums = self.per_gate.sum(axis=0)
        totals = {
            "subthreshold": sums[:, 0],
            "gate": sums[:, 1],
            "btbt": sums[:, 2],
        }
        totals["total"] = sums.sum(axis=1)
        return totals

    def report(self, v: int) -> CircuitLeakageReport:
        """Materialize the full scalar-compatible report of vector ``v``."""
        compiled = self.compiled
        per_gate: dict[str, GateLeakage] = {}
        for g, name in enumerate(compiled.gate_names):
            table = compiled.table_of_gate(g)
            gate = compiled.circuit.gates[name]
            per_gate[name] = GateLeakage(
                gate_name=name,
                gate_type_name=table.name,
                vector=compiled.unpack_vector(g, self.vec_index[g, v]),
                breakdown=ComponentBreakdown(
                    subthreshold=float(self.per_gate[g, v, 0]),
                    gate=float(self.per_gate[g, v, 1]),
                    btbt=float(self.per_gate[g, v, 2]),
                ),
                input_loading=float(self.input_loading[g, v]),
                output_loading=float(self.output_loading[g, v]),
            )
        count = max(self.vector_count, 1)
        return CircuitLeakageReport(
            circuit_name=compiled.circuit.name,
            method=self.method,
            input_assignment=dict(self.assignments[v]),
            per_gate=per_gate,
            temperature_k=compiled.temperature_k,
            vdd=compiled.vdd,
            metadata={
                "runtime_s": self.runtime_s / count,
                "gate_count": compiled.n_gates,
                "engine": "batched",
            },
        )


class LazyReports(Sequence):
    """Sequence view materializing :class:`CircuitLeakageReport` on demand.

    Campaign statistics read circuit totals straight from the run arrays;
    the full per-gate reports are only built (and memoized) when code
    actually indexes into ``campaign.reports`` — e.g. the cross-check tests
    comparing batched and scalar per-gate breakdowns.
    """

    def __init__(self, run: BatchedCampaignRun) -> None:
        self._run = run
        self._cache: dict[int, CircuitLeakageReport] = {}

    def __len__(self) -> int:
        return self._run.vector_count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        report = self._cache.get(index)
        if report is None:
            report = self._run.report(index)
            self._cache[index] = report
        return report


def run_compiled(
    compiled: CompiledCircuit,
    assignments: list[dict[str, int]],
    include_loading: bool = True,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> BatchedCampaignRun:
    """Evaluate every assignment on a compiled circuit in array passes."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    start = time.perf_counter()
    assignments = list(assignments)
    pi_bits = compiled.validate_assignments(assignments)
    n_vectors = len(assignments)

    per_gate = np.zeros((compiled.n_gates, n_vectors, 3))
    vec_index = np.zeros((compiled.n_gates, n_vectors), dtype=np.int64)
    input_loading = np.zeros((compiled.n_gates, n_vectors))
    output_loading = np.zeros((compiled.n_gates, n_vectors))

    for lo in range(0, n_vectors, chunk_size):
        hi = min(lo + chunk_size, n_vectors)
        _run_chunk(
            compiled,
            pi_bits[:, lo:hi],
            include_loading,
            per_gate[:, lo:hi],
            vec_index[:, lo:hi],
            input_loading[:, lo:hi],
            output_loading[:, lo:hi],
        )

    return BatchedCampaignRun(
        compiled=compiled,
        method="loading-aware" if include_loading else "no-loading",
        assignments=assignments,
        per_gate=per_gate,
        vec_index=vec_index,
        input_loading=input_loading,
        output_loading=output_loading,
        runtime_s=time.perf_counter() - start,
    )


def run_totals(
    compiled: CompiledCircuit,
    pi_bits: np.ndarray,
    include_loading: bool = True,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> np.ndarray:
    """Return the circuit total leakage (A) per vector of a bit matrix.

    ``pi_bits`` is a ``(n_primary_inputs, n_vectors)`` 0/1 matrix whose rows
    follow ``compiled.circuit.primary_inputs`` order — the same layout
    :meth:`CompiledCircuit.validate_assignments` produces.  This is the
    totals-only fast path of :func:`run_compiled` for callers that never
    materialize reports (the vector-search optimizers of
    :mod:`repro.optimize` evaluate whole candidate populations through it):
    per-gate outputs live only per chunk, so peak memory is bounded by
    ``chunk_size`` regardless of how many candidates are asked about.

    Each vector's total is computed column-independently (every array pass
    reduces over gates/pins, never across vectors), so results are bitwise
    identical whatever the batch composition or chunking — the property the
    optimizers' serial-vs-island reproducibility contract rests on.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    pi_bits = np.ascontiguousarray(pi_bits, dtype=np.uint8)
    n_pi = len(compiled.circuit.primary_inputs)
    if pi_bits.ndim != 2 or pi_bits.shape[0] != n_pi:
        raise ValueError(
            f"pi_bits must have shape (n_primary_inputs={n_pi}, n_vectors), "
            f"got {pi_bits.shape}"
        )
    if pi_bits.size and pi_bits.max() > 1:
        raise ValueError("pi_bits entries must be 0 or 1")
    n_vectors = pi_bits.shape[1]
    totals = np.zeros(n_vectors)
    for lo in range(0, n_vectors, chunk_size):
        hi = min(lo + chunk_size, n_vectors)
        n = hi - lo
        per_gate = np.zeros((compiled.n_gates, n, 3))
        vec_index = np.zeros((compiled.n_gates, n), dtype=np.int64)
        # Distinct throwaway loading buffers: _run_chunk currently only
        # writes them, but sharing one array would silently break if a
        # future change ever reads or accumulates across the two.
        input_loading = np.zeros((compiled.n_gates, n))
        output_loading = np.zeros((compiled.n_gates, n))
        _run_chunk(
            compiled,
            pi_bits[:, lo:hi],
            include_loading,
            per_gate,
            vec_index,
            input_loading,
            output_loading,
        )
        # Same reduction order as BatchedCampaignRun.component_totals
        # (gates first, then components) so the two paths agree bitwise.
        totals[lo:hi] = per_gate.sum(axis=0).sum(axis=1)
    return totals


def _run_chunk(
    compiled: CompiledCircuit,
    pi_bits: np.ndarray,
    include_loading: bool,
    per_gate: np.ndarray,
    vec_index: np.ndarray,
    input_loading: np.ndarray,
    output_loading: np.ndarray,
) -> None:
    """Evaluate one vector chunk, writing into the output array slices."""
    n_vectors = pi_bits.shape[1]

    # 1. propagate logic values as a (net, vector) bit matrix -------------- #
    net_values = np.zeros((compiled.n_nets, n_vectors), dtype=np.uint8)
    net_values[compiled.pi_indices] = pi_bits
    for group in compiled.level_groups:
        table = compiled.tables[group.type_index]
        k = table.num_inputs
        weights = (1 << np.arange(k - 1, -1, -1, dtype=np.int64))[None, :, None]
        gathered = net_values[group.input_nets]  # (n, k, V)
        packed = (gathered.astype(np.int64) * weights).sum(axis=1)
        vec_index[group.gate_indices] = packed
        net_values[group.output_nets] = table.truth[packed]

    if not include_loading:
        for group in compiled.type_groups:
            table = compiled.tables[group.type_index]
            per_gate[group.gate_indices] = np.maximum(
                table.nominal[vec_index[group.gate_indices]], 0.0
            )
        return

    # 2. per-pin injections, accumulated per net -------------------------- #
    pin_injection = np.zeros((compiled.n_pins, n_vectors))
    for group in compiled.type_groups:
        table = compiled.tables[group.type_index]
        inj = table.pin_injection[vec_index[group.gate_indices]]  # (n, V, k)
        pin_injection[group.pin_slice] = np.swapaxes(inj, 1, 2).reshape(
            -1, n_vectors
        )
    net_injection = np.zeros((compiled.n_nets, n_vectors))
    np.add.at(net_injection, compiled.pin_net, pin_injection)

    # 3. per-pin loading: everyone else's injection on my net -------------- #
    # "Everyone else" excludes every pin of the pin's own gate on that net,
    # not just the pin itself: with tied inputs the (gate, net) group sum
    # keeps a gate from loading itself through its other pin (mirrors the
    # scalar estimator's own-injection subtraction).  Without tied inputs
    # every group holds one pin and the group sum IS the pin injection, so
    # the common case skips the second scatter-add.
    if compiled.has_tied_inputs:
        own_injection = np.zeros((compiled.n_pin_groups, n_vectors))
        np.add.at(own_injection, compiled.pin_group, pin_injection)
        pin_loading = (
            net_injection[compiled.pin_net] - own_injection[compiled.pin_group]
        )
    else:
        pin_loading = net_injection[compiled.pin_net] - pin_injection
    pin_loading[compiled.pin_on_pi] = 0.0

    # 4. LUT lookup per (gate, pin), clamped accumulation ------------------ #
    for group in compiled.type_groups:
        table = compiled.tables[group.type_index]
        n = group.gate_indices.size
        k = table.num_inputs
        packed = vec_index[group.gate_indices]  # (n, V)

        loading_in = pin_loading[group.pin_slice].reshape(n, k, n_vectors)
        loading_out = net_injection[group.output_nets][:, None, :]  # (n, 1, V)
        loading = np.concatenate([loading_in, loading_out], axis=1)  # (n, k+1, V)
        loading = np.swapaxes(loading, 1, 2)  # (n, V, k+1)

        active = loading != 0.0
        has_response = table.has_response[packed]  # (n, V, k+1)
        if np.any(active & ~has_response):
            g_bad, v_bad, p_bad = np.argwhere(active & ~has_response)[0]
            raise KeyError(
                f"pin index {int(p_bad)} of {table.name} has no characterized "
                f"response but sees a nonzero loading current"
            )

        # The same out-of-range policy as ResponseCurve.breakdown_at: the
        # engine interpolates baked arrays directly, so it reports clamped
        # lookups itself (warn once per gate type and direction).
        low, high = float(table.grid[0]), float(table.grid[-1])
        out_low = active & (loading < low)
        out_high = active & (loading > high)
        if np.any(out_low):
            enforce_injection_range(
                f"gate type {table.name!r}", float(loading[out_low].min()),
                low, high, dedup_key=("engine", table.name),
            )
        if np.any(out_high):
            enforce_injection_range(
                f"gate type {table.name!r}", float(loading[out_high].max()),
                low, high, dedup_key=("engine", table.name),
            )

        nominal = table.nominal[packed]  # (n, V, 3)
        curves = table.response[packed]  # (n, V, k+1, G, 3)
        interpolated = _interp_batch(table.grid, curves, loading)
        delta = np.where(active[..., None], interpolated - nominal[:, :, None, :], 0.0)
        components = np.maximum(nominal + delta.sum(axis=2), 0.0)

        per_gate[group.gate_indices] = components
        input_loading[group.gate_indices] = loading[..., :k].sum(axis=2)
        output_loading[group.gate_indices] = loading[..., k]
