"""Random-number-generator plumbing.

Every stochastic component of the library (random input vectors, synthetic
benchmark circuits, Monte-Carlo process variation) accepts either a seed or a
``numpy.random.Generator``.  Centralising the coercion keeps experiments
reproducible: the same seed always produces the same circuit, the same vector
set and the same Monte-Carlo samples.
"""

from __future__ import annotations

import hashlib

import numpy as np

RngLike = int | np.random.Generator | None


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``rng``.

    ``None`` produces a freshly seeded generator (non-reproducible), an
    integer is used as a seed, and an existing generator is passed through
    unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a random generator from {type(rng).__name__}")


def spawn_streams(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators derived from ``rng``.

    The streams are derived through ``SeedSequence.spawn`` (or
    ``Generator.spawn`` when an existing generator is passed), so stream
    ``i`` depends only on the root seed and ``i`` — never on how many other
    streams exist or in which order they are consumed.  This is what makes
    the parallel Monte-Carlo driver bitwise-reproducible against the serial
    one: both hand sample ``i`` exactly ``streams[i]``.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return list(ensure_rng(rng).spawn(count))


def keyed_rng(seed: int, *key: int | str) -> np.random.Generator:
    """Return a generator deterministically keyed by ``(seed, *key)``.

    Unlike :func:`spawn_streams`, the derivation is *stateless*: the same
    ``(seed, key)`` always yields the same stream, independent of how many
    other streams exist or in which order they are created.  This is what
    the fault injector and the retry-backoff jitter need — a decision for
    (chunk 7, attempt 2) must be reproducible on its own, without replaying
    the decisions before it.  String key parts are hashed (SHA-256) to a
    stable integer, so the derivation never depends on ``PYTHONHASHSEED``.
    """
    entropy: list[int] = [int(seed)]
    for part in key:
        if isinstance(part, str):
            digest = hashlib.sha256(part.encode()).digest()[:8]
            entropy.append(int.from_bytes(digest, "big"))
        elif isinstance(part, (int, np.integer)):
            if int(part) < 0:
                raise ValueError(f"keyed_rng key parts must be non-negative, got {part}")
            entropy.append(int(part))
        else:
            raise TypeError(
                f"keyed_rng key parts must be int or str, got {type(part).__name__}"
            )
    return np.random.default_rng(entropy)


def rng_state_token(rng: RngLike) -> object:
    """Return a canonical, JSON-able token of ``rng``'s current state.

    Used by checkpoint fingerprints: a checkpoint taken under one RNG state
    must be refused by a resume attempt under another, or the resumed run
    could not be bitwise identical to a clean one.  ``None`` (fresh
    unreproducible generator) returns ``None`` — such runs cannot be
    checkpoint-resumed bitwise and the checkpoint layer rejects them.
    An integer seed is its own token; a generator's token is its bit
    generator's full state tree (plain ints/strings, JSON-stable).
    """
    if rng is None:
        return None
    if isinstance(rng, (int, np.integer)):
        return int(rng)
    if isinstance(rng, np.random.Generator):
        return _canonical_state(rng.bit_generator.state)
    raise TypeError(f"cannot token-ize RNG state of {type(rng).__name__}")


def _canonical_state(state: object) -> object:
    """Recursively convert a bit-generator state tree to JSON-able types."""
    if isinstance(state, dict):
        return {str(k): _canonical_state(v) for k, v in sorted(state.items())}
    if isinstance(state, (list, tuple, np.ndarray)):
        return [_canonical_state(v) for v in state]
    if isinstance(state, (np.integer,)):
        return int(state)
    return state


def spawn_child(rng: np.random.Generator) -> np.random.Generator:
    """Return an independent child generator derived from ``rng``.

    Used when one experiment needs several independent random streams (for
    example inter-die versus intra-die variation samples) that must not
    perturb each other's sequences when sample counts change.
    """
    seed = int(rng.integers(0, 2**63 - 1))
    return np.random.default_rng(seed)
