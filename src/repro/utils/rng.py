"""Random-number-generator plumbing.

Every stochastic component of the library (random input vectors, synthetic
benchmark circuits, Monte-Carlo process variation) accepts either a seed or a
``numpy.random.Generator``.  Centralising the coercion keeps experiments
reproducible: the same seed always produces the same circuit, the same vector
set and the same Monte-Carlo samples.
"""

from __future__ import annotations

import numpy as np

RngLike = int | np.random.Generator | None


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``rng``.

    ``None`` produces a freshly seeded generator (non-reproducible), an
    integer is used as a seed, and an existing generator is passed through
    unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a random generator from {type(rng).__name__}")


def spawn_streams(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators derived from ``rng``.

    The streams are derived through ``SeedSequence.spawn`` (or
    ``Generator.spawn`` when an existing generator is passed), so stream
    ``i`` depends only on the root seed and ``i`` — never on how many other
    streams exist or in which order they are consumed.  This is what makes
    the parallel Monte-Carlo driver bitwise-reproducible against the serial
    one: both hand sample ``i`` exactly ``streams[i]``.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return list(ensure_rng(rng).spawn(count))


def spawn_child(rng: np.random.Generator) -> np.random.Generator:
    """Return an independent child generator derived from ``rng``.

    Used when one experiment needs several independent random streams (for
    example inter-die versus intra-die variation samples) that must not
    perturb each other's sequences when sample counts change.
    """
    seed = int(rng.integers(0, 2**63 - 1))
    return np.random.default_rng(seed)
