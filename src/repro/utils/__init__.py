"""Shared utilities: physical constants, unit helpers, math and table tools.

The rest of the library works in a single consistent unit system:

* voltages in volts (V)
* currents in amperes (A)
* temperatures in kelvin (K)
* geometric lengths (channel length, width, oxide thickness) in nanometres (nm)
* doping concentrations in cm^-3

Helpers in :mod:`repro.utils.units` convert to and from the display units used
by the paper's figures (nA, uW, degrees Celsius).
"""

from repro.utils.constants import (
    BOLTZMANN_EV,
    BOLTZMANN_J,
    ELECTRON_CHARGE,
    EPSILON_0,
    EPSILON_OX,
    EPSILON_SI,
    ROOM_TEMPERATURE_K,
    SILICON_BANDGAP_0K,
    SILICON_INTRINSIC_300K,
    silicon_bandgap,
    thermal_voltage,
)
from repro.utils.units import (
    amps_to_nanoamps,
    celsius_to_kelvin,
    kelvin_to_celsius,
    nanoamps_to_amps,
    nm_to_cm,
    nm_to_m,
    watts_to_microwatts,
)
from repro.utils.mathtools import (
    clamp,
    log1p_exp,
    relative_difference,
    safe_exp,
    smooth_step,
)
from repro.utils.tables import format_table
from repro.utils.rng import ensure_rng

__all__ = [
    "BOLTZMANN_EV",
    "BOLTZMANN_J",
    "ELECTRON_CHARGE",
    "EPSILON_0",
    "EPSILON_OX",
    "EPSILON_SI",
    "ROOM_TEMPERATURE_K",
    "SILICON_BANDGAP_0K",
    "SILICON_INTRINSIC_300K",
    "silicon_bandgap",
    "thermal_voltage",
    "amps_to_nanoamps",
    "celsius_to_kelvin",
    "kelvin_to_celsius",
    "nanoamps_to_amps",
    "nm_to_cm",
    "nm_to_m",
    "watts_to_microwatts",
    "clamp",
    "log1p_exp",
    "relative_difference",
    "safe_exp",
    "smooth_step",
    "format_table",
    "ensure_rng",
]
