"""Numerically robust scalar math helpers used throughout the compact models.

The compact leakage models contain exponentials of large arguments (for
example the on-state of a transistor evaluated with the subthreshold
formula).  The helpers here keep those evaluations finite and smooth so the
DC solver never sees an overflow or a kink.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

#: Largest exponent handed to ``math.exp``; exp(700) is near the float64 max.
_MAX_EXP_ARG = 60.0


def safe_exp(x: float, max_arg: float = _MAX_EXP_ARG) -> float:
    """Return ``exp(x)`` with the argument clipped to ``[-max_arg, max_arg]``.

    Clipping at +/-60 keeps the result comfortably inside float64 range while
    preserving ~26 decades of dynamic range, far more than any physical
    leakage ratio in the models.
    """
    if x > max_arg:
        x = max_arg
    elif x < -max_arg:
        x = -max_arg
    return math.exp(x)


def log1p_exp(x: float) -> float:
    """Return ``log(1 + exp(x))`` without overflow (softplus).

    Used by the EKV-style smooth channel-current interpolation between the
    subthreshold and strong-inversion regimes.
    """
    if x > _MAX_EXP_ARG:
        return x
    if x < -_MAX_EXP_ARG:
        return math.exp(x)
    return math.log1p(math.exp(x))


def safe_exp_np(x: np.ndarray, max_arg: float = _MAX_EXP_ARG) -> np.ndarray:
    """Vectorized :func:`safe_exp`: elementwise ``exp`` with clipped argument."""
    # minimum/maximum instead of np.clip: same result, much less call
    # overhead on the small arrays the solver hot loop works with.
    return np.exp(np.minimum(np.maximum(x, -max_arg), max_arg))


def log1p_exp_np(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`log1p_exp` (softplus) with the same branch structure.

    Matches the scalar helper branch for branch so the batched device models
    agree with the scalar oracle to rounding error: above ``+_MAX_EXP_ARG``
    the identity ``log(1+exp(x)) -> x`` is used, below ``-_MAX_EXP_ARG`` the
    softplus collapses to ``exp(x)`` itself.
    """
    x = np.asarray(x, dtype=float)
    exp_x = np.exp(np.minimum(x, _MAX_EXP_ARG))
    return np.where(
        x > _MAX_EXP_ARG,
        x,
        np.where(x < -_MAX_EXP_ARG, exp_x, np.log1p(exp_x)),
    )


def log1p_exp_grad_np(x: np.ndarray) -> np.ndarray:
    """Derivative of :func:`log1p_exp_np`, branch for branch.

    Above ``+_MAX_EXP_ARG`` the softplus is the identity (slope 1), below
    ``-_MAX_EXP_ARG`` it collapses to ``exp(x)`` (slope ``exp(x)``), and in
    between the derivative is the logistic sigmoid.  Matching the value
    twin's branches keeps the analytic device Jacobians consistent with the
    currents the solver actually evaluates.
    """
    x = np.asarray(x, dtype=float)
    exp_x = np.exp(np.minimum(x, _MAX_EXP_ARG))
    return np.where(
        x > _MAX_EXP_ARG,
        1.0,
        np.where(x < -_MAX_EXP_ARG, exp_x, exp_x / (1.0 + exp_x)),
    )


def smooth_step_np(x: np.ndarray, width: float = 1.0) -> np.ndarray:
    """Vectorized :func:`smooth_step` (logistic 0-to-1 transition)."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return 1.0 / (1.0 + safe_exp_np(-np.asarray(x, dtype=float) / width))


def smooth_step_grad_np(x: np.ndarray, width: float = 1.0) -> np.ndarray:
    """Derivative of :func:`smooth_step_np` with respect to ``x``.

    ``step * (1 - step) / width`` — exact wherever the value twin's clipped
    exponential is not saturated; in the saturated tails the true derivative
    of the clipped implementation is exactly zero while this expression is
    ``~exp(-_MAX_EXP_ARG)/width``, an absolute error below 1e-24 for every
    width the device models use.
    """
    step = smooth_step_np(x, width=width)
    return step * (1.0 - step) / width


def clamp(value: float, lower: float, upper: float) -> float:
    """Clamp ``value`` into the closed interval ``[lower, upper]``."""
    if lower > upper:
        raise ValueError(f"invalid clamp interval [{lower}, {upper}]")
    if value < lower:
        return lower
    if value > upper:
        return upper
    return value


def smooth_step(x: float, width: float = 1.0) -> float:
    """Return a smooth 0-to-1 transition of ``x`` over the given width.

    A logistic step centred at zero, used to blend bias-dependent model terms
    without introducing derivative discontinuities.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return 1.0 / (1.0 + safe_exp(-x / width))


def relative_difference(value: float, reference: float) -> float:
    """Return ``(value - reference) / reference``.

    This is the paper's loading-effect metric shape (Eqs. 3-5).  A zero
    reference raises ``ZeroDivisionError`` so silent nonsense never
    propagates into figures.
    """
    if reference == 0.0:
        raise ZeroDivisionError("relative difference against a zero reference")
    return (value - reference) / reference


def percent_difference(value: float, reference: float) -> float:
    """Return the relative difference expressed in percent."""
    return 100.0 * relative_difference(value, reference)


def interp_linear(x: float, xs: Sequence[float], ys: Sequence[float]) -> float:
    """Piecewise-linear interpolation with flat extrapolation at the ends.

    ``xs`` must be strictly increasing.  Flat (clamped) extrapolation is the
    safe choice for characterized leakage responses: loading currents outside
    the characterized range saturate at the last characterized value instead
    of extrapolating an unphysical trend.
    """
    n = len(xs)
    if n != len(ys):
        raise ValueError("xs and ys must have the same length")
    if n == 0:
        raise ValueError("cannot interpolate empty tables")
    if n == 1:
        return float(ys[0])
    if x <= xs[0]:
        return float(ys[0])
    if x >= xs[-1]:
        return float(ys[-1])
    lo, hi = 0, n - 1
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if xs[mid] <= x:
            lo = mid
        else:
            hi = mid
    x0, x1 = xs[lo], xs[hi]
    y0, y1 = ys[lo], ys[hi]
    if x1 == x0:
        return float(y0)
    frac = (x - x0) / (x1 - x0)
    return float(y0 + frac * (y1 - y0))
