"""Unit conversion helpers.

The library computes in SI (amps, volts, kelvin) but the paper reports
currents in nA, power in uW and temperature in Celsius; figures and reports
use these helpers so conversions live in exactly one place.
"""

from __future__ import annotations


def nanoamps_to_amps(value_na: float) -> float:
    """Convert a current from nanoamperes to amperes."""
    return value_na * 1.0e-9


def amps_to_nanoamps(value_a: float) -> float:
    """Convert a current from amperes to nanoamperes."""
    return value_a * 1.0e9


def watts_to_microwatts(value_w: float) -> float:
    """Convert power from watts to microwatts."""
    return value_w * 1.0e6


def microwatts_to_watts(value_uw: float) -> float:
    """Convert power from microwatts to watts."""
    return value_uw * 1.0e-6


def celsius_to_kelvin(value_c: float) -> float:
    """Convert a temperature from degrees Celsius to kelvin."""
    return value_c + 273.15


def kelvin_to_celsius(value_k: float) -> float:
    """Convert a temperature from kelvin to degrees Celsius."""
    return value_k - 273.15


def nm_to_m(value_nm: float) -> float:
    """Convert a length from nanometres to metres."""
    return value_nm * 1.0e-9


def nm_to_cm(value_nm: float) -> float:
    """Convert a length from nanometres to centimetres."""
    return value_nm * 1.0e-7


def angstrom_to_nm(value_a: float) -> float:
    """Convert a length from angstroms to nanometres."""
    return value_a * 0.1


def millivolts_to_volts(value_mv: float) -> float:
    """Convert a voltage from millivolts to volts."""
    return value_mv * 1.0e-3
