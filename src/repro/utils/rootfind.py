"""Vectorized bracketed scalar root finding (Chandrupatla's method).

The batched DC solver replaces SciPy's per-call ``brentq`` with a root finder
that drives a whole *batch* of independent one-dimensional problems through
the same iteration: one residual evaluation returns the residuals of every
batch column at once, so the per-iteration cost is one vectorized function
call instead of ``B`` scalar ones.

Chandrupatla's algorithm (T.R. Chandrupatla, 1997) is used because it keeps a
guaranteed bracket like bisection but switches to inverse quadratic
interpolation whenever the bracket geometry allows, converging superlinearly
on the smooth, monotone Kirchhoff residuals of the leakage solver — typically
8-15 evaluations to ~1e-13 V instead of bisection's ~45.

Determinism contract: every per-column update is element-wise and masked, so
a column's trajectory (and therefore its returned root, bit for bit) depends
only on its own function values — never on which other columns share the
batch.  The batched solver relies on this to make chunked/parallel runs
reproduce serial ones exactly.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def chandrupatla(
    func: Callable[[np.ndarray], np.ndarray],
    lo: np.ndarray,
    hi: np.ndarray,
    *,
    f_lo: np.ndarray | None = None,
    f_hi: np.ndarray | None = None,
    xtol: float = 1.0e-8,
    max_iterations: int = 120,
    frozen: np.ndarray | None = None,
    frozen_values: np.ndarray | None = None,
) -> np.ndarray:
    """Solve ``func(x) == 0`` element-wise inside the brackets ``[lo, hi]``.

    Parameters
    ----------
    func:
        Vectorized residual: maps an ``(B,)`` array of abscissae to an
        ``(B,)`` array of residuals.  It is always called with the
        *full-width* array (frozen columns included, at unchanged abscissae),
        which keeps its signature trivial; the extra arithmetic is the price
        of the determinism contract.
    lo / hi:
        Bracket endpoints per column.  Columns must satisfy
        ``func(lo) * func(hi) <= 0`` unless they are ``frozen``.
    f_lo / f_hi:
        Optional pre-computed residuals at the endpoints (saves two calls).
    xtol:
        Absolute abscissa tolerance; iteration stops per column once its
        bracket is below ``xtol`` (plus a float-precision floor).
    max_iterations:
        Safety bound; generous because bisection-rate worst cases need
        ``log2(range/xtol)`` steps.
    frozen:
        Optional boolean mask of columns that already have an answer (for
        example: no sign change, so the caller pins an endpoint).  Frozen
        columns are never updated.
    frozen_values:
        The answers for frozen columns (required when ``frozen`` is given).

    Returns
    -------
    np.ndarray
        The per-column roots (or ``frozen_values`` where frozen).
    """
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    if f_lo is None:
        f_lo = func(lo)
    if f_hi is None:
        f_hi = func(hi)
    f_lo = np.asarray(f_lo, dtype=float)
    f_hi = np.asarray(f_hi, dtype=float)

    if frozen is None:
        frozen = np.zeros(lo.shape, dtype=bool)
    done = frozen.copy()
    result = np.empty_like(lo)
    if frozen_values is not None:
        result[frozen] = frozen_values[frozen]
    elif frozen.any():
        raise ValueError("frozen columns need frozen_values")

    # Exact endpoint roots terminate immediately (mirrors the scalar solver).
    exact_lo = ~done & (f_lo == 0.0)
    result[exact_lo] = lo[exact_lo]
    done |= exact_lo
    exact_hi = ~done & (f_hi == 0.0)
    result[exact_hi] = hi[exact_hi]
    done |= exact_hi

    live = ~done
    if live.any() and np.any(f_lo[live] * f_hi[live] > 0.0):
        raise ValueError("chandrupatla needs a sign change on every live column")

    # State per column: bracket (a, fa) newest, (b, fb) opposite sign,
    # (c, fc) previous point; t is the next step as a fraction of (b - a).
    a, fa = hi.copy(), f_hi.copy()
    b, fb = lo.copy(), f_lo.copy()
    c, fc = b.copy(), fb.copy()
    t = np.full(lo.shape, 0.5)
    eps = np.finfo(float).eps

    for _ in range(max_iterations):
        if done.all():
            break
        update = ~done

        xt = a + t * (b - a)
        # Frozen/finished columns re-evaluate at an unchanged abscissa, so
        # their (ignored) residuals cost arithmetic but never change state.
        ft = func(np.where(update, xt, a))

        same_side = np.sign(ft) == np.sign(fa)
        # Where the new point stays on a's side: (a, c) <- (xt, a).
        # Otherwise the new point crosses: (a, b, c) <- (xt, a, b).
        c = np.where(update, np.where(same_side, a, b), c)
        fc = np.where(update, np.where(same_side, fa, fb), fc)
        b = np.where(update & ~same_side, a, b)
        fb = np.where(update & ~same_side, fa, fb)
        a = np.where(update, xt, a)
        fa = np.where(update, ft, fa)

        # Best current estimate per column.
        a_best = np.abs(fa) < np.abs(fb)
        xm = np.where(a_best, a, b)

        tol = 2.0 * eps * np.abs(xm) + 0.5 * xtol
        spread = np.abs(b - c)
        spread_safe = np.where(spread > 0.0, spread, 1.0)
        tlim = tol / spread_safe
        newly_done = update & ((2.0 * tlim > 1.0) | (fa == 0.0) | (spread == 0.0))
        result[newly_done] = xm[newly_done]
        done |= newly_done
        update &= ~newly_done

        # Inverse quadratic interpolation when the bracket geometry is
        # favourable (Chandrupatla's criterion), bisection otherwise.
        denom_cb = np.where(c == b, 1.0, c - b)
        denom_fcb = np.where(fc == fb, 1.0, fc - fb)
        xi = (a - b) / denom_cb
        phi = (fa - fb) / denom_fcb
        iqi_ok = (phi**2 < xi) & ((1.0 - phi) ** 2 < 1.0 - xi)

        denom_ba = np.where(b == a, 1.0, b - a)
        denom_fba = np.where(fb == fa, 1.0, fb - fa)
        denom_fca = np.where(fc == fa, 1.0, fc - fa)
        denom_fbc = np.where(fb == fc, 1.0, fb - fc)
        t_iqi = (fa / denom_fba) * (fc / denom_fbc) + (
            (c - a) / denom_ba
        ) * (fa / denom_fca) * (fb / denom_fcb)
        t_new = np.where(iqi_ok, t_iqi, 0.5)
        t = np.where(
            update, np.minimum(np.maximum(t_new, tlim), 1.0 - tlim), t
        )

    # Any column that exhausted the iteration budget returns its best point.
    leftovers = ~done
    if leftovers.any():
        a_best = np.abs(fa) < np.abs(fb)
        xm = np.where(a_best, a, b)
        result[leftovers] = xm[leftovers]
    return result
