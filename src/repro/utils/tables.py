"""Plain-text table formatting for experiment and benchmark reports.

The benchmark harness prints the same rows/series the paper's figures report;
this module renders those rows as aligned monospace tables so results are
readable directly from the pytest output or the saved report files.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _render_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1.0e5 or magnitude < 1.0e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows = [[_render_cell(cell, precision) for cell in row] for row in rows]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[idx]) for idx, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line(list(headers)))
    lines.append(render_line(["-" * w for w in widths]))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_key_values(items: dict[str, object], precision: int = 3) -> str:
    """Render a flat mapping as ``key: value`` lines (stable key order)."""
    width = max((len(k) for k in items), default=0)
    lines = []
    for key in items:
        lines.append(f"{key.ljust(width)} : {_render_cell(items[key], precision)}")
    return "\n".join(lines)
