"""Physical constants used by the compact device models.

Values are CODATA-style constants; silicon material parameters follow the
standard textbook values used in Taur & Ning, *Fundamentals of Modern VLSI
Devices* (the paper's reference [3]).
"""

from __future__ import annotations

import math

#: Boltzmann constant in joules per kelvin.
BOLTZMANN_J = 1.380649e-23

#: Boltzmann constant in electron-volts per kelvin.
BOLTZMANN_EV = 8.617333262e-5

#: Elementary charge in coulombs.
ELECTRON_CHARGE = 1.602176634e-19

#: Vacuum permittivity in farads per metre.
EPSILON_0 = 8.8541878128e-12

#: Relative permittivity of silicon times vacuum permittivity (F/m).
EPSILON_SI = 11.7 * EPSILON_0

#: Relative permittivity of SiO2 times vacuum permittivity (F/m).
EPSILON_OX = 3.9 * EPSILON_0

#: Reference (room) temperature in kelvin used for calibration.
ROOM_TEMPERATURE_K = 300.0

#: Silicon bandgap extrapolated to 0 K, in eV (Varshni model).
SILICON_BANDGAP_0K = 1.17

#: Varshni alpha parameter for silicon, eV/K.
_VARSHNI_ALPHA = 4.73e-4

#: Varshni beta parameter for silicon, K.
_VARSHNI_BETA = 636.0

#: Intrinsic carrier concentration of silicon at 300 K, cm^-3.
SILICON_INTRINSIC_300K = 1.0e10


def silicon_bandgap(temperature_k: float) -> float:
    """Return the silicon bandgap in eV at ``temperature_k`` (Varshni model).

    The bandgap narrows with temperature; the junction band-to-band tunneling
    current rises (marginally) with temperature through this narrowing, which
    is the mechanism the paper cites for the weak temperature dependence of
    the BTBT component (Sec. 2.2, Fig. 4c).
    """
    if temperature_k < 0:
        raise ValueError(f"temperature must be non-negative, got {temperature_k}")
    t = float(temperature_k)
    return SILICON_BANDGAP_0K - (_VARSHNI_ALPHA * t * t) / (t + _VARSHNI_BETA)


def thermal_voltage(temperature_k: float) -> float:
    """Return the thermal voltage kT/q in volts at ``temperature_k``."""
    if temperature_k <= 0:
        raise ValueError(f"temperature must be positive, got {temperature_k}")
    return BOLTZMANN_J * temperature_k / ELECTRON_CHARGE


def intrinsic_carrier_concentration(temperature_k: float) -> float:
    """Return silicon intrinsic carrier concentration (cm^-3) at a temperature.

    Uses the standard ``T^1.5 * exp(-Eg / 2kT)`` scaling referenced to the
    300 K value.  Only the *relative* temperature behaviour matters for the
    models in this library.
    """
    if temperature_k <= 0:
        raise ValueError(f"temperature must be positive, got {temperature_k}")
    eg = silicon_bandgap(temperature_k)
    eg_300 = silicon_bandgap(ROOM_TEMPERATURE_K)
    kt = BOLTZMANN_EV * temperature_k
    kt_300 = BOLTZMANN_EV * ROOM_TEMPERATURE_K
    ratio = (temperature_k / ROOM_TEMPERATURE_K) ** 1.5
    ratio *= math.exp(-eg / (2.0 * kt) + eg_300 / (2.0 * kt_300))
    return SILICON_INTRINSIC_300K * ratio
