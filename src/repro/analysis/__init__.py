"""Static netlist analysis: lint rules, diagnostics and pre-flight policy.

The paper's leakage numbers are only meaningful on well-formed netlists.
This package is the gate that enforces it:

* :mod:`repro.analysis.diagnostics` — structured :class:`Diagnostic` /
  :class:`LintReport` records with stable rule codes;
* :mod:`repro.analysis.rules` — the rule registry (``NL001 floating-net``
  ... ``NL100 bench-parse-error``);
* :mod:`repro.analysis.netlist_lint` — :func:`lint_circuit` /
  :func:`lint_vectors` / :func:`lint_flattened` and the
  :func:`preflight_circuit` policy (``lint="raise"|"warn"|"off"``) wired
  into the compile/reference/campaign entry points;
* :mod:`repro.analysis.bench_lint` — ``.bench`` file linting;
* ``python -m repro.analysis`` — the CLI (text/JSON output, CI-friendly
  exit codes, ``--self-check`` over the built-in benchmark circuits).
"""

from repro.analysis.bench_lint import lint_bench_file, lint_bench_text
from repro.analysis.diagnostics import (
    Diagnostic,
    LintReport,
    Location,
    Severity,
    merge_reports,
)
from repro.analysis.netlist_lint import (
    LINT_POLICIES,
    NetlistLintError,
    NetlistLintWarning,
    lint_circuit,
    lint_flattened,
    lint_vectors,
    preflight_circuit,
    preflight_vectors,
)
from repro.analysis.rules import CIRCUIT_RULES, RULES, RULES_BY_CODE, Rule

__all__ = [
    "CIRCUIT_RULES",
    "Diagnostic",
    "LINT_POLICIES",
    "LintReport",
    "Location",
    "NetlistLintError",
    "NetlistLintWarning",
    "RULES",
    "RULES_BY_CODE",
    "Rule",
    "Severity",
    "lint_bench_file",
    "lint_bench_text",
    "lint_circuit",
    "lint_flattened",
    "lint_vectors",
    "merge_reports",
    "preflight_circuit",
    "preflight_vectors",
]
