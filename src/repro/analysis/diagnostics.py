"""Structured lint diagnostics.

Every finding of the static-analysis layer — netlist lint rules, ``.bench``
parse problems, vector-set checks — is reported as a :class:`Diagnostic`: a
stable rule code (``NL001`` ...), a severity, a human-readable message, an
optional location (net / gate / file line) and a fix hint.  Structured
records rather than strings are the point: the pre-flight policy decides
raise-vs-warn per severity, the CLI renders text or JSON from the same
objects, and CI archives them as machine-readable artifacts.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field
from typing import Iterable, Iterator, Sequence


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` findings make downstream numerics wrong or crash (an undriven
    net has no logic value to propagate); ``WARNING`` findings are suspect
    but computable (a zero-fanout gate still leaks, it just suggests a
    mis-declared output); ``INFO`` is purely informational.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Return an integer rank (higher is more severe)."""
        return {"info": 0, "warning": 1, "error": 2}[self.value]


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points.

    All fields are optional; a circuit-level finding names nets/gates, a
    ``.bench`` finding names a file and line.
    """

    net: str | None = None
    gate: str | None = None
    file: str | None = None
    line: int | None = None

    def __str__(self) -> str:
        parts: list[str] = []
        if self.file is not None:
            parts.append(f"{self.file}:{self.line}" if self.line else self.file)
        if self.gate is not None:
            parts.append(f"gate {self.gate!r}")
        if self.net is not None:
            parts.append(f"net {self.net!r}")
        return ", ".join(parts)


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    Attributes
    ----------
    rule:
        Stable rule code (``NL001`` ...).  Codes are never reused or
        renumbered; tooling may key on them.
    severity:
        :class:`Severity` of the finding.
    message:
        Human-readable description of this specific instance.
    location:
        Optional :class:`Location` (net, gate, file:line).
    hint:
        Optional fix suggestion.
    """

    rule: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)
    hint: str | None = None

    def to_dict(self) -> dict[str, object]:
        """Return a JSON-serializable representation."""
        payload = asdict(self)
        payload["severity"] = self.severity.value
        payload["location"] = {
            key: value
            for key, value in asdict(self.location).items()
            if value is not None
        }
        return payload

    def __str__(self) -> str:
        where = str(self.location)
        prefix = f"{where}: " if where else ""
        hint = f"  [{self.hint}]" if self.hint else ""
        return f"{prefix}{self.rule} {self.severity.value}: {self.message}{hint}"


@dataclass
class LintReport:
    """The diagnostics of one lint run over one subject.

    Iterable and indexable like a sequence of :class:`Diagnostic`; exposes
    severity filters and JSON/text rendering shared by the pre-flight hooks
    and the CLI.
    """

    subject: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __getitem__(self, index: int) -> Diagnostic:
        return self.diagnostics[index]

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Append ``diagnostics`` to the report."""
        self.diagnostics.extend(diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        """Return the error-severity diagnostics."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Return the warning-severity diagnostics."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """Return True when no error-severity diagnostics were found."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """Return True when no diagnostics at all were found."""
        return not self.diagnostics

    def by_rule(self, rule: str) -> list[Diagnostic]:
        """Return the diagnostics carrying rule code ``rule``."""
        return [d for d in self.diagnostics if d.rule == rule]

    def rule_histogram(self) -> dict[str, int]:
        """Return a mapping of rule code to finding count."""
        histogram: dict[str, int] = {}
        for diagnostic in self.diagnostics:
            histogram[diagnostic.rule] = histogram.get(diagnostic.rule, 0) + 1
        return dict(sorted(histogram.items()))

    def to_dict(self) -> dict[str, object]:
        """Return a JSON-serializable representation."""
        return {
            "subject": self.subject,
            "ok": self.ok,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "total": len(self.diagnostics),
            },
            "rules": self.rule_histogram(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Return the report as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render_text(self) -> str:
        """Return the human-readable multi-line rendering used by the CLI."""
        lines = [str(diagnostic) for diagnostic in self.diagnostics]
        summary = (
            f"{self.subject}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )
        return "\n".join(lines + [summary])


def merge_reports(subject: str, reports: Sequence[LintReport]) -> LintReport:
    """Return one report aggregating several (CLI multi-file runs)."""
    merged = LintReport(subject=subject)
    for report in reports:
        merged.extend(report.diagnostics)
    return merged
