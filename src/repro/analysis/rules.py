"""Netlist lint rules.

Each rule couples a stable code (``NL001`` ...) with a severity and a check
over a :class:`~repro.circuit.netlist.Circuit` (or, for the non-circuit
scopes, a vector set or a flattened transistor netlist).  Codes are part of
the public contract: they never change meaning, tooling and tests key on
them, and :data:`RULES` is the single registry the CLI and the docs
enumerate.

Rule checks are deliberately independent of :meth:`Circuit.validate` — the
linter must keep walking after the first problem and return *every* finding,
which is what makes it usable as an API-edge pre-flight (reject a request
with the full list of problems, not the first ``ValueError``).

The checks only rely on circuit structure that exists even for malformed
gates (``gate.inputs`` / ``gate.output`` / the driver index); anything that
needs a :class:`~repro.gates.library.GateSpec` first confirms the gate type
is known (rule ``NL005``), so one bad gate type cannot crash the other
rules.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.circuit.netlist import Circuit, Gate
from repro.gates.library import GateSpec, GateType, gate_spec

#: Scopes a rule can apply to.
RULE_SCOPES = ("circuit", "vectors", "flattened", "bench")


@dataclass(frozen=True)
class Rule:
    """One registered lint rule.

    ``check`` is the circuit-scope callable (None for the scopes driven by
    their own entry points: vector-set, flattened-netlist and ``.bench``
    findings reuse the registry for code/severity metadata only).
    """

    code: str
    slug: str
    severity: Severity
    scope: str
    description: str
    check: Callable[[Circuit], Iterator[Diagnostic]] | None = None


def _known_spec(gate: Gate) -> GateSpec | None:
    """Return the gate's spec, or None when its type is not in the library."""
    try:
        return gate_spec(gate.gate_type)
    except (KeyError, AttributeError, TypeError):
        return None


def _driven_nets(circuit: Circuit) -> set[str]:
    """Return every net with at least one driver (PI or gate output)."""
    driven = set(circuit.primary_inputs)
    driven.update(gate.output for gate in circuit.gates.values())
    return driven


def _receiver_counts(circuit: Circuit) -> dict[str, int]:
    """Return, per net, how many gate input pins consume it.

    Computed from ``gate.inputs`` directly (not the fanout index) so it
    stays usable on circuits whose gate types are unknown to the library.
    """
    counts: dict[str, int] = {}
    for gate in circuit.gates.values():
        for net in gate.inputs:
            counts[net] = counts.get(net, 0) + 1
    return counts


# --------------------------------------------------------------------- #
# circuit-scope checks
# --------------------------------------------------------------------- #
def check_floating_nets(circuit: Circuit) -> Iterator[Diagnostic]:
    """NL001: a consumed or exported net that nothing drives."""
    driven = _driven_nets(circuit)
    seen: set[str] = set()
    for gate in circuit.gates.values():
        for net in gate.inputs:
            if net not in driven and net not in seen:
                seen.add(net)
                yield Diagnostic(
                    rule="NL001",
                    severity=Severity.ERROR,
                    message=(
                        f"net {net!r} feeds gate {gate.name!r} but has no "
                        "driver (not a primary input, not a gate output)"
                    ),
                    location=Location(net=net, gate=gate.name),
                    hint="declare the net as INPUT or add the driving gate",
                )
    for net in circuit.primary_outputs:
        if net not in driven and net not in seen:
            seen.add(net)
            yield Diagnostic(
                rule="NL001",
                severity=Severity.ERROR,
                message=f"primary output {net!r} has no driver",
                location=Location(net=net),
                hint="declare the net as INPUT or add the driving gate",
            )


def check_multiply_driven_nets(circuit: Circuit) -> Iterator[Diagnostic]:
    """NL002: a net with more than one driver (two gates, or gate + PI)."""
    drivers: dict[str, list[str]] = {}
    for gate in circuit.gates.values():
        drivers.setdefault(gate.output, []).append(gate.name)
    pi_set = set(circuit.primary_inputs)
    for net in sorted(drivers):
        names = drivers[net]
        conflict = sorted(names)
        if net in pi_set:
            yield Diagnostic(
                rule="NL002",
                severity=Severity.ERROR,
                message=(
                    f"net {net!r} is a primary input but is also driven by "
                    f"gate(s) {', '.join(repr(n) for n in conflict)}"
                ),
                location=Location(net=net, gate=conflict[0]),
                hint="rename the gate output or drop the INPUT declaration",
            )
        elif len(names) > 1:
            yield Diagnostic(
                rule="NL002",
                severity=Severity.ERROR,
                message=(
                    f"net {net!r} is driven by {len(names)} gates: "
                    f"{', '.join(repr(n) for n in conflict)}"
                ),
                location=Location(net=net, gate=conflict[0]),
                hint="every net must have exactly one driver",
            )


def check_combinational_loops(circuit: Circuit) -> Iterator[Diagnostic]:
    """NL003: gates stuck in a combinational cycle.

    One diagnostic per connected cluster of unresolved gates (Kahn's
    algorithm leaves exactly the gates downstream-of-or-inside cycles
    unordered; the cluster split keeps two independent loops as two
    findings).
    """
    dependencies: dict[str, list[str]] = {}
    for gate in circuit.gates.values():
        preds = []
        for net in gate.inputs:
            driver = circuit.driver_of(net)
            if driver is not None:
                preds.append(driver)
        dependencies[gate.name] = preds

    indegree = {name: len(preds) for name, preds in dependencies.items()}
    successors: dict[str, list[str]] = {name: [] for name in dependencies}
    for name, preds in dependencies.items():
        for pred in preds:
            successors[pred].append(name)
    ready = deque(name for name, degree in indegree.items() if degree == 0)
    resolved: set[str] = set()
    while ready:
        name = ready.popleft()
        resolved.add(name)
        for succ in successors[name]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)

    unresolved = set(dependencies) - resolved
    while unresolved:
        # Flood one undirected cluster of unresolved gates.
        start = min(unresolved)
        cluster = {start}
        frontier = deque([start])
        while frontier:
            name = frontier.popleft()
            for neighbour in dependencies[name] + successors[name]:
                if neighbour in unresolved and neighbour not in cluster:
                    cluster.add(neighbour)
                    frontier.append(neighbour)
        unresolved -= cluster
        members = sorted(cluster)
        shown = ", ".join(repr(name) for name in members[:10])
        if len(members) > 10:
            shown += f", ... ({len(members) - 10} more)"
        yield Diagnostic(
            rule="NL003",
            severity=Severity.ERROR,
            message=f"combinational cycle involving gate(s) {shown}",
            location=Location(gate=members[0]),
            hint="break the loop (combinational circuits must be acyclic)",
        )


def check_zero_fanout_gates(circuit: Circuit) -> Iterator[Diagnostic]:
    """NL004: a gate whose output feeds nothing and is not a primary output."""
    receivers = _receiver_counts(circuit)
    po_set = set(circuit.primary_outputs)
    for name in sorted(circuit.gates):
        gate = circuit.gates[name]
        if gate.output not in po_set and receivers.get(gate.output, 0) == 0:
            yield Diagnostic(
                rule="NL004",
                severity=Severity.WARNING,
                message=(
                    f"gate {name!r} output net {gate.output!r} has no "
                    "receivers and is not a primary output"
                ),
                location=Location(net=gate.output, gate=name),
                hint="declare the net as OUTPUT or remove the dead gate",
            )


def check_unknown_gate_templates(circuit: Circuit) -> Iterator[Diagnostic]:
    """NL005: a gate whose type has no library spec / transistor template."""
    for name in sorted(circuit.gates):
        gate = circuit.gates[name]
        if _known_spec(gate) is None:
            shown = getattr(gate.gate_type, "value", gate.gate_type)
            yield Diagnostic(
                rule="NL005",
                severity=Severity.ERROR,
                message=f"gate {name!r} has unknown gate type {shown!r}",
                location=Location(gate=name),
                hint=f"known types: {', '.join(t.value for t in GateType)}",
            )


def check_pin_arity(circuit: Circuit) -> Iterator[Diagnostic]:
    """NL006: a gate wired to a different input count than its spec."""
    for name in sorted(circuit.gates):
        gate = circuit.gates[name]
        spec = _known_spec(gate)
        if spec is None:
            continue  # NL005 already reports this gate.
        if len(gate.inputs) != spec.num_inputs:
            yield Diagnostic(
                rule="NL006",
                severity=Severity.ERROR,
                message=(
                    f"gate {name!r} ({spec.name}) expects "
                    f"{spec.num_inputs} input(s), is wired to "
                    f"{len(gate.inputs)}"
                ),
                location=Location(gate=name),
                hint="match the connection list to the gate type's pins",
            )


def check_unreachable_logic(circuit: Circuit) -> Iterator[Diagnostic]:
    """NL008: a gate no primary input can reach, with locally sound wiring.

    Gates whose *own* inputs are undriven or cyclic already get NL001/NL003;
    this rule flags the downstream collateral — gates that are wired
    correctly but sit behind such a defect, i.e. have no input chain rooted
    at a primary input.
    """
    driven = _driven_nets(circuit)
    reachable_nets = set(circuit.primary_inputs)
    reachable: set[str] = set()
    changed = True
    while changed:
        changed = False
        for gate in circuit.gates.values():
            if gate.name in reachable:
                continue
            if all(net in reachable_nets for net in gate.inputs):
                reachable.add(gate.name)
                reachable_nets.add(gate.output)
                changed = True

    # Gates with a direct defect (undriven input, or membership in a cycle)
    # are root causes, not collateral.
    cyclic = _cyclic_gates(circuit)
    for name in sorted(circuit.gates):
        if name in reachable or name in cyclic:
            continue
        gate = circuit.gates[name]
        if all(net in driven for net in gate.inputs):
            yield Diagnostic(
                rule="NL008",
                severity=Severity.WARNING,
                message=(
                    f"gate {name!r} is unreachable from the primary inputs "
                    "(an upstream net is undriven or cyclic)"
                ),
                location=Location(gate=name),
                hint="fix the upstream defect; this gate is collateral",
            )


def _cyclic_gates(circuit: Circuit) -> set[str]:
    """Return the names of gates left unresolved by Kahn's algorithm."""
    dependencies: dict[str, list[str]] = {}
    for gate in circuit.gates.values():
        dependencies[gate.name] = [
            driver
            for net in gate.inputs
            if (driver := circuit.driver_of(net)) is not None
        ]
    indegree = {name: len(preds) for name, preds in dependencies.items()}
    successors: dict[str, list[str]] = {name: [] for name in dependencies}
    for name, preds in dependencies.items():
        for pred in preds:
            successors[pred].append(name)
    ready = deque(name for name, degree in indegree.items() if degree == 0)
    resolved = 0
    while ready:
        name = ready.popleft()
        resolved += 1
        for succ in successors[name]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    return {name for name, degree in indegree.items() if degree > 0}


# --------------------------------------------------------------------- #
# vector-scope check (driven by lint_vectors, registered for metadata)
# --------------------------------------------------------------------- #
def vector_diagnostics(
    circuit: Circuit, assignments: Sequence[Mapping[str, object]]
) -> Iterator[Diagnostic]:
    """NL007: an input assignment that does not match the primary inputs.

    Flags missing primary inputs, extra (non-PI) nets and non-0/1 values;
    one diagnostic per offending vector, naming the vector index.
    """
    pi_list = list(circuit.primary_inputs)
    pi_set = set(pi_list)
    for index, assignment in enumerate(assignments):
        problems: list[str] = []
        missing = [pi for pi in pi_list if pi not in assignment]
        if missing:
            problems.append(f"missing inputs {missing[:5]}")
        extra = sorted(net for net in assignment if net not in pi_set)
        if extra:
            problems.append(f"non-primary-input nets {extra[:5]}")
        bad_values = sorted(
            str(net)
            for net, value in assignment.items()
            if net in pi_set and value not in (0, 1, False, True)
        )
        if bad_values:
            problems.append(f"non-binary values on {bad_values[:5]}")
        if problems:
            yield Diagnostic(
                rule="NL007",
                severity=Severity.ERROR,
                message=(
                    f"vector #{index} does not match the circuit's "
                    f"{len(pi_list)} primary input(s): {'; '.join(problems)}"
                ),
                location=Location(),
                hint="each vector must assign 0/1 to every primary input",
            )


#: The rule registry, ordered by code.  ``check`` is set for the
#: circuit-scope rules that :func:`repro.analysis.lint_circuit` runs.
RULES: tuple[Rule, ...] = (
    Rule(
        code="NL001",
        slug="floating-net",
        severity=Severity.ERROR,
        scope="circuit",
        description="A consumed or exported net has no driver.",
        check=check_floating_nets,
    ),
    Rule(
        code="NL002",
        slug="multiply-driven-net",
        severity=Severity.ERROR,
        scope="circuit",
        description="A net has more than one driver (two gates, or gate + PI).",
        check=check_multiply_driven_nets,
    ),
    Rule(
        code="NL003",
        slug="combinational-loop",
        severity=Severity.ERROR,
        scope="circuit",
        description="Gates form a combinational cycle.",
        check=check_combinational_loops,
    ),
    Rule(
        code="NL004",
        slug="zero-fanout-gate",
        severity=Severity.WARNING,
        scope="circuit",
        description="A gate output feeds nothing and is not a primary output.",
        check=check_zero_fanout_gates,
    ),
    Rule(
        code="NL005",
        slug="unknown-gate-template",
        severity=Severity.ERROR,
        scope="circuit",
        description="A gate's type has no library spec / transistor template.",
        check=check_unknown_gate_templates,
    ),
    Rule(
        code="NL006",
        slug="pin-arity-mismatch",
        severity=Severity.ERROR,
        scope="circuit",
        description="A gate is wired to a different input count than its spec.",
        check=check_pin_arity,
    ),
    Rule(
        code="NL007",
        slug="vector-width-mismatch",
        severity=Severity.ERROR,
        scope="vectors",
        description=(
            "An input assignment misses primary inputs, names extra nets or "
            "carries non-binary values."
        ),
    ),
    Rule(
        code="NL008",
        slug="unreachable-logic",
        severity=Severity.WARNING,
        scope="circuit",
        description=(
            "A correctly wired gate sits behind an undriven/cyclic defect "
            "and is unreachable from the primary inputs."
        ),
        check=check_unreachable_logic,
    ),
    Rule(
        code="NL009",
        slug="dangling-node",
        severity=Severity.WARNING,
        scope="flattened",
        description=(
            "A free node of the flattened transistor netlist is attached to "
            "fewer than two device terminals."
        ),
    ),
    Rule(
        code="NL100",
        slug="bench-parse-error",
        severity=Severity.ERROR,
        scope="bench",
        description="A .bench file line cannot be parsed into the netlist.",
    ),
)

#: Rule lookup by code.
RULES_BY_CODE: dict[str, Rule] = {rule.code: rule for rule in RULES}

#: The circuit-scope rules, in registry order.
CIRCUIT_RULES: tuple[Rule, ...] = tuple(
    rule for rule in RULES if rule.scope == "circuit"
)
