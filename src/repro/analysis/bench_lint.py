"""Linting of ISCAS ``.bench`` netlist files.

Wraps the strict :func:`repro.circuit.bench_io.parse_bench` reader: a parse
failure becomes a single ``NL100`` diagnostic carrying the file and line
number; a parseable file is then run through the full circuit-scope rule
set of :func:`repro.analysis.lint_circuit`, with every diagnostic annotated
with the source file.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic, LintReport, Location, Severity
from repro.analysis.netlist_lint import lint_circuit
from repro.circuit.bench_io import BenchFormatError, BenchParseError, parse_bench


def lint_bench_text(text: str, name: str = "bench") -> LintReport:
    """Lint ``.bench`` source text; parse failures become NL100 findings."""
    try:
        circuit = parse_bench(text, name=name)
    except BenchFormatError as exc:
        line_no = exc.line_no if isinstance(exc, BenchParseError) else None
        report = LintReport(subject=name)
        report.extend(
            [
                Diagnostic(
                    rule="NL100",
                    severity=Severity.ERROR,
                    message=str(exc),
                    location=Location(file=name, line=line_no),
                    hint="fix the .bench syntax before structural linting",
                )
            ]
        )
        return report
    report = lint_circuit(circuit)
    report.subject = name
    report.diagnostics = [
        replace(d, location=replace(d.location, file=name))
        for d in report.diagnostics
    ]
    return report


def lint_bench_file(path: str | Path) -> LintReport:
    """Lint a ``.bench`` file from disk.

    An unreadable path is reported as an NL100 finding rather than raised,
    so a multi-file CLI run keeps going and the exit code still reflects
    the failure.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        report = LintReport(subject=str(path))
        report.extend(
            [
                Diagnostic(
                    rule="NL100",
                    severity=Severity.ERROR,
                    message=f"cannot read file: {exc}",
                    location=Location(file=str(path)),
                )
            ]
        )
        return report
    return lint_bench_text(text, name=str(path))
