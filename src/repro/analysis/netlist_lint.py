"""Netlist linting entry points and the pre-flight policy.

:func:`lint_circuit` runs every circuit-scope rule of
:mod:`repro.analysis.rules` and returns a :class:`LintReport`;
:func:`lint_vectors` and :func:`lint_flattened` cover the vector-set and
flattened-transistor scopes.  :func:`preflight_circuit` is the policy knob
the numeric entry points (`engine/compile.py`, `core/reference.py`,
`core/vectors.py`, `optimize/objective.py`) call before touching a solver:

* ``lint="raise"`` (default) — error findings raise
  :class:`NetlistLintError` carrying the full report; warning findings are
  emitted as :class:`NetlistLintWarning` warnings.
* ``lint="warn"`` — every finding (errors included) becomes a warning; the
  computation proceeds.  For callers that knowingly process odd netlists.
* ``lint="off"`` — no linting at all (the pre-PR-6 behavior).

The point of the pre-flight is to move failure to the edge: a floating net
or combinational loop is reported in milliseconds with every finding named,
instead of surfacing as a ``KeyError`` deep inside logic propagation or a
non-converging 30-second DC solve.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.analysis.diagnostics import Diagnostic, LintReport, Location, Severity
from repro.analysis.rules import CIRCUIT_RULES, Rule, vector_diagnostics
from repro.circuit.netlist import Circuit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.circuit.flatten import FlattenedCircuit

#: Accepted values of the ``lint=`` pre-flight knob.
LINT_POLICIES = ("raise", "warn", "off")


class NetlistLintError(ValueError):
    """Raised by the pre-flight when a circuit has error-severity findings.

    Subclasses ``ValueError`` so callers that guarded the old
    ``Circuit.validate`` failures keep working; :attr:`report` carries the
    full structured :class:`LintReport`.
    """

    def __init__(self, report: LintReport) -> None:
        self.report = report
        errors = report.errors
        shown = "; ".join(str(d) for d in errors[:5])
        if len(errors) > 5:
            shown += f"; ... ({len(errors) - 5} more)"
        super().__init__(
            f"netlist lint failed for {report.subject!r} with "
            f"{len(errors)} error(s): {shown}"
        )


class NetlistLintWarning(UserWarning):
    """Warning category of non-fatal (or policy-downgraded) lint findings."""


def lint_circuit(circuit: Circuit, rules: Iterable[str] | None = None) -> LintReport:
    """Run the circuit-scope lint rules over ``circuit``.

    Parameters
    ----------
    circuit:
        The gate-level circuit to check.
    rules:
        Optional iterable of rule codes to restrict the run (unknown codes
        raise ``KeyError``); default runs every circuit-scope rule.
    """
    selected = _select_rules(rules)
    report = LintReport(subject=circuit.name)
    for rule in selected:
        if rule.check is not None:
            report.extend(rule.check(circuit))
    return report


def _select_rules(rules: Iterable[str] | None) -> tuple[Rule, ...]:
    if rules is None:
        return CIRCUIT_RULES
    wanted = list(rules)
    by_code = {rule.code: rule for rule in CIRCUIT_RULES}
    unknown = [code for code in wanted if code not in by_code]
    if unknown:
        raise KeyError(
            f"unknown circuit lint rule(s) {unknown}; "
            f"available: {sorted(by_code)}"
        )
    return tuple(by_code[code] for code in wanted)


def lint_vectors(
    circuit: Circuit, assignments: Sequence[Mapping[str, object]]
) -> LintReport:
    """Check a vector set against ``circuit``'s primary inputs (NL007)."""
    report = LintReport(subject=f"{circuit.name} vectors")
    report.extend(vector_diagnostics(circuit, assignments))
    return report


def lint_flattened(flattened: "FlattenedCircuit") -> LintReport:
    """Check a flattened transistor netlist (NL009 dangling nodes).

    A free node attached to fewer than two device terminals cannot satisfy
    KCL non-trivially: with one terminal the node current has a single
    contributor and the solve is degenerate; with zero it is fully floating.
    Both indicate a miswired transistor template.
    """
    report = LintReport(subject=f"{flattened.circuit.name} (flattened)")
    netlist = flattened.netlist
    attachments: dict[str, int] = {}
    for transistor in netlist.transistors:
        for _, node in transistor.terminals():
            attachments[node] = attachments.get(node, 0) + 1
    for source in getattr(netlist, "current_sources", []):
        attachments[source.node] = attachments.get(source.node, 0) + 1
    for name in netlist.free_nodes():
        count = attachments.get(name, 0)
        if count < 2:
            report.extend(
                [
                    Diagnostic(
                        rule="NL009",
                        severity=Severity.WARNING,
                        message=(
                            f"free node {name!r} is attached to {count} "
                            "device terminal(s); its DC solve is degenerate"
                        ),
                        location=Location(net=name),
                        hint="check the transistor template that created it",
                    )
                ]
            )
    return report


def preflight_circuit(
    circuit: Circuit,
    lint: str = "raise",
    vectors: Sequence[Mapping[str, object]] | None = None,
) -> LintReport | None:
    """Apply the lint policy to ``circuit`` (and optionally a vector set).

    Returns the :class:`LintReport` (None under ``lint="off"``).  Under
    ``"raise"`` error findings raise :class:`NetlistLintError` and warning
    findings warn; under ``"warn"`` everything warns.
    """
    if lint not in LINT_POLICIES:
        raise ValueError(f"lint must be one of {LINT_POLICIES}, got {lint!r}")
    if lint == "off":
        return None
    report = lint_circuit(circuit)
    if vectors is not None:
        report.extend(lint_vectors(circuit, vectors).diagnostics)
    if lint == "raise" and not report.ok:
        raise NetlistLintError(report)
    for diagnostic in report.diagnostics:
        if lint == "warn" or diagnostic.severity is not Severity.ERROR:
            warnings.warn(str(diagnostic), NetlistLintWarning, stacklevel=3)
    return report


def preflight_vectors(
    circuit: Circuit,
    vectors: Sequence[Mapping[str, object]],
    lint: str = "raise",
) -> LintReport | None:
    """Apply the lint policy to a vector set alone (NL007 only).

    For call sites that already pre-flighted the circuit and materialize an
    explicit vector set later.
    """
    if lint not in LINT_POLICIES:
        raise ValueError(f"lint must be one of {LINT_POLICIES}, got {lint!r}")
    if lint == "off":
        return None
    report = lint_vectors(circuit, vectors)
    if lint == "raise" and not report.ok:
        raise NetlistLintError(report)
    for diagnostic in report.diagnostics:
        if lint == "warn" or diagnostic.severity is not Severity.ERROR:
            warnings.warn(str(diagnostic), NetlistLintWarning, stacklevel=3)
    return report
