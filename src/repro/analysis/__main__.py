"""Command-line netlist linter: ``python -m repro.analysis``.

Usage
-----
Lint ``.bench`` files::

    python -m repro.analysis path/to/circuit.bench [more.bench ...]

Run the repository self-check (every built-in benchmark generator circuit,
plus a ``.bench`` write/re-lint round trip for each)::

    python -m repro.analysis --self-check

Exit codes: ``0`` — no error-severity findings (warnings allowed unless
``--werror``); ``1`` — at least one error finding; ``2`` — usage error.
``--json PATH`` archives the full structured report (the CI lint job
uploads it as an artifact).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.bench_lint import lint_bench_file, lint_bench_text
from repro.analysis.diagnostics import LintReport, merge_reports
from repro.analysis.netlist_lint import lint_circuit
from repro.analysis.rules import RULES
from repro.circuit.bench_io import write_bench


def _self_check_reports(scale: float, seed: int) -> list[LintReport]:
    """Lint every built-in benchmark generator circuit.

    Covers the synthetic ISCAS89-sized suite, the paper's multiplier and
    ALU, and the pedagogical generators; each circuit is additionally
    round-tripped through the ``.bench`` writer and re-linted from text, so
    the writer/reader pair is exercised on every structure we ship.
    """
    from repro.circuit.generators import (
        alu,
        array_multiplier,
        fanout_star,
        inverter_chain,
        iscas_like,
        layered_logic,
        nand_tree,
        paper_benchmark_suite,
        random_logic,
    )

    circuits = {
        "inverter_chain(8)": inverter_chain(8),
        "fanout_star(6)": fanout_star(6),
        "nand_tree(4)": nand_tree(4),
        "array_multiplier(4)": array_multiplier(4),
        "alu(4)": alu(4),
        "random_logic(60)": random_logic(
            "self_check_random", n_inputs=8, n_gates=60, rng=seed
        ),
        "layered_logic(60)": layered_logic(
            "self_check_layered", n_inputs=8, n_gates=60, rng=seed
        ),
        "iscas_like(240)": iscas_like(240),
    }
    for name, circuit in paper_benchmark_suite(scale=scale).items():
        circuits[f"iscas_like({name!r}, scale={scale})"] = circuit

    reports: list[LintReport] = []
    for label, circuit in sorted(circuits.items()):
        report = lint_circuit(circuit)
        report.subject = label
        reports.append(report)
        roundtrip = lint_bench_text(
            write_bench(circuit), name=f"{label} -> .bench round trip"
        )
        reports.append(roundtrip)
    return reports


def _print_rules() -> None:
    for rule in RULES:
        print(
            f"{rule.code}  {rule.slug:24s} {rule.severity.value:8s} "
            f"[{rule.scope}] {rule.description}"
        )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Netlist lint diagnostics for .bench files and "
        "built-in benchmark circuits.",
    )
    parser.add_argument(
        "files", nargs="*", type=Path, help=".bench files to lint"
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="lint every built-in benchmark generator circuit "
        "(plus .bench round trips)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.5,
        help="ISCAS-like circuit scale of the self-check (default 0.5)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=20050307,
        help="seed of the self-check's random-logic circuit",
    )
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="write the merged structured report as JSON",
    )
    parser.add_argument(
        "--werror",
        action="store_true",
        help="exit non-zero on warning findings too",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the summary line"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule registry"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0
    if not args.files and not args.self_check:
        parser.error("nothing to lint: pass .bench files or --self-check")

    reports: list[LintReport] = []
    if args.self_check:
        reports.extend(_self_check_reports(scale=args.scale, seed=args.seed))
    for path in args.files:
        reports.append(lint_bench_file(path))

    merged = merge_reports("lint run", reports)
    if not args.quiet:
        for report in reports:
            for diagnostic in report.diagnostics:
                print(str(diagnostic))
    print(
        f"{len(reports)} subject(s) linted: {len(merged.errors)} error(s), "
        f"{len(merged.warnings)} warning(s)"
    )

    if args.json is not None:
        payload = merged.to_dict()
        payload["subjects"] = [report.to_dict() for report in reports]
        import json as _json

        args.json.write_text(_json.dumps(payload, indent=2) + "\n")

    if merged.errors or (args.werror and merged.warnings):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
