"""Core contribution: loading-effect analysis and loading-aware leakage estimation.

* :mod:`repro.core.loading` — the LD_IN / LD_OUT / LD_ALL metrics of Eqs. 3-5
  evaluated by exact characterization-cell solves (used by the device-level
  figures 5-9);
* :mod:`repro.core.estimator` — the paper's Fig. 13 algorithm: topological
  traversal of the gate-level netlist, logic-value propagation, per-net
  loading-current accumulation and characterized-LUT lookup;
* :mod:`repro.core.baseline` — the traditional no-loading accumulation the
  paper compares against;
* :mod:`repro.core.reference` — the full transistor-level reference solve
  (the "SPICE" column of Fig. 12a), scalar oracle and batched campaign path;
* :mod:`repro.core.report` — result containers;
* :mod:`repro.core.vectors` — random-vector campaigns, loading-impact
  statistics (Fig. 12b/c) and minimum-leakage-vector search.
"""

from repro.core.loading import LoadingAnalyzer, LoadingEffect
from repro.core.report import CircuitLeakageReport, GateLeakage
from repro.core.estimator import LoadingAwareEstimator
from repro.core.baseline import NoLoadingEstimator
from repro.core.reference import ReferenceSimulator, run_reference_campaign
from repro.core.vectors import (
    VectorCampaignResult,
    loading_impact_statistics,
    minimum_leakage_vector,
    run_vector_campaign,
)

__all__ = [
    "LoadingAnalyzer",
    "LoadingEffect",
    "CircuitLeakageReport",
    "GateLeakage",
    "LoadingAwareEstimator",
    "NoLoadingEstimator",
    "ReferenceSimulator",
    "VectorCampaignResult",
    "loading_impact_statistics",
    "minimum_leakage_vector",
    "run_reference_campaign",
    "run_vector_campaign",
]
