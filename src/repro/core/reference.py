"""Transistor-level reference leakage analysis (the "SPICE" column).

The paper validates its estimator against HSPICE operating-point analyses of
the full circuit.  :class:`ReferenceSimulator` plays that role here: it
flattens the gate-level circuit into transistors
(:mod:`repro.circuit.flatten`), solves the coupled DC operating point with the
relaxation solver (:mod:`repro.spice.solver`), and aggregates per-gate leakage
components.  Because every net — including the nets *between* gates — is
solved against all attached transistors, the result contains the full loading
effect with no one-level approximation; the estimator's accuracy is measured
against it (Fig. 12a).

Two solve paths exist.  :meth:`ReferenceSimulator.estimate` is the original
scalar path — one :class:`~repro.spice.solver.DcSolver` relaxation per input
vector — retained as the oracle.  :meth:`ReferenceSimulator.estimate_batch`
rides the batched SPICE layer: the circuit flattens *once*
(:func:`repro.circuit.flatten.flatten_batch`) and all vectors of a chunk
solve together as one :class:`~repro.spice.batched.BatchedDcSolver` batch,
which is what makes full-suite, many-vector reference validation campaigns
(:func:`run_reference_campaign`) feasible.  Chunks are memory-bounded and —
because every per-column update of the batched solver is independent of its
batch neighbours — the results are bitwise independent of how the vector set
is chunked.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.circuit.flatten import flatten, flatten_batch
from repro.circuit.logic import propagate, random_vectors
from repro.circuit.netlist import Circuit, Gate
from repro.core.report import CircuitLeakageReport, GateLeakage
from repro.core.vectors import VectorCampaignResult
from repro.device.params import TechnologyParams
from repro.spice.analysis import leakage_by_owner
from repro.spice.batched import BatchedDcSolver
from repro.spice.solver import DcSolver, SolverOptions
from repro.utils.rng import RngLike

#: Default vector-chunk size of the batched reference path.  Peak memory per
#: chunk scales with (netlist nodes x chunk), so the default keeps even the
#: largest suite circuits within tens of megabytes while still amortizing the
#: vectorized per-node root finds over a wide batch.
DEFAULT_REFERENCE_CHUNK_SIZE = 64

#: Engine modes accepted by the reference campaign entry points.
REFERENCE_ENGINES = ("batched", "scalar")


def _missing_owner_error(gate: Gate, owners_present: Iterable[str]) -> RuntimeError:
    """Build the diagnostic for a gate with no aggregated leakage.

    This happens when none of the flattened transistors carry the gate's
    name as owner tag — i.e. a miswired or misregistered transistor template
    filed the devices under another owner.  The message names the gate, its
    template, and the owners that *are* present so the offending template is
    identifiable without a debugger.
    """
    owners = sorted(owner for owner in owners_present if owner)
    shown = ", ".join(repr(owner) for owner in owners[:10]) or "<none>"
    if len(owners) > 10:
        shown += f", ... ({len(owners) - 10} more)"
    return RuntimeError(
        f"no leakage aggregated for gate {gate.name!r} (template "
        f"{gate.gate_type.value!r}): none of the flattened transistors carry "
        f"owner tag {gate.name!r}.  Owners present: {shown}.  This indicates "
        "a transistor template that registered its devices under a different "
        "owner."
    )


class ReferenceSimulator:
    """Full transistor-level leakage analysis of a gate-level circuit."""

    method_name = "reference"

    def __init__(
        self,
        technology: TechnologyParams,
        temperature_k: float | None = None,
        solver_options: SolverOptions | None = None,
        lint: str = "raise",
    ) -> None:
        self.technology = technology
        self.temperature_k = (
            technology.temperature_k if temperature_k is None else float(temperature_k)
        )
        # "auto" resolves per flattened system: batched-LAPACK dense Newton
        # on characterization-sized cells (bitwise identical to
        # method="newton" there), the sparse SuperLU backend once the
        # free-node count or the dense-Jacobian memory estimate says the
        # dense stack is a bad idea (large suite circuits).  The resolved
        # backend is recorded per report as metadata["solver_method"].
        self.solver_options = solver_options or SolverOptions(method="auto")
        #: Netlist pre-flight policy ("raise" | "warn" | "off"); applied
        #: before every flatten so a malformed circuit is rejected with the
        #: full finding list instead of 30 s into a DC solve.
        self.lint = lint

    def _preflight(self, circuit: Circuit) -> None:
        from repro.analysis import preflight_circuit

        preflight_circuit(circuit, lint=self.lint)

    # ------------------------------------------------------------------ #
    # scalar oracle path
    # ------------------------------------------------------------------ #
    def estimate(
        self, circuit: Circuit, input_assignment: dict[str, int]
    ) -> CircuitLeakageReport:
        """Return the reference leakage report for one input assignment."""
        self._preflight(circuit)
        start = time.perf_counter()
        flattened = flatten(circuit, self.technology, input_assignment)
        solver = DcSolver(flattened.netlist, self.temperature_k, self.solver_options)
        op = solver.solve(initial_voltages=flattened.initial_voltages())
        per_owner = leakage_by_owner(flattened.netlist, op)

        net_values = propagate(circuit, input_assignment)
        per_gate: dict[str, GateLeakage] = {}
        for name, gate in circuit.gates.items():
            breakdown = per_owner.get(name)
            if breakdown is None:
                raise _missing_owner_error(gate, per_owner)
            per_gate[name] = GateLeakage(
                gate_name=name,
                gate_type_name=gate.gate_type.value,
                vector=tuple(net_values[net] for net in gate.inputs),
                breakdown=breakdown,
            )

        elapsed = time.perf_counter() - start
        return CircuitLeakageReport(
            circuit_name=circuit.name,
            method=self.method_name,
            input_assignment=dict(input_assignment),
            per_gate=per_gate,
            temperature_k=self.temperature_k,
            vdd=self.technology.vdd,
            metadata={
                "runtime_s": elapsed,
                "gate_count": len(per_gate),
                "transistors": flattened.transistor_count,
                "solver_sweeps": op.sweeps,
                "solver_converged": op.converged,
                # The scalar DcSolver is always the relaxation oracle.
                "solver_method": "gauss-seidel",
                "engine": "scalar",
            },
        )

    # ------------------------------------------------------------------ #
    # batched path
    # ------------------------------------------------------------------ #
    def estimate_batch(
        self,
        circuit: Circuit,
        assignments: Iterable[dict[str, int]],
        chunk_size: int = DEFAULT_REFERENCE_CHUNK_SIZE,
    ) -> list[CircuitLeakageReport]:
        """Return one reference report per assignment, solved in batches.

        The circuit flattens once per chunk into a shared transistor
        topology (:func:`flatten_batch`); all vectors of the chunk solve as
        one :class:`BatchedDcSolver` batch and the per-owner leakage of the
        whole chunk is aggregated in one array pass.  Because every
        per-column solver update is independent of its batch neighbours,
        the reports are bitwise identical whatever ``chunk_size`` splits the
        assignment list — only peak memory changes.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self._preflight(circuit)
        assignments = list(assignments)
        reports: list[CircuitLeakageReport] = []
        for lo in range(0, len(assignments), chunk_size):
            reports.extend(
                self._estimate_chunk(circuit, assignments[lo : lo + chunk_size])
            )
        return reports

    def _estimate_chunk(
        self, circuit: Circuit, assignments: list[dict[str, int]]
    ) -> list[CircuitLeakageReport]:
        """Solve one memory-bounded chunk of assignments as a single batch."""
        start = time.perf_counter()
        flattened = flatten_batch(circuit, self.technology, assignments)
        solver = BatchedDcSolver(
            flattened.netlist_views(), self.temperature_k, self.solver_options
        )
        op = solver.solve(initial_voltages=flattened.initial_voltages())
        per_owner = solver.leakage_by_owner(op)

        batch = flattened.batch
        elapsed = time.perf_counter() - start
        per_vector = elapsed / batch

        gates = list(circuit.gates.values())
        breakdowns = []
        for gate in gates:
            batched = per_owner.get(gate.name)
            if batched is None:
                raise _missing_owner_error(gate, per_owner)
            breakdowns.append(batched)

        reports: list[CircuitLeakageReport] = []
        for index in range(batch):
            net_values = flattened.net_values[index]
            per_gate = {
                gate.name: GateLeakage(
                    gate_name=gate.name,
                    gate_type_name=gate.gate_type.value,
                    vector=tuple(net_values[net] for net in gate.inputs),
                    breakdown=batched.at(index),
                )
                for gate, batched in zip(gates, breakdowns)
            }
            metadata = {
                "runtime_s": per_vector,
                "gate_count": len(per_gate),
                "transistors": flattened.transistor_count,
                "solver_sweeps": int(op.sweeps[index]),
                "solver_converged": bool(op.converged[index]),
                "solver_method": op.method,
                "engine": "batched",
                "batch": batch,
            }
            if op.newton_iterations is not None:
                metadata["newton_iterations"] = int(op.newton_iterations[index])
                metadata["solver_fallback"] = bool(op.fallback[index])
            reports.append(
                CircuitLeakageReport(
                    circuit_name=circuit.name,
                    method=self.method_name,
                    input_assignment=dict(assignments[index]),
                    per_gate=per_gate,
                    temperature_k=self.temperature_k,
                    vdd=self.technology.vdd,
                    metadata=metadata,
                )
            )
        return reports


def run_reference_campaign(
    circuit: Circuit,
    technology: TechnologyParams,
    vectors: Iterable[dict[str, int]] | None = None,
    count: int = 20,
    rng: RngLike = None,
    temperature_k: float | None = None,
    solver_options: SolverOptions | None = None,
    engine: str = "batched",
    chunk_size: int = DEFAULT_REFERENCE_CHUNK_SIZE,
    lint: str = "raise",
) -> VectorCampaignResult:
    """Run the transistor-level reference solve over a whole vector set.

    The reference twin of :func:`repro.core.vectors.run_vector_campaign`:
    it produces a :class:`VectorCampaignResult` whose reports come from the
    full transistor-level solve instead of the LUT estimator, so the two
    campaign results compare directly (Fig. 12a).

    Parameters
    ----------
    vectors:
        Explicit vector set; when omitted, ``count`` random vectors are
        drawn using ``rng``.
    engine:
        ``"batched"`` (default) solves ``chunk_size``-bounded batches
        through :meth:`ReferenceSimulator.estimate_batch`; ``"scalar"``
        runs the original one-solve-per-vector oracle path.
    chunk_size:
        Memory bound of the batched engine; has no effect on the results
        (chunking is bitwise-neutral) nor on the scalar engine.
    lint:
        Netlist pre-flight policy (``"raise"`` | ``"warn"`` | ``"off"``),
        forwarded to :class:`ReferenceSimulator`.

    For process-level parallelism over chunks see
    :class:`repro.engine.parallel.ParallelReferenceCampaign`, which returns
    identical reports for the same inputs.
    """
    if engine not in REFERENCE_ENGINES:
        raise ValueError(f"engine must be one of {REFERENCE_ENGINES}, got {engine!r}")
    if vectors is None:
        vectors = list(random_vectors(circuit, count, rng))
    else:
        vectors = list(vectors)
    if not vectors:
        # Same loud failure as ParallelReferenceCampaign.run: an empty
        # campaign would only surface later as NaN means.
        raise ValueError("no vectors to evaluate")
    simulator = ReferenceSimulator(technology, temperature_k, solver_options, lint=lint)
    if engine == "batched":
        reports = simulator.estimate_batch(circuit, vectors, chunk_size=chunk_size)
    else:
        reports = [simulator.estimate(circuit, vector) for vector in vectors]
    return VectorCampaignResult(
        circuit_name=circuit.name,
        method=ReferenceSimulator.method_name,
        reports=reports,
    )
