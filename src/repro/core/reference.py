"""Transistor-level reference leakage analysis (the "SPICE" column).

The paper validates its estimator against HSPICE operating-point analyses of
the full circuit.  :class:`ReferenceSimulator` plays that role here: it
flattens the gate-level circuit into transistors
(:mod:`repro.circuit.flatten`), solves the coupled DC operating point with the
relaxation solver (:mod:`repro.spice.solver`), and aggregates per-gate leakage
components.  Because every net — including the nets *between* gates — is
solved against all attached transistors, the result contains the full loading
effect with no one-level approximation; the estimator's accuracy is measured
against it (Fig. 12a).
"""

from __future__ import annotations

import time

from repro.circuit.flatten import flatten
from repro.circuit.logic import propagate
from repro.circuit.netlist import Circuit
from repro.core.report import CircuitLeakageReport, GateLeakage
from repro.device.params import TechnologyParams
from repro.spice.analysis import leakage_by_owner
from repro.spice.solver import DcSolver, SolverOptions


class ReferenceSimulator:
    """Full transistor-level leakage analysis of a gate-level circuit."""

    method_name = "reference"

    def __init__(
        self,
        technology: TechnologyParams,
        temperature_k: float | None = None,
        solver_options: SolverOptions | None = None,
    ) -> None:
        self.technology = technology
        self.temperature_k = (
            technology.temperature_k if temperature_k is None else float(temperature_k)
        )
        self.solver_options = solver_options or SolverOptions()

    def estimate(
        self, circuit: Circuit, input_assignment: dict[str, int]
    ) -> CircuitLeakageReport:
        """Return the reference leakage report for one input assignment."""
        start = time.perf_counter()
        flattened = flatten(circuit, self.technology, input_assignment)
        solver = DcSolver(flattened.netlist, self.temperature_k, self.solver_options)
        op = solver.solve(initial_voltages=flattened.initial_voltages())
        per_owner = leakage_by_owner(flattened.netlist, op)

        net_values = propagate(circuit, input_assignment)
        per_gate: dict[str, GateLeakage] = {}
        for name, gate in circuit.gates.items():
            breakdown = per_owner.get(name)
            if breakdown is None:
                raise RuntimeError(f"no leakage aggregated for gate {name!r}")
            per_gate[name] = GateLeakage(
                gate_name=name,
                gate_type_name=gate.gate_type.value,
                vector=tuple(net_values[net] for net in gate.inputs),
                breakdown=breakdown,
            )

        elapsed = time.perf_counter() - start
        return CircuitLeakageReport(
            circuit_name=circuit.name,
            method=self.method_name,
            input_assignment=dict(input_assignment),
            per_gate=per_gate,
            temperature_k=self.temperature_k,
            vdd=self.technology.vdd,
            metadata={
                "runtime_s": elapsed,
                "gate_count": len(per_gate),
                "transistors": flattened.transistor_count,
                "solver_sweeps": op.sweeps,
                "solver_converged": op.converged,
            },
        )
