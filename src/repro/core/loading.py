"""Loading-effect metrics (Eqs. 3-5 of the paper).

The paper defines, for a logic gate G:

* ``LD_IN(I_L-IN)``  — relative change of a leakage component when a loading
  current ``I_L-IN`` (the summed gate tunneling of the *other* gates attached
  to G's input net) perturbs the input node;
* ``LD_OUT(I_L-OUT)`` — the same for the output net;
* ``LD_ALL`` — both applied together (Eq. 4), with one ``LD_IN`` per input
  pin for multi-input gates (Eq. 5).

:class:`LoadingAnalyzer` evaluates these metrics *exactly*, by re-solving the
characterization cell of the gate with the loading current injected — this is
the analysis half of the paper (Figs. 5-9).  The fast circuit-level estimator
uses the characterized response curves instead (see
:mod:`repro.core.estimator`).

Sign convention: the paper plots loading-current *magnitudes*; physically the
receivers inject current into a net at logic '0' and draw current from a net
at logic '1' (Sec. 4).  The analyzer derives the signed injection from the
logic value of the perturbed pin, so callers can work with magnitudes exactly
as the figures do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.params import TechnologyParams
from repro.gates.characterize import CharacterizationOptions, GateCharacterizer
from repro.gates.library import GateType, gate_spec
from repro.spice.analysis import ComponentBreakdown

#: Component keys reported by every loading-effect evaluation.
LD_COMPONENTS = ("subthreshold", "gate", "btbt", "total")


@dataclass(frozen=True)
class LoadingEffect:
    """Loading effect on each leakage component, in percent.

    A positive value means the loading *increases* that component relative to
    the unloaded (nominal) gate.
    """

    subthreshold: float
    gate: float
    btbt: float
    total: float

    def component(self, name: str) -> float:
        """Return one component's loading effect by name."""
        if name not in LD_COMPONENTS:
            raise KeyError(f"unknown component {name!r}")
        return getattr(self, name)

    def as_dict(self) -> dict[str, float]:
        """Return the four percentages as a dictionary."""
        return {name: getattr(self, name) for name in LD_COMPONENTS}


def _percent(loaded: ComponentBreakdown, nominal: ComponentBreakdown) -> LoadingEffect:
    """Return the per-component percent change of ``loaded`` vs ``nominal``.

    A zero nominal component has no defined percent change.  Two cases are
    distinguished instead of silently returning 0 % (which used to map
    inf/NaN-producing inputs to a fake "no effect" that propagated into the
    Fig. 5-7 tables):

    * both zero — the component does not exist in this configuration (e.g.
      disabled via its ``TechnologyParams`` scale); its loading effect is
      reported as exactly ``0.0``;
    * nonzero over zero — loading conjured a component out of nothing, the
      percent change is genuinely undefined; raise, naming the component.
    """

    def pct(name: str, a: float, b: float) -> float:
        if b == 0.0:
            if a == 0.0:
                return 0.0
            raise ValueError(
                f"loading effect of component {name!r} is undefined: the "
                f"nominal value is 0 A but the loaded value is {a:.3e} A "
                "(is the component disabled in TechnologyParams while the "
                "loaded solve still produces it?)"
            )
        return 100.0 * (a - b) / b

    return LoadingEffect(
        subthreshold=pct("subthreshold", loaded.subthreshold, nominal.subthreshold),
        gate=pct("gate", loaded.gate, nominal.gate),
        btbt=pct("btbt", loaded.btbt, nominal.btbt),
        total=pct("total", loaded.total, nominal.total),
    )


class LoadingAnalyzer:
    """Exact loading-effect analysis of a single library gate.

    Parameters
    ----------
    technology:
        Device technology of the gate and its drivers.
    temperature_k:
        Analysis temperature (defaults to the technology's nominal).
    options:
        Characterization-cell options (driver sizing, solver settings).
    """

    def __init__(
        self,
        technology: TechnologyParams,
        temperature_k: float | None = None,
        options: CharacterizationOptions | None = None,
    ) -> None:
        self.characterizer = GateCharacterizer(technology, temperature_k, options)
        self._nominal_cache: dict[tuple[str, tuple[int, ...]], ComponentBreakdown] = {}

    @property
    def technology(self) -> TechnologyParams:
        """Return the analyzed technology."""
        return self.characterizer.technology

    @property
    def temperature_k(self) -> float:
        """Return the analysis temperature in kelvin."""
        return self.characterizer.temperature_k

    # ------------------------------------------------------------------ #
    # sign handling
    # ------------------------------------------------------------------ #
    def signed_injection(
        self,
        gate_type: GateType | str,
        vector: tuple[int, ...],
        pin: str,
        magnitude: float,
    ) -> float:
        """Return the signed injection for a loading-current *magnitude*.

        Receivers inject current into a '0' net and draw current from a '1'
        net, so the sign follows the logic value of the perturbed pin under
        ``vector`` (the output pin's value is the evaluated gate output).
        """
        if magnitude < 0:
            raise ValueError("loading-current magnitude must be non-negative")
        spec = gate_spec(gate_type)
        if pin == spec.output:
            value = spec.evaluate(vector)
        else:
            try:
                index = spec.inputs.index(pin)
            except ValueError as exc:
                raise KeyError(f"{spec.name} has no pin {pin!r}") from exc
            value = vector[index]
        return -magnitude if value else magnitude

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def nominal(
        self, gate_type: GateType | str, vector: tuple[int, ...]
    ) -> ComponentBreakdown:
        """Return the unloaded leakage breakdown of (gate type, vector)."""
        spec = gate_spec(gate_type)
        key = (spec.name, tuple(int(b) for b in vector))
        cached = self._nominal_cache.get(key)
        if cached is None:
            cached = self.characterizer.solve_cell(spec.gate_type, key[1]).dut_breakdown
            self._nominal_cache[key] = cached
        return cached

    def loaded(
        self,
        gate_type: GateType | str,
        vector: tuple[int, ...],
        loading_magnitudes: dict[str, float],
    ) -> ComponentBreakdown:
        """Return the leakage breakdown with the given loading magnitudes applied.

        ``loading_magnitudes`` maps pin names (inputs and/or ``y``) to
        loading-current magnitudes in amperes.
        """
        spec = gate_spec(gate_type)
        injections = {
            pin: self.signed_injection(spec.gate_type, vector, pin, magnitude)
            for pin, magnitude in loading_magnitudes.items()
        }
        return self.characterizer.solve_cell(
            spec.gate_type, vector, injections
        ).dut_breakdown

    def input_loading_effect(
        self,
        gate_type: GateType | str,
        vector: tuple[int, ...],
        loading_current: float,
        pin: str = "a",
    ) -> LoadingEffect:
        """Return LD_IN for a loading-current magnitude at one input pin (Eq. 3)."""
        nominal = self.nominal(gate_type, vector)
        loaded = self.loaded(gate_type, vector, {pin: loading_current})
        return _percent(loaded, nominal)

    def output_loading_effect(
        self,
        gate_type: GateType | str,
        vector: tuple[int, ...],
        loading_current: float,
    ) -> LoadingEffect:
        """Return LD_OUT for a loading-current magnitude at the output (Eq. 3)."""
        spec = gate_spec(gate_type)
        nominal = self.nominal(spec.gate_type, vector)
        loaded = self.loaded(spec.gate_type, vector, {spec.output: loading_current})
        return _percent(loaded, nominal)

    def overall_loading_effect(
        self,
        gate_type: GateType | str,
        vector: tuple[int, ...],
        input_loading: float | dict[str, float],
        output_loading: float,
    ) -> LoadingEffect:
        """Return LD_ALL with input and output loading applied together (Eqs. 4-5).

        ``input_loading`` is either a single magnitude applied to every input
        pin or a per-pin mapping.
        """
        spec = gate_spec(gate_type)
        if isinstance(input_loading, dict):
            magnitudes = dict(input_loading)
        else:
            magnitudes = {pin: float(input_loading) for pin in spec.inputs}
        magnitudes[spec.output] = float(output_loading)
        nominal = self.nominal(spec.gate_type, vector)
        loaded = self.loaded(spec.gate_type, vector, magnitudes)
        return _percent(loaded, nominal)
