"""Traditional (no-loading) circuit leakage estimation.

"Traditionally, leakage current in a circuit is calculated by determining
individual leakage values for each gate and accumulating them" (Sec. 6 of the
paper).  :class:`NoLoadingEstimator` implements exactly that baseline: the
same characterized library, the same logic propagation and topological
traversal, but every gate is looked up at its unloaded (nominal) point.

Comparing it against :class:`~repro.core.estimator.LoadingAwareEstimator`
reproduces the paper's Fig. 12(b)/(c) "% variation in leakage due to loading".
"""

from __future__ import annotations

from repro.core.estimator import LoadingAwareEstimator
from repro.gates.characterize import GateLibrary


class NoLoadingEstimator(LoadingAwareEstimator):
    """Accumulates unloaded per-gate leakage (the pre-existing practice)."""

    method_name = "no-loading"

    def __init__(self, library: GateLibrary) -> None:
        super().__init__(library, include_loading=False)
