"""Result containers for circuit-level leakage estimation.

Every estimation path (loading-aware, no-loading baseline, transistor-level
reference) produces the same :class:`CircuitLeakageReport` so experiments can
compare them uniformly — the comparisons *are* the paper's Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spice.analysis import ComponentBreakdown
from repro.utils.tables import format_table

#: Component keys reported throughout the circuit-level experiments.
REPORT_COMPONENTS = ("subthreshold", "gate", "btbt", "total")


@dataclass(frozen=True)
class GateLeakage:
    """Per-gate leakage entry of a circuit report.

    Attributes
    ----------
    gate_name:
        The circuit's gate instance name.
    gate_type_name:
        Library gate-type name.
    vector:
        The gate's input vector under the applied primary-input assignment.
    breakdown:
        Leakage components of the gate.
    input_loading / output_loading:
        The summed loading currents (A) the estimator attributed to the
        gate's input pins and output net (zero for no-loading estimates).
    """

    gate_name: str
    gate_type_name: str
    vector: tuple[int, ...]
    breakdown: ComponentBreakdown
    input_loading: float = 0.0
    output_loading: float = 0.0


@dataclass
class CircuitLeakageReport:
    """Leakage of one circuit under one primary-input assignment.

    Attributes
    ----------
    circuit_name:
        Name of the analyzed circuit.
    method:
        Which path produced the report (``loading-aware``, ``no-loading`` or
        ``reference``).
    input_assignment:
        The applied primary-input values.
    per_gate:
        Per-gate entries keyed by gate name.
    temperature_k / vdd:
        Conditions of the analysis.
    metadata:
        Free-form extras (solver statistics, runtimes, ...).
    """

    circuit_name: str
    method: str
    input_assignment: dict[str, int]
    per_gate: dict[str, GateLeakage]
    temperature_k: float
    vdd: float
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def components(self) -> ComponentBreakdown:
        """Return the circuit-level component totals."""
        total = ComponentBreakdown()
        for entry in self.per_gate.values():
            total = total + entry.breakdown
        return total

    @property
    def total(self) -> float:
        """Return the total circuit leakage current in amperes."""
        return self.components.total

    @property
    def power_w(self) -> float:
        """Return the static power in watts (total leakage times VDD)."""
        return self.total * self.vdd

    def component(self, name: str) -> float:
        """Return one circuit-level component (or the total) in amperes."""
        return self.components.component(name)

    def gate_count(self) -> int:
        """Return the number of gates covered by the report."""
        return len(self.per_gate)

    def percent_difference(self, reference: "CircuitLeakageReport") -> dict[str, float]:
        """Return per-component percent difference of this report vs ``reference``.

        Positive values mean this report's leakage is higher.  Components
        that are zero in the reference map to 0 % to keep campaign statistics
        finite (this only happens in degenerate single-gate circuits).
        """
        result: dict[str, float] = {}
        mine = self.components
        theirs = reference.components
        for name in REPORT_COMPONENTS:
            ref_value = theirs.component(name)
            if ref_value == 0.0:
                result[name] = 0.0
            else:
                result[name] = 100.0 * (mine.component(name) - ref_value) / ref_value
        return result

    def summary_table(self, precision: int = 4) -> str:
        """Return a small plain-text summary of the circuit totals."""
        components = self.components
        rows = [
            [name, components.component(name) * 1e9]
            for name in REPORT_COMPONENTS
        ]
        return format_table(
            ["component", "leakage [nA]"],
            rows,
            precision=precision,
            title=f"{self.circuit_name} ({self.method})",
        )

    def top_gates(self, count: int = 10, component: str = "total") -> list[GateLeakage]:
        """Return the ``count`` leakiest gates by the chosen component."""
        entries = sorted(
            self.per_gate.values(),
            key=lambda entry: entry.breakdown.component(component),
            reverse=True,
        )
        return entries[:count]
