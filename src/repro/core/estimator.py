"""Loading-aware circuit leakage estimation (the paper's Fig. 13 algorithm).

Given a gate-level circuit, a primary-input assignment and a characterized
:class:`~repro.gates.characterize.GateLibrary`, the estimator:

1. topologically sorts the gates and propagates logic values;
2. computes, for every net, the summed signed gate-tunneling current its
   receiver pins inject (from the characterized per-pin injection values);
3. for every gate, turns those per-net sums into per-pin loading currents
   (input loading excludes the gate's own pin; primary-input nets are ideal
   and carry no loading) and looks up the characterized leakage response;
4. accumulates per-gate and per-component totals.

The cost is one LUT lookup per pin — linear in circuit size — which is where
the ~1000x advantage over the transistor-level reference solve comes from.
The one-level-propagation assumption of the paper (loading does not
meaningfully propagate across more than one logic level) is what makes step 2
possible with nominal (unloaded) pin-injection values.
"""

from __future__ import annotations

import time

from repro.circuit.graph import topological_order
from repro.circuit.logic import propagate
from repro.circuit.netlist import Circuit
from repro.core.report import CircuitLeakageReport, GateLeakage
from repro.gates.characterize import GateLibrary


class LoadingAwareEstimator:
    """Circuit leakage estimator that accounts for the loading effect.

    Parameters
    ----------
    library:
        Characterized gate library (fixes the technology and temperature).
    include_loading:
        When False the estimator degenerates to the traditional accumulation
        of unloaded gate leakages; :class:`~repro.core.baseline.NoLoadingEstimator`
        is a thin wrapper over this flag.
    """

    method_name = "loading-aware"

    def __init__(self, library: GateLibrary, include_loading: bool = True) -> None:
        self.library = library
        self.include_loading = include_loading

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def estimate(
        self, circuit: Circuit, input_assignment: dict[str, int]
    ) -> CircuitLeakageReport:
        """Return the leakage report of ``circuit`` under ``input_assignment``."""
        circuit.validate()
        start = time.perf_counter()
        order = topological_order(circuit)
        net_values = propagate(circuit, input_assignment)

        vectors: dict[str, tuple[int, ...]] = {}
        for name in order:
            gate = circuit.gates[name]
            vectors[name] = tuple(net_values[net] for net in gate.inputs)

        pin_injections = self._pin_injections(circuit, vectors)
        net_injection = self._net_injections(circuit, pin_injections)
        own_injection = self._own_net_injections(circuit, pin_injections)

        per_gate: dict[str, GateLeakage] = {}
        for name in order:
            gate = circuit.gates[name]
            vector = vectors[name]
            loading: dict[str, float] = {}
            input_total = 0.0
            output_total = 0.0
            if self.include_loading:
                for pin, net in zip(gate.spec.inputs, gate.inputs):
                    if circuit.is_primary_input(net):
                        continue
                    # "Everyone else's" injection on this pin's net: subtract
                    # *all* of this gate's own receiver pins on the net, not
                    # just the current pin — with two pins tied to one net,
                    # subtracting only the current pin fed the gate's other
                    # pin back onto itself as phantom loading.
                    others = net_injection.get(net, 0.0) - own_injection[(name, net)]
                    if others != 0.0:
                        loading[pin] = others
                        input_total += others
                output_total = net_injection.get(gate.output, 0.0)
                if output_total != 0.0:
                    loading[gate.spec.output] = output_total
            breakdown = self.library.leakage_with_loading(
                gate.gate_type, vector, loading
            )
            per_gate[name] = GateLeakage(
                gate_name=name,
                gate_type_name=gate.gate_type.value,
                vector=vector,
                breakdown=breakdown,
                input_loading=input_total,
                output_loading=output_total,
            )

        elapsed = time.perf_counter() - start
        return CircuitLeakageReport(
            circuit_name=circuit.name,
            method=self.method_name if self.include_loading else "no-loading",
            input_assignment=dict(input_assignment),
            per_gate=per_gate,
            temperature_k=self.library.temperature_k,
            vdd=self.library.vdd,
            metadata={"runtime_s": elapsed, "gate_count": len(per_gate)},
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _pin_injections(
        self, circuit: Circuit, vectors: dict[str, tuple[int, ...]]
    ) -> dict[tuple[str, str], float]:
        """Return the signed injection of every (gate, input pin) into its net."""
        injections: dict[tuple[str, str], float] = {}
        for name, gate in circuit.gates.items():
            vector = vectors[name]
            for pin in gate.spec.inputs:
                injections[(name, pin)] = self.library.pin_injection(
                    gate.gate_type, vector, pin
                )
        return injections

    def _net_injections(
        self, circuit: Circuit, pin_injections: dict[tuple[str, str], float]
    ) -> dict[str, float]:
        """Return, per net, the summed signed injection of its receiver pins."""
        totals: dict[str, float] = {}
        for (name, pin), value in pin_injections.items():
            net = circuit.gates[name].input_net(pin)
            totals[net] = totals.get(net, 0.0) + value
        return totals

    def _own_net_injections(
        self, circuit: Circuit, pin_injections: dict[tuple[str, str], float]
    ) -> dict[tuple[str, str], float]:
        """Return, per (gate, net), the summed injection of that gate's pins.

        For untied inputs this equals the single pin's injection; for a gate
        with several pins on one net it is their sum, which is what the
        loading computation must subtract so a gate never loads itself.
        """
        totals: dict[tuple[str, str], float] = {}
        for (name, pin), value in pin_injections.items():
            net = circuit.gates[name].input_net(pin)
            key = (name, net)
            totals[key] = totals.get(key, 0.0) + value
        return totals
