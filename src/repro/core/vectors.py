"""Vector campaigns: random-vector statistics and minimum-leakage-vector search.

The paper's circuit-level evaluation (Fig. 12) runs 100 random vectors per
circuit and reports, per leakage component, the average and maximum percent
change caused by the loading effect.  It also observes (Sec. 6) that the
minimum-leakage input vector — the quantity input-vector-control leakage
reduction techniques search for — can change once loading is considered.
This module provides both campaign types on top of any estimator that
implements ``estimate(circuit, assignment) -> CircuitLeakageReport``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol

import numpy as np

from repro.circuit.logic import exhaustive_vectors, random_vectors
from repro.circuit.netlist import Circuit
from repro.core.report import REPORT_COMPONENTS, CircuitLeakageReport
from repro.utils.rng import RngLike


class LeakageEstimator(Protocol):
    """Anything that can produce a :class:`CircuitLeakageReport` for a vector."""

    def estimate(
        self, circuit: Circuit, input_assignment: dict[str, int]
    ) -> CircuitLeakageReport:  # pragma: no cover - protocol definition
        ...


@dataclass
class VectorCampaignResult:
    """Reports of one estimator over a common vector set."""

    circuit_name: str
    method: str
    reports: list[CircuitLeakageReport] = field(default_factory=list)

    @property
    def vector_count(self) -> int:
        """Return the number of vectors evaluated."""
        return len(self.reports)

    def totals(self, component: str = "total") -> np.ndarray:
        """Return the chosen component's circuit total per vector (A)."""
        return np.array([report.component(component) for report in self.reports])

    def mean_total(self, component: str = "total") -> float:
        """Return the mean circuit leakage of a component over the campaign."""
        totals = self.totals(component)
        return float(totals.mean()) if totals.size else 0.0

    def runtime_s(self) -> float:
        """Return the summed estimation runtime recorded in report metadata."""
        return float(
            sum(float(r.metadata.get("runtime_s", 0.0)) for r in self.reports)
        )


def run_vector_campaign(
    estimator: LeakageEstimator,
    circuit: Circuit,
    vectors: Iterable[dict[str, int]] | None = None,
    count: int = 100,
    rng: RngLike = None,
) -> VectorCampaignResult:
    """Run ``estimator`` over a vector set and collect the reports.

    Parameters
    ----------
    vectors:
        Explicit vector set; when omitted, ``count`` random vectors are drawn
        using ``rng`` (pass the same seed to different estimators to compare
        them on identical vectors).
    """
    if vectors is None:
        vectors = list(random_vectors(circuit, count, rng))
    else:
        vectors = list(vectors)
    reports = [estimator.estimate(circuit, vector) for vector in vectors]
    method = reports[0].method if reports else getattr(estimator, "method_name", "?")
    return VectorCampaignResult(
        circuit_name=circuit.name, method=method, reports=reports
    )


@dataclass(frozen=True)
class LoadingImpactStatistics:
    """Per-component impact of the loading effect over a vector campaign.

    ``average_percent`` and ``maximum_percent`` are the Fig. 12(b) and
    Fig. 12(c) quantities: the mean and maximum over vectors of the absolute
    percent difference between the loading-aware and no-loading circuit
    totals.
    """

    circuit_name: str
    vector_count: int
    average_percent: dict[str, float]
    maximum_percent: dict[str, float]

    def row(self, statistic: str = "average") -> list[object]:
        """Return a table row (circuit, sub, gate, btbt, total) in percent."""
        source = (
            self.average_percent if statistic == "average" else self.maximum_percent
        )
        return [self.circuit_name] + [source[name] for name in REPORT_COMPONENTS]


def loading_impact_statistics(
    with_loading: VectorCampaignResult,
    without_loading: VectorCampaignResult,
) -> LoadingImpactStatistics:
    """Return average/maximum loading-induced percent change per component.

    Both campaigns must cover the same circuit and the same number of vectors
    (ideally the identical vector list, which :func:`run_vector_campaign`
    guarantees when given the same seed or explicit vectors).
    """
    if with_loading.circuit_name != without_loading.circuit_name:
        raise ValueError("campaigns cover different circuits")
    if with_loading.vector_count != without_loading.vector_count:
        raise ValueError("campaigns cover different vector counts")
    if with_loading.vector_count == 0:
        raise ValueError("campaigns are empty")

    average: dict[str, float] = {}
    maximum: dict[str, float] = {}
    for name in REPORT_COMPONENTS:
        loaded = with_loading.totals(name)
        unloaded = without_loading.totals(name)
        with np.errstate(divide="ignore", invalid="ignore"):
            percent = np.where(
                unloaded != 0.0, 100.0 * (loaded - unloaded) / unloaded, 0.0
            )
        magnitude = np.abs(percent)
        average[name] = float(magnitude.mean())
        maximum[name] = float(magnitude.max())
    return LoadingImpactStatistics(
        circuit_name=with_loading.circuit_name,
        vector_count=with_loading.vector_count,
        average_percent=average,
        maximum_percent=maximum,
    )


def minimum_leakage_vector(
    estimator: LeakageEstimator,
    circuit: Circuit,
    vectors: Iterable[dict[str, int]] | None = None,
    exhaustive: bool = False,
    count: int = 100,
    rng: RngLike = None,
) -> tuple[dict[str, int], float]:
    """Return the input vector with the lowest estimated total leakage.

    Parameters
    ----------
    exhaustive:
        When True every possible input vector is evaluated (only feasible for
        small circuits); otherwise ``vectors`` or ``count`` random vectors
        are used.

    Returns the (assignment, total leakage in amperes) pair.  The paper notes
    that the winning vector can differ between loading-aware and no-loading
    estimation, which is why the estimator is a parameter.
    """
    if exhaustive:
        candidate_vectors: Iterable[dict[str, int]] = exhaustive_vectors(circuit)
    elif vectors is not None:
        candidate_vectors = vectors
    else:
        candidate_vectors = random_vectors(circuit, count, rng)

    best_vector: dict[str, int] | None = None
    best_total = float("inf")
    for vector in candidate_vectors:
        total = estimator.estimate(circuit, vector).total
        if total < best_total:
            best_total = total
            best_vector = dict(vector)
    if best_vector is None:
        raise ValueError("no vectors were evaluated")
    return best_vector, best_total
