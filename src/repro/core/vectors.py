"""Vector campaigns: random-vector statistics and minimum-leakage-vector search.

The paper's circuit-level evaluation (Fig. 12) runs 100 random vectors per
circuit and reports, per leakage component, the average and maximum percent
change caused by the loading effect.  It also observes (Sec. 6) that the
minimum-leakage input vector — the quantity input-vector-control leakage
reduction techniques search for — can change once loading is considered.
This module provides both campaign types on top of any estimator that
implements ``estimate(circuit, assignment) -> CircuitLeakageReport``.

Campaigns over the library-backed estimators
(:class:`~repro.core.estimator.LoadingAwareEstimator` and its no-loading
variant) route through the batched engine of :mod:`repro.engine` by default:
the circuit + library are compiled once into flat LUT arrays and the whole
vector set is answered in a few array passes.  ``engine="scalar"`` forces
the per-vector scalar path, which the regression tests use as the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol, Sequence

import numpy as np

from repro.circuit.logic import exhaustive_vectors, random_vectors
from repro.circuit.netlist import Circuit
from repro.core.estimator import LoadingAwareEstimator
from repro.core.report import REPORT_COMPONENTS, CircuitLeakageReport
from repro.utils.rng import RngLike

#: Engine routing modes accepted by the campaign entry points.
ENGINE_MODES = ("auto", "batched", "scalar")

#: Width cap of the *scalar* exhaustive fallback of
#: ``minimum_leakage_vector(strategy='exhaustive')``: one per-vector
#: estimator walk per candidate, so far fewer inputs are feasible than
#: through the batched oracle.
_MAX_SCALAR_EXHAUSTIVE_INPUTS = 16


class LeakageEstimator(Protocol):
    """Anything that can produce a :class:`CircuitLeakageReport` for a vector."""

    def estimate(
        self, circuit: Circuit, input_assignment: dict[str, int]
    ) -> CircuitLeakageReport:  # pragma: no cover - protocol definition
        ...


@dataclass
class VectorCampaignResult:
    """Reports of one estimator over a common vector set.

    Scalar campaigns materialize one :class:`CircuitLeakageReport` per
    vector; batched-engine campaigns store the circuit totals as arrays
    (``precomputed_totals``) and expose ``reports`` as a lazy sequence that
    only builds full per-gate reports when indexed.
    """

    circuit_name: str
    method: str
    reports: Sequence[CircuitLeakageReport] = field(default_factory=list)
    precomputed_totals: dict[str, np.ndarray] | None = None
    batch_runtime_s: float | None = None
    #: Execution provenance (e.g. the supervised pool's retry ledger under
    #: ``"resilience"``); never feeds back into the report values.
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def vector_count(self) -> int:
        """Return the number of vectors evaluated."""
        return len(self.reports)

    def totals(self, component: str = "total") -> np.ndarray:
        """Return the chosen component's circuit total per vector (A)."""
        if self.precomputed_totals is not None:
            return np.asarray(self.precomputed_totals[component], dtype=float).copy()
        return np.array([report.component(component) for report in self.reports])

    def mean_total(self, component: str = "total") -> float:
        """Return the mean circuit leakage of a component over the campaign."""
        totals = self.totals(component)
        return float(totals.mean()) if totals.size else 0.0

    def runtime_s(self) -> float:
        """Return the campaign's estimation runtime in seconds.

        Batched-engine campaigns report the wall-clock of the single array
        pass; scalar campaigns sum the per-report ``runtime_s`` metadata.
        A report without that metadata raises ``ValueError`` — silently
        substituting 0.0 (the old behavior) made downstream speedup ratios
        divide by zero or report infinite speedups.
        """
        if self.batch_runtime_s is not None:
            return float(self.batch_runtime_s)
        missing = sum(1 for r in self.reports if "runtime_s" not in r.metadata)
        if missing:
            raise ValueError(
                f"{missing} of {len(self.reports)} campaign reports lack "
                "'runtime_s' metadata; refusing to fabricate a 0.0 runtime"
            )
        return float(sum(float(r.metadata["runtime_s"]) for r in self.reports))


def _engine_backed(estimator: LeakageEstimator) -> bool:
    """Return True when ``estimator`` is a library-backed LUT estimator."""
    return isinstance(estimator, LoadingAwareEstimator)


def _check_engine_mode(engine: str, estimator: LeakageEstimator) -> bool:
    """Validate ``engine`` and return whether to use the batched path."""
    if engine not in ENGINE_MODES:
        raise ValueError(f"engine must be one of {ENGINE_MODES}, got {engine!r}")
    if engine == "batched" and not _engine_backed(estimator):
        raise ValueError(
            "engine='batched' requires a library-backed estimator "
            f"(got {type(estimator).__name__})"
        )
    return engine != "scalar" and _engine_backed(estimator)


def _run_batched_campaign(
    estimator: LoadingAwareEstimator,
    circuit: Circuit,
    vectors: list[dict[str, int]],
    session=None,
) -> VectorCampaignResult:
    """Evaluate ``vectors`` through an estimation session's batched engine.

    Routed through :class:`repro.service.EstimationSession` so repeated
    campaigns against the same circuit reuse one compiled instance.
    ``coalesce=False``: this is a synchronous single-caller path, so paying
    the batch window would buy nothing — coalescing is for the session's
    concurrent front-end users.
    """
    from repro.engine.campaign import LazyReports
    from repro.service import default_session

    run = (session or default_session()).campaign(
        circuit,
        estimator.library,
        vectors,
        include_loading=estimator.include_loading,
        coalesce=False,
    )
    return VectorCampaignResult(
        circuit_name=circuit.name,
        method=run.method,
        reports=LazyReports(run),
        precomputed_totals=run.component_totals(),
        batch_runtime_s=run.runtime_s,
    )


def run_vector_campaign(
    estimator: LeakageEstimator,
    circuit: Circuit,
    vectors: Iterable[dict[str, int]] | None = None,
    count: int = 100,
    rng: RngLike = None,
    engine: str = "auto",
    lint: str = "raise",
    session=None,
) -> VectorCampaignResult:
    """Run ``estimator`` over a vector set and collect the reports.

    Parameters
    ----------
    vectors:
        Explicit vector set; when omitted, ``count`` random vectors are drawn
        using ``rng`` (pass the same seed to different estimators to compare
        them on identical vectors).
    engine:
        ``"auto"`` routes library-backed estimators through the batched
        engine; ``"batched"`` requires it; ``"scalar"`` forces the
        per-vector scalar path (the cross-check oracle).
    session:
        Optional :class:`repro.service.EstimationSession` the batched path
        compiles through; default is the process-default session, so
        repeated campaigns share one warm compile cache.  Session routing
        never changes numbers.
    lint:
        Netlist pre-flight policy (:func:`repro.analysis.preflight_circuit`).
        Under the default ``"raise"`` a malformed circuit — or an explicit
        vector set whose assignments do not match the primary inputs
        (``NL007``) — is rejected up front with the full structured finding
        list; ``"warn"`` downgrades to warnings, ``"off"`` skips the check.
    """
    from repro.analysis import preflight_circuit

    use_batched = _check_engine_mode(engine, estimator)
    explicit_vectors = vectors is not None
    if vectors is None:
        vectors = list(random_vectors(circuit, count, rng))
    else:
        vectors = list(vectors)
    # Internally drawn vectors are correct by construction; only explicit
    # caller-supplied sets are width-checked.
    preflight_circuit(
        circuit, lint=lint, vectors=vectors if explicit_vectors else None
    )
    if vectors and use_batched:
        return _run_batched_campaign(estimator, circuit, vectors, session)
    reports = [estimator.estimate(circuit, vector) for vector in vectors]
    method = reports[0].method if reports else getattr(estimator, "method_name", "?")
    return VectorCampaignResult(
        circuit_name=circuit.name, method=method, reports=reports
    )


@dataclass(frozen=True)
class LoadingImpactStatistics:
    """Per-component impact of the loading effect over a vector campaign.

    ``average_percent`` and ``maximum_percent`` are the Fig. 12(b) and
    Fig. 12(c) quantities: the mean and maximum over vectors of the absolute
    percent difference between the loading-aware and no-loading circuit
    totals.  Vectors whose unloaded total is zero for a component have no
    defined percent change; they are excluded from that component's mean and
    maximum, and ``skipped_vectors`` records how many were dropped (a
    component with every vector skipped reports NaN).
    """

    circuit_name: str
    vector_count: int
    average_percent: dict[str, float]
    maximum_percent: dict[str, float]
    skipped_vectors: dict[str, int] = field(default_factory=dict)

    def row(self, statistic: str = "average") -> list[object]:
        """Return a table row (circuit, sub, gate, btbt, total) in percent."""
        source = (
            self.average_percent if statistic == "average" else self.maximum_percent
        )
        return [self.circuit_name] + [source[name] for name in REPORT_COMPONENTS]


def loading_impact_statistics(
    with_loading: VectorCampaignResult,
    without_loading: VectorCampaignResult,
) -> LoadingImpactStatistics:
    """Return average/maximum loading-induced percent change per component.

    Both campaigns must cover the same circuit and the same number of vectors
    (ideally the identical vector list, which :func:`run_vector_campaign`
    guarantees when given the same seed or explicit vectors).
    """
    if with_loading.circuit_name != without_loading.circuit_name:
        raise ValueError("campaigns cover different circuits")
    if with_loading.vector_count != without_loading.vector_count:
        raise ValueError("campaigns cover different vector counts")
    if with_loading.vector_count == 0:
        raise ValueError("campaigns are empty")

    average: dict[str, float] = {}
    maximum: dict[str, float] = {}
    skipped: dict[str, int] = {}
    for name in REPORT_COMPONENTS:
        loaded = with_loading.totals(name)
        unloaded = without_loading.totals(name)
        defined = unloaded != 0.0
        skipped[name] = int(np.count_nonzero(~defined))
        magnitude = np.abs(
            100.0 * (loaded[defined] - unloaded[defined]) / unloaded[defined]
        )
        # A vector with zero unloaded leakage has no percent change; mapping
        # it to 0% (the old behavior) silently deflated the Fig. 12 average.
        average[name] = float(magnitude.mean()) if magnitude.size else float("nan")
        maximum[name] = float(magnitude.max()) if magnitude.size else float("nan")
    return LoadingImpactStatistics(
        circuit_name=with_loading.circuit_name,
        vector_count=with_loading.vector_count,
        average_percent=average,
        maximum_percent=maximum,
        skipped_vectors=skipped,
    )


def minimum_leakage_vector(
    estimator: LeakageEstimator,
    circuit: Circuit,
    vectors: Iterable[dict[str, int]] | None = None,
    exhaustive: bool = False,
    count: int = 100,
    rng: RngLike = None,
    engine: str = "auto",
    strategy: str | None = None,
    strategy_options=None,
    islands: int = 1,
    max_workers: int | None = None,
    lint: str = "raise",
    session=None,
) -> tuple[dict[str, int], float]:
    """Return the input vector with the lowest estimated total leakage.

    Parameters
    ----------
    exhaustive:
        When True every possible input vector is evaluated (only feasible for
        small circuits); otherwise ``vectors`` or ``count`` random vectors
        are used.  Passing both ``exhaustive=True`` and an explicit
        ``vectors`` set is ambiguous and raises ``ValueError``.
    engine:
        Same routing switch as :func:`run_vector_campaign`.
    strategy:
        Optional search-strategy dispatch into :mod:`repro.optimize`:
        ``"exhaustive"`` evaluates every vector (the oracle), ``"greedy"``
        runs the batched random-restart bit-flip hill climber and
        ``"genetic"`` the island-model genetic search — the latter two make
        the search tractable far beyond the ~20-input exhaustive wall and
        require a library-backed estimator.  ``None`` (default) keeps the
        classic behavior driven by ``vectors`` / ``exhaustive`` / ``count``.
        Strategies are incompatible with an explicit ``vectors=`` set or
        ``exhaustive=True`` (the strategy already decides the candidates).
        ``engine=`` is validated exactly as in the classic path: the
        heuristics only have a batched implementation (``engine='scalar'``
        raises), while ``strategy='exhaustive'`` honors ``engine='scalar'``
        by streaming the oracle through the per-vector estimator — behind
        the same input-width guard as the batched oracle.
    strategy_options / islands / max_workers / rng:
        Forwarded to :func:`repro.optimize.minimize_leakage` when a
        heuristic strategy is selected: per-strategy knobs
        (:class:`~repro.optimize.GreedyOptions` /
        :class:`~repro.optimize.GeneticOptions`), the island split, the
        process-pool width (results are bitwise worker-count independent)
        and the root seed.
    lint:
        Netlist pre-flight policy (``"raise"`` | ``"warn"`` | ``"off"``);
        explicit ``vectors=`` sets are additionally width-checked (NL007).
    session:
        Optional :class:`repro.service.EstimationSession` the batched
        paths compile through (default: the process-default session); also
        forwarded to :func:`repro.optimize.minimize_leakage` for the
        heuristic strategies.

    Returns the (assignment, total leakage in amperes) pair.  The paper notes
    that the winning vector can differ between loading-aware and no-loading
    estimation, which is why the estimator is a parameter.  Callers that
    want the full search diagnostics (trajectories, evaluation counts,
    per-island outcomes) should call
    :func:`repro.optimize.minimize_leakage` directly.
    """
    from repro.analysis import preflight_circuit, preflight_vectors

    preflight_circuit(circuit, lint=lint)
    if strategy is not None:
        from repro.optimize import (
            MAX_EXHAUSTIVE_INPUTS,
            SEARCH_STRATEGIES,
            minimize_leakage,
        )

        if strategy not in SEARCH_STRATEGIES:
            raise ValueError(
                f"strategy must be one of {SEARCH_STRATEGIES}, got {strategy!r}"
            )
        if vectors is not None or exhaustive:
            raise ValueError(
                "strategy= already decides the candidate set; drop the "
                "explicit vectors=/exhaustive= arguments"
            )
        # Uniform knob validation, shared by the batched and scalar
        # branches: the deterministic oracle takes no search knobs, and
        # silently dropping them would mask a caller who meant a heuristic.
        if strategy == "exhaustive":
            if strategy_options is not None:
                raise TypeError("strategy='exhaustive' takes no strategy_options")
            if islands != 1 or max_workers is not None:
                raise ValueError(
                    "strategy='exhaustive' does not parallelize over islands "
                    "or workers"
                )
        # Validate engine= exactly like the classic path (bad names raise,
        # engine='batched' demands a library-backed estimator) so strategy=
        # never silently swallows an engine request.
        use_batched = _check_engine_mode(engine, estimator)
        if strategy in ("greedy", "genetic"):
            if not _engine_backed(estimator):
                raise ValueError(
                    f"strategy={strategy!r} requires a library-backed "
                    f"estimator (got {type(estimator).__name__})"
                )
            if not use_batched:
                raise ValueError(
                    f"strategy={strategy!r} only has a batched "
                    "implementation; drop engine='scalar'"
                )
        if use_batched:
            result = minimize_leakage(
                estimator,
                circuit,
                strategy=strategy,
                rng=rng,
                islands=islands,
                max_workers=max_workers,
                options=strategy_options,
                session=session,
            )
            return result.best_assignment, result.best_total
        # strategy='exhaustive' without the batched engine (non-library
        # estimator, or an explicit engine='scalar' oracle request): stream
        # every vector through the scalar loop below.  The width guard is
        # tighter than the batched oracle's MAX_EXHAUSTIVE_INPUTS — one
        # estimator.estimate call per vector is ~1000x an engine row, so
        # 2**16 scalar solves is already minutes.
        n_inputs = len(circuit.primary_inputs)
        scalar_cap = min(MAX_EXHAUSTIVE_INPUTS, _MAX_SCALAR_EXHAUSTIVE_INPUTS)
        if n_inputs > scalar_cap:
            raise ValueError(
                f"exhaustive search over {n_inputs} inputs would stream "
                f"2**{n_inputs} vectors through the per-vector scalar "
                f"estimator (cap: {scalar_cap} inputs); use a "
                "library-backed estimator — which raises the cap to "
                f"{MAX_EXHAUSTIVE_INPUTS} and unlocks strategy='greedy'/"
                "'genetic' for wider circuits"
            )
        exhaustive = True
    if exhaustive and vectors is not None:
        raise ValueError(
            "pass either exhaustive=True or an explicit vectors= set, not both"
        )
    use_batched = _check_engine_mode(engine, estimator)
    if exhaustive:
        # Streamed, not materialized: 2**n vectors must never live at once.
        candidates: Iterable[dict[str, int]] = exhaustive_vectors(circuit)
    elif vectors is not None:
        # Materialize up front: a one-shot iterator that was already consumed
        # would otherwise surface as a confusing "no vectors were evaluated".
        candidates = list(vectors)
        preflight_vectors(circuit, candidates, lint=lint)
    else:
        candidates = list(random_vectors(circuit, count, rng))

    best_vector: dict[str, int] | None = None
    best_total = float("inf")
    if use_batched:
        from repro.service import default_session

        # Stream through the session: exhaustive sweeps never materialize
        # 2**n vectors at once, and each per-chunk run is discarded after
        # its running minimum is folded in.
        sess = session or default_session()
        for run in sess.iter_campaign(
            circuit,
            estimator.library,
            candidates,
            include_loading=estimator.include_loading,
        ):
            totals = run.component_totals()["total"]
            best = int(np.argmin(totals))
            if totals[best] < best_total:
                best_total = float(totals[best])
                best_vector = dict(run.assignments[best])
    else:
        for vector in candidates:
            total = estimator.estimate(circuit, vector).total
            if total < best_total:
                best_total = total
                best_vector = dict(vector)
    if best_vector is None:
        raise ValueError(
            "no candidate vectors to evaluate: the vector set is empty "
            "(was a one-shot iterator already consumed?)"
        )
    return best_vector, best_total
