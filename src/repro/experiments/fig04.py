"""Fig. 4: variation of the leakage components with device parameters.

The paper's Fig. 4 shows, for a single transistor, how the subthreshold, gate
and junction-BTBT components move with (a) the halo doping, (b) the oxide
thickness and (c) the temperature.  The qualitative signatures that matter
for everything downstream are:

* halo up   -> subthreshold down, BTBT up (strongly), gate flat;
* tox up    -> gate down (strongly), subthreshold up, BTBT flat;
* T up      -> subthreshold up (exponentially), gate ~flat, BTBT up slightly;
  at room temperature gate (+BTBT) dominate, at elevated temperature
  subthreshold takes over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.device.mosfet import Mosfet
from repro.device.params import TechnologyParams
from repro.device.presets import make_technology
from repro.utils.tables import format_table


@dataclass
class DeviceTrendSeries:
    """One swept parameter and the resulting component currents (A)."""

    parameter: str
    values: list[float]
    subthreshold: list[float] = field(default_factory=list)
    gate: list[float] = field(default_factory=list)
    btbt: list[float] = field(default_factory=list)

    def to_table(self) -> str:
        """Render the series as a plain-text table (currents in nA)."""
        rows = [
            [value, sub * 1e9, gate * 1e9, btbt * 1e9]
            for value, sub, gate, btbt in zip(
                self.values, self.subthreshold, self.gate, self.btbt
            )
        ]
        return format_table(
            [self.parameter, "Isub [nA]", "Igate [nA]", "Ibtbt [nA]"],
            rows,
            title=f"Fig. 4 sweep: {self.parameter}",
        )


@dataclass
class Fig4Result:
    """The three sweeps of Fig. 4."""

    halo: DeviceTrendSeries
    tox: DeviceTrendSeries
    temperature: DeviceTrendSeries

    def to_table(self) -> str:
        """Render all three sweeps."""
        return "\n\n".join(
            series.to_table() for series in (self.halo, self.tox, self.temperature)
        )


def _off_state_components(
    technology: TechnologyParams, device, temperature_k: float
) -> tuple[float, float, float]:
    """Return (Isub, Igate, Ibtbt) of an off NMOS with drain at VDD."""
    mosfet = Mosfet(device)
    currents = mosfet.terminal_currents(0.0, technology.vdd, 0.0, 0.0, temperature_k)
    return currents.i_subthreshold, currents.i_gate, currents.i_btbt


def run_fig4_device_trends(
    technology: TechnologyParams | None = None,
    halo_values_cm3: list[float] | None = None,
    tox_values_nm: list[float] | None = None,
    temperatures_k: list[float] | None = None,
) -> Fig4Result:
    """Run the three Fig. 4 sweeps on a single off NMOS transistor."""
    technology = technology or make_technology("bulk-50nm")
    nominal = technology.nmos
    halo_values = halo_values_cm3 or list(
        np.linspace(1.0e18, 8.0e18, 8)
    )
    tox_values = tox_values_nm or list(np.linspace(nominal.tox_nm - 0.2, nominal.tox_nm + 0.4, 7))
    temperatures = temperatures_k or list(np.linspace(300.0, 400.0, 11))

    halo_series = DeviceTrendSeries("halo doping [cm^-3]", [float(x) for x in halo_values])
    for halo in halo_series.values:
        device = nominal.replace_btbt(halo_cm3=halo)
        sub, gate, btbt = _off_state_components(technology, device, technology.temperature_k)
        halo_series.subthreshold.append(sub)
        halo_series.gate.append(gate)
        halo_series.btbt.append(btbt)

    tox_series = DeviceTrendSeries("oxide thickness [nm]", [float(x) for x in tox_values])
    for tox in tox_series.values:
        device = nominal.replace(tox_nm=tox)
        sub, gate, btbt = _off_state_components(technology, device, technology.temperature_k)
        tox_series.subthreshold.append(sub)
        tox_series.gate.append(gate)
        tox_series.btbt.append(btbt)

    temp_series = DeviceTrendSeries("temperature [K]", [float(x) for x in temperatures])
    for temperature in temp_series.values:
        sub, gate, btbt = _off_state_components(technology, nominal, temperature)
        temp_series.subthreshold.append(sub)
        temp_series.gate.append(gate)
        temp_series.btbt.append(btbt)

    return Fig4Result(halo=halo_series, tox=tox_series, temperature=temp_series)
