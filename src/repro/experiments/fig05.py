"""Fig. 5: input and output loading effect of an inverter.

The paper sweeps the input loading current (I_L-IN) and the output loading
current (I_L-OUT) from 0 to 3000 nA for an inverter at input '0' and input
'1', and plots LD_IN / LD_OUT (Eq. 3) for each leakage component.  The
signatures to reproduce:

* input loading raises the subthreshold component (strongest response),
  slightly lowers the gate component and leaves BTBT essentially unchanged;
* output loading lowers all three, with BTBT responding most strongly;
* both effects are larger with input '0' than input '1' for the total.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.loading import LoadingAnalyzer, LoadingEffect
from repro.device.params import TechnologyParams
from repro.device.presets import make_technology
from repro.gates.library import GateType
from repro.utils.tables import format_table

#: Default loading-current sweep, matching the paper's 0-3000 nA x-axis.
DEFAULT_LOADING_SWEEP_A = tuple(np.linspace(0.0, 3.0e-6, 7))


@dataclass
class LoadingSweepSeries:
    """LD values versus loading-current magnitude for one configuration."""

    label: str
    loading_currents: list[float]
    effects: list[LoadingEffect] = field(default_factory=list)

    def component(self, name: str) -> list[float]:
        """Return the LD percentages of one component along the sweep."""
        return [effect.component(name) for effect in self.effects]

    def to_table(self) -> str:
        """Render the sweep as a table (loading in nA, LD in percent)."""
        rows = [
            [
                current * 1e9,
                effect.subthreshold,
                effect.gate,
                effect.btbt,
                effect.total,
            ]
            for current, effect in zip(self.loading_currents, self.effects)
        ]
        return format_table(
            ["loading [nA]", "LD sub [%]", "LD gate [%]", "LD btbt [%]", "LD total [%]"],
            rows,
            title=self.label,
        )


@dataclass
class Fig5Result:
    """The four panels of Fig. 5."""

    input_loading_in0: LoadingSweepSeries
    output_loading_in0: LoadingSweepSeries
    input_loading_in1: LoadingSweepSeries
    output_loading_in1: LoadingSweepSeries

    def panels(self) -> list[LoadingSweepSeries]:
        """Return the four panels in the paper's (a)-(d) order."""
        return [
            self.input_loading_in0,
            self.output_loading_in0,
            self.input_loading_in1,
            self.output_loading_in1,
        ]

    def to_table(self) -> str:
        """Render all four panels."""
        return "\n\n".join(panel.to_table() for panel in self.panels())


def run_fig5_inverter_loading(
    technology: TechnologyParams | None = None,
    loading_currents: tuple[float, ...] = DEFAULT_LOADING_SWEEP_A,
    gate_type: GateType = GateType.INV,
) -> Fig5Result:
    """Sweep input and output loading of an inverter at both input values."""
    technology = technology or make_technology("bulk-25nm")
    analyzer = LoadingAnalyzer(technology)
    currents = [float(x) for x in loading_currents]

    def sweep(vector: tuple[int, ...], pin: str, label: str) -> LoadingSweepSeries:
        series = LoadingSweepSeries(label=label, loading_currents=currents)
        for current in currents:
            if pin == "y":
                effect = analyzer.output_loading_effect(gate_type, vector, current)
            else:
                effect = analyzer.input_loading_effect(gate_type, vector, current, pin)
            series.effects.append(effect)
        return series

    return Fig5Result(
        input_loading_in0=sweep((0,), "a", "Fig. 5(a) LD_IN, input '0' output '1'"),
        output_loading_in0=sweep((0,), "y", "Fig. 5(b) LD_OUT, input '0' output '1'"),
        input_loading_in1=sweep((1,), "a", "Fig. 5(c) LD_IN, input '1' output '0'"),
        output_loading_in1=sweep((1,), "y", "Fig. 5(d) LD_OUT, input '1' output '0'"),
    )
