"""Experiment drivers reproducing every figure of the paper's evaluation.

Each module exposes one ``run_*`` function returning a structured result with
a ``to_table()`` renderer, so the same code backs the benchmark harness
(``benchmarks/``), the examples and ad-hoc exploration:

================  ==========================================================
Module            Paper artefact
================  ==========================================================
``fig04``         Fig. 4(a-c): leakage components vs. halo doping, oxide
                  thickness and temperature
``fig05``         Fig. 5: inverter input/output loading effect per component
``fig06``         Fig. 6: LD_ALL surface vs. input and output loading
``fig07``         Fig. 7: NAND2 loading effect per input vector
``fig08``         Fig. 8: loading effect across D25-S / D25-G / D25-JN
``fig09``         Fig. 9: loading effect vs. temperature
``fig10``         Fig. 10: leakage distributions with/without loading under
                  process variation
``fig11``         Fig. 11: loading-induced shift of mean/std vs. sigma-Vt
``fig12``         Fig. 12(a-c): circuit-level estimation vs. reference and
                  loading-induced variation statistics
``runtime``       Fig. 13 / Sec. 6 runtime claim: estimator vs. reference
                  speed-up
``ivc``           Sec. 6 input-vector control: searched minimum-leakage
                  vectors vs. best-of-random-N at equal evaluation budget
================  ==========================================================
"""

from repro.experiments.fig04 import run_fig4_device_trends
from repro.experiments.fig05 import run_fig5_inverter_loading
from repro.experiments.fig06 import run_fig6_ldall_surface
from repro.experiments.fig07 import run_fig7_nand_vectors
from repro.experiments.fig08 import run_fig8_device_variants
from repro.experiments.fig09 import run_fig9_temperature
from repro.experiments.fig10 import run_fig10_variation_histograms
from repro.experiments.fig11 import run_fig11_variation_statistics
from repro.experiments.fig12 import run_fig12_circuit_estimation
from repro.experiments.ivc import run_ivc_study
from repro.experiments.runtime import run_runtime_comparison

__all__ = [
    "run_fig4_device_trends",
    "run_fig5_inverter_loading",
    "run_fig6_ldall_surface",
    "run_fig7_nand_vectors",
    "run_fig8_device_variants",
    "run_fig9_temperature",
    "run_fig10_variation_histograms",
    "run_fig11_variation_statistics",
    "run_fig12_circuit_estimation",
    "run_ivc_study",
    "run_runtime_comparison",
]
