"""Fig. 6: overall loading effect (LD_ALL) versus input *and* output loading.

The paper's Fig. 6 is a surface plot of LD_ALL of the total inverter leakage
over the (I_L-IN, I_L-OUT) plane, for input '0' and input '1'.  The surface
is dominated by the input-loading axis (subthreshold response) and is
slightly pulled down along the output-loading axis; LD_ALL is larger with
input '0'.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.loading import LoadingAnalyzer
from repro.device.params import TechnologyParams
from repro.device.presets import make_technology
from repro.gates.library import GateType
from repro.utils.tables import format_table

#: Default grid of loading magnitudes for the surface (A).
DEFAULT_GRID_A = tuple(np.linspace(0.0, 3.0e-6, 4))


@dataclass
class LdAllSurface:
    """LD_ALL of the total leakage over the (input, output) loading grid."""

    label: str
    input_loading: list[float]
    output_loading: list[float]
    ld_total_percent: np.ndarray  # shape (len(input_loading), len(output_loading))

    def value(self, input_index: int, output_index: int) -> float:
        """Return LD_ALL (%) at one grid point."""
        return float(self.ld_total_percent[input_index, output_index])

    def to_table(self) -> str:
        """Render the surface with input loading as rows, output as columns."""
        headers = ["IL-IN \\ IL-OUT [nA]"] + [
            f"{x * 1e9:.0f}" for x in self.output_loading
        ]
        rows = []
        for i, il in enumerate(self.input_loading):
            rows.append([f"{il * 1e9:.0f}"] + list(self.ld_total_percent[i]))
        return format_table(headers, rows, title=self.label)


@dataclass
class Fig6Result:
    """The two LD_ALL surfaces of Fig. 6."""

    input0: LdAllSurface
    input1: LdAllSurface

    def to_table(self) -> str:
        """Render both surfaces."""
        return f"{self.input0.to_table()}\n\n{self.input1.to_table()}"


def run_fig6_ldall_surface(
    technology: TechnologyParams | None = None,
    grid: tuple[float, ...] = DEFAULT_GRID_A,
) -> Fig6Result:
    """Evaluate LD_ALL of an inverter over the (input, output) loading grid."""
    technology = technology or make_technology("bulk-25nm")
    analyzer = LoadingAnalyzer(technology)
    grid_values = [float(x) for x in grid]

    def surface(vector: tuple[int, ...], label: str) -> LdAllSurface:
        data = np.zeros((len(grid_values), len(grid_values)))
        for i, input_loading in enumerate(grid_values):
            for j, output_loading in enumerate(grid_values):
                effect = analyzer.overall_loading_effect(
                    GateType.INV, vector, input_loading, output_loading
                )
                data[i, j] = effect.total
        return LdAllSurface(
            label=label,
            input_loading=grid_values,
            output_loading=grid_values,
            ld_total_percent=data,
        )

    return Fig6Result(
        input0=surface((0,), "Fig. 6(a) LD_ALL [%], input '0' output '1'"),
        input1=surface((1,), "Fig. 6(b) LD_ALL [%], input '1' output '0'"),
    )
