"""Fig. 8: loading effect for devices with different dominant leakage components.

Section 5.1 of the paper compares three 25 nm device variants whose total
leakage is similar but dominated by a different mechanism:

* ``D25-S``  — subthreshold dominated: the *input* loading effect is largest
  here, because input loading acts on the subthreshold leakage;
* ``D25-G``  — gate-tunneling dominated: loading has the least effect;
* ``D25-JN`` — junction-BTBT dominated: the *output* loading effect is the
  largest here, because output loading changes |V_DB|.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.loading import LoadingAnalyzer, LoadingEffect
from repro.device.presets import DeviceVariant, make_technology
from repro.gates.library import GateType
from repro.utils.tables import format_table

#: Default loading sweep (A).
DEFAULT_LOADING_SWEEP_A = tuple(np.linspace(0.0, 3.0e-6, 5))

#: The three Sec. 5.1 variants in the paper's order.
VARIANTS = (DeviceVariant.D25_S, DeviceVariant.D25_G, DeviceVariant.D25_JN)


@dataclass
class VariantLoadingSeries:
    """LD of the total leakage vs. loading current for one device variant."""

    variant: DeviceVariant
    loading_currents: list[float]
    input_effects: list[LoadingEffect] = field(default_factory=list)
    output_effects: list[LoadingEffect] = field(default_factory=list)

    def max_input_total(self) -> float:
        """Return the largest |LD_IN| of the total leakage along the sweep."""
        return max(abs(e.total) for e in self.input_effects)

    def max_output_total(self) -> float:
        """Return the largest |LD_OUT| of the total leakage along the sweep."""
        return max(abs(e.total) for e in self.output_effects)


@dataclass
class Fig8Result:
    """Input/output loading responses of the three device variants."""

    vector: tuple[int, ...]
    series: dict[DeviceVariant, VariantLoadingSeries]

    def to_table(self) -> str:
        """Render the peak loading effects per variant."""
        rows = []
        for variant, data in self.series.items():
            rows.append(
                [variant.value, data.max_input_total(), data.max_output_total()]
            )
        return format_table(
            ["device", "max |LD_IN| total [%]", "max |LD_OUT| total [%]"],
            rows,
            title=f"Fig. 8: loading effect by dominant component (input={self.vector})",
        )


def run_fig8_device_variants(
    vector: tuple[int, ...] = (0,),
    loading_currents: tuple[float, ...] = DEFAULT_LOADING_SWEEP_A,
    temperature_k: float = 300.0,
) -> Fig8Result:
    """Sweep input/output loading of an inverter on the D25-S/G/JN variants."""
    currents = [float(x) for x in loading_currents]
    series: dict[DeviceVariant, VariantLoadingSeries] = {}
    for variant in VARIANTS:
        technology = make_technology(variant, temperature_k=temperature_k)
        analyzer = LoadingAnalyzer(technology)
        data = VariantLoadingSeries(variant=variant, loading_currents=currents)
        for current in currents:
            data.input_effects.append(
                analyzer.input_loading_effect(GateType.INV, vector, current, "a")
            )
            data.output_effects.append(
                analyzer.output_loading_effect(GateType.INV, vector, current)
            )
        series[variant] = data
    return Fig8Result(vector=tuple(vector), series=series)
