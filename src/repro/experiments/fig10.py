"""Fig. 10: leakage-component distributions with and without loading.

Under process variation (L, Tox, Vth, VDD), the paper runs a Monte-Carlo
study of an inverter with an input loading of 6 inverters and an output
loading of 6 inverters (input '0', output '1') and histograms each leakage
component with and without loading.  The loading visibly shifts the
subthreshold distribution upward while the gate and junction components
barely move.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.params import TechnologyParams
from repro.device.presets import make_technology
from repro.spice.solver import SolverOptions
from repro.utils.rng import RngLike
from repro.utils.tables import format_table
from repro.variation.montecarlo import MonteCarloResult, run_loaded_inverter_monte_carlo
from repro.variation.spec import VariationSpec
from repro.variation.statistics import histogram, summarize

#: Components histogrammed by the figure.
FIG10_COMPONENTS = ("subthreshold", "gate", "btbt", "total")


@dataclass
class Fig10Result:
    """Monte-Carlo samples plus per-component distribution summaries."""

    monte_carlo: MonteCarloResult

    def histograms(
        self, component: str, bins: int = 20
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (counts_with_loading, counts_without, shared bin edges)."""
        loaded = self.monte_carlo.values(component, loaded=True)
        unloaded = self.monte_carlo.values(component, loaded=False)
        low = float(min(loaded.min(), unloaded.min()))
        high = float(max(loaded.max(), unloaded.max()))
        counts_loaded, edges = histogram(loaded, bins=bins, value_range=(low, high))
        counts_unloaded, _ = histogram(unloaded, bins=bins, value_range=(low, high))
        return counts_loaded, counts_unloaded, edges

    def to_table(self) -> str:
        """Render mean/std of each component with and without loading (nA)."""
        rows = []
        for component in FIG10_COMPONENTS:
            loaded = summarize(self.monte_carlo.values(component, loaded=True))
            unloaded = summarize(self.monte_carlo.values(component, loaded=False))
            rows.append(
                [
                    component,
                    unloaded.mean * 1e9,
                    loaded.mean * 1e9,
                    unloaded.std * 1e9,
                    loaded.std * 1e9,
                ]
            )
        return format_table(
            [
                "component",
                "mean no-load [nA]",
                "mean loaded [nA]",
                "std no-load [nA]",
                "std loaded [nA]",
            ],
            rows,
            title=(
                f"Fig. 10: inverter leakage distributions "
                f"({self.monte_carlo.sample_count} samples, "
                f"{self.monte_carlo.input_loads}+{self.monte_carlo.output_loads} loads)"
            ),
        )


def run_fig10_variation_histograms(
    technology: TechnologyParams | None = None,
    spec: VariationSpec | None = None,
    samples: int = 200,
    rng: RngLike = 0,
    input_loads: int = 6,
    output_loads: int = 6,
    engine: str = "batched",
    sampler: str = "mc",
    on_nonconverged: str = "warn",
    solver_options: SolverOptions | None = None,
) -> Fig10Result:
    """Run the Fig. 10 Monte-Carlo study (input '0', output '1').

    ``engine`` selects the Monte-Carlo solver path: ``"batched"`` (default)
    solves all samples as one batch, ``"scalar"`` keeps the per-sample
    reference loop.  ``sampler`` picks the parameter sampler (``"mc"``
    default, ``"qmc"`` scrambled Sobol) and ``on_nonconverged`` the
    convergence policy, as in
    :func:`repro.variation.montecarlo.run_loaded_inverter_monte_carlo`.

    Raises ``ValueError`` when the recorded population is empty (every
    sample dropped as non-converged) — an empty Fig. 10 histogram is a
    configuration error, not data.
    """
    technology = technology or make_technology("d25-s")
    monte_carlo = run_loaded_inverter_monte_carlo(
        technology,
        spec=spec,
        samples=samples,
        rng=rng,
        input_value=0,
        input_loads=input_loads,
        output_loads=output_loads,
        engine=engine,
        sampler=sampler,
        on_nonconverged=on_nonconverged,
        solver_options=solver_options,
    )
    if monte_carlo.sample_count == 0:
        raise ValueError(
            f"Fig. 10 study with {input_loads}+{output_loads} loads has no "
            f"recorded samples: all {samples} Monte-Carlo samples were "
            "dropped as non-converged"
        )
    return Fig10Result(monte_carlo=monte_carlo)
