"""Fig. 7: loading effect of a 2-input NAND gate per input vector.

The paper sweeps the loading current at each NAND2 input pin and at the
output, for all four input vectors, and shows that

* input loading matters most when at least one input is '0' ('00', '01',
  '10'), because it acts on the subthreshold leakage of an off NMOS;
* with '00' the stacking effect mutes the response relative to '01'/'10';
* output loading is strongest when the output is '0' (vector '11');
* depending on the vector, loading can increase or decrease the total.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.loading import LoadingAnalyzer, LoadingEffect
from repro.device.params import TechnologyParams
from repro.device.presets import make_technology
from repro.gates.library import GateType, gate_spec
from repro.utils.tables import format_table

#: Default loading sweep (A), matching the paper's 0-3000 nA axis.
DEFAULT_LOADING_SWEEP_A = tuple(np.linspace(0.0, 3.0e-6, 5))


@dataclass
class NandVectorPanel:
    """Loading response of NAND2 for one input vector."""

    vector: tuple[int, int]
    loading_currents: list[float]
    input_a: list[LoadingEffect] = field(default_factory=list)
    input_b: list[LoadingEffect] = field(default_factory=list)
    output: list[LoadingEffect] = field(default_factory=list)

    @property
    def vector_label(self) -> str:
        """Return the vector as the paper prints it, e.g. ``"01"``."""
        return f"{self.vector[0]}{self.vector[1]}"

    def total_series(self, pin: str) -> list[float]:
        """Return the LD of the total leakage along the sweep for one pin."""
        source = {"a": self.input_a, "b": self.input_b, "y": self.output}[pin]
        return [effect.total for effect in source]

    def to_table(self) -> str:
        """Render LD of the total leakage for the three perturbed pins."""
        rows = []
        for idx, current in enumerate(self.loading_currents):
            rows.append(
                [
                    current * 1e9,
                    self.input_a[idx].total,
                    self.input_b[idx].total,
                    self.output[idx].total,
                ]
            )
        return format_table(
            ["loading [nA]", "LD input-1 [%]", "LD input-2 [%]", "LD output [%]"],
            rows,
            title=f"Fig. 7 NAND2 vector '{self.vector_label}'",
        )


@dataclass
class Fig7Result:
    """All four NAND2 vector panels."""

    panels: dict[str, NandVectorPanel]

    def panel(self, vector_label: str) -> NandVectorPanel:
        """Return the panel for a vector label such as ``"01"``."""
        return self.panels[vector_label]

    def to_table(self) -> str:
        """Render every panel."""
        return "\n\n".join(panel.to_table() for panel in self.panels.values())


def run_fig7_nand_vectors(
    technology: TechnologyParams | None = None,
    loading_currents: tuple[float, ...] = DEFAULT_LOADING_SWEEP_A,
) -> Fig7Result:
    """Sweep per-pin loading of NAND2 under all four input vectors."""
    technology = technology or make_technology("bulk-25nm")
    analyzer = LoadingAnalyzer(technology)
    currents = [float(x) for x in loading_currents]
    spec = gate_spec(GateType.NAND2)

    panels: dict[str, NandVectorPanel] = {}
    for vector in spec.all_vectors():
        panel = NandVectorPanel(vector=vector, loading_currents=currents)
        for current in currents:
            panel.input_a.append(
                analyzer.input_loading_effect(GateType.NAND2, vector, current, "a")
            )
            panel.input_b.append(
                analyzer.input_loading_effect(GateType.NAND2, vector, current, "b")
            )
            panel.output.append(
                analyzer.output_loading_effect(GateType.NAND2, vector, current)
            )
        panels[panel.vector_label] = panel
    return Fig7Result(panels=panels)
