"""Input-vector-control study: searched vs. sampled minimum-leakage vectors.

Sec. 6 of the paper observes that the minimum-leakage standby vector — the
quantity input-vector-control (IVC) leakage-reduction techniques apply
during idle periods — can change once the loading effect is considered.
The repo's estimator can score thousands of vectors per second through the
batched engine; this study asks the follow-up question: *how much better is
a searched vector than the usual sampled one?*

For every circuit the study runs, at one shared root seed:

* the batched random-restart greedy hill climber and the island-model
  genetic search of :mod:`repro.optimize`;
* a best-of-random-N baseline where ``N`` equals the *larger* of the two
  optimizers' evaluation ledgers — the baseline never sees fewer
  candidates than either optimizer, so "the optimizer wins" is a
  conservative, equal-budget (in fact budget-favoring-random) claim.

Circuits small enough for the exhaustive oracle additionally record the
true minimum, so the table shows how close each strategy landed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.netlist import Circuit
from repro.gates.characterize import GateLibrary
from repro.optimize import (
    GeneticOptions,
    GreedyOptions,
    LeakageObjective,
    MAX_EXHAUSTIVE_INPUTS,
    OptimizationResult,
    exhaustive_minimize,
    genetic_minimize,
    greedy_minimize,
)
from repro.utils.rng import spawn_streams
from repro.utils.tables import format_table

#: Inputs at or below this width also run the exhaustive oracle (2**16
#: evaluations is a couple of engine passes — cheap enough for a study).
EXHAUSTIVE_STUDY_INPUTS = 16


@dataclass
class IvcCircuitResult:
    """Search outcomes of one circuit at a shared evaluation budget."""

    circuit_name: str
    gate_count: int
    n_inputs: int
    random_evaluations: int
    random_best: float
    greedy: OptimizationResult
    genetic: OptimizationResult
    exhaustive_best: float | None = None

    def improvement_percent(self, strategy: str) -> float:
        """Return how far below the random baseline a strategy landed (%)."""
        best = (self.greedy if strategy == "greedy" else self.genetic).best_total
        if self.random_best == 0.0:
            return float("nan")
        return 100.0 * (self.random_best - best) / self.random_best


@dataclass
class IvcStudyResult:
    """All circuits of one IVC study run."""

    technology_name: str
    seed: int | None
    results: list[IvcCircuitResult] = field(default_factory=list)
    #: Session counter deltas this study generated (compile-cache hits /
    #: misses, ...) — see ``EstimationSession.stats()``.
    cache_stats: dict[str, dict[str, int]] = field(default_factory=dict)

    def to_table(self) -> str:
        """Render per-circuit best totals (nA) and optimizer gains."""
        rows = []
        for r in self.results:
            rows.append(
                [
                    r.circuit_name,
                    r.n_inputs,
                    r.gate_count,
                    r.random_evaluations,
                    r.random_best * 1e9,
                    r.greedy.best_total * 1e9,
                    r.genetic.best_total * 1e9,
                    f"{r.improvement_percent('greedy'):.2f}",
                    f"{r.improvement_percent('genetic'):.2f}",
                    "-" if r.exhaustive_best is None else r.exhaustive_best * 1e9,
                ]
            )
        return format_table(
            [
                "circuit",
                "inputs",
                "gates",
                "budget",
                "random [nA]",
                "greedy [nA]",
                "genetic [nA]",
                "greedy gain %",
                "genetic gain %",
                "exhaustive [nA]",
            ],
            rows,
            title="Minimum-leakage vector search vs. best-of-random-N",
        )


def run_ivc_study(
    circuits: list[Circuit],
    library: GateLibrary,
    seed: int | None = 2005,
    greedy_options: GreedyOptions | None = None,
    genetic_options: GeneticOptions | None = None,
    islands: int = 1,
    max_workers: int | None = None,
    include_loading: bool = True,
    oracle_inputs: int = EXHAUSTIVE_STUDY_INPUTS,
    session=None,
) -> IvcStudyResult:
    """Run the searched-vs-sampled comparison on every circuit.

    Per circuit, three spawned streams (greedy, genetic, random baseline)
    derive from one child sequence of ``seed``, so the whole study is
    reproducible from the single root and each part is insensitive to the
    others' consumption.  Circuits compile through ``session`` (default:
    the process-default :class:`repro.service.EstimationSession`), so a
    study re-run — or a study riding behind another experiment over the
    same suite — skips straight to the search; the result records the
    cache traffic in :attr:`IvcStudyResult.cache_stats`.
    """
    from repro.service import default_session, stats_delta

    sess = session or default_session()
    study = IvcStudyResult(technology_name=library.technology.name, seed=seed)
    stats_before = sess.stats()
    circuit_streams = spawn_streams(seed, len(circuits))
    for circuit, stream in zip(circuits, circuit_streams):
        greedy_rng, genetic_rng, random_rng = spawn_streams(stream, 3)
        compiled = sess.compiled(circuit, library)
        greedy = greedy_minimize(
            compiled,
            include_loading=include_loading,
            options=greedy_options,
            rng=greedy_rng,
            islands=islands,
            max_workers=max_workers,
        )
        genetic = genetic_minimize(
            compiled,
            include_loading=include_loading,
            options=genetic_options,
            rng=genetic_rng,
            islands=islands,
            max_workers=max_workers,
        )
        budget = max(greedy.evaluations, genetic.evaluations)
        objective = LeakageObjective(compiled, include_loading=include_loading)
        candidates = random_rng.integers(
            0, 2, size=(budget, objective.n_inputs), dtype=np.uint8
        )
        random_best = float(objective.totals(candidates).min())
        exhaustive_best = None
        if objective.n_inputs <= min(oracle_inputs, MAX_EXHAUSTIVE_INPUTS):
            exhaustive_best = exhaustive_minimize(
                compiled, include_loading=include_loading
            ).best_total
        study.results.append(
            IvcCircuitResult(
                circuit_name=circuit.name,
                gate_count=circuit.gate_count,
                n_inputs=objective.n_inputs,
                random_evaluations=budget,
                random_best=random_best,
                greedy=greedy,
                genetic=genetic,
                exhaustive_best=exhaustive_best,
            )
        )
    study.cache_stats = stats_delta(stats_before, sess.stats())
    return study
