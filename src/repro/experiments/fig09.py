"""Fig. 9: impact of temperature on the overall loading effect.

The gate tunneling that *causes* loading barely changes with temperature, but
its *effect* — the subthreshold and junction currents of the loaded gate —
grows quickly.  The paper's Fig. 9 therefore shows the subthreshold LD_ALL of
an inverter (input '0') rising steeply with temperature while the gate and
BTBT components move the other way, leaving the total only mildly affected.

The experiment reproduces that by re-running the LD_ALL evaluation of the
inverter at a sweep of temperatures with a loading configuration
representative of a fanout of a few gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.loading import LoadingAnalyzer, LoadingEffect
from repro.device.params import TechnologyParams
from repro.device.presets import make_technology
from repro.gates.library import GateType
from repro.utils.tables import format_table
from repro.utils.units import celsius_to_kelvin

#: Default temperature sweep in Celsius, matching the paper's 0-150 C axis.
DEFAULT_TEMPERATURES_C = (0.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0)


@dataclass
class Fig9Result:
    """LD_ALL of each component versus temperature."""

    temperatures_c: list[float]
    input_loading: float
    output_loading: float
    effects: list[LoadingEffect] = field(default_factory=list)

    def component_series(self, name: str) -> list[float]:
        """Return one component's LD_ALL along the temperature sweep."""
        return [effect.component(name) for effect in self.effects]

    def to_table(self) -> str:
        """Render the temperature sweep."""
        rows = [
            [
                temperature,
                effect.subthreshold,
                effect.gate,
                effect.btbt,
                effect.total,
            ]
            for temperature, effect in zip(self.temperatures_c, self.effects)
        ]
        return format_table(
            ["T [C]", "LD sub [%]", "LD gate [%]", "LD btbt [%]", "LD total [%]"],
            rows,
            title=(
                f"Fig. 9: LD_ALL vs. temperature "
                f"(IL-IN={self.input_loading * 1e9:.0f} nA, "
                f"IL-OUT={self.output_loading * 1e9:.0f} nA)"
            ),
        )


def run_fig9_temperature(
    technology: TechnologyParams | None = None,
    temperatures_c: tuple[float, ...] = DEFAULT_TEMPERATURES_C,
    input_loading: float = 1.5e-6,
    output_loading: float = 1.5e-6,
    vector: tuple[int, ...] = (0,),
) -> Fig9Result:
    """Evaluate LD_ALL of an inverter across temperature."""
    technology = technology or make_technology("bulk-25nm")
    result = Fig9Result(
        temperatures_c=[float(t) for t in temperatures_c],
        input_loading=float(input_loading),
        output_loading=float(output_loading),
    )
    for temperature_c in result.temperatures_c:
        analyzer = LoadingAnalyzer(
            technology, temperature_k=celsius_to_kelvin(temperature_c)
        )
        effect = analyzer.overall_loading_effect(
            GateType.INV, vector, input_loading, output_loading
        )
        result.effects.append(effect)
    return result
