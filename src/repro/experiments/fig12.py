"""Fig. 12: circuit-level leakage estimation with loading effect.

Three sub-results, matching the paper's panels:

* **(a)** total circuit leakage estimated by the loading-aware algorithm
  versus the transistor-level reference solve (the paper's "Leakage from
  Spice" vs. "Estimated leakage");
* **(b)** average percent change of each leakage component caused by the
  loading effect over a random-vector campaign (loading-aware vs. the
  traditional no-loading accumulation);
* **(c)** the maximum percent change over the same campaign.

The circuit suite is the paper's: six ISCAS89-sized circuits (synthetic
stand-ins, see DESIGN.md), the 8x8 array multiplier and the 8-bit ALU.
The reference column of panel (a) rides the batched transistor-level path
(:func:`repro.core.reference.run_reference_campaign`) by default, which is
what makes validating the full suite at real vector counts feasible; the
scalar one-solve-per-vector oracle stays available via
``reference_engine="scalar"``.  Vector counts and the synthetic-circuit
scale remain parameters; the benchmark harness records the configuration
used for every reported number in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.logic import random_vectors
from repro.circuit.netlist import Circuit
from repro.core.baseline import NoLoadingEstimator
from repro.core.estimator import LoadingAwareEstimator
from repro.core.reference import (
    DEFAULT_REFERENCE_CHUNK_SIZE,
    REFERENCE_ENGINES,
    run_reference_campaign,
)
from repro.core.vectors import (
    LoadingImpactStatistics,
    loading_impact_statistics,
    run_vector_campaign,
)
from repro.device.params import TechnologyParams
from repro.device.presets import make_technology
from repro.gates.characterize import GateLibrary
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.tables import format_table
from repro.utils.units import watts_to_microwatts


@dataclass
class Fig12CircuitEntry:
    """Results for one circuit of the suite."""

    name: str
    gate_count: int
    vector_count: int
    estimated_power_uw: float
    impact: LoadingImpactStatistics
    reference_power_uw: float | None = None
    estimate_vs_reference_percent: dict[str, float] | None = None
    reference_vector_count: int = 0
    reference_engine: str | None = None


@dataclass
class Fig12Result:
    """The full Fig. 12 sweep over the circuit suite."""

    technology_name: str
    entries: list[Fig12CircuitEntry] = field(default_factory=list)
    #: Session counter deltas this figure generated (compile-cache hits /
    #: misses, coalescer traffic, ...) — see ``EstimationSession.stats()``.
    cache_stats: dict[str, dict[str, int]] = field(default_factory=dict)

    def entry(self, name: str) -> Fig12CircuitEntry:
        """Return one circuit's entry by name."""
        for candidate in self.entries:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no entry for circuit {name!r}")

    def to_table_a(self) -> str:
        """Render panel (a): estimated vs. reference power."""
        rows = []
        for entry in self.entries:
            rows.append(
                [
                    entry.name,
                    entry.gate_count,
                    entry.estimated_power_uw,
                    entry.reference_power_uw
                    if entry.reference_power_uw is not None
                    else "-",
                    entry.estimate_vs_reference_percent["total"]
                    if entry.estimate_vs_reference_percent
                    else "-",
                ]
            )
        return format_table(
            ["circuit", "gates", "estimated [uW]", "reference [uW]", "error [%]"],
            rows,
            title="Fig. 12(a): estimated vs. reference leakage power",
        )

    def _impact_table(self, statistic: str, title: str) -> str:
        rows = [entry.impact.row(statistic) for entry in self.entries]
        return format_table(
            ["circuit", "sub [%]", "gate [%]", "btbt [%]", "total [%]"],
            rows,
            title=title,
        )

    def to_table_b(self) -> str:
        """Render panel (b): average loading-induced change per component."""
        return self._impact_table(
            "average", "Fig. 12(b): average % leakage change due to loading"
        )

    def to_table_c(self) -> str:
        """Render panel (c): maximum loading-induced change per component."""
        return self._impact_table(
            "maximum", "Fig. 12(c): maximum % leakage change due to loading"
        )

    def to_table(self) -> str:
        """Render all three panels."""
        return "\n\n".join([self.to_table_a(), self.to_table_b(), self.to_table_c()])


def run_fig12_circuit_estimation(
    circuits: dict[str, Circuit],
    technology: TechnologyParams | None = None,
    library: GateLibrary | None = None,
    vectors: int = 100,
    reference_vectors: int = 8,
    reference_max_gates: int | None = None,
    rng: RngLike = 0,
    reference_engine: str = "batched",
    reference_chunk_size: int = DEFAULT_REFERENCE_CHUNK_SIZE,
    session=None,
) -> Fig12Result:
    """Run the Fig. 12 campaign over ``circuits``.

    Parameters
    ----------
    circuits:
        Circuits keyed by display name (typically
        :func:`repro.circuit.generators.paper_benchmark_suite`).
    vectors:
        Random vectors per circuit for the loading-impact statistics (the
        paper uses 100).
    reference_vectors:
        How many of those vectors are additionally validated against the
        transistor-level reference solve (0 disables validation).
    reference_max_gates:
        When set, circuits larger than this skip reference validation —
        a wall-clock escape hatch for smoke configurations (see
        EXPERIMENTS.md).  The default of ``None`` validates the full suite:
        the batched reference path makes that feasible.
    reference_engine:
        ``"batched"`` (default) solves reference vectors in memory-bounded
        same-topology batches; ``"scalar"`` forces the original
        one-relaxation-per-vector oracle.
    reference_chunk_size:
        Vectors per batched reference solve (peak-memory bound; results are
        bitwise independent of it).
    session:
        Optional :class:`repro.service.EstimationSession` every campaign of
        the sweep routes through (default: the process-default session).
        A sweep sharing one session compiles each circuit once — the
        loading-aware, no-loading and validation campaigns all hit the
        session cache — and when ``library`` is omitted the session's
        registry supplies it.  The result records the cache traffic this
        figure generated in :attr:`Fig12Result.cache_stats`.
    """
    from repro.service import default_session, stats_delta
    if reference_engine not in REFERENCE_ENGINES:
        raise ValueError(
            f"reference_engine must be one of {REFERENCE_ENGINES}, "
            f"got {reference_engine!r}"
        )
    sess = session or default_session()
    technology = technology or make_technology("d25-s")
    library = library or sess.library(technology)
    estimator = LoadingAwareEstimator(library)
    baseline = NoLoadingEstimator(library)
    generator = ensure_rng(rng)
    stats_before = sess.stats()

    result = Fig12Result(technology_name=technology.name)
    for name, circuit in circuits.items():
        vector_list = list(random_vectors(circuit, vectors, generator))
        with_loading = run_vector_campaign(
            estimator, circuit, vectors=vector_list, session=sess
        )
        without_loading = run_vector_campaign(
            baseline, circuit, vectors=vector_list, session=sess
        )
        impact = loading_impact_statistics(with_loading, without_loading)

        estimated_power = (
            with_loading.mean_total() * library.vdd
        )

        entry = Fig12CircuitEntry(
            name=name,
            gate_count=circuit.gate_count,
            vector_count=len(vector_list),
            estimated_power_uw=watts_to_microwatts(estimated_power),
            impact=impact,
        )

        if reference_vectors > 0 and (
            reference_max_gates is None or circuit.gate_count <= reference_max_gates
        ):
            ref_vectors = vector_list[:reference_vectors]
            ref_campaign = run_reference_campaign(
                circuit,
                technology,
                vectors=ref_vectors,
                engine=reference_engine,
                chunk_size=reference_chunk_size,
            )
            est_campaign = run_vector_campaign(
                estimator, circuit, vectors=ref_vectors, session=sess
            )
            entry.reference_power_uw = watts_to_microwatts(
                ref_campaign.mean_total() * technology.vdd
            )
            # Percent error of the estimator against the reference, averaged
            # over the validated vectors.
            diffs: dict[str, list[float]] = {}
            for est_report, ref_report in zip(est_campaign.reports, ref_campaign.reports):
                for key, value in est_report.percent_difference(ref_report).items():
                    diffs.setdefault(key, []).append(value)
            entry.estimate_vs_reference_percent = {
                key: sum(values) / len(values) for key, values in diffs.items()
            }
            entry.reference_vector_count = len(ref_vectors)
            entry.reference_engine = reference_engine

        result.entries.append(entry)
    result.cache_stats = stats_delta(stats_before, sess.stats())
    return result
