"""Fig. 11: loading-induced shift of the leakage mean and standard deviation.

The paper sweeps the inter-die threshold-voltage sigma (30, 40, 50 mV) and
shows that accounting for the loading effect increases both the mean and —
much more strongly — the standard deviation of the total leakage
distribution (over 40 % at sigma_Vt = 50 mV in the paper's setup).  The
experiment re-runs the Fig. 10 Monte-Carlo at each sigma and reports the
percent change of mean and std between the loaded and unloaded populations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.device.params import TechnologyParams
from repro.device.presets import make_technology
from repro.spice.solver import SolverOptions
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.tables import format_table
from repro.variation.montecarlo import run_loaded_inverter_monte_carlo
from repro.variation.spec import VariationSpec
from repro.variation.statistics import (
    loading_shift_of_mean,
    loading_shift_of_std,
    lognormal_shift_of_mean,
    lognormal_shift_of_std,
)

#: Inter-die Vth sigmas swept by the paper, in volts.
DEFAULT_SIGMA_VT_INTER_V = (0.030, 0.040, 0.050)

#: Shift estimators selectable by ``run_fig11_variation_statistics``:
#: ``"empirical"`` is the direct sample mean/std, ``"lognormal"`` the
#: variance-reduced moment-matched plug-in (pairs well with ``sampler="qmc"``).
FIG11_ESTIMATORS = ("empirical", "lognormal")


@dataclass
class Fig11Point:
    """Loading-induced change of mean/std at one inter-die sigma."""

    sigma_vth_inter_v: float
    mean_shift_percent: float
    std_shift_percent: float


@dataclass
class Fig11Result:
    """The Fig. 11 sweep over inter-die threshold sigma."""

    component: str
    points: list[Fig11Point] = field(default_factory=list)

    def mean_shifts(self) -> list[float]:
        """Return the mean-shift series (left panel of Fig. 11)."""
        return [point.mean_shift_percent for point in self.points]

    def std_shifts(self) -> list[float]:
        """Return the std-shift series (right panel of Fig. 11)."""
        return [point.std_shift_percent for point in self.points]

    def to_table(self) -> str:
        """Render the sweep."""
        rows = [
            [
                point.sigma_vth_inter_v * 1e3,
                point.mean_shift_percent,
                point.std_shift_percent,
            ]
            for point in self.points
        ]
        return format_table(
            ["sigma Vt inter [mV]", "mean shift [%]", "std shift [%]"],
            rows,
            title=f"Fig. 11: loading effect on {self.component} leakage statistics",
        )


def run_fig11_variation_statistics(
    technology: TechnologyParams | None = None,
    sigma_values_v: tuple[float, ...] = DEFAULT_SIGMA_VT_INTER_V,
    samples: int = 150,
    rng: RngLike = 0,
    component: str = "total",
    base_spec: VariationSpec | None = None,
    engine: str = "batched",
    sampler: str = "mc",
    on_nonconverged: str = "warn",
    solver_options: SolverOptions | None = None,
    estimator: str = "empirical",
) -> Fig11Result:
    """Sweep the inter-die Vth sigma and collect mean/std loading shifts.

    ``engine`` selects the Monte-Carlo solver path (``"batched"`` default,
    ``"scalar"`` reference), ``sampler`` the parameter sampler (``"mc"``
    default, ``"qmc"`` scrambled Sobol) and ``on_nonconverged`` the
    convergence policy, as in
    :func:`repro.variation.montecarlo.run_loaded_inverter_monte_carlo`.
    ``estimator`` picks how the shifts are computed from the populations:
    ``"empirical"`` (default) uses the direct sample mean/std,
    ``"lognormal"`` the moment-matched plug-in
    (:func:`~repro.variation.statistics.lognormal_shift_of_std`) whose
    replicate scatter is several times smaller at equal budget — the
    variance-reduced Fig. 11 is ``sampler="qmc"`` + ``estimator="lognormal"``.

    A sigma point whose populations come back empty (``samples=0`` is
    rejected up front; ``on_nonconverged="drop"`` can drain a point) raises
    a ``ValueError`` naming the sigma instead of letting ``np.mean`` /
    ``np.std`` warnings leak into :class:`Fig11Result`.
    """
    if estimator not in FIG11_ESTIMATORS:
        raise ValueError(
            f"estimator must be one of {FIG11_ESTIMATORS}, got {estimator!r}"
        )
    shift_of_mean = (
        loading_shift_of_mean if estimator == "empirical" else lognormal_shift_of_mean
    )
    shift_of_std = (
        loading_shift_of_std if estimator == "empirical" else lognormal_shift_of_std
    )
    technology = technology or make_technology("d25-s")
    base_spec = base_spec or VariationSpec()
    generator = ensure_rng(rng)
    result = Fig11Result(component=component)
    for sigma in sigma_values_v:
        spec = base_spec.with_vth_inter_sigma(float(sigma))
        monte_carlo = run_loaded_inverter_monte_carlo(
            technology,
            spec=spec,
            samples=samples,
            rng=generator,
            input_value=0,
            engine=engine,
            sampler=sampler,
            on_nonconverged=on_nonconverged,
            solver_options=solver_options,
        )
        if monte_carlo.sample_count == 0:
            raise ValueError(
                f"Fig. 11 sigma point {sigma * 1e3:.0f} mV has no recorded "
                f"samples: all {samples} Monte-Carlo samples were dropped as "
                "non-converged"
            )
        loaded = monte_carlo.values(component, loaded=True)
        unloaded = monte_carlo.values(component, loaded=False)
        result.points.append(
            Fig11Point(
                sigma_vth_inter_v=float(sigma),
                mean_shift_percent=shift_of_mean(loaded, unloaded),
                std_shift_percent=shift_of_std(loaded, unloaded),
            )
        )
    return result
