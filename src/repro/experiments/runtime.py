"""Runtime comparison: loading-aware estimation vs. transistor-level reference.

Section 6 of the paper reports that the proposed algorithm "closely matches
results obtained from spice simulations ... while being about 1000X faster in
run time".  This experiment measures both paths on the same circuit and input
vectors and reports the speed-up.  The absolute ratio depends on circuit size
(the estimator is linear in gates, the reference scales with gates times
relaxation sweeps), so the result records both runtimes and the circuit
statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.circuit.logic import random_vectors
from repro.circuit.netlist import Circuit
from repro.core.estimator import LoadingAwareEstimator
from repro.core.reference import ReferenceSimulator
from repro.device.params import TechnologyParams
from repro.device.presets import make_technology
from repro.gates.characterize import GateLibrary
from repro.utils.rng import RngLike
from repro.utils.tables import format_table


@dataclass
class RuntimeComparison:
    """Wall-clock comparison of the two estimation paths."""

    circuit_name: str
    gate_count: int
    transistor_count: int
    vector_count: int
    estimator_seconds: float
    reference_seconds: float

    @property
    def speedup(self) -> float:
        """Return reference time divided by estimator time."""
        if self.estimator_seconds <= 0.0:
            return float("inf")
        return self.reference_seconds / self.estimator_seconds

    def to_table(self) -> str:
        """Render the comparison."""
        rows = [
            ["circuit", self.circuit_name],
            ["gates", self.gate_count],
            ["transistors", self.transistor_count],
            ["vectors", self.vector_count],
            ["estimator time [s]", self.estimator_seconds],
            ["reference time [s]", self.reference_seconds],
            ["speed-up [x]", self.speedup],
        ]
        return format_table(["quantity", "value"], rows, title="Runtime comparison")


def run_runtime_comparison(
    circuit: Circuit,
    technology: TechnologyParams | None = None,
    library: GateLibrary | None = None,
    vectors: int = 3,
    rng: RngLike = 0,
) -> RuntimeComparison:
    """Time the estimator and the reference on the same random vectors.

    The library is pre-characterized (outside the timed region) because
    characterization is a one-time cost shared across every circuit and
    vector, exactly like the SPICE-model extraction it replaces.
    """
    technology = technology or make_technology("d25-s")
    library = library or GateLibrary(technology)
    estimator = LoadingAwareEstimator(library)
    reference = ReferenceSimulator(technology)
    vector_list = list(random_vectors(circuit, vectors, rng))

    # Warm the characterization cache outside the timed region.
    warm_report = estimator.estimate(circuit, vector_list[0])

    start = time.perf_counter()
    for vector in vector_list:
        estimator.estimate(circuit, vector)
    estimator_seconds = time.perf_counter() - start

    start = time.perf_counter()
    transistor_count = 0
    for vector in vector_list:
        report = reference.estimate(circuit, vector)
        transistor_count = int(report.metadata["transistors"])
    reference_seconds = time.perf_counter() - start

    return RuntimeComparison(
        circuit_name=circuit.name,
        gate_count=warm_report.gate_count(),
        transistor_count=transistor_count,
        vector_count=len(vector_list),
        estimator_seconds=estimator_seconds,
        reference_seconds=reference_seconds,
    )
