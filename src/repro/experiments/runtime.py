"""Runtime comparison: batched engine vs. scalar estimator vs. reference.

Section 6 of the paper reports that the proposed algorithm "closely matches
results obtained from spice simulations ... while being about 1000X faster in
run time".  This experiment measures three paths on the same circuit and
input vectors:

* the transistor-level reference solve (the "SPICE" stand-in),
* the scalar per-vector LUT estimator (the paper's Fig. 13 algorithm),
* the batched campaign engine (:mod:`repro.engine`), which answers the whole
  vector set in a few array passes on top of the same LUTs.

The absolute ratios depend on circuit size (the estimator is linear in
gates, the reference scales with gates times relaxation sweeps), so the
result records all runtimes plus the circuit statistics.  Ratios are
guarded: a timer reading of zero yields NaN rather than a fabricated
infinite speedup.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.circuit.logic import random_vectors
from repro.circuit.netlist import Circuit
from repro.core.estimator import LoadingAwareEstimator
from repro.core.reference import ReferenceSimulator
from repro.device.params import TechnologyParams
from repro.device.presets import make_technology
from repro.engine import run_compiled
from repro.gates.characterize import GateLibrary
from repro.utils.rng import RngLike
from repro.utils.tables import format_table


def _ratio(numerator: float, denominator: float) -> float:
    """Return ``numerator / denominator`` or NaN for a degenerate timing."""
    if denominator <= 0.0 or math.isnan(denominator) or math.isnan(numerator):
        return float("nan")
    return numerator / denominator


def _format_backends(methods: object) -> str:
    """Render a ``solve_stats["methods"]`` count dict as ``name:count`` pairs.

    The per-backend counts say what the solver *actually ran* — e.g. an
    ``"auto"`` request shows up as its resolved dense/sparse backend, and
    Newton columns that fell back appear under ``gauss-seidel``.
    """
    if not isinstance(methods, dict) or not methods:
        return ""
    return ", ".join(f"{name}:{methods[name]}" for name in sorted(methods))


@dataclass
class RuntimeComparison:
    """Wall-clock comparison of the estimation paths."""

    circuit_name: str
    gate_count: int
    transistor_count: int
    vector_count: int
    estimator_seconds: float
    reference_seconds: float
    batched_seconds: float = float("nan")
    compile_seconds: float = float("nan")
    characterization_seconds: float = float("nan")
    characterization_engine: str = ""
    solver_method: str = ""
    solver_backends: str = ""
    reference_solver_method: str = ""
    reference_sweeps_mean: float = float("nan")
    #: Compile-cache traffic this comparison generated on its session —
    #: a shared warm session shows hits where a cold one shows a miss.
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0

    @property
    def speedup(self) -> float:
        """Return reference time over scalar-estimator time (NaN if degenerate)."""
        return _ratio(self.reference_seconds, self.estimator_seconds)

    @property
    def batched_speedup(self) -> float:
        """Return scalar-estimator time over batched-engine time."""
        return _ratio(self.estimator_seconds, self.batched_seconds)

    @property
    def reference_vs_batched(self) -> float:
        """Return reference time over batched-engine time."""
        return _ratio(self.reference_seconds, self.batched_seconds)

    def to_table(self) -> str:
        """Render the comparison."""
        rows = [
            ["circuit", self.circuit_name],
            ["gates", self.gate_count],
            ["transistors", self.transistor_count],
            ["vectors", self.vector_count],
            ["reference time [s]", self.reference_seconds],
            ["estimator time [s]", self.estimator_seconds],
            ["batched engine time [s]", self.batched_seconds],
            ["engine compile time [s]", self.compile_seconds],
            [
                f"library warm-up time [s] ({self.characterization_engine or 'n/a'})",
                self.characterization_seconds,
            ],
            ["cell solver method", self.solver_method or "n/a"],
            ["cell solver backends used", self.solver_backends or "n/a"],
            ["reference solver method", self.reference_solver_method or "n/a"],
            ["reference sweeps per solve (mean)", self.reference_sweeps_mean],
            ["compile-cache hits", self.compile_cache_hits],
            ["compile-cache misses", self.compile_cache_misses],
            ["speed-up ref/estimator [x]", self.speedup],
            ["speed-up estimator/batched [x]", self.batched_speedup],
            ["speed-up ref/batched [x]", self.reference_vs_batched],
        ]
        return format_table(["quantity", "value"], rows, title="Runtime comparison")


def run_runtime_comparison(
    circuit: Circuit,
    technology: TechnologyParams | None = None,
    library: GateLibrary | None = None,
    vectors: int = 3,
    rng: RngLike = 0,
    session=None,
) -> RuntimeComparison:
    """Time the three estimation paths on the same random vectors.

    The library is pre-characterized (outside the timed region) because
    characterization is a one-time cost shared across every circuit and
    vector, exactly like the SPICE-model extraction it replaces.  For the
    batched engine the circuit compile is timed separately and excluded from
    the per-campaign figure — it is the analogous one-time cost, amortized
    across campaigns by the session compile cache.

    ``session`` (default: the process-default
    :class:`repro.service.EstimationSession`) owns that cache: a sweep that
    passes one shared session pays the compile once per circuit and the
    result records the cache traffic (``compile_cache_hits``/``misses``)
    this comparison generated, so a warm "engine compile time" of ~0 s is
    attributable rather than mysterious.  When ``library`` is omitted the
    session's fingerprint-keyed registry supplies it, so sweeps also share
    one characterized library per technology.
    """
    from repro.service import default_session

    sess = session or default_session()
    technology = technology or make_technology("d25-s")
    library = library or sess.library(technology)
    estimator = LoadingAwareEstimator(library)
    reference = ReferenceSimulator(technology)
    vector_list = list(random_vectors(circuit, vectors, rng))

    # Warm the characterization cache outside the timed region: every
    # (gate type, vector) pair the campaign can hit must be characterized
    # up front, otherwise the timed scalar loop silently pays for cell
    # solves that are a one-time library cost.  The warm-up wall time is
    # recorded separately — it is where the batched characterization engine
    # (CharacterizationOptions.engine) shows up.
    start = time.perf_counter()
    for vector in vector_list:
        warm_report = estimator.estimate(circuit, vector)
    characterization_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for vector in vector_list:
        estimator.estimate(circuit, vector)
    estimator_seconds = time.perf_counter() - start

    cache_before = sess.compile_cache.cache_info()
    start = time.perf_counter()
    compiled = sess.compiled(circuit, library)
    compile_seconds = time.perf_counter() - start
    cache_after = sess.compile_cache.cache_info()

    start = time.perf_counter()
    run_compiled(compiled, vector_list)
    batched_seconds = time.perf_counter() - start

    start = time.perf_counter()
    transistor_count = 0
    reference_method = ""
    reference_sweeps: list[int] = []
    for vector in vector_list:
        report = reference.estimate(circuit, vector)
        transistor_count = int(report.metadata["transistors"])
        reference_method = str(report.metadata["solver_method"])
        reference_sweeps.append(int(report.metadata["solver_sweeps"]))
    reference_seconds = time.perf_counter() - start

    return RuntimeComparison(
        circuit_name=circuit.name,
        gate_count=warm_report.gate_count(),
        transistor_count=transistor_count,
        vector_count=len(vector_list),
        estimator_seconds=estimator_seconds,
        reference_seconds=reference_seconds,
        batched_seconds=batched_seconds,
        compile_seconds=compile_seconds,
        characterization_seconds=characterization_seconds,
        characterization_engine=library.characterizer.options.engine,
        # Engine-aware: the scalar engine always relaxes regardless of
        # SolverOptions.method, and solve_stats records what actually ran.
        solver_method=str(library.characterizer.solve_stats["method"]),
        solver_backends=_format_backends(
            library.characterizer.solve_stats["methods"]
        ),
        reference_solver_method=reference_method,
        reference_sweeps_mean=(
            float(sum(reference_sweeps)) / len(reference_sweeps)
            if reference_sweeps
            else float("nan")
        ),
        compile_cache_hits=cache_after.hits - cache_before.hits,
        compile_cache_misses=cache_after.misses - cache_before.misses,
    )
