"""Service layer: compile-once / query-many estimation sessions.

This package is the serving boundary of the estimator.  Everything below it
(:mod:`repro.engine`, :mod:`repro.gates`, :mod:`repro.core`) is per-call
machinery; :class:`EstimationSession` is the long-lived object a deployment
holds on to — it owns the compiled-circuit LRU, a fingerprint-keyed
characterized-library registry (optionally disk-backed by a
:class:`~repro.gates.cache.LibraryStore`), and a request front-end that
coalesces concurrent vector-estimation requests into single batched engine
passes.  Session routing never changes numbers: coalesced and cached
results are bitwise identical to cold per-call evaluation.

Public entry points:

* :class:`EstimationSession` — the session object (``library`` /
  ``compiled`` / ``totals`` / ``campaign`` / ``iter_campaign`` /
  ``stats``);
* :func:`default_session` — the lazily created process-default session
  the classic entry points route through when no session is passed;
* :func:`stats_delta` — difference two ``stats()`` snapshots (used by the
  experiment drivers to report per-figure cache-hit counts);
* :class:`RequestCoalescer` — the generic dynamic-batching queue, reusable
  for other batchable evaluations.

Hardening (PR 9): per-request deadlines
(:class:`~repro.resilience.errors.DeadlineExceeded`), bounded admission
with load shedding (:class:`~repro.resilience.errors.ServiceOverloaded`),
leader-death release, and graceful degradation to direct serial
evaluation — both exception types are re-exported here for callers.
"""

from repro.resilience.errors import DeadlineExceeded, ServiceOverloaded
from repro.service.coalesce import (
    DEFAULT_BATCH_WINDOW_S,
    DEFAULT_MAX_BATCH_VECTORS,
    DEFAULT_MAX_IN_FLIGHT,
    RequestCoalescer,
)
from repro.service.session import (
    EstimationSession,
    StatisticalLeakageEstimate,
    default_session,
    stats_delta,
)

__all__ = [
    "DEFAULT_BATCH_WINDOW_S",
    "DEFAULT_MAX_BATCH_VECTORS",
    "DEFAULT_MAX_IN_FLIGHT",
    "DeadlineExceeded",
    "EstimationSession",
    "RequestCoalescer",
    "ServiceOverloaded",
    "StatisticalLeakageEstimate",
    "default_session",
    "stats_delta",
]
