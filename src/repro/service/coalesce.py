"""Request coalescing: merge concurrent estimation requests into one batch.

The batched engine's cost model is per-*pass*, not per-vector: answering
200 vectors in one :func:`repro.engine.campaign.run_totals` call costs a
handful of array passes, the same 200 vectors as 20 separate 10-vector
calls cost 20x the fixed pass overhead.  A serving front-end therefore
wants concurrent requests that target the same compiled circuit merged
into single engine passes.  :class:`RequestCoalescer` implements the
standard dynamic-batching pattern:

* the first request to arrive for a key opens a batch and becomes its
  **leader**; it waits out a short batch window (``window_s``) for
  followers to join;
* followers append their payload to the open batch and block on their own
  completion event;
* the batch flushes when the window expires (a **timeout flush** — a solo
  or slow-to-gain-company request can never be starved; it just pays the
  window once) or as soon as the batch reaches ``max_batch_vectors``
  (a **full flush**, which wakes the leader early);
* the leader snapshots the batch, *closes* it (so requests arriving while
  the engine pass runs open a fresh batch instead of waiting behind it),
  hands the single batched evaluation to a dedicated flush thread, and
  every member — leader included — waits on its own completion event.

Hardening (the resilience layer's service front):

* **per-request deadlines**: ``submit(..., deadline_s=...)`` waits at most
  that long; expiry raises
  :class:`~repro.resilience.errors.DeadlineExceeded` to that caller only —
  the batch keeps running and every other member still gets its result.
  Because evaluation runs on the flush thread, this holds for the leader
  too: **no caller ever blocks past its deadline**, even mid-evaluation;
* **admission control**: at most ``max_in_flight`` requests may be
  admitted and incomplete; beyond that ``submit`` sheds load by raising
  :class:`~repro.resilience.errors.ServiceOverloaded` immediately instead
  of growing an unbounded queue;
* **leader-death release**: any failure between closing a batch and
  handing it to the flush thread (and any failure inside the evaluation
  itself) is distributed to every member and their events are set —
  followers can never hang on a dead leader.

Correctness rests on the repo's standing batch-composition-invariance
contract: every engine pass computes each vector column independently, so
the coalesced batch's per-request slices are **bitwise identical** to the
same requests evaluated one at a time — the property
``tests/test_service.py`` asserts under real thread concurrency.

The coalescer itself is generic: a submission is an opaque payload plus a
vector count, and the leader evaluates the whole batch through a caller
supplied ``run_batch(payloads) -> results`` callable.  All submitters of
one key must pass equivalent ``run_batch`` callables (the leader's is the
one that runs); :class:`repro.service.EstimationSession` guarantees this by
deriving the key and the callable from the same (compiled circuit,
include_loading) pair.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Sequence

from repro.resilience.errors import DeadlineExceeded, ServiceOverloaded

#: Default batch window (seconds): how long a batch leader waits for
#: followers before flushing.  Small enough to be invisible next to an
#: engine pass, large enough for a burst of concurrent submitters to land
#: in one batch.
DEFAULT_BATCH_WINDOW_S = 0.002

#: Default vector bound per coalesced batch; reaching it flushes early.
#: Matches the engine's chunking scale so one coalesced batch stays one
#: memory-bounded pass.
DEFAULT_MAX_BATCH_VECTORS = 4096

#: Default admission bound: requests admitted but not yet complete.  Far
#: above any sane concurrent-thread count, yet finite — a stalled engine
#: pass sheds new load instead of queueing it without bound.
DEFAULT_MAX_IN_FLIGHT = 1024


@dataclass
class _Submission:
    """One request waiting inside a batch."""

    payload: Any
    n_vectors: int
    run_batch: Callable[[list[Any]], Sequence[Any]]
    done: threading.Event = field(default_factory=threading.Event)
    result: Any = None
    error: BaseException | None = None


@dataclass
class _Batch:
    """One open batch: the submissions joined so far and its flush wakeup."""

    deadline: float
    submissions: list[_Submission] = field(default_factory=list)
    n_vectors: int = 0
    #: Set to wake the leader before the deadline (full batch).
    flush_now: threading.Event = field(default_factory=threading.Event)


class RequestCoalescer:
    """Thread-safe queue merging concurrent submissions into single batches.

    Parameters
    ----------
    window_s:
        Batch window: how long a leader waits for followers.  ``0.0``
        flushes immediately (no coalescing latency, concurrent requests
        only merge if they arrive within the same scheduling instant).
    max_batch_vectors:
        Flush a batch as soon as its summed vector count reaches this
        bound, without waiting out the window.
    max_in_flight:
        Admission bound: requests admitted but not yet complete.  Beyond
        it ``submit`` raises
        :class:`~repro.resilience.errors.ServiceOverloaded` immediately
        (load shedding); ``None`` disables the bound.
    """

    def __init__(
        self,
        window_s: float = DEFAULT_BATCH_WINDOW_S,
        max_batch_vectors: int = DEFAULT_MAX_BATCH_VECTORS,
        max_in_flight: int | None = DEFAULT_MAX_IN_FLIGHT,
    ) -> None:
        if window_s < 0.0:
            raise ValueError("window_s must be non-negative")
        if max_batch_vectors < 1:
            raise ValueError("max_batch_vectors must be positive")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be positive (or None)")
        self.window_s = float(window_s)
        self.max_batch_vectors = int(max_batch_vectors)
        self.max_in_flight = None if max_in_flight is None else int(max_in_flight)
        self._lock = threading.Lock()
        self._open: dict[Hashable, _Batch] = {}
        # -- counters (all under the lock) --------------------------------- #
        self._requests = 0
        self._request_vectors = 0
        self._batches = 0
        self._batched_vectors = 0
        self._timeout_flushes = 0
        self._full_flushes = 0
        self._max_batch_requests = 0
        self._in_flight = 0
        self._rejected = 0
        self._deadline_exceeded = 0

    def submit(
        self,
        key: Hashable,
        payload: Any,
        n_vectors: int,
        run_batch: Callable[[list[Any]], Sequence[Any]],
        deadline_s: float | None = None,
    ) -> Any:
        """Submit one request; block until its batch is evaluated.

        ``run_batch`` receives the payloads of every submission in the
        batch, in arrival order, and must return one result per payload in
        the same order.  The calling thread of the batch's first submission
        acts as leader: it waits out the window, closes the batch and hands
        the evaluation to a dedicated flush thread; every member then waits
        on its own completion event.  An evaluation error propagates to
        every request of the batch.

        ``deadline_s`` bounds *this caller's* wait.  Expiry raises
        :class:`DeadlineExceeded` to this caller only; the batch keeps
        running and other members are unaffected.  When the service is at
        its admission bound the request is shed with
        :class:`ServiceOverloaded` without joining any batch.
        """
        if deadline_s is not None and deadline_s <= 0.0:
            raise ValueError("deadline_s must be positive (or None)")
        submission = _Submission(
            payload=payload, n_vectors=int(n_vectors), run_batch=run_batch
        )
        with self._lock:
            if (
                self.max_in_flight is not None
                and self._in_flight >= self.max_in_flight
            ):
                self._rejected += 1
                raise ServiceOverloaded(
                    f"request rejected: {self._in_flight} requests already in "
                    f"flight (bound {self.max_in_flight}); retry after backoff"
                )
            self._in_flight += 1
            self._requests += 1
            self._request_vectors += submission.n_vectors
            batch = self._open.get(key)
            leader = batch is None
            if batch is None:
                batch = _Batch(deadline=time.monotonic() + self.window_s)
                self._open[key] = batch
            batch.submissions.append(submission)
            batch.n_vectors += submission.n_vectors
            if batch.n_vectors >= self.max_batch_vectors or self.window_s == 0.0:
                batch.flush_now.set()

        try:
            if leader:
                self._lead(key, batch)
            if not submission.done.wait(timeout=deadline_s):
                with self._lock:
                    self._deadline_exceeded += 1
                raise DeadlineExceeded(
                    f"request deadline of {deadline_s:.3g}s expired before its "
                    "batch completed; the batch keeps running for its other "
                    "members"
                )
            if submission.error is not None:
                raise submission.error
            return submission.result
        finally:
            with self._lock:
                self._in_flight -= 1

    def stats(self) -> dict[str, int]:
        """Return a snapshot of the request/batch counters.

        ``requests``/``request_vectors`` count every submission;
        ``batches``/``batched_vectors`` count the engine passes actually
        run — their difference is the work coalescing saved.  Every request
        is accounted for: ``request_vectors == batched_vectors`` and
        ``batches == timeout_flushes + full_flushes`` at quiescence.
        """
        with self._lock:
            return {
                "requests": self._requests,
                "request_vectors": self._request_vectors,
                "batches": self._batches,
                "batched_vectors": self._batched_vectors,
                "coalesced_requests": self._requests - self._batches,
                "timeout_flushes": self._timeout_flushes,
                "full_flushes": self._full_flushes,
                "max_batch_requests": self._max_batch_requests,
                "in_flight": self._in_flight,
                "rejected": self._rejected,
                "deadline_exceeded": self._deadline_exceeded,
            }

    # ------------------------------------------------------------------ #
    # leader side
    # ------------------------------------------------------------------ #
    def _lead(self, key: Hashable, batch: _Batch) -> None:
        """Wait out the batch window, close ``batch``, dispatch its flush.

        The evaluation itself runs on a dedicated flush thread, not on the
        leader's calling thread: the leader then waits on its own done
        event like any follower, which is what makes per-request deadlines
        hold for every member of the batch.
        """
        while not batch.flush_now.is_set():
            remaining = batch.deadline - time.monotonic()
            if remaining <= 0.0:
                break
            batch.flush_now.wait(timeout=remaining)

        submissions: list[_Submission] | None = None
        try:
            with self._lock:
                # Close the batch: late arrivals open a fresh one and are
                # led by their own first submitter, so a long-running
                # evaluation (a deliberately slow request) can never starve
                # the window of the requests behind it.
                if self._open.get(key) is batch:
                    del self._open[key]
                submissions = list(batch.submissions)
                full = batch.n_vectors >= self.max_batch_vectors
                self._batches += 1
                self._batched_vectors += batch.n_vectors
                self._max_batch_requests = max(
                    self._max_batch_requests, len(submissions)
                )
                if full:
                    self._full_flushes += 1
                else:
                    self._timeout_flushes += 1
            runner = threading.Thread(
                target=_run_flush,
                args=(submissions,),
                name="coalescer-flush",
                daemon=True,
            )
            runner.start()
        except BaseException as exc:
            # The leader died between closing the batch and dispatching its
            # flush (thread-spawn failure, interpreter shutdown, injected
            # crash).  Followers must never hang on a dead leader: release
            # every member with the error before re-raising it here.
            if submissions is None:
                with self._lock:
                    if self._open.get(key) is batch:
                        del self._open[key]
                    submissions = list(batch.submissions)
            for submission in submissions:
                submission.error = exc
                submission.done.set()
            raise


def _run_flush(submissions: list[_Submission]) -> None:
    """Evaluate one closed batch and distribute results (flush thread)."""
    try:
        results = submissions[0].run_batch([s.payload for s in submissions])
        if len(results) != len(submissions):
            raise RuntimeError(
                f"run_batch returned {len(results)} results for "
                f"{len(submissions)} submissions"
            )
        for submission, result in zip(submissions, results):
            submission.result = result
    except BaseException as exc:
        for submission in submissions:
            submission.error = exc
    finally:
        # Every member — including a leader whose deadline already fired
        # and who is no longer listening — is released exactly once.
        for submission in submissions:
            submission.done.set()
